//! The multi-tenant electrical co-simulation.

use crate::aggressor::{AggressorSpec, FaultTelemetry, VictimCone};
use crate::circuit::BenignCircuit;
use crate::error::FabricError;
use serde::{Deserialize, Serialize};
use slm_aes::{Aes32Rtl, LeakageModel};
use slm_defense::{DefenseConfig, DefenseRuntime, DefenseTelemetry};
use slm_pdn::noise::Rng64;
use slm_pdn::{MultiRegionPdn, PdnConfig};
use slm_sensors::{BenignSensor, BenignSensorConfig, RoArray, SensorSample, TdcConfig, TdcSensor};
use slm_timing::{simulate_transition, DelayModel, Waveform};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Full configuration of the experimental setup (the paper's Fig. 2).
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Which benign circuit the attacker tenant hosts.
    pub benign: BenignCircuit,
    /// The victim's AES-128 key.
    pub aes_key: [u8; 16],
    /// Shared-PDN electrical parameters.
    pub pdn: PdnConfig,
    /// AES datapath leakage parameters.
    pub leakage: LeakageModel,
    /// Benign-sensor operating point (overclock, skew, jitter).
    pub sensor: BenignSensorConfig,
    /// Reference TDC sensor configuration.
    pub tdc: TdcConfig,
    /// Gate/routing delay model for the benign circuit.
    pub delay_model: DelayModel,
    /// Period the benign circuit was *constrained* to, ns (paper: 20 ns
    /// = 50 MHz). Used by the strict-timing checker story.
    pub synth_period_ns: f64,
    /// Critical-path delay the mapper actually achieved, ns. Synthesis
    /// beats its constraint: a carry chain packed into CARRY4-style
    /// primitives lands near 5 ns, not at the 20 ns budget — which is
    /// why a 300 MHz overclock probes the *middle* of the chain and
    /// every few-picosecond delay step is a distinct endpoint threshold.
    pub achieved_critical_ns: f64,
    /// The RO fluctuation-generator array.
    pub ro: RoArray,
    /// Optional active-fence countermeasure.
    pub fence: Option<FenceConfig>,
    /// Whether the victim AES core uses a first-order-masked datapath
    /// (the "masking" countermeasure of the side-channel literature the
    /// paper cites). Ciphertexts are unchanged; first-order CPA fails.
    pub masked_aes: bool,
    /// Electrical coupling between the victim's PDN region and the
    /// attacker's (1.0 = same region, as the paper's single-die setup;
    /// lower values model greater placement distance between tenants,
    /// the sensitivity Glamočanin et al. measured on cloud FPGAs).
    pub victim_coupling: f64,
    /// Static current of the rest of the design, amps.
    pub background_current_a: f64,
    /// Relative amplitude of the attacker tenant's reset/measure
    /// stimulus alternation. The sensing circuit toggles between its
    /// reset and measure vectors every 300 MHz tick, so its switching
    /// current is not constant: it swings by this fraction of the mean
    /// benign activity current at the tick rate. `0.0` (the default)
    /// models a perfectly balanced stimulus pair and reproduces the
    /// pre-defense electrical behavior bit-for-bit; realistic vector
    /// pairs are asymmetric by tens of percent, which is the signature
    /// the defender's [`DefenseConfig`] anomaly detector keys on.
    pub stimulus_alternation: f64,
    /// Runtime countermeasures deployed by the defender, if any.
    pub defense: Option<DefenseConfig>,
    /// Critical-path delay of the victim's per-column AES cone, ns,
    /// against its 10 ns (100 MHz) clock period. The default 9.0 ns
    /// models a reasonably tight but meeting design: ~47 mV of droop
    /// erases the margin and the deepest endpoint starts missing the
    /// clock edge. Only consulted by the fault-injection path; the CPA
    /// substrate never reads it.
    pub victim_critical_ns: f64,
    /// Optional fault-injection aggressor mounted in the attacker
    /// region. `None` (the default) is bit-exact with the pre-aggressor
    /// fabric.
    pub aggressor: Option<AggressorSpec>,
    /// Master seed (plaintext generation and housekeeping noise).
    pub seed: u64,
}

impl FabricConfig {
    /// The same setup re-seeded for shard `index` of a sharded
    /// campaign.
    ///
    /// Every noise stream in the fabric — plaintext generation, sensor
    /// jitter, TDC jitter, the active fence if mounted — gets an
    /// independent lane derived with [`slm_par::mix_seed`], so shards
    /// are statistically independent captures of the *same* physical
    /// setup. The mapping depends only on `(config, index)`, never on
    /// which worker executes the shard: that purity is what makes a
    /// parallel campaign bit-identical to the serial shard-by-shard
    /// run.
    ///
    /// The fault-injection aggressor needs no lane: its current is a
    /// pure function of the tick index ([`AggressorSpec::current_a`]),
    /// so every shard drives the identical duty cycle by construction.
    pub fn for_shard(&self, index: usize) -> FabricConfig {
        let lane = index as u64;
        let mut config = self.clone();
        config.seed = slm_par::mix_seed(self.seed, lane);
        config.sensor.seed = slm_par::mix_seed(self.sensor.seed, lane);
        config.tdc.seed = slm_par::mix_seed(self.tdc.seed, lane);
        if let Some(fence) = &mut config.fence {
            fence.seed = slm_par::mix_seed(fence.seed, lane);
        }
        if let Some(defense) = &mut config.defense {
            defense.seed = slm_par::mix_seed(defense.seed, lane);
        }
        config
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            benign: BenignCircuit::Alu192,
            aes_key: [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                0x4f, 0x3c,
            ],
            pdn: PdnConfig::default(),
            leakage: LeakageModel::default(),
            sensor: BenignSensorConfig::overclocked_300mhz(0xa11ce),
            tdc: TdcConfig::paper_150mhz(0x7dc0),
            delay_model: DelayModel::default(),
            synth_period_ns: 20.0,
            achieved_critical_ns: 5.2,
            ro: RoArray::paper_8000(),
            fence: None,
            masked_aes: false,
            victim_coupling: 1.0,
            background_current_a: 0.25,
            stimulus_alternation: 0.0,
            defense: None,
            victim_critical_ns: 9.0,
            aggressor: None,
            seed: 0x5ca1ab1e,
        }
    }
}

/// An *active fence* countermeasure (Krautter et al., ICCAD 2019): a
/// defender-controlled noise generator that draws randomized current to
/// mask the victim's signature on the shared PDN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FenceConfig {
    /// Peak fence current, amps; each tick draws uniformly in
    /// `[0, peak]`.
    pub peak_current_a: f64,
    /// Noise-stream seed.
    pub seed: u64,
}

impl FenceConfig {
    /// A fence sized to swamp the default AES leakage (its current swing
    /// is an order of magnitude above the per-bit signal).
    pub fn strong() -> Self {
        FenceConfig {
            peak_current_a: 1.5,
            seed: 0xfe9ce,
        }
    }
}

/// On/off schedule of the RO array, in 300 MHz ticks.
///
/// Within each period the enabled fraction ramps linearly from 0 to 1
/// over `ramp_ticks`, holds at 1 for `hold_ticks`, then switches off
/// instantly — "gradually enabled and suddenly disabled" (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoSchedule {
    /// Full period, ticks.
    pub period_ticks: u64,
    /// Linear enable ramp, ticks.
    pub ramp_ticks: u64,
    /// Full-on hold after the ramp, ticks.
    pub hold_ticks: u64,
    /// Ticks before the first period starts (array disabled).
    pub lead_in_ticks: u64,
}

impl RoSchedule {
    /// The paper's 4 MHz gating at a 300 MHz tick (75-tick period), with
    /// a 40-sample lead-in so plots show the quiet baseline first.
    pub fn paper_4mhz() -> Self {
        RoSchedule {
            period_ticks: 75,
            ramp_ticks: 50,
            hold_ticks: 15,
            lead_in_ticks: 80,
        }
    }

    /// Enabled fraction at a given tick.
    pub fn fraction_at(&self, tick: u64) -> f64 {
        if tick < self.lead_in_ticks {
            return 0.0;
        }
        let phase = (tick - self.lead_in_ticks) % self.period_ticks;
        if phase < self.ramp_ticks {
            (phase as f64 + 1.0) / self.ramp_ticks as f64
        } else if phase < self.ramp_ticks + self.hold_ticks {
            1.0
        } else {
            0.0
        }
    }
}

/// What the AES tenant does during an activity run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AesActivity {
    /// Victim idle (constant background only).
    Idle,
    /// Victim encrypts random blocks back to back.
    Continuous,
}

/// Captured record of one encryption (ciphertext plus synchronized
/// sensor streams), as the BRAM + UART path would deliver it to the
/// workstation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptureRecord {
    /// The ciphertext returned to the workstation.
    pub ciphertext: [u8; 16],
    /// Benign-sensor captures, one per measure edge (150 MS/s effective).
    pub benign: Vec<SensorSample>,
    /// TDC thermometer depths on the same edges.
    pub tdc: Vec<u32>,
}

/// A free-running activity capture (no per-trace alignment), used by the
/// preliminary RO/AES influence experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityTrace {
    /// Benign-sensor captures per measure edge.
    pub benign: Vec<SensorSample>,
    /// TDC depths per measure edge.
    pub tdc: Vec<u32>,
    /// True supply voltage at each measure edge (simulation ground
    /// truth, not attacker-visible).
    pub voltage: Vec<f64>,
    /// Enabled RO count at each measure edge.
    pub ro_enabled: Vec<usize>,
}

/// The expensive, noise-independent slice of a fabric build: the benign
/// circuit's simulated endpoint waveforms and the activity current
/// derived from them.
///
/// Everything in a prototype is a pure function of
/// `(benign, delay_model, achieved_critical_ns)` — netlist generation,
/// delay annotation, and the reset→measure event simulation involve no
/// noise streams. Sharded campaigns re-seed only noise lanes
/// ([`FabricConfig::for_shard`]), so the pilot fabric and all shard
/// fabrics of a campaign share one prototype instead of re-running the
/// ~12 ms netlist + STA + event-sim build per shard. Profiling showed
/// that redundant rebuild was ~80% of a 4k-trace campaign's wall clock
/// and the reason the parallel pipeline didn't scale.
#[derive(Debug)]
pub struct FabricPrototype {
    /// Endpoint (output) waveforms under the reset→measure stimulus.
    waves: Vec<Waveform>,
    /// Mean switching current of the benign circuit, amps.
    benign_activity_current_a: f64,
    /// The victim's per-column combinational cone, timed once — pure in
    /// `(delay_model, victim_critical_ns)`, so it belongs to the
    /// noise-free prototype slice and shard reseeds share it.
    victim_cone: VictimCone,
}

impl FabricPrototype {
    /// Builds the prototype from scratch: generates the netlist,
    /// calibrates delays for the achieved critical path, and event-
    /// simulates the reset→measure transition once.
    ///
    /// # Errors
    ///
    /// Propagates circuit generation and timing analysis failures.
    pub fn build(config: &FabricConfig) -> Result<Self, FabricError> {
        let built = config.benign.build()?;
        let ann = config.delay_model.annotate_for_period(
            &built.netlist,
            config.achieved_critical_ns,
            1.0,
        )?;
        let waves = simulate_transition(&ann, &built.reset, &built.measure)?;
        // The benign circuit's own switching draws a roughly constant
        // current every measure cycle, proportional to its activity.
        let benign_activity_current_a = 1.0e-6 * waves.total_transitions() as f64;
        let victim_period_ns = MultiTenantFabric::TICKS_PER_AES_CYCLE as f64 * 1e9 / 300.0e6;
        let victim_cone = VictimCone::build(
            &config.delay_model,
            config.victim_critical_ns,
            victim_period_ns,
        )?;
        Ok(FabricPrototype {
            waves: waves.into_output_waves(),
            benign_activity_current_a,
            victim_cone,
        })
    }

    /// Fetches (or builds and caches) the prototype for a configuration.
    ///
    /// The cache key covers every input the prototype depends on; noise
    /// seeds and electrical parameters are deliberately excluded, which
    /// is what lets `for_shard` reseeds hit. Build errors are not
    /// cached. The cache is process-global and bounded: it resets once
    /// it holds 32 distinct prototypes (campaigns use one or two).
    pub fn cached(config: &FabricConfig) -> Result<Arc<Self>, FabricError> {
        static CACHE: OnceLock<Mutex<HashMap<String, Arc<FabricPrototype>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = format!(
            "{:?}|{:?}|{}|{}",
            config.benign,
            config.delay_model,
            config.achieved_critical_ns,
            config.victim_critical_ns
        );
        if let Some(hit) = cache.lock().expect("prototype cache poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        // Build outside the lock so concurrent shard workers aren't
        // serialized behind one builder (worst case: a few redundant
        // builds on a cold cache, last writer wins — all bit-identical).
        let proto = Arc::new(Self::build(config)?);
        let mut map = cache.lock().expect("prototype cache poisoned");
        if map.len() >= 32 {
            map.clear();
        }
        Ok(Arc::clone(
            map.entry(key).or_insert_with(|| Arc::clone(&proto)),
        ))
    }

    /// Number of endpoint waveforms.
    pub fn endpoints(&self) -> usize {
        self.waves.len()
    }

    /// The timed victim cone (test access to the fault physics).
    pub fn victim_cone(&self) -> &VictimCone {
        &self.victim_cone
    }
}

/// Live aggressor state: the spec, the timed cone it attacks, and the
/// ground-truth fault accounting.
#[derive(Debug, Clone)]
struct AggressorState {
    spec: AggressorSpec,
    cone: VictimCone,
    telemetry: FaultTelemetry,
}

/// The living fabric: all tenants sharing one PDN, stepped on the
/// 300 MHz sensor clock (one tick = 3.33 ns; the 100 MHz AES core
/// advances every 3 ticks; sensors capture every 2nd tick, giving the
/// paper's 150 MS/s effective rate).
#[derive(Debug, Clone)]
pub struct MultiTenantFabric {
    config: FabricConfig,
    aes: Aes32Rtl,
    sensor: BenignSensor,
    tdc: TdcSensor,
    /// Two coupled regions: 0 = attacker (sensors, ROs, background),
    /// 1 = victim (AES).
    pdn: MultiRegionPdn,
    ro: RoArray,
    rng: Rng64,
    fence_rng: Option<Rng64>,
    /// Defender-side countermeasure state, when deployed.
    defense: Option<DefenseRuntime>,
    /// Fault-injection aggressor state, when mounted.
    aggressor: Option<AggressorState>,
    /// Fabric ticks elapsed since construction (drives the attacker's
    /// reset/measure stimulus parity).
    tick_count: u64,
    /// Measure-sample index within a capture for each AES cycle.
    dt_s: f64,
    lead_in_cycles: usize,
    benign_activity_current_a: f64,
}

impl MultiTenantFabric {
    /// Ticks per AES (100 MHz) cycle at the 300 MHz base tick.
    const TICKS_PER_AES_CYCLE: usize = 3;
    /// Idle AES cycles simulated before an encryption starts.
    const LEAD_IN_CYCLES: usize = 2;
    /// Idle AES cycles simulated after an encryption completes.
    const LEAD_OUT_CYCLES: usize = 2;

    /// Builds the fabric: generates the benign circuit, calibrates its
    /// delays for the synthesis clock, simulates its reset→measure
    /// waveforms once, and wires every tenant to the shared PDN.
    ///
    /// The expensive circuit work is shared through the process-global
    /// [`FabricPrototype`] cache, so rebuilding a fabric for another
    /// noise lane of the same physical setup costs microseconds, not
    /// milliseconds. The result is bit-identical to an uncached build.
    ///
    /// # Errors
    ///
    /// Propagates circuit generation and timing analysis failures.
    pub fn new(config: &FabricConfig) -> Result<Self, FabricError> {
        let proto = FabricPrototype::cached(config)?;
        Ok(Self::from_prototype(&proto, config))
    }

    /// Builds a fabric from an already-built prototype, wiring fresh
    /// noise streams from `config`'s seeds. The caller is responsible
    /// for the prototype matching `(benign, delay_model,
    /// achieved_critical_ns)` — [`MultiTenantFabric::new`] does this via
    /// the cache.
    pub fn from_prototype(proto: &FabricPrototype, config: &FabricConfig) -> Self {
        let sensor = BenignSensor::new(proto.waves.clone(), config.sensor);
        let benign_activity_current_a = proto.benign_activity_current_a;
        // Supply regulation attenuates how much of one region's current
        // transient reaches the other region's rail. Applied only when
        // deployed so an undefended fabric keeps its coupling matrix
        // bit-for-bit.
        let coupling = match config.defense.as_ref().and_then(|d| d.ldo) {
            Some(ldo) => config.victim_coupling * ldo.residual,
            None => config.victim_coupling,
        };
        MultiTenantFabric {
            aes: Aes32Rtl::new(config.aes_key),
            sensor,
            tdc: TdcSensor::new(config.tdc),
            pdn: MultiRegionPdn::new(
                config.pdn,
                2,
                vec![vec![1.0, coupling], vec![coupling, 1.0]],
            ),
            ro: config.ro,
            rng: Rng64::new(config.seed),
            fence_rng: config.fence.map(|f| Rng64::new(f.seed)),
            defense: config.defense.as_ref().map(DefenseRuntime::new),
            aggressor: config.aggressor.map(|spec| AggressorState {
                spec,
                cone: proto.victim_cone.clone(),
                telemetry: FaultTelemetry::new(config.pdn.v_nominal),
            }),
            tick_count: 0,
            dt_s: 1.0 / 300.0e6,
            lead_in_cycles: Self::LEAD_IN_CYCLES,
            benign_activity_current_a,
            config: config.clone(),
        }
    }

    /// The configuration the fabric was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of benign-sensor endpoints.
    pub fn endpoints(&self) -> usize {
        self.sensor.len()
    }

    /// Immutable access to the benign sensor (for threshold analysis).
    pub fn sensor(&self) -> &BenignSensor {
        &self.sensor
    }

    /// The victim's AES core (test access to ground truth).
    pub fn aes(&self) -> &Aes32Rtl {
        &self.aes
    }

    /// Number of measure-edge samples captured per encryption.
    pub fn samples_per_encryption(&self) -> usize {
        let cycles = self.lead_in_cycles + Aes32Rtl::CYCLES_PER_BLOCK + Self::LEAD_OUT_CYCLES;
        cycles * Self::TICKS_PER_AES_CYCLE / 2
    }

    /// The measure-sample indices during which AES cycle `c` is active —
    /// where the leakage of that cycle lands in the capture.
    pub fn samples_for_aes_cycle(&self, c: usize) -> std::ops::Range<usize> {
        let first_tick = (self.lead_in_cycles + c) * Self::TICKS_PER_AES_CYCLE;
        let last_tick = first_tick + Self::TICKS_PER_AES_CYCLE;
        // measure edges happen on odd ticks (tick % 2 == 1): sample k is
        // tick 2k+1.
        let first = first_tick / 2;
        let last = last_tick.div_ceil(2);
        first..last
    }

    /// The sample window covering the AES final round — the "relevant
    /// bits for the CPA" the paper's host script stores separately.
    pub fn last_round_window(&self) -> std::ops::Range<usize> {
        let first = self
            .samples_for_aes_cycle(Aes32Rtl::last_round_cycle_for_byte(0))
            .start;
        let last = self
            .samples_for_aes_cycle(Aes32Rtl::last_round_cycle_for_byte(15))
            .end;
        first..last
    }

    /// Per-region currents: `[attacker, victim]`.
    fn region_currents(&mut self, aes_cycle_current: f64) -> [f64; 2] {
        let fence = match (&mut self.fence_rng, &self.config.fence) {
            (Some(rng), Some(cfg)) => rng.uniform() * cfg.peak_current_a,
            _ => 0.0,
        };
        // The sensing circuit alternates reset/measure vectors every
        // tick, so its switching current swings around the mean with
        // tick parity. With a balanced stimulus pair (alternation 0.0)
        // the factor is exactly 1.0 — bitwise identity.
        let parity = if self.tick_count % 2 == 0 { 1.0 } else { -1.0 };
        let stimulus =
            self.benign_activity_current_a * (1.0 + self.config.stimulus_alternation * parity);
        // The fault-injection aggressor draws from the *attacker* region:
        // its droop reaches the victim rail through the coupling matrix,
        // which is exactly why supply regulation (LDO residual on the
        // coupling) is the arm that suppresses the faults. 0.0 when
        // unmounted — bit-exact, same discipline as the fence term.
        let aggressor = match &self.aggressor {
            Some(a) => a.spec.current_a(self.tick_count),
            None => 0.0,
        };
        let attacker =
            self.config.background_current_a + self.ro.current_a() + stimulus + fence + aggressor;
        [attacker, aes_cycle_current]
    }

    /// Droop extrema and settling accounting of the sensed (attacker)
    /// PDN region since the fabric was built — the electrical telemetry
    /// the observability layer exports.
    pub fn pdn_telemetry(&self) -> slm_pdn::PdnTelemetry {
        self.pdn.telemetry()
    }

    /// Defense-side telemetry (injected current, detector scores and
    /// alarms), when a defense is deployed.
    pub fn defense_telemetry(&self) -> Option<&DefenseTelemetry> {
        self.defense.as_ref().map(DefenseRuntime::telemetry)
    }

    /// The live defense runtime, when deployed (read access for
    /// monitoring planes and tests).
    pub fn defense(&self) -> Option<&DefenseRuntime> {
        self.defense.as_ref()
    }

    /// Ground-truth fault-injection accounting, when an aggressor is
    /// mounted. Faults are evaluated only on the capture path
    /// ([`Self::encrypt_and_capture`] and friends); a free-running
    /// [`Self::run_activity`] draws the aggressor current (so detectors
    /// see it) but discards no ciphertexts, hence flips nothing here.
    pub fn fault_telemetry(&self) -> Option<&FaultTelemetry> {
        self.aggressor.as_ref().map(|a| &a.telemetry)
    }

    /// Deepest droop the victim rail has seen since construction
    /// (simulation ground truth from the shared PDN, attacker-invisible).
    pub fn victim_min_voltage(&self) -> f64 {
        self.pdn.min_voltage(1)
    }

    /// Steps the shared PDN one tick; returns the attacker-region
    /// voltage (what the sensors see).
    ///
    /// When a defense is deployed the tick also runs the defender's
    /// loop: the fence current drawn for this tick loads the victim
    /// region *before* the step, and the defender's TDC observes the
    /// settled victim rail *after* it (one-tick feedback latency for
    /// the adaptive fence).
    fn step_pdn(&mut self, aes_cycle_current: f64) -> (f64, f64) {
        let currents = self.region_currents(aes_cycle_current);
        self.tick_count += 1;
        if let Some(defense) = &mut self.defense {
            let injected = defense.next_injection_a();
            self.pdn.set_injected(1, injected);
        }
        let dt = self.dt_s;
        let (attacker_v, victim_v) = {
            let v = self.pdn.step(&currents, dt);
            (v[0], v[1])
        };
        if let Some(defense) = &mut self.defense {
            defense.observe_tick(victim_v);
        }
        (attacker_v, victim_v)
    }

    /// Runs one encryption while capturing every sensor on each measure
    /// edge.
    pub fn encrypt_and_capture(&mut self, plaintext: [u8; 16]) -> CaptureRecord {
        self.encrypt_internal(plaintext, None, None)
    }

    /// Runs one encryption capturing only the measure edges in
    /// `window` (sample indices) and only the listed benign endpoints —
    /// the fast path for large CPA campaigns.
    pub fn encrypt_windowed(
        &mut self,
        plaintext: [u8; 16],
        window: std::ops::Range<usize>,
        endpoints: &[usize],
    ) -> CaptureRecord {
        self.encrypt_internal(plaintext, Some(window), Some(endpoints))
    }

    /// Runs a batch of encryptions back to back with windowed capture —
    /// the amortized path a batched shard round-trip uses.
    ///
    /// The fabric's PDN, drift, and RNG streams advance exactly as they
    /// would over the same plaintexts fed one at a time, so the records
    /// are bit-identical to `n` consecutive [`Self::encrypt_windowed`]
    /// calls; what batching buys is one framing/dispatch round-trip per
    /// batch instead of per trace.
    pub fn encrypt_windowed_batch(
        &mut self,
        plaintexts: &[[u8; 16]],
        window: std::ops::Range<usize>,
        endpoints: &[usize],
    ) -> Vec<CaptureRecord> {
        plaintexts
            .iter()
            .map(|&pt| self.encrypt_internal(pt, Some(window.clone()), Some(endpoints)))
            .collect()
    }

    fn encrypt_internal(
        &mut self,
        plaintext: [u8; 16],
        window: Option<std::ops::Range<usize>>,
        endpoints: Option<&[usize]>,
    ) -> CaptureRecord {
        let (ciphertext, power) = if self.config.masked_aes {
            self.aes
                .encrypt_with_power_masked(plaintext, &self.config.leakage, &mut self.rng)
        } else {
            self.aes
                .encrypt_with_power(plaintext, &self.config.leakage, &mut self.rng)
        };
        // Clock-jitter defense: a random extra lead-in shifts where the
        // leaky cycles land relative to the attacker's fixed capture
        // window, trace by trace. Zero when not deployed.
        let jitter_cycles = match &mut self.defense {
            Some(d) => d.draw_jitter_cycles() as usize,
            None => 0,
        };
        let lead_in = self.lead_in_cycles + jitter_cycles;
        let total_cycles = lead_in + power.len() + Self::LEAD_OUT_CYCLES;
        let mut benign = Vec::new();
        let mut tdc = Vec::new();
        let mut sample_idx = 0usize;
        // Per-round XOR fault masks accumulated as the aggressor pushes
        // capture cycles past their derated timing (empty when no cycle
        // violates — the common case even with an aggressor mounted).
        let mut fault_masks: Vec<(usize, [u8; 16])> = Vec::new();
        for c in 0..total_cycles {
            let aes_i = if c >= lead_in && c - lead_in < power.len() {
                power[c - lead_in]
            } else {
                self.config.leakage.idle_a
            };
            let mut cycle_victim_vmin = f64::INFINITY;
            for t in 0..Self::TICKS_PER_AES_CYCLE {
                let (v, victim_v) = self.step_pdn(aes_i);
                cycle_victim_vmin = cycle_victim_vmin.min(victim_v);
                let tick = c * Self::TICKS_PER_AES_CYCLE + t;
                if tick % 2 == 1 {
                    let in_window = window.as_ref().is_none_or(|w| w.contains(&sample_idx));
                    if in_window {
                        benign.push(match endpoints {
                            Some(e) => self.sensor.sample_endpoints(v, e),
                            None => self.sensor.sample(v),
                        });
                        tdc.push(self.tdc.sample(v));
                    }
                    sample_idx += 1;
                }
            }
            if self.aggressor.is_some() && c >= lead_in {
                self.evaluate_fault_cycle(
                    c - lead_in,
                    cycle_victim_vmin,
                    &plaintext,
                    &mut fault_masks,
                );
            }
        }
        let ciphertext = if fault_masks.is_empty() {
            ciphertext
        } else {
            if let Some(agg) = &mut self.aggressor {
                agg.telemetry.faulted_encryptions += 1;
            }
            slm_aes::soft::encrypt_with_state_faults(&self.config.aes_key, &plaintext, &fault_masks)
        };
        if let Some(agg) = &mut self.aggressor {
            agg.telemetry.encryptions += 1;
        }
        CaptureRecord {
            ciphertext,
            benign,
            tdc,
        }
    }

    /// Checks one AES datapath cycle (`cycle` = 0 is the block load)
    /// against the voltage-derated timing criterion and folds any
    /// violation into the per-round fault masks.
    ///
    /// Cycle `1 + 4·(r−1) + col` computes column `col` of round `r`
    /// ([`Aes32Rtl`]'s schedule), so a violation there flips bits of
    /// state bytes `4·col .. 4·col+4` in the round-`r` register — the
    /// mask [`slm_aes::soft::encrypt_with_state_faults`] consumes. The
    /// load cycle is skipped (no combinational depth to speak of), and
    /// the final round's cone is shallow enough
    /// ([`crate::aggressor::VictimCone::column_fault_mask`]) that
    /// realistic droops leave it alone: induced faults land in rounds
    /// 1–9, where last-round DFA wants them.
    fn evaluate_fault_cycle(
        &mut self,
        cycle: usize,
        victim_vmin: f64,
        plaintext: &[u8; 16],
        fault_masks: &mut Vec<(usize, [u8; 16])>,
    ) {
        let Some(agg) = &mut self.aggressor else {
            return;
        };
        agg.telemetry.min_victim_v = agg.telemetry.min_victim_v.min(victim_vmin);
        if !(1..=4 * slm_aes::soft::ROUNDS).contains(&cycle) {
            return;
        }
        let round = (cycle - 1) / 4 + 1;
        let col = (cycle - 1) % 4;
        // Data-derived rank rotation: which carry-chain endpoints are
        // near-critical depends on the operands flowing through the
        // column, so marginal droops don't pin the same byte of every
        // column on every encryption. Deterministic (a pure function of
        // the plaintext), so replays and shards stay bit-exact.
        let rotation = usize::from(plaintext[cycle % 16] & 0x3);
        let mask4 =
            agg.cone
                .column_fault_mask(victim_vmin, round == slm_aes::soft::ROUNDS, rotation);
        if mask4 == [0u8; 4] {
            return;
        }
        agg.telemetry.fault_cycles += 1;
        agg.telemetry.flipped_bits += mask4.iter().map(|b| u64::from(b.count_ones())).sum::<u64>();
        let entry = match fault_masks.iter_mut().find(|(r, _)| *r == round) {
            Some((_, m)) => m,
            None => {
                fault_masks.push((round, [0u8; 16]));
                &mut fault_masks.last_mut().expect("just pushed").1
            }
        };
        for b in 0..4 {
            entry[4 * col + b] ^= mask4[b];
        }
    }

    /// Free-runs the fabric for `samples` measure edges with the given
    /// RO schedule and AES activity — the preliminary experiments of
    /// Figs. 5–8 and 14–16.
    pub fn run_activity(
        &mut self,
        schedule: Option<&RoSchedule>,
        aes: AesActivity,
        samples: usize,
    ) -> ActivityTrace {
        let mut out = ActivityTrace {
            benign: Vec::with_capacity(samples),
            tdc: Vec::with_capacity(samples),
            voltage: Vec::with_capacity(samples),
            ro_enabled: Vec::with_capacity(samples),
        };
        let mut aes_power: Vec<f64> = Vec::new();
        let mut aes_cycle = 0usize;
        let mut tick = 0u64;
        while out.benign.len() < samples {
            // Advance AES state on cycle boundaries.
            let aes_i = match aes {
                AesActivity::Idle => self.config.leakage.idle_a,
                AesActivity::Continuous => {
                    if tick % Self::TICKS_PER_AES_CYCLE as u64 == 0 {
                        if aes_cycle >= aes_power.len() {
                            let mut pt = [0u8; 16];
                            self.rng.fill_bytes(&mut pt);
                            let leakage = self.config.leakage;
                            let (_, p) = if self.config.masked_aes {
                                self.aes
                                    .encrypt_with_power_masked(pt, &leakage, &mut self.rng)
                            } else {
                                self.aes.encrypt_with_power(pt, &leakage, &mut self.rng)
                            };
                            aes_power = p;
                            aes_cycle = 0;
                        }
                        aes_cycle += 1;
                    }
                    aes_power
                        .get(aes_cycle.saturating_sub(1))
                        .copied()
                        .unwrap_or(self.config.leakage.idle_a)
                }
            };
            if let Some(s) = schedule {
                self.ro.set_enabled_fraction(s.fraction_at(tick));
            }
            let (v, _) = self.step_pdn(aes_i);
            if tick % 2 == 1 {
                out.benign.push(self.sensor.sample(v));
                out.tdc.push(self.tdc.sample(v));
                out.voltage.push(v);
                out.ro_enabled.push(self.ro.enabled());
            }
            tick += 1;
        }
        out
    }

    /// Generates a random plaintext from the fabric's seed stream.
    pub fn random_plaintext(&mut self) -> [u8; 16] {
        let mut pt = [0u8; 16];
        self.rng.fill_bytes(&mut pt);
        pt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_aes::soft;
    use slm_defense::{ClockJitterConfig, DetectorConfig, FenceSpec, LdoConfig};

    fn small_config() -> FabricConfig {
        FabricConfig {
            benign: BenignCircuit::DualC6288,
            ..FabricConfig::default()
        }
    }

    #[test]
    fn ciphertext_is_correct() {
        let config = small_config();
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let pt = [0x11; 16];
        let rec = fabric.encrypt_and_capture(pt);
        assert_eq!(rec.ciphertext, soft::encrypt(&config.aes_key, &pt));
    }

    #[test]
    fn capture_counts_line_up() {
        let mut fabric = MultiTenantFabric::new(&small_config()).unwrap();
        let rec = fabric.encrypt_and_capture([0; 16]);
        assert_eq!(rec.benign.len(), fabric.samples_per_encryption());
        assert_eq!(rec.tdc.len(), rec.benign.len());
        // 2 + 41 + 2 cycles × 3 ticks / 2 = 67 samples
        assert_eq!(rec.benign.len(), 67);
        assert_eq!(rec.benign[0].len, 64);
    }

    #[test]
    fn windowed_capture_restricts() {
        let mut fabric = MultiTenantFabric::new(&small_config()).unwrap();
        let window = fabric.last_round_window();
        let width = window.len();
        let rec = fabric.encrypt_windowed([0; 16], window, &[3, 7, 28]);
        assert_eq!(rec.benign.len(), width);
        assert_eq!(rec.benign[0].len, 3);
    }

    #[test]
    fn last_round_window_covers_final_cycles() {
        let fabric = MultiTenantFabric::new(&small_config()).unwrap();
        let w = fabric.last_round_window();
        // final round = cycles 37..41 of 41, with 2 lead-in cycles:
        // ticks 117..129 → samples 58..65
        assert_eq!(w, 58..65);
        assert!(w.end <= fabric.samples_per_encryption());
    }

    #[test]
    fn ro_schedule_shape() {
        let s = RoSchedule::paper_4mhz();
        assert_eq!(s.fraction_at(0), 0.0);
        assert_eq!(s.fraction_at(79), 0.0); // lead-in
        assert!(s.fraction_at(100) > 0.0 && s.fraction_at(100) < 1.0);
        assert_eq!(s.fraction_at(80 + 60), 1.0); // hold phase
        assert_eq!(s.fraction_at(80 + 74), 0.0); // off phase
                                                 // periodicity
        assert_eq!(s.fraction_at(100), s.fraction_at(100 + 75));
    }

    #[test]
    fn activity_run_sees_ro_droop() {
        let mut fabric = MultiTenantFabric::new(&small_config()).unwrap();
        let schedule = RoSchedule::paper_4mhz();
        let trace = fabric.run_activity(Some(&schedule), AesActivity::Idle, 120);
        assert_eq!(trace.voltage.len(), 120);
        let quiet_v = trace.voltage[..30].iter().sum::<f64>() / 30.0;
        let vmin = trace.voltage.iter().copied().fold(f64::MAX, f64::min);
        assert!(
            quiet_v - vmin > 0.010,
            "RO burst should droop ≥ 10 mV: quiet {quiet_v}, min {vmin}"
        );
        // TDC must dip during the droop.
        let tdc_min = *trace.tdc.iter().min().unwrap();
        let tdc_start = trace.tdc[..30].iter().copied().min().unwrap();
        assert!(tdc_min < tdc_start.saturating_sub(3));
    }

    #[test]
    fn continuous_aes_produces_fluctuation() {
        let mut fabric = MultiTenantFabric::new(&small_config()).unwrap();
        let trace = fabric.run_activity(None, AesActivity::Continuous, 300);
        let mean = trace.voltage.iter().sum::<f64>() / trace.voltage.len() as f64;
        let var = trace
            .voltage
            .iter()
            .map(|v| (v - mean).powi(2))
            .sum::<f64>()
            / trace.voltage.len() as f64;
        assert!(var.sqrt() > 1e-5, "AES activity must modulate the rail");
    }

    #[test]
    fn alu_fabric_has_193_endpoints() {
        let fabric = MultiTenantFabric::new(&FabricConfig::default()).unwrap();
        assert_eq!(fabric.endpoints(), 193);
    }

    #[test]
    fn cached_prototype_build_is_bit_identical_to_uncached() {
        let config = small_config();
        // A fresh, cache-bypassing build vs. the cached path.
        let proto = FabricPrototype::build(&config).unwrap();
        let mut uncached = MultiTenantFabric::from_prototype(&proto, &config);
        let mut cached = MultiTenantFabric::new(&config).unwrap();
        for i in 0..3 {
            let pt = [i as u8; 16];
            assert_eq!(
                uncached.encrypt_and_capture(pt),
                cached.encrypt_and_capture(pt)
            );
        }
        assert_eq!(proto.endpoints(), config.benign.endpoints());
    }

    #[test]
    fn prototype_cache_hits_across_shard_reseeds() {
        let config = small_config();
        // for_shard only touches noise seeds, so every shard must share
        // the lane-0 prototype (same Arc, not merely equal contents).
        let p0 = FabricPrototype::cached(&config).unwrap();
        let p1 = FabricPrototype::cached(&config.for_shard(3)).unwrap();
        assert!(Arc::ptr_eq(&p0, &p1));
    }

    #[test]
    fn batch_capture_matches_sequential_singles() {
        let config = small_config();
        let mut batched = MultiTenantFabric::new(&config).unwrap();
        let mut serial = MultiTenantFabric::new(&config).unwrap();
        let window = batched.last_round_window();
        let endpoints = [1usize, 9, 30];
        let pts: Vec<[u8; 16]> = (0..5).map(|i| [i as u8 * 17; 16]).collect();
        let batch = batched.encrypt_windowed_batch(&pts, window.clone(), &endpoints);
        let singles: Vec<CaptureRecord> = pts
            .iter()
            .map(|&pt| serial.encrypt_windowed(pt, window.clone(), &endpoints))
            .collect();
        assert_eq!(batch, singles);
    }

    #[test]
    fn deterministic_capture() {
        let config = small_config();
        let mut f1 = MultiTenantFabric::new(&config).unwrap();
        let mut f2 = MultiTenantFabric::new(&config).unwrap();
        let r1 = f1.encrypt_and_capture([5; 16]);
        let r2 = f2.encrypt_and_capture([5; 16]);
        assert_eq!(r1, r2);
    }

    fn defended_config(defense: DefenseConfig) -> FabricConfig {
        FabricConfig {
            defense: Some(defense),
            stimulus_alternation: 0.3,
            ..small_config()
        }
    }

    #[test]
    fn monitor_only_defense_does_not_perturb_captures() {
        // A detector-only defense is electrically inert: the defender's
        // sensor draws from its own noise streams, so the attacker-side
        // capture must be bit-identical to the undefended fabric.
        let undefended = small_config();
        let defended = FabricConfig {
            defense: Some(DefenseConfig::monitor_only(99)),
            ..small_config()
        };
        let mut f1 = MultiTenantFabric::new(&undefended).unwrap();
        let mut f2 = MultiTenantFabric::new(&defended).unwrap();
        assert_eq!(
            f1.encrypt_and_capture([9; 16]),
            f2.encrypt_and_capture([9; 16])
        );
    }

    #[test]
    fn defended_capture_is_deterministic() {
        let defense = DefenseConfig {
            fence: Some(FenceSpec::prng(0.8)),
            clock_jitter: Some(ClockJitterConfig { max_cycles: 6 }),
            ..Default::default()
        };
        let config = defended_config(defense);
        let mut f1 = MultiTenantFabric::new(&config).unwrap();
        let mut f2 = MultiTenantFabric::new(&config).unwrap();
        for i in 0..4 {
            let pt = [i as u8; 16];
            assert_eq!(f1.encrypt_and_capture(pt), f2.encrypt_and_capture(pt));
        }
        assert_eq!(f1.defense_telemetry(), f2.defense_telemetry());
    }

    #[test]
    fn prng_fence_perturbs_victim_capture() {
        let defense = DefenseConfig {
            fence: Some(FenceSpec::prng(1.0)),
            ..Default::default()
        };
        let defended = defended_config(defense);
        let undefended = FabricConfig {
            defense: None,
            ..defended.clone()
        };
        let mut f1 = MultiTenantFabric::new(&undefended).unwrap();
        let mut f2 = MultiTenantFabric::new(&defended).unwrap();
        let r1 = f1.encrypt_and_capture([7; 16]);
        let r2 = f2.encrypt_and_capture([7; 16]);
        assert_eq!(r1.ciphertext, r2.ciphertext, "fence must not corrupt data");
        assert_ne!(r1.tdc, r2.tdc, "fence must perturb the sensed rail");
        let telemetry = f2.defense_telemetry().unwrap();
        assert!(telemetry.injected_max_a > 0.5);
        assert!(telemetry.injected_mean_a() > 0.1);
    }

    #[test]
    fn clock_jitter_lengthens_captures_and_varies_alignment() {
        let defense = DefenseConfig {
            clock_jitter: Some(ClockJitterConfig { max_cycles: 8 }),
            ..Default::default()
        };
        let config = defended_config(defense);
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let baseline = fabric.samples_per_encryption();
        let lens: Vec<usize> = (0..12)
            .map(|i| fabric.encrypt_and_capture([i as u8; 16]).benign.len())
            .collect();
        assert!(lens.iter().all(|&l| l >= baseline));
        assert!(
            lens.iter().any(|&l| l != lens[0]),
            "jitter should vary capture length: {lens:?}"
        );
        assert!(fabric.defense_telemetry().unwrap().jitter_cycles > 0);
    }

    #[test]
    fn ldo_attenuates_cross_region_coupling() {
        // With strong regulation the attacker-visible trace barely
        // responds to the victim's AES activity: compare the capture
        // variance across two different plaintexts' last-round windows.
        let defense = DefenseConfig {
            ldo: Some(LdoConfig { residual: 0.0 }),
            ..Default::default()
        };
        let defended = defended_config(defense);
        let mut fabric = MultiTenantFabric::new(&defended).unwrap();
        let w = fabric.last_round_window();
        let a = fabric.encrypt_windowed([0x00; 16], w.clone(), &[5]);
        let b = fabric.encrypt_windowed([0xff; 16], w, &[5]);
        // Perfect isolation: the attacker region never sees the AES
        // droop, so both windows read the same (up to sensor noise,
        // which stays within a tap or two).
        let max_delta = a
            .tdc
            .iter()
            .zip(&b.tdc)
            .map(|(&x, &y)| (i64::from(x) - i64::from(y)).unsigned_abs())
            .max()
            .unwrap();
        assert!(
            max_delta <= 2,
            "isolated regions still coupled: Δ={max_delta}"
        );
    }

    #[test]
    fn zero_peak_aggressor_is_bit_exact_with_none() {
        // An aggressor drawing 0 A must leave every sample untouched:
        // the fault path only rewrites ciphertexts when a mask actually
        // accumulates, and 0 A of injected current never droops the
        // rail past the cone threshold.
        let baseline = small_config();
        let zeroed = FabricConfig {
            aggressor: Some(AggressorSpec::stealthy(0.0)),
            ..small_config()
        };
        let mut a = MultiTenantFabric::new(&baseline).unwrap();
        let mut b = MultiTenantFabric::new(&zeroed).unwrap();
        for _ in 0..20 {
            let pt = a.random_plaintext();
            assert_eq!(pt, b.random_plaintext());
            let ra = a.encrypt_and_capture(pt);
            let rb = b.encrypt_and_capture(pt);
            assert_eq!(ra.ciphertext, rb.ciphertext);
            assert_eq!(ra.benign, rb.benign);
            assert_eq!(ra.tdc, rb.tdc);
        }
        let t = b.fault_telemetry().unwrap();
        assert_eq!(t.faulted_encryptions, 0);
        assert_eq!(t.fault_cycles, 0);
    }

    #[test]
    fn aggressor_faults_are_deterministic_and_round9_shaped() {
        // Calibrated point: stealthy bursts at 3.0 A push the victim
        // rail ~75 mV down at the droop peak, past the 0.953 V cone
        // threshold, for a few cycles per burst.
        let config = FabricConfig {
            aggressor: Some(AggressorSpec::stealthy(3.0)),
            ..small_config()
        };
        let mut a = MultiTenantFabric::new(&config).unwrap();
        let mut b = MultiTenantFabric::new(&config).unwrap();
        let mut faulted = 0usize;
        let mut clean_round9 = 0usize;
        for _ in 0..200 {
            let pt = a.random_plaintext();
            assert_eq!(pt, b.random_plaintext());
            let ra = a.encrypt_windowed(pt, 0..0, &[]);
            let rb = b.encrypt_windowed(pt, 0..0, &[]);
            // Same seed, same tick history ⇒ the same faults, bit for bit.
            assert_eq!(ra.ciphertext, rb.ciphertext);
            let gold = soft::encrypt(&config.aes_key, &pt);
            let ndiff = (0..16).filter(|&i| ra.ciphertext[i] != gold[i]).count();
            if ndiff > 0 {
                faulted += 1;
            }
            if (1..=4).contains(&ndiff) {
                clean_round9 += 1;
            }
        }
        assert_eq!(
            a.fault_telemetry().unwrap().faulted_encryptions,
            b.fault_telemetry().unwrap().faulted_encryptions,
        );
        let t = a.fault_telemetry().unwrap();
        assert_eq!(t.encryptions, 200);
        assert_eq!(t.faulted_encryptions as usize, faulted);
        assert!(t.fault_cycles >= t.faulted_encryptions);
        assert!(t.flipped_bits >= t.fault_cycles);
        assert!(t.min_victim_v < 0.953, "no droop: {}", t.min_victim_v);
        assert!(faulted >= 20, "too few faults: {faulted}/200");
        assert!(
            clean_round9 >= 3,
            "no clean single-column round-9 faults: {clean_round9}"
        );
    }

    #[test]
    fn ldo_suppresses_aggressor_faults() {
        // The aggressor droops the *attacker* rail; the victim only sees
        // it through cross-region coupling, which is exactly what the
        // LDO attenuates. A 0.25 residual turns a ~75 mV coupled droop
        // into ~19 mV — well inside the victim's timing margin.
        let attack = FabricConfig {
            aggressor: Some(AggressorSpec::stealthy(3.0)),
            ..small_config()
        };
        let defended = FabricConfig {
            defense: Some(DefenseConfig {
                ldo: Some(LdoConfig { residual: 0.25 }),
                ..Default::default()
            }),
            ..attack.clone()
        };
        let mut hot = MultiTenantFabric::new(&attack).unwrap();
        let mut cold = MultiTenantFabric::new(&defended).unwrap();
        for _ in 0..120 {
            let pt = hot.random_plaintext();
            hot.encrypt_windowed(pt, 0..0, &[]);
            cold.encrypt_windowed(pt, 0..0, &[]);
        }
        assert!(hot.fault_telemetry().unwrap().faulted_encryptions > 0);
        let t = cold.fault_telemetry().unwrap();
        assert_eq!(
            t.faulted_encryptions, 0,
            "LDO failed to suppress: vmin {}",
            t.min_victim_v
        );
        assert!(t.min_victim_v > hot.fault_telemetry().unwrap().min_victim_v);
    }

    #[test]
    fn faulted_ciphertext_matches_reference_fault_model() {
        // The fabric's faulted ciphertexts must be *explained* by the
        // reference model: re-encrypting with the accumulated masks on
        // the software AES reproduces them exactly. We can't read the
        // masks back out, but a fabric restarted from the same config
        // replays the identical sequence, so comparing faulted outputs
        // against the no-fault golden run pins the XOR-mask semantics:
        // any diff must decompose into ShiftRows-consistent positions.
        let config = FabricConfig {
            aggressor: Some(AggressorSpec::stealthy(3.0)),
            ..small_config()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let mut checked = 0usize;
        for _ in 0..300 {
            let pt = fabric.random_plaintext();
            let rec = fabric.encrypt_windowed(pt, 0..0, &[]);
            let gold = soft::encrypt(&config.aes_key, &pt);
            let diffs: Vec<usize> = (0..16).filter(|&i| rec.ciphertext[i] != gold[i]).collect();
            if !(1..=4).contains(&diffs.len()) {
                continue;
            }
            // A clean single-column round-9 fault: there must exist a
            // column c and per-row deltas reproducing the ciphertext via
            // the reference state-fault encryption.
            checked += 1;
            let sources: Vec<usize> = diffs
                .iter()
                .map(|&jd| (0..16).find(|&j| soft::shift_rows_dest(j) == jd).unwrap())
                .collect();
            // A small fault touches at most two adjacent round-9
            // columns (a violating run of ≤2 cycles).
            let cols: std::collections::BTreeSet<usize> = sources.iter().map(|&j| j / 4).collect();
            assert!(cols.len() <= 2, "small fault spans columns: {sources:?}");
            // Recover the per-byte state-9 deltas and replay them.
            let mut mask = [0u8; 16];
            let state9 = soft::encrypt_round_states(&config.aes_key, &pt)[9];
            let rk10 = soft::key_expansion(&config.aes_key)[soft::ROUNDS];
            for (&j, &jd) in sources.iter().zip(&diffs) {
                let faulty_s9 = soft::INV_SBOX[(rec.ciphertext[jd] ^ rk10[jd]) as usize];
                mask[j] = state9[j] ^ faulty_s9;
                assert_ne!(mask[j], 0);
            }
            let replay = soft::encrypt_with_state_faults(&config.aes_key, &pt, &[(9, mask)]);
            assert_eq!(replay, rec.ciphertext, "mask replay diverged");
        }
        assert!(checked >= 5, "too few clean faults to check: {checked}");
    }

    #[test]
    fn detector_flags_alternating_stimulus_not_benign_activity() {
        let defense = DefenseConfig {
            detector: DetectorConfig {
                window_ticks: 4098, // even, divisible by 6
                alarm_threshold: 0.05,
            },
            ..Default::default()
        };
        // Attacker running its sensing stimulus with a 30% reset/measure
        // current asymmetry.
        let attacker = defended_config(defense.clone());
        let mut fabric = MultiTenantFabric::new(&attacker).unwrap();
        fabric.run_activity(None, AesActivity::Continuous, 8200);
        let hot = fabric.defense_telemetry().unwrap();
        assert!(hot.windows >= 2);
        assert!(
            hot.alarm_windows > 0,
            "alternating stimulus must alarm: max score {}",
            hot.max_score
        );

        // Same fabric, balanced (benign) activity: AES runs, the benign
        // circuit switches, but nothing alternates at the tick rate.
        let benign = FabricConfig {
            stimulus_alternation: 0.0,
            ..defended_config(defense)
        };
        let mut fabric = MultiTenantFabric::new(&benign).unwrap();
        fabric.run_activity(None, AesActivity::Continuous, 8200);
        let quiet = fabric.defense_telemetry().unwrap();
        assert!(quiet.windows >= 2);
        assert_eq!(
            quiet.alarm_windows, 0,
            "benign activity false-alarmed: max score {}",
            quiet.max_score
        );
    }
}
