//! The complete Fig. 2 dataflow: workstation ↔ UART ↔ FPGA.
//!
//! [`RemoteSession`] runs the fabric behind the framed UART transport
//! exactly as the paper's setup does: the host sends a plaintext frame;
//! the device encrypts while the sensors sample, buffers the capture in
//! BRAM, and returns a frame with the ciphertext and the recorded
//! trace. The host-side accessor decodes it back into a
//! [`CaptureRecord`]. Attacks driven through this path exercise every
//! transport component (framing, CRCs, sequence numbers, BRAM
//! capacity) and account for wire time.
//!
//! [`CampaignDriver`] wraps a session in the resilient capture loop a
//! real rig needs on a noisy wire: bounded retries with exponential
//! backoff (charged to simulated wire time), per-trace validation
//! against the reference AES model, and quarantine of records that
//! arrive intact but wrong.

use crate::bram::BramCapture;
use crate::error::{FabricError, TransportError};
use crate::scenario::{CaptureRecord, FabricConfig, MultiTenantFabric};
use crate::uart::{LinkStats, UartFrame, UartLink};
use crate::wire_faults::{WireFaultPlan, WireFaultStats};
use slm_obs::{MetricsFrame, Obs};
use slm_par::{ShardPlan, ShardSpec};
use slm_sensors::SensorSample;
use std::ops::Range;

/// A workstation-to-FPGA attack session over the UART.
#[derive(Debug, Clone)]
pub struct RemoteSession {
    fabric: MultiTenantFabric,
    link: UartLink,
    bram: BramCapture,
    window: Range<usize>,
    endpoints: Vec<usize>,
    next_seq: u8,
}

impl RemoteSession {
    /// Builds the fabric and transport. `endpoints` selects which benign
    /// endpoints the device firmware packs into each trace frame (empty
    /// = TDC only), and the capture window defaults to the final-round
    /// window.
    ///
    /// # Errors
    ///
    /// Propagates fabric construction failures.
    pub fn new(config: &FabricConfig, endpoints: Vec<usize>) -> Result<Self, FabricError> {
        Self::build(config, endpoints, None)
    }

    /// Like [`RemoteSession::new`], but mounts a seeded [`WireFaultPlan`]
    /// on the wire so every frame in both directions runs through the
    /// fault model.
    ///
    /// # Errors
    ///
    /// Propagates fabric construction failures.
    pub fn with_fault_plan(
        config: &FabricConfig,
        endpoints: Vec<usize>,
        plan: WireFaultPlan,
    ) -> Result<Self, FabricError> {
        Self::build(config, endpoints, Some(plan))
    }

    fn build(
        config: &FabricConfig,
        endpoints: Vec<usize>,
        plan: Option<WireFaultPlan>,
    ) -> Result<Self, FabricError> {
        let fabric = MultiTenantFabric::new(config)?;
        let window = fabric.last_round_window();
        let link = match plan {
            Some(plan) => UartLink::with_faults(921_600, plan),
            None => UartLink::new(921_600),
        };
        Ok(RemoteSession {
            fabric,
            link,
            bram: BramCapture::single_bram36(),
            window,
            endpoints,
            next_seq: 0,
        })
    }

    /// The underlying fabric (ground-truth access for evaluation).
    pub fn fabric(&self) -> &MultiTenantFabric {
        &self.fabric
    }

    /// Seconds of UART wire time consumed so far — the real-world cost
    /// of the campaign, including retry backoff.
    pub fn wire_time_s(&self) -> f64 {
        self.link.elapsed_s()
    }

    /// Resynchronization accounting for the link scanner.
    pub fn link_stats(&self) -> &LinkStats {
        self.link.stats()
    }

    /// Fault accounting, when a fault plan is mounted.
    pub fn fault_stats(&self) -> Option<&WireFaultStats> {
        self.link.fault_stats()
    }

    /// Discards any bytes in flight (between retry attempts).
    pub fn flush_wire(&mut self) {
        self.link.flush();
    }

    /// Charges idle seconds (e.g. retry backoff) to the wire clock.
    pub fn charge_idle(&mut self, seconds: f64) {
        self.link.charge_idle(seconds);
    }

    /// One full host-side round trip: send a plaintext, receive the
    /// ciphertext and windowed capture. Single attempt — no retries;
    /// wrap the session in a [`CampaignDriver`] for the resilient loop.
    ///
    /// # Errors
    ///
    /// Typed [`TransportError`]s via [`FabricError::Transport`]:
    /// [`TransportError::NoResponse`] when the response is lost or
    /// corrupt, [`TransportError::SeqMismatch`] when only stale
    /// responses arrive, [`TransportError::MalformedResponse`] when a
    /// CRC-clean frame fails to parse.
    pub fn host_encrypt(&mut self, plaintext: [u8; 16]) -> Result<CaptureRecord, FabricError> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.link
            .host_send(&UartFrame::new(seq, plaintext.to_vec()));
        self.device_service();

        // Drain responses; stale sequence numbers (from an earlier
        // attempt whose reply limped in late) are discarded.
        let mut stale: Option<u8> = None;
        while let Some(frame) = self.link.host_recv() {
            if frame.seq == seq {
                return Self::decode_response(&frame, self.endpoints.len());
            }
            stale = Some(frame.seq);
        }
        Err(match stale {
            Some(got) => TransportError::SeqMismatch { expected: seq, got }.into(),
            None => TransportError::NoResponse.into(),
        })
    }

    /// Largest batch [`RemoteSession::host_encrypt_batch`] accepts:
    /// bounded by the batch-count byte (255) and by the batched
    /// response frame fitting in [`UartFrame::MAX_PAYLOAD`].
    pub fn max_batch(&self) -> usize {
        let words_per_sample = 1 + self.endpoints.len().div_ceil(64);
        let per_record = 18 + self.window.len() * words_per_sample * 8;
        let by_response = (UartFrame::MAX_PAYLOAD - 1) / per_record;
        let by_request = (UartFrame::MAX_PAYLOAD - 1) / 16;
        by_response.min(by_request).clamp(1, 255)
    }

    /// Batched round trip: send `n` plaintexts in one request frame
    /// (`n u8 | pt × n` — unambiguous against the 16-byte single-trace
    /// request, since `1 + 16n` is never 16) and receive all `n`
    /// captures in one response frame. The device encrypts the batch in
    /// request order, so the records are bit-identical to `n`
    /// single-trace round trips — what changes is the wire cost: one
    /// header/CRC per direction instead of `n`.
    ///
    /// # Panics
    ///
    /// Panics when the batch is empty or exceeds
    /// [`RemoteSession::max_batch`] (a host-side programming error, not
    /// a wire condition).
    ///
    /// # Errors
    ///
    /// The same typed [`TransportError`]s as
    /// [`RemoteSession::host_encrypt`]; a fault anywhere in either
    /// frame loses the whole batch, which the caller retries as a unit.
    pub fn host_encrypt_batch(
        &mut self,
        plaintexts: &[[u8; 16]],
    ) -> Result<Vec<CaptureRecord>, FabricError> {
        assert!(
            !plaintexts.is_empty() && plaintexts.len() <= self.max_batch(),
            "batch size {} outside 1..={}",
            plaintexts.len(),
            self.max_batch()
        );
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let mut payload = Vec::with_capacity(1 + 16 * plaintexts.len());
        payload.push(plaintexts.len() as u8);
        for pt in plaintexts {
            payload.extend_from_slice(pt);
        }
        self.link.host_send(&UartFrame::new(seq, payload));
        self.device_service();

        let mut stale: Option<u8> = None;
        while let Some(frame) = self.link.host_recv() {
            if frame.seq == seq {
                return Self::decode_batch_response(&frame, plaintexts.len(), self.endpoints.len());
            }
            stale = Some(frame.seq);
        }
        Err(match stale {
            Some(got) => TransportError::SeqMismatch { expected: seq, got }.into(),
            None => TransportError::NoResponse.into(),
        })
    }

    /// The device firmware loop body: read every complete request
    /// frame, run the encryption(s) with capture, stage each result
    /// through BRAM, send the response frame echoing the request's
    /// sequence number. A 16-byte payload is a single-trace request; a
    /// `1 + 16n` byte payload is a batch of `n`. Requests that arrive
    /// corrupt never parse as frames, and frames with a bad geometry
    /// are dropped — the device stays up and the host's retry covers
    /// the loss.
    fn device_service(&mut self) {
        while let Some(frame) = self.link.fpga_recv() {
            let p = &frame.payload;
            if p.len() == 16 {
                let mut pt = [0u8; 16];
                pt.copy_from_slice(p);
                if let Some(body) = self.encode_record(pt) {
                    self.link.fpga_send(&UartFrame::new(frame.seq, body));
                }
            } else if p.len() >= 17 && p.len() == 1 + 16 * usize::from(p[0]) {
                let n = usize::from(p[0]);
                // Batched response: n u8 | per-record bodies, encrypted
                // in request order so the captures are bit-identical to
                // n single requests.
                let mut body = Vec::with_capacity(1 + n * 18);
                body.push(n as u8);
                let mut ok = true;
                for i in 0..n {
                    let mut pt = [0u8; 16];
                    pt.copy_from_slice(&frame.payload[1 + 16 * i..17 + 16 * i]);
                    match self.encode_record(pt) {
                        Some(rec) => body.extend_from_slice(&rec),
                        None => {
                            // BRAM overflow mid-batch: drop the whole
                            // request; the host retries the batch.
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    self.link.fpga_send(&UartFrame::new(frame.seq, body));
                }
            }
        }
    }

    /// One capture, staged through BRAM and serialized as a response
    /// body: `ct | n_samples u8 | words_per_sample u8 | words LE`.
    /// `None` when the capture overflows the BRAM (the request is
    /// dropped and the staging buffer left clean for the retry).
    fn encode_record(&mut self, pt: [u8; 16]) -> Option<Vec<u8>> {
        let rec = self
            .fabric
            .encrypt_windowed(pt, self.window.clone(), &self.endpoints);

        // Stage through BRAM exactly as the on-chip design would: the
        // capture is serialized to 64-bit words, written, then drained
        // for transmission.
        let mut words: Vec<u64> = Vec::new();
        for (s, &tdc) in rec.benign.iter().zip(&rec.tdc) {
            words.push(u64::from(tdc));
            words.extend_from_slice(&s.bits);
        }
        if self.bram.push(&words).is_err() {
            let _ = self.bram.drain();
            return None;
        }
        let staged = self.bram.drain();

        let mut body = Vec::with_capacity(16 + 2 + staged.len() * 8);
        body.extend_from_slice(&rec.ciphertext);
        body.push(rec.benign.len() as u8);
        let words_per_sample = 1 + self.endpoints.len().div_ceil(64);
        body.push(words_per_sample as u8);
        for w in staged {
            body.extend_from_slice(&w.to_le_bytes());
        }
        Some(body)
    }

    fn decode_response(
        frame: &UartFrame,
        endpoint_count: usize,
    ) -> Result<CaptureRecord, FabricError> {
        let p = &frame.payload;
        let (rec, consumed) = Self::decode_record_at(p, 0, endpoint_count)?;
        if consumed != p.len() {
            return Err(TransportError::MalformedResponse {
                detail: format!("response length {} != expected {consumed}", p.len()),
            }
            .into());
        }
        Ok(rec)
    }

    fn decode_batch_response(
        frame: &UartFrame,
        expected_n: usize,
        endpoint_count: usize,
    ) -> Result<Vec<CaptureRecord>, FabricError> {
        let malformed =
            |detail: String| -> FabricError { TransportError::MalformedResponse { detail }.into() };
        let p = &frame.payload;
        if p.is_empty() {
            return Err(malformed("empty batch response".into()));
        }
        let n = usize::from(p[0]);
        if n != expected_n {
            return Err(malformed(format!(
                "batch response carries {n} records, expected {expected_n}"
            )));
        }
        let mut records = Vec::with_capacity(n);
        let mut off = 1;
        for _ in 0..n {
            let (rec, next) = Self::decode_record_at(p, off, endpoint_count)?;
            records.push(rec);
            off = next;
        }
        if off != p.len() {
            return Err(malformed(format!(
                "batch response has {} trailing bytes",
                p.len() - off
            )));
        }
        Ok(records)
    }

    /// Decodes one `ct | n_samples | words_per_sample | words` record
    /// body starting at `off`; returns the record and the offset just
    /// past it.
    fn decode_record_at(
        p: &[u8],
        off: usize,
        endpoint_count: usize,
    ) -> Result<(CaptureRecord, usize), FabricError> {
        let malformed =
            |detail: String| -> FabricError { TransportError::MalformedResponse { detail }.into() };
        if p.len() < off + 18 {
            return Err(malformed(format!(
                "short response frame ({} bytes)",
                p.len()
            )));
        }
        let mut ciphertext = [0u8; 16];
        ciphertext.copy_from_slice(&p[off..off + 16]);
        let n_samples = usize::from(p[off + 16]);
        let words_per_sample = usize::from(p[off + 17]);
        if words_per_sample == 0 {
            return Err(malformed("zero words per sample".into()));
        }
        let need = n_samples * words_per_sample * 8;
        if p.len() < off + 18 + need {
            return Err(malformed(format!(
                "response length {} != expected {}",
                p.len(),
                off + 18 + need
            )));
        }
        let mut benign = Vec::with_capacity(n_samples);
        let mut tdc = Vec::with_capacity(n_samples);
        let mut pos = off + 18;
        for _ in 0..n_samples {
            let w = u64::from_le_bytes(p[pos..pos + 8].try_into().expect("8 bytes"));
            tdc.push(w as u32);
            pos += 8;
            let mut bits = Vec::with_capacity(words_per_sample - 1);
            for _ in 0..words_per_sample - 1 {
                bits.push(u64::from_le_bytes(
                    p[pos..pos + 8].try_into().expect("8 bytes"),
                ));
                pos += 8;
            }
            benign.push(SensorSample {
                bits,
                len: endpoint_count,
            });
        }
        Ok((
            CaptureRecord {
                ciphertext,
                benign,
                tdc,
            },
            pos,
        ))
    }
}

/// Retry budget and backoff schedule for a capture campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per trace, including the first (must be ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_factor: f64,
    /// Backoff ceiling, seconds.
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_s: 0.005,
            backoff_factor: 2.0,
            max_backoff_s: 0.1,
        }
    }
}

/// A trace that arrived structurally intact but failed validation, held
/// out of the analysis set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedTrace {
    /// Zero-based index of the capture request in the campaign.
    pub trace_index: u64,
    /// Which attempt (1-based) produced the bad record.
    pub attempt: u32,
    /// Why it was quarantined.
    pub error: TransportError,
}

/// Campaign-level accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignStats {
    /// Capture requests issued by the caller.
    pub requested: u64,
    /// Validated records delivered.
    pub delivered: u64,
    /// Retry attempts beyond the first, summed over all requests.
    pub retries: u64,
    /// Records quarantined by validation.
    pub quarantined: u64,
    /// Total backoff charged to the wire clock, seconds.
    pub backoff_s: f64,
}

impl CampaignStats {
    /// Folds another campaign's accounting into this one. Every field
    /// is additive, so the stats of a sharded campaign are the merge of
    /// its per-shard stats — in any order. Counters saturate instead of
    /// wrapping: a pathological retry storm must never wrap a u64 into
    /// a plausible-looking small number.
    pub fn absorb(&mut self, other: &CampaignStats) {
        self.requested = self.requested.saturating_add(other.requested);
        self.delivered = self.delivered.saturating_add(other.delivered);
        self.retries = self.retries.saturating_add(other.retries);
        self.quarantined = self.quarantined.saturating_add(other.quarantined);
        self.backoff_s += other.backoff_s;
    }

    /// The merged accounting of a set of campaigns (shards).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a CampaignStats>) -> CampaignStats {
        let mut total = CampaignStats::default();
        for part in parts {
            total.absorb(part);
        }
        total
    }
}

/// Drives capture requests through a [`RemoteSession`] resiliently.
///
/// Every delivered record is validated before the caller sees it: the
/// ciphertext is cross-checked against the reference software AES (the
/// evaluation rig knows the victim key — this is the standard
/// ground-truth check during characterization) and the trace geometry
/// must be self-consistent. A record that fails validation is
/// quarantined — recorded with its fault, never analyzed — and the
/// request is retried. Transport faults retry with exponential backoff;
/// the backoff is charged to the simulated wire clock so campaign cost
/// stays honest.
#[derive(Debug, Clone)]
pub struct CampaignDriver {
    session: RemoteSession,
    policy: RetryPolicy,
    key: [u8; 16],
    quarantine: Vec<QuarantinedTrace>,
    stats: CampaignStats,
    obs: Obs,
}

impl CampaignDriver {
    /// Wraps a session with the default [`RetryPolicy`].
    pub fn new(session: RemoteSession) -> Self {
        Self::with_policy(session, RetryPolicy::default())
    }

    /// Wraps a session with an explicit retry policy.
    pub fn with_policy(session: RemoteSession, policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        let key = session.fabric().config().aes_key;
        CampaignDriver {
            session,
            policy,
            key,
            quarantine: Vec::new(),
            stats: CampaignStats::default(),
            obs: Obs::null(),
        }
    }

    /// Mounts a metrics recorder; the default is the null recorder.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Captures one validated trace, retrying transport faults and
    /// quarantining invalid records along the way.
    ///
    /// # Errors
    ///
    /// [`TransportError::RetriesExhausted`] (wrapped in
    /// [`FabricError::Transport`]) when the retry budget runs out;
    /// non-transport fabric errors propagate immediately.
    pub fn capture(&mut self, plaintext: [u8; 16]) -> Result<CaptureRecord, FabricError> {
        let _span = self.obs.span("campaign.capture");
        let wire_base = self.obs.enabled().then(|| self.wire_counters());
        let result = self.capture_inner(plaintext);
        if let Some(base) = wire_base {
            // Link/fault/PDN accounting lives in cumulative session
            // counters; exporting the per-capture delta keeps the
            // metrics additive under shard merge.
            let now = self.wire_counters();
            self.obs
                .add("uart.resyncs", now.resyncs.saturating_sub(base.resyncs));
            self.obs.add(
                "uart.bytes_discarded",
                now.bytes_discarded.saturating_sub(base.bytes_discarded),
            );
            self.obs
                .add("faults.injected", now.faults.saturating_sub(base.faults));
            let t = self.session.fabric().pdn_telemetry();
            self.obs.gauge("pdn.v_min", t.v_min);
            self.obs.gauge("pdn.v_max", t.v_max);
            self.obs
                .gauge("pdn.settled_streak", t.settled_streak as f64);
        }
        result
    }

    /// Captures a batch of validated traces in one amortized round
    /// trip, with the same retry/validate/quarantine semantics as
    /// [`CampaignDriver::capture`]: a transport fault retries the whole
    /// batch (one wire unit), a record that arrives intact but fails
    /// validation is quarantined and recaptured individually through
    /// the single-trace retry loop. On success the returned records are
    /// in plaintext order, one per request.
    ///
    /// # Errors
    ///
    /// [`TransportError::RetriesExhausted`] when the batch (or an
    /// individual recapture) runs out of attempts; non-transport errors
    /// propagate immediately.
    pub fn capture_batch(
        &mut self,
        plaintexts: &[[u8; 16]],
    ) -> Result<Vec<CaptureRecord>, FabricError> {
        if plaintexts.is_empty() {
            return Ok(Vec::new());
        }
        let _span = self.obs.span("campaign.capture_batch");
        let wire_base = self.obs.enabled().then(|| self.wire_counters());
        let result = self.capture_batch_inner(plaintexts);
        if let Some(base) = wire_base {
            let now = self.wire_counters();
            self.obs
                .add("uart.resyncs", now.resyncs.saturating_sub(base.resyncs));
            self.obs.add(
                "uart.bytes_discarded",
                now.bytes_discarded.saturating_sub(base.bytes_discarded),
            );
            self.obs
                .add("faults.injected", now.faults.saturating_sub(base.faults));
            let t = self.session.fabric().pdn_telemetry();
            self.obs.gauge("pdn.v_min", t.v_min);
            self.obs.gauge("pdn.v_max", t.v_max);
            self.obs
                .gauge("pdn.settled_streak", t.settled_streak as f64);
        }
        result
    }

    fn capture_batch_inner(
        &mut self,
        plaintexts: &[[u8; 16]],
    ) -> Result<Vec<CaptureRecord>, FabricError> {
        let base_index = self.stats.requested;
        self.stats.requested += plaintexts.len() as u64;
        self.obs.add("campaign.requested", plaintexts.len() as u64);
        let mut backoff = self.policy.base_backoff_s;
        let mut last: TransportError = TransportError::NoResponse;
        for attempt in 1..=self.policy.max_attempts {
            if attempt > 1 {
                self.session.flush_wire();
                self.session.charge_idle(backoff);
                self.stats.backoff_s += backoff;
                self.obs.incr("campaign.retries");
                self.obs.observe("campaign.backoff_s", backoff);
                backoff = (backoff * self.policy.backoff_factor).min(self.policy.max_backoff_s);
                self.stats.retries += 1;
            }
            let attempt_result = {
                let _attempt_span = self.obs.span("fabric.host_encrypt");
                self.obs.incr("fabric.requests");
                self.session.host_encrypt_batch(plaintexts)
            };
            match attempt_result {
                Ok(recs) => {
                    let mut out = Vec::with_capacity(recs.len());
                    for (i, rec) in recs.into_iter().enumerate() {
                        match self.validate(&rec, &plaintexts[i]) {
                            Ok(()) => {
                                self.stats.delivered += 1;
                                self.obs.incr("campaign.delivered");
                                out.push(rec);
                            }
                            Err(error) => {
                                self.quarantine.push(QuarantinedTrace {
                                    trace_index: base_index + i as u64,
                                    attempt,
                                    error: error.clone(),
                                });
                                self.stats.quarantined += 1;
                                self.obs.incr("campaign.quarantined");
                                // Only the bad record is recaptured —
                                // its batch-mates are already valid.
                                out.push(
                                    self.capture_retry_loop(plaintexts[i], base_index + i as u64)?,
                                );
                            }
                        }
                    }
                    return Ok(out);
                }
                Err(FabricError::Transport(t)) if t.retryable() => last = t,
                Err(fatal) => return Err(fatal),
            }
        }
        Err(TransportError::RetriesExhausted {
            attempts: self.policy.max_attempts,
            last: Box::new(last),
        }
        .into())
    }

    /// The retry/validate/quarantine loop behind [`CampaignDriver::capture`].
    fn capture_inner(&mut self, plaintext: [u8; 16]) -> Result<CaptureRecord, FabricError> {
        let trace_index = self.stats.requested;
        self.stats.requested += 1;
        self.obs.incr("campaign.requested");
        self.capture_retry_loop(plaintext, trace_index)
    }

    /// The per-trace retry loop shared by the single and batch-fallback
    /// paths; `trace_index` is the campaign-global index recorded on
    /// quarantined records. The caller has already counted the request.
    fn capture_retry_loop(
        &mut self,
        plaintext: [u8; 16],
        trace_index: u64,
    ) -> Result<CaptureRecord, FabricError> {
        let mut backoff = self.policy.base_backoff_s;
        let mut last: TransportError = TransportError::NoResponse;
        for attempt in 1..=self.policy.max_attempts {
            if attempt > 1 {
                // Let the line settle: discard half-delivered bytes and
                // charge the wait to the wire clock.
                self.session.flush_wire();
                self.session.charge_idle(backoff);
                self.stats.backoff_s += backoff;
                self.obs.incr("campaign.retries");
                self.obs.observe("campaign.backoff_s", backoff);
                backoff = (backoff * self.policy.backoff_factor).min(self.policy.max_backoff_s);
                self.stats.retries += 1;
            }
            let attempt_result = {
                let _attempt_span = self.obs.span("fabric.host_encrypt");
                self.obs.incr("fabric.requests");
                self.session.host_encrypt(plaintext)
            };
            match attempt_result {
                Ok(rec) => match self.validate(&rec, &plaintext) {
                    Ok(()) => {
                        self.stats.delivered += 1;
                        self.obs.incr("campaign.delivered");
                        return Ok(rec);
                    }
                    Err(error) => {
                        self.quarantine.push(QuarantinedTrace {
                            trace_index,
                            attempt,
                            error: error.clone(),
                        });
                        self.stats.quarantined += 1;
                        self.obs.incr("campaign.quarantined");
                        last = error;
                    }
                },
                Err(FabricError::Transport(t)) if t.retryable() => last = t,
                Err(fatal) => return Err(fatal),
            }
        }
        Err(TransportError::RetriesExhausted {
            attempts: self.policy.max_attempts,
            last: Box::new(last),
        }
        .into())
    }

    /// Cumulative link-layer counters used for per-capture deltas.
    fn wire_counters(&self) -> WireCounters {
        let link = self.session.link_stats();
        WireCounters {
            resyncs: link.resyncs,
            bytes_discarded: link.bytes_discarded,
            faults: self
                .session
                .fault_stats()
                .map_or(0, WireFaultStats::total_faults),
        }
    }

    /// Ground-truth validation of a decoded record: ciphertext must
    /// match the reference AES, and the trace geometry must be
    /// self-consistent. Catches silent desync — a structurally valid
    /// frame carrying the wrong encryption.
    fn validate(&self, rec: &CaptureRecord, pt: &[u8; 16]) -> Result<(), TransportError> {
        let expected = slm_aes::soft::encrypt(&self.key, pt);
        if rec.ciphertext != expected {
            return Err(TransportError::ValidationFailed {
                detail: "ciphertext disagrees with reference AES".into(),
            });
        }
        if rec.tdc.is_empty() || rec.tdc.len() != rec.benign.len() {
            return Err(TransportError::ValidationFailed {
                detail: format!(
                    "inconsistent geometry: {} tdc vs {} benign samples",
                    rec.tdc.len(),
                    rec.benign.len()
                ),
            });
        }
        Ok(())
    }

    /// The wrapped session.
    pub fn session(&self) -> &RemoteSession {
        &self.session
    }

    /// Largest batch [`CampaignDriver::capture_batch`] accepts (see
    /// [`RemoteSession::max_batch`]).
    pub fn max_batch(&self) -> usize {
        self.session.max_batch()
    }

    /// Campaign accounting so far.
    pub fn stats(&self) -> &CampaignStats {
        &self.stats
    }

    /// Records held out of the analysis set, with their faults.
    pub fn quarantine(&self) -> &[QuarantinedTrace] {
        &self.quarantine
    }

    /// Unwraps the session (e.g. for ground-truth evaluation).
    pub fn into_session(self) -> RemoteSession {
        self.session
    }
}

/// Snapshot of the session's cumulative wire counters, taken before
/// and after a capture to compute per-capture deltas.
#[derive(Debug, Clone, Copy)]
struct WireCounters {
    resyncs: u64,
    bytes_discarded: u64,
    faults: u64,
}

/// Everything produced by one shard of a [`ShardedCampaign`].
#[derive(Debug, Clone)]
pub struct ShardOutcome<R> {
    /// The shard this outcome belongs to.
    pub spec: ShardSpec,
    /// Whatever the per-shard body returned (typically an accumulator
    /// partial to merge).
    pub result: R,
    /// This shard's campaign accounting.
    pub stats: CampaignStats,
    /// Records this shard's driver quarantined.
    pub quarantined: Vec<QuarantinedTrace>,
    /// UART wire time this shard consumed, seconds. Shards run on
    /// independent (simulated) wires, so the campaign's wall-clock wire
    /// cost is the *maximum* over shards on enough workers, while the
    /// total rig cost is the sum.
    pub wire_time_s: f64,
    /// Everything this shard's private recorder accumulated (empty when
    /// the campaign runs with the null recorder). The campaign folds
    /// these in shard order, so merged metrics are worker-count
    /// invariant.
    pub metrics: MetricsFrame,
}

/// A capture campaign split into deterministic shards and executed on a
/// worker pool.
///
/// Each shard gets its own fabric (re-seeded with
/// [`FabricConfig::for_shard`]), its own UART session (with the fault
/// plan forked per shard when one is mounted) and its own
/// [`CampaignDriver`], so retry, validation, quarantine and checkpoint
/// semantics are exactly the serial driver's — per shard. The shard
/// layout and every seed derive only from the plan, never from the
/// worker count: running on one worker or sixteen produces the same
/// outcomes in the same shard order, which is what lets the analysis
/// layer merge partials bit-identically.
#[derive(Debug, Clone)]
pub struct ShardedCampaign {
    /// Base fabric setup; shard `i` runs `config.for_shard(i)`.
    pub config: FabricConfig,
    /// Benign endpoints packed into each trace frame (empty = TDC only).
    pub endpoints: Vec<usize>,
    /// Optional wire-fault profile, forked per shard.
    pub fault_plan: Option<WireFaultPlan>,
    /// Retry budget applied by every shard's driver.
    pub policy: RetryPolicy,
    /// The shard layout.
    pub plan: ShardPlan,
    /// Worker threads (0 = machine parallelism).
    pub workers: usize,
    /// Metrics recorder. Each shard records into a private
    /// [`Obs::fork`] of it; the frames are folded back in shard order
    /// after the run.
    pub obs: Obs,
}

impl ShardedCampaign {
    /// A campaign over `plan` with a clean wire, the default retry
    /// policy and machine parallelism.
    pub fn new(config: FabricConfig, endpoints: Vec<usize>, plan: ShardPlan) -> Self {
        ShardedCampaign {
            config,
            endpoints,
            fault_plan: None,
            policy: RetryPolicy::default(),
            plan,
            workers: 0,
            obs: Obs::null(),
        }
    }

    /// Mounts a wire-fault profile; shard `i` runs `plan.fork(i)`.
    pub fn with_fault_plan(mut self, plan: WireFaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Mounts a metrics recorder; the default is the null recorder.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Overrides the per-shard retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the worker count (0 = machine parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Runs `body` once per shard on the worker pool and returns the
    /// outcomes in shard order.
    ///
    /// The body receives the shard spec and a driver wired to that
    /// shard's private fabric; it typically captures `spec.traces`
    /// traces and returns an accumulator partial.
    ///
    /// # Errors
    ///
    /// The first error in shard order, if any shard's session fails to
    /// build or its body returns one. Other shards may have completed;
    /// their results are discarded.
    pub fn run<R, F>(&self, body: F) -> Result<Vec<ShardOutcome<R>>, FabricError>
    where
        R: Send,
        F: Fn(&ShardSpec, &mut CampaignDriver) -> Result<R, FabricError> + Sync,
    {
        let shards = self.plan.shards();
        let outcomes: Vec<Result<ShardOutcome<R>, FabricError>> =
            slm_par::par_map(self.workers, &shards, |spec| {
                let config = self.config.for_shard(spec.index);
                let session = match &self.fault_plan {
                    Some(plan) => RemoteSession::with_fault_plan(
                        &config,
                        self.endpoints.clone(),
                        plan.fork(spec.index),
                    )?,
                    None => RemoteSession::new(&config, self.endpoints.clone())?,
                };
                // Every shard records into a private recorder, so the
                // hot path never contends across workers and the frame
                // it produces is a pure function of the shard.
                let shard_obs = self.obs.fork();
                let mut driver =
                    CampaignDriver::with_policy(session, self.policy).with_obs(shard_obs.clone());
                let result = body(spec, &mut driver)?;
                Ok(ShardOutcome {
                    spec: *spec,
                    result,
                    wire_time_s: driver.session().wire_time_s(),
                    stats: *driver.stats(),
                    quarantined: std::mem::take(&mut driver.quarantine),
                    metrics: shard_obs.snapshot(),
                })
            });
        let outcomes: Vec<ShardOutcome<R>> = outcomes.into_iter().collect::<Result<_, _>>()?;
        if self.obs.enabled() {
            // Fold shard telemetry in shard index order (the
            // determinism contract), then derive the shard-imbalance
            // view: how unevenly simulated wire time spread over the
            // plan.
            for o in &outcomes {
                self.obs.absorb(&o.metrics);
                self.obs.observe("campaign.shard_wire_s", o.wire_time_s);
            }
            let sum: f64 = outcomes.iter().map(|o| o.wire_time_s).sum();
            let max = outcomes.iter().map(|o| o.wire_time_s).fold(0.0, f64::max);
            if sum > 0.0 {
                let mean = sum / outcomes.len() as f64;
                self.obs.gauge("campaign.shard_imbalance", max / mean);
            }
        }
        Ok(outcomes)
    }

    /// The merged accounting of a run's outcomes.
    pub fn merged_stats<R>(outcomes: &[ShardOutcome<R>]) -> CampaignStats {
        CampaignStats::merged(outcomes.iter().map(|o| &o.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::BenignCircuit;
    use slm_aes::soft;

    fn config() -> FabricConfig {
        FabricConfig {
            benign: BenignCircuit::DualC6288,
            ..FabricConfig::default()
        }
    }

    fn session(endpoints: Vec<usize>) -> RemoteSession {
        RemoteSession::new(&config(), endpoints).unwrap()
    }

    #[test]
    fn remote_capture_equals_local_capture() {
        let endpoints: Vec<usize> = (0..16).collect();
        let mut remote = session(endpoints.clone());
        let mut local = MultiTenantFabric::new(&config()).unwrap();
        let window = local.last_round_window();
        let pt = [0x3c; 16];
        let via_uart = remote.host_encrypt(pt).unwrap();
        let direct = local.encrypt_windowed(pt, window, &endpoints);
        assert_eq!(via_uart.ciphertext, direct.ciphertext);
        assert_eq!(via_uart.tdc, direct.tdc);
        assert_eq!(via_uart.benign.len(), direct.benign.len());
        for (a, b) in via_uart.benign.iter().zip(&direct.benign) {
            assert_eq!(a.bits, b.bits);
            assert_eq!(a.len, b.len);
        }
    }

    #[test]
    fn batched_remote_capture_matches_singles_bitwise() {
        let endpoints: Vec<usize> = (0..12).collect();
        let mut singles = session(endpoints.clone());
        let mut batched = session(endpoints);
        let pts: Vec<[u8; 16]> = (0..6u8).map(|i| [i.wrapping_mul(47); 16]).collect();
        let one_by_one: Vec<CaptureRecord> = pts
            .iter()
            .map(|&pt| singles.host_encrypt(pt).unwrap())
            .collect();
        let in_one_trip = batched.host_encrypt_batch(&pts).unwrap();
        assert_eq!(in_one_trip.len(), one_by_one.len());
        for (a, b) in in_one_trip.iter().zip(&one_by_one) {
            assert_eq!(a.ciphertext, b.ciphertext);
            assert_eq!(a.tdc, b.tdc);
            assert_eq!(a.benign.len(), b.benign.len());
            for (x, y) in a.benign.iter().zip(&b.benign) {
                assert_eq!(x.bits, y.bits);
                assert_eq!(x.len, y.len);
            }
        }
    }

    #[test]
    fn batched_capture_amortizes_wire_time() {
        let pts: Vec<[u8; 16]> = (0..8u8).map(|i| [i; 16]).collect();
        let mut singles = session((0..8).collect());
        for &pt in &pts {
            let _ = singles.host_encrypt(pt).unwrap();
        }
        let mut batched = session((0..8).collect());
        let _ = batched.host_encrypt_batch(&pts).unwrap();
        assert!(
            batched.wire_time_s() < singles.wire_time_s(),
            "batch {} s must beat {} s of singles",
            batched.wire_time_s(),
            singles.wire_time_s()
        );
        assert!(batched.max_batch() >= 8);
    }

    #[test]
    fn driver_capture_batch_matches_serial_driver() {
        let pts: Vec<[u8; 16]> = (0..10u8).map(|i| [i.wrapping_mul(13); 16]).collect();
        let mut serial = CampaignDriver::new(session(vec![]));
        let singles: Vec<CaptureRecord> =
            pts.iter().map(|&pt| serial.capture(pt).unwrap()).collect();
        let mut driver = CampaignDriver::new(session(vec![]));
        let batch = driver.capture_batch(&pts).unwrap();
        for (a, b) in batch.iter().zip(&singles) {
            assert_eq!(a.ciphertext, b.ciphertext);
            assert_eq!(a.tdc, b.tdc);
        }
        let stats = driver.stats();
        assert_eq!(stats.requested, 10);
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.quarantined, 0);
        assert!(driver.capture_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn capture_batch_retries_through_a_lossy_wire() {
        let plan = WireFaultPlan::new(99).with_stall(0.4);
        let remote = RemoteSession::with_fault_plan(&config(), vec![], plan).unwrap();
        let key = remote.fabric().config().aes_key;
        let mut driver = CampaignDriver::new(remote);
        let mut delivered = 0usize;
        for chunk in 0..4u8 {
            let pts: Vec<[u8; 16]> = (0..5u8).map(|i| [chunk * 5 + i; 16]).collect();
            match driver.capture_batch(&pts) {
                Ok(recs) => {
                    for (rec, pt) in recs.iter().zip(&pts) {
                        assert_eq!(rec.ciphertext, soft::encrypt(&key, pt));
                    }
                    delivered += recs.len();
                }
                Err(e) => assert!(
                    matches!(
                        e,
                        FabricError::Transport(TransportError::RetriesExhausted { .. })
                    ),
                    "unexpected error {e}"
                ),
            }
        }
        assert!(delivered >= 10, "only {delivered}/20 delivered");
        let stats = driver.stats();
        assert!(stats.retries > 0, "a 40% stall rate must force retries");
        assert_eq!(stats.delivered as usize, delivered);
    }

    #[test]
    fn ciphertexts_are_correct_over_the_wire() {
        let mut remote = session(vec![]);
        let key = remote.fabric().config().aes_key;
        for i in 0..4u8 {
            let pt = [i.wrapping_mul(31); 16];
            let rec = remote.host_encrypt(pt).unwrap();
            assert_eq!(rec.ciphertext, soft::encrypt(&key, &pt));
        }
    }

    #[test]
    fn wire_time_accumulates() {
        let mut remote = session((0..8).collect());
        assert_eq!(remote.wire_time_s(), 0.0);
        let _ = remote.host_encrypt([1; 16]).unwrap();
        let t1 = remote.wire_time_s();
        assert!(t1 > 0.0);
        let _ = remote.host_encrypt([2; 16]).unwrap();
        assert!(
            remote.wire_time_s() > 1.9 * t1,
            "each trace costs wire time"
        );
    }

    #[test]
    fn stalled_response_is_a_typed_no_response() {
        let plan = WireFaultPlan::new(11).with_stall(1.0);
        let mut remote = RemoteSession::with_fault_plan(&config(), vec![], plan).unwrap();
        let err = remote.host_encrypt([5; 16]).unwrap_err();
        assert!(matches!(
            err,
            FabricError::Transport(TransportError::NoResponse)
        ));
        assert!(err.retryable());
    }

    #[test]
    fn driver_retries_through_a_lossy_wire() {
        // Drop ~40% of frames: every trace still gets through within the
        // default 4-attempt budget with overwhelming probability.
        let plan = WireFaultPlan::new(99).with_stall(0.4);
        let remote = RemoteSession::with_fault_plan(&config(), vec![], plan).unwrap();
        let key = remote.fabric().config().aes_key;
        let mut driver = CampaignDriver::new(remote);
        let mut delivered = 0;
        for i in 0..20u8 {
            let pt = [i; 16];
            match driver.capture(pt) {
                Ok(rec) => {
                    assert_eq!(rec.ciphertext, soft::encrypt(&key, &pt));
                    delivered += 1;
                }
                Err(e) => assert!(
                    matches!(
                        e,
                        FabricError::Transport(TransportError::RetriesExhausted { .. })
                    ),
                    "unexpected error {e}"
                ),
            }
        }
        assert!(delivered >= 18, "only {delivered}/20 delivered");
        let stats = driver.stats();
        assert!(stats.retries > 0, "a 40% stall rate must force retries");
        assert!(stats.backoff_s > 0.0);
        // Backoff shows up in wire time.
        assert!(driver.session().wire_time_s() > stats.backoff_s);
    }

    #[test]
    fn driver_on_clean_wire_never_retries() {
        let mut driver = CampaignDriver::new(session(vec![]));
        for i in 0..5u8 {
            driver.capture([i; 16]).unwrap();
        }
        let stats = driver.stats();
        assert_eq!(stats.requested, 5);
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.quarantined, 0);
        assert!(driver.quarantine().is_empty());
    }

    #[test]
    fn sharded_campaign_is_worker_count_invariant() {
        // The same plan must produce byte-identical outcomes whether
        // the shards run on one worker or several.
        let run = |workers: usize| {
            let campaign = ShardedCampaign::new(config(), (0..8).collect(), ShardPlan::new(10, 3))
                .with_workers(workers);
            campaign
                .run(|spec, driver| {
                    let mut pts = Vec::new();
                    let mut recs = Vec::new();
                    for _ in 0..spec.traces {
                        // Shard-deterministic plaintexts from the
                        // shard's own fabric stream would need fabric
                        // access; derive them from the shard spec
                        // instead so the body is a pure function of it.
                        let mut pt = [0u8; 16];
                        for (j, b) in pt.iter_mut().enumerate() {
                            *b = (spec.start as u8).wrapping_add(j as u8);
                        }
                        pts.push(pt);
                        recs.push(driver.capture(pt)?);
                    }
                    Ok(recs)
                })
                .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), 4, "10 traces in shards of 3");
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.result.len(), b.result.len());
            for (ra, rb) in a.result.iter().zip(&b.result) {
                assert_eq!(ra.ciphertext, rb.ciphertext);
                assert_eq!(ra.tdc, rb.tdc);
            }
        }
        let stats = ShardedCampaign::merged_stats(&serial);
        assert_eq!(stats.requested, 10);
        assert_eq!(stats.delivered, 10);
    }

    #[test]
    fn shards_are_independent_streams() {
        // Distinct shards of the same config must not replay each
        // other's noise: the same plaintext captured on shard 0 and
        // shard 1 sees different sensor samples.
        let base = config();
        let c0 = base.for_shard(0);
        let c1 = base.for_shard(1);
        assert_ne!(c0.seed, c1.seed);
        assert_ne!(c0.sensor.seed, c1.sensor.seed);
        assert_ne!(c0.tdc.seed, c1.tdc.seed);
        assert_ne!(c0.seed, base.seed, "shard 0 is a fresh stream too");
        let mut f0 = MultiTenantFabric::new(&c0).unwrap();
        let mut f1 = MultiTenantFabric::new(&c1).unwrap();
        let w0 = f0.last_round_window();
        let w1 = f1.last_round_window();
        let r0 = f0.encrypt_windowed([7; 16], w0, &[0, 1, 2]);
        let r1 = f1.encrypt_windowed([7; 16], w1, &[0, 1, 2]);
        assert_eq!(r0.ciphertext, r1.ciphertext, "same key, same plaintext");
        assert_ne!(r0.tdc, r1.tdc, "independent noise streams");
    }

    #[test]
    fn sharded_campaign_forks_fault_plans() {
        let plan = WireFaultPlan::new(5).with_stall(0.2);
        assert_ne!(plan.fork(0).seed, plan.fork(1).seed);
        assert_eq!(plan.fork(3), plan.fork(3));
        assert_eq!(plan.fork(1).stall, plan.stall, "rates are unchanged");
        // A lossy sharded campaign still delivers everything (within
        // the retry budget) and the per-shard stats stay reproducible.
        let run = |workers: usize| {
            ShardedCampaign::new(config(), vec![], ShardPlan::new(8, 2))
                .with_fault_plan(plan.clone())
                .with_workers(workers)
                .run(|spec, driver| {
                    (0..spec.traces)
                        .map(|i| driver.capture([spec.start as u8 + i as u8; 16]))
                        .collect::<Result<Vec<_>, _>>()
                })
                .unwrap()
        };
        let a = run(1);
        let b = run(3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats);
            assert_eq!(x.quarantined, y.quarantined);
        }
        let merged = ShardedCampaign::merged_stats(&a);
        assert_eq!(merged.delivered, 8);
    }

    #[test]
    fn campaign_stats_merge_is_additive() {
        let a = CampaignStats {
            requested: 10,
            delivered: 9,
            retries: 3,
            quarantined: 1,
            backoff_s: 0.25,
        };
        let b = CampaignStats {
            requested: 5,
            delivered: 5,
            retries: 0,
            quarantined: 0,
            backoff_s: 0.0,
        };
        let mut ab = a;
        ab.absorb(&b);
        assert_eq!(ab.requested, 15);
        assert_eq!(ab.delivered, 14);
        assert_eq!(ab.retries, 3);
        assert_eq!(CampaignStats::merged([&a, &b]), ab);
        let mut ba = b;
        ba.absorb(&a);
        assert_eq!(ba, ab, "merge order is irrelevant");
    }

    #[test]
    fn campaign_stats_absorb_saturates_instead_of_wrapping() {
        let mut total = CampaignStats {
            requested: u64::MAX - 1,
            delivered: u64::MAX,
            retries: u64::MAX - 2,
            quarantined: 3,
            backoff_s: 0.5,
        };
        let more = CampaignStats {
            requested: 10,
            delivered: 10,
            retries: 10,
            quarantined: u64::MAX,
            backoff_s: 0.25,
        };
        total.absorb(&more);
        assert_eq!(total.requested, u64::MAX);
        assert_eq!(total.delivered, u64::MAX);
        assert_eq!(total.retries, u64::MAX);
        assert_eq!(total.quarantined, u64::MAX);
        assert_eq!(total.backoff_s, 0.75);
    }

    #[test]
    fn driver_records_campaign_metrics() {
        let obs = Obs::memory();
        let mut driver = CampaignDriver::new(session((0..4).collect())).with_obs(obs.clone());
        for i in 0..5u8 {
            driver.capture([i; 16]).unwrap();
        }
        let frame = obs.snapshot();
        assert_eq!(frame.counter("campaign.requested"), 5);
        assert_eq!(frame.counter("campaign.delivered"), 5);
        assert_eq!(frame.counter("fabric.requests"), 5);
        assert_eq!(frame.counter("campaign.retries"), 0);
        assert_eq!(frame.spans["campaign.capture"].count, 5);
        assert_eq!(frame.spans["fabric.host_encrypt"].count, 5);
        let v_min = frame.gauges["pdn.v_min"];
        assert!(v_min.last < 1.0, "encryption load droops the rail");
        assert_eq!(v_min.count, 5);
    }

    #[test]
    fn sharded_campaign_metrics_are_worker_count_invariant() {
        // Retries, backoff, fault and PDN telemetry all flow through
        // per-shard recorders merged in shard order: the deterministic
        // view of the merged frame must not depend on the worker count.
        let plan = WireFaultPlan::new(5).with_stall(0.2);
        let run = |workers: usize| {
            let obs = Obs::memory();
            let outcomes = ShardedCampaign::new(config(), vec![], ShardPlan::new(8, 2))
                .with_fault_plan(plan.clone())
                .with_workers(workers)
                .with_obs(obs.clone())
                .run(|spec, driver| {
                    (0..spec.traces)
                        .map(|i| driver.capture([spec.start as u8 + i as u8; 16]))
                        .collect::<Result<Vec<_>, _>>()
                })
                .unwrap();
            (obs.snapshot(), outcomes)
        };
        let (serial_frame, serial) = run(1);
        let (wide_frame, wide) = run(4);
        assert_eq!(serial_frame.deterministic(), wide_frame.deterministic());
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.metrics.deterministic(), b.metrics.deterministic());
        }
        assert_eq!(serial_frame.counter("campaign.delivered"), 8);
        assert_eq!(
            serial_frame.counter("campaign.retries"),
            CampaignStats::merged(serial.iter().map(|o| &o.stats)).retries,
            "metric counters agree with the stats ledger"
        );
        assert!(
            serial_frame.gauges.contains_key("campaign.shard_imbalance"),
            "imbalance gauge recorded"
        );
        // A null-recorder campaign produces empty frames.
        let outcomes = ShardedCampaign::new(config(), vec![], ShardPlan::new(4, 2))
            .run(|spec, driver| driver.capture([spec.start as u8; 16]))
            .unwrap();
        assert!(outcomes.iter().all(|o| o.metrics.is_empty()));
    }

    #[test]
    fn retries_exhausted_is_fatal_and_typed() {
        // A wire that always stalls exhausts any budget.
        let plan = WireFaultPlan::new(1).with_stall(1.0);
        let remote = RemoteSession::with_fault_plan(&config(), vec![], plan).unwrap();
        let mut driver = CampaignDriver::with_policy(
            remote,
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        );
        let err = driver.capture([0; 16]).unwrap_err();
        match &err {
            FabricError::Transport(TransportError::RetriesExhausted { attempts, last }) => {
                assert_eq!(*attempts, 3);
                assert!(matches!(**last, TransportError::NoResponse));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
        assert!(!err.retryable());
        assert_eq!(driver.stats().retries, 2);
    }
}
