//! The complete Fig. 2 dataflow: workstation ↔ UART ↔ FPGA.
//!
//! [`RemoteSession`] runs the fabric behind the framed UART transport
//! exactly as the paper's setup does: the host sends a plaintext frame;
//! the device encrypts while the sensors sample, buffers the capture in
//! BRAM, and returns a frame with the ciphertext and the recorded
//! trace. The host-side accessor decodes it back into a
//! [`CaptureRecord`]. Attacks driven through this path exercise every
//! transport component (framing, checksums, BRAM capacity) and account
//! for wire time.

use crate::bram::BramCapture;
use crate::error::FabricError;
use crate::scenario::{CaptureRecord, FabricConfig, MultiTenantFabric};
use crate::uart::{UartFrame, UartLink};
use slm_sensors::SensorSample;
use std::ops::Range;

/// A workstation-to-FPGA attack session over the UART.
#[derive(Debug, Clone)]
pub struct RemoteSession {
    fabric: MultiTenantFabric,
    link: UartLink,
    bram: BramCapture,
    window: Range<usize>,
    endpoints: Vec<usize>,
}

impl RemoteSession {
    /// Builds the fabric and transport. `endpoints` selects which benign
    /// endpoints the device firmware packs into each trace frame (empty
    /// = TDC only), and the capture window defaults to the final-round
    /// window.
    ///
    /// # Errors
    ///
    /// Propagates fabric construction failures.
    pub fn new(config: &FabricConfig, endpoints: Vec<usize>) -> Result<Self, FabricError> {
        let fabric = MultiTenantFabric::new(config)?;
        let window = fabric.last_round_window();
        Ok(RemoteSession {
            fabric,
            link: UartLink::new(921_600),
            bram: BramCapture::single_bram36(),
            window,
            endpoints,
        })
    }

    /// The underlying fabric (ground-truth access for evaluation).
    pub fn fabric(&self) -> &MultiTenantFabric {
        &self.fabric
    }

    /// Seconds of UART wire time consumed so far — the real-world cost
    /// of the campaign.
    pub fn wire_time_s(&self) -> f64 {
        self.link.elapsed_s()
    }

    /// One full host-side round trip: send a plaintext, receive the
    /// ciphertext and windowed capture.
    ///
    /// # Errors
    ///
    /// Propagates transport and capture errors.
    pub fn host_encrypt(&mut self, plaintext: [u8; 16]) -> Result<CaptureRecord, FabricError> {
        self.link.host_send(&UartFrame::new(plaintext.to_vec()));
        self.device_service()?;
        let frame = self
            .link
            .host_recv()?
            .ok_or_else(|| FabricError::Transport("no response frame".into()))?;
        Self::decode_response(&frame, self.endpoints.len())
    }

    /// The device firmware loop body: read a plaintext frame, run the
    /// encryption with capture, stage the result through BRAM, send the
    /// response frame.
    fn device_service(&mut self) -> Result<(), FabricError> {
        let Some(frame) = self.link.fpga_recv()? else {
            return Err(FabricError::Transport("no request frame".into()));
        };
        if frame.payload.len() != 16 {
            return Err(FabricError::Transport(format!(
                "plaintext frame must be 16 bytes, got {}",
                frame.payload.len()
            )));
        }
        let mut pt = [0u8; 16];
        pt.copy_from_slice(&frame.payload);
        let rec = self
            .fabric
            .encrypt_windowed(pt, self.window.clone(), &self.endpoints);

        // Stage through BRAM exactly as the on-chip design would: the
        // capture is serialized to 64-bit words, written, then drained
        // for transmission.
        let mut words: Vec<u64> = Vec::new();
        for (s, &tdc) in rec.benign.iter().zip(&rec.tdc) {
            words.push(u64::from(tdc));
            words.extend_from_slice(&s.bits);
        }
        self.bram.push(&words)?;
        let staged = self.bram.drain();

        // Response payload: ct | n_samples u8 | words_per_sample u8 | staged words LE
        let mut payload = Vec::with_capacity(16 + 2 + staged.len() * 8);
        payload.extend_from_slice(&rec.ciphertext);
        payload.push(rec.benign.len() as u8);
        let words_per_sample = 1 + self.endpoints.len().div_ceil(64);
        payload.push(words_per_sample as u8);
        for w in staged {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        self.link.fpga_send(&UartFrame::new(payload));
        Ok(())
    }

    fn decode_response(
        frame: &UartFrame,
        endpoint_count: usize,
    ) -> Result<CaptureRecord, FabricError> {
        let p = &frame.payload;
        if p.len() < 18 {
            return Err(FabricError::Transport("short response frame".into()));
        }
        let mut ciphertext = [0u8; 16];
        ciphertext.copy_from_slice(&p[..16]);
        let n_samples = usize::from(p[16]);
        let words_per_sample = usize::from(p[17]);
        let expected = 18 + n_samples * words_per_sample * 8;
        if p.len() != expected {
            return Err(FabricError::Transport(format!(
                "response length {} != expected {expected}",
                p.len()
            )));
        }
        let mut benign = Vec::with_capacity(n_samples);
        let mut tdc = Vec::with_capacity(n_samples);
        let mut off = 18;
        for _ in 0..n_samples {
            let w = u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes"));
            tdc.push(w as u32);
            off += 8;
            let mut bits = Vec::with_capacity(words_per_sample - 1);
            for _ in 0..words_per_sample - 1 {
                bits.push(u64::from_le_bytes(
                    p[off..off + 8].try_into().expect("8 bytes"),
                ));
                off += 8;
            }
            benign.push(SensorSample {
                bits,
                len: endpoint_count,
            });
        }
        Ok(CaptureRecord {
            ciphertext,
            benign,
            tdc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::BenignCircuit;
    use slm_aes::soft;

    fn session(endpoints: Vec<usize>) -> RemoteSession {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            ..FabricConfig::default()
        };
        RemoteSession::new(&config, endpoints).unwrap()
    }

    #[test]
    fn remote_capture_equals_local_capture() {
        let endpoints: Vec<usize> = (0..16).collect();
        let mut remote = session(endpoints.clone());
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            ..FabricConfig::default()
        };
        let mut local = MultiTenantFabric::new(&config).unwrap();
        let window = local.last_round_window();
        let pt = [0x3c; 16];
        let via_uart = remote.host_encrypt(pt).unwrap();
        let direct = local.encrypt_windowed(pt, window, &endpoints);
        assert_eq!(via_uart.ciphertext, direct.ciphertext);
        assert_eq!(via_uart.tdc, direct.tdc);
        assert_eq!(via_uart.benign.len(), direct.benign.len());
        for (a, b) in via_uart.benign.iter().zip(&direct.benign) {
            assert_eq!(a.bits, b.bits);
            assert_eq!(a.len, b.len);
        }
    }

    #[test]
    fn ciphertexts_are_correct_over_the_wire() {
        let mut remote = session(vec![]);
        let key = remote.fabric().config().aes_key;
        for i in 0..4u8 {
            let pt = [i.wrapping_mul(31); 16];
            let rec = remote.host_encrypt(pt).unwrap();
            assert_eq!(rec.ciphertext, soft::encrypt(&key, &pt));
        }
    }

    #[test]
    fn wire_time_accumulates() {
        let mut remote = session((0..8).collect());
        assert_eq!(remote.wire_time_s(), 0.0);
        let _ = remote.host_encrypt([1; 16]).unwrap();
        let t1 = remote.wire_time_s();
        assert!(t1 > 0.0);
        let _ = remote.host_encrypt([2; 16]).unwrap();
        assert!(remote.wire_time_s() > 1.9 * t1, "each trace costs wire time");
    }
}
