//! The benign tenant circuits and their sensor stimuli.

use crate::error::FabricError;
use serde::{Deserialize, Serialize};
use slm_netlist::generators::{alu192, c6288, AluOp};
use slm_netlist::{words, Netlist};

/// Which benign circuit the attacker misuses as a sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenignCircuit {
    /// The paper's ALU with a 192-bit ripple-carry adder. 193 observable
    /// endpoints (192 result bits + carry out).
    Alu192,
    /// Two parallel ISCAS-85 C6288 16×16 multipliers; 64 observable
    /// endpoints.
    DualC6288,
}

/// A built benign circuit: its netlist plus the reset/measure stimulus
/// pair that sensitizes its long paths.
#[derive(Debug, Clone)]
pub struct BuiltCircuit {
    /// The circuit under (mis)use.
    pub netlist: Netlist,
    /// The "reset" input vector (applied on odd cycles).
    pub reset: Vec<bool>,
    /// The "measure" input vector (applied on even cycles).
    pub measure: Vec<bool>,
    /// Human-readable description of the stimulus.
    pub stimulus_note: &'static str,
}

impl BenignCircuit {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BenignCircuit::Alu192 => "alu192",
            BenignCircuit::DualC6288 => "dual_c6288",
        }
    }

    /// Number of observable path endpoints.
    pub fn endpoints(self) -> usize {
        match self {
            BenignCircuit::Alu192 => 193,
            BenignCircuit::DualC6288 => 64,
        }
    }

    /// Builds the netlist and stimulus.
    ///
    /// * ALU: the Section III example — `op = ADD`, reset `A = B = 0`,
    ///   measure `A = 2^192 − 1, B = 1`, so the carry ripples through
    ///   every stage and each sum bit transiently rises before settling
    ///   to 0 as the carry arrives.
    /// * C6288: an ATPG-found operand pair (see the inline comment) that
    ///   maximizes the number of product endpoints with transitions
    ///   inside the 300 MHz capture window.
    ///
    /// # Errors
    ///
    /// Propagates generator failures (not expected for these fixed
    /// configurations).
    pub fn build(self) -> Result<BuiltCircuit, FabricError> {
        match self {
            BenignCircuit::Alu192 => {
                let nl = alu192()?;
                let mut reset = words::limbs_to_bits(&[0, 0, 0], 192);
                reset.extend(words::limbs_to_bits(&[0, 0, 0], 192));
                reset.extend(AluOp::Add.opcode_bits());
                let mut measure = words::limbs_to_bits(&[u64::MAX, u64::MAX, u64::MAX], 192);
                measure.extend(words::limbs_to_bits(&[1, 0, 0], 192));
                measure.extend(AluOp::Add.opcode_bits());
                Ok(BuiltCircuit {
                    netlist: nl,
                    reset,
                    measure,
                    stimulus_note: "op=ADD, A=2^192-1, B=1 (full carry ripple)",
                })
            }
            BenignCircuit::DualC6288 => {
                let one = c6288()?;
                let nl = Netlist::disjoint_union("dual_c6288", &[&one, &one])?;
                // Stimulus found by the slm-atpg searcher (window
                // objective 2.7–4.1 ns at the 5.2 ns-calibrated delays):
                // 19 of 32 product endpoints transition inside the
                // 300 MHz capture window, median settle ≈ 3.2 ns.
                // Naive choices like a=b=0xFFFF settle in 2.5 ns — array
                // multipliers short-circuit on uniform operands — and
                // make the circuit useless as a sensor; this is the
                // paper's Section VI point that ATPG-style pattern
                // search is how an attacker sensitizes a real circuit.
                let mut inst_reset = words::to_bits(0x0a03, 16);
                inst_reset.extend(words::to_bits(0x0423, 16));
                let mut inst_measure = words::to_bits(0x9d77, 16);
                inst_measure.extend(words::to_bits(0xf7d6, 16));
                let mut reset = inst_reset.clone();
                reset.extend(&inst_reset);
                let mut measure = inst_measure.clone();
                measure.extend(&inst_measure);
                Ok(BuiltCircuit {
                    netlist: nl,
                    reset,
                    measure,
                    stimulus_note:
                        "ATPG-found pair: 0x0A03*0x0423 -> 0x9D77*0xF7D6 (19/32 endpoints near-critical)",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_build_shape_and_function() {
        let built = BenignCircuit::Alu192.build().unwrap();
        assert_eq!(built.netlist.outputs().len(), 193);
        assert_eq!(BenignCircuit::Alu192.endpoints(), 193);
        let out = built.netlist.eval(&built.measure).unwrap();
        // (2^192-1) + 1 = 2^192: all sum bits 0, carry out 1
        assert!(out[..192].iter().all(|&b| !b));
        assert!(out[192]);
        let out0 = built.netlist.eval(&built.reset).unwrap();
        assert!(out0.iter().all(|&b| !b));
    }

    #[test]
    fn c6288_build_shape_and_function() {
        let built = BenignCircuit::DualC6288.build().unwrap();
        assert_eq!(built.netlist.outputs().len(), 64);
        assert_eq!(BenignCircuit::DualC6288.endpoints(), 64);
        let out = built.netlist.eval(&built.measure).unwrap();
        // the ATPG-found measure operands still compute a correct product
        let p0 = words::from_bits(&out[..32]);
        let p1 = words::from_bits(&out[32..]);
        assert_eq!(p0, 0x9d77 * 0xf7d6);
        assert_eq!(p1, 0x9d77 * 0xf7d6);
        let out_r = built.netlist.eval(&built.reset).unwrap();
        assert_eq!(words::from_bits(&out_r[..32]), 0x0a03 * 0x0423);
    }

    #[test]
    fn names() {
        assert_eq!(BenignCircuit::Alu192.name(), "alu192");
        assert_eq!(BenignCircuit::DualC6288.name(), "dual_c6288");
    }
}
