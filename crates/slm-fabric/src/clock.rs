//! MMCM clock synthesis model.

use crate::error::FabricError;
use serde::{Deserialize, Serialize};

/// A synthesized clock: the requested and actually-achievable frequency
/// plus the divider settings that realize it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockSpec {
    /// Requested frequency, MHz.
    pub requested_mhz: f64,
    /// Achieved frequency, MHz.
    pub actual_mhz: f64,
    /// Feedback multiplier `M`.
    pub mult: u32,
    /// Input divider `D`.
    pub div_in: u32,
    /// Output divider `O`.
    pub div_out: u32,
}

impl ClockSpec {
    /// Period of the achieved clock in femtoseconds.
    pub fn period_fs(&self) -> u64 {
        (1e9 / self.actual_mhz).round() as u64
    }
}

/// A Multi-Mode Clock Manager fed by the board reference clock.
///
/// The paper's Zynq XC7Z020 has a 125 MHz external reference and four
/// MMCMs. 7-series MMCMs synthesize `f_out = f_ref · M / (D · O)` with
/// the VCO (`f_ref · M / D`) constrained to 600–1200 MHz; this model
/// searches the integer divider space for the closest achievable
/// frequency. The attack depends only on the coarse fact that a tenant
/// can ask for any of these frequencies — including a 300 MHz clock for
/// logic synthesized at 50 MHz — without anything structural changing in
/// its netlist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mmcm {
    /// Reference input frequency, MHz.
    pub f_ref_mhz: f64,
    /// Minimum VCO frequency, MHz.
    pub vco_min_mhz: f64,
    /// Maximum VCO frequency, MHz.
    pub vco_max_mhz: f64,
}

impl Default for Mmcm {
    fn default() -> Self {
        Mmcm {
            f_ref_mhz: 125.0,
            vco_min_mhz: 600.0,
            vco_max_mhz: 1200.0,
        }
    }
}

impl Mmcm {
    /// Synthesizes the closest achievable clock to `freq_mhz`.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnachievableClock`] when no divider combination
    /// lands within 0.5 % of the request.
    pub fn synthesize(&self, freq_mhz: f64) -> Result<ClockSpec, FabricError> {
        let mut best: Option<ClockSpec> = None;
        for d in 1..=8u32 {
            for m in 2..=64u32 {
                let vco = self.f_ref_mhz * f64::from(m) / f64::from(d);
                if vco < self.vco_min_mhz || vco > self.vco_max_mhz {
                    continue;
                }
                for o in 1..=128u32 {
                    let f = vco / f64::from(o);
                    let err = (f - freq_mhz).abs();
                    if best.is_none_or(|b| err < (b.actual_mhz - freq_mhz).abs()) {
                        best = Some(ClockSpec {
                            requested_mhz: freq_mhz,
                            actual_mhz: f,
                            mult: m,
                            div_in: d,
                            div_out: o,
                        });
                    }
                }
            }
        }
        match best {
            Some(spec) if (spec.actual_mhz - freq_mhz).abs() <= freq_mhz * 0.005 => Ok(spec),
            _ => Err(FabricError::UnachievableClock {
                requested_mhz: freq_mhz,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frequencies_achievable() {
        let mmcm = Mmcm::default();
        for f in [50.0, 100.0, 150.0, 300.0] {
            let spec = mmcm.synthesize(f).unwrap();
            assert!(
                (spec.actual_mhz - f).abs() < 1e-6,
                "{f} MHz → {}",
                spec.actual_mhz
            );
            // VCO constraint holds
            let vco = 125.0 * f64::from(spec.mult) / f64::from(spec.div_in);
            assert!((600.0..=1200.0).contains(&vco));
        }
    }

    #[test]
    fn period_fs() {
        let spec = Mmcm::default().synthesize(300.0).unwrap();
        assert_eq!(spec.period_fs(), 3_333_333);
    }

    #[test]
    fn unreasonable_frequency_rejected() {
        let mmcm = Mmcm::default();
        assert!(mmcm.synthesize(2500.0).is_err());
        assert!(mmcm.synthesize(0.3).is_err());
    }

    #[test]
    fn odd_frequency_close_enough() {
        // 7-series can hit 33.333 MHz via 600/18.
        let spec = Mmcm::default().synthesize(33.333).unwrap();
        assert!((spec.actual_mhz - 33.333).abs() / 33.333 < 0.005);
    }
}
