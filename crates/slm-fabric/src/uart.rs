//! Framed UART transport between the FPGA and the workstation.

use crate::error::FabricError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One framed message: `0xA5 | len (u16 LE) | payload | checksum`.
///
/// The checksum is the XOR of all payload bytes. This mirrors the
/// "simple UART TX and RX" of the paper's setup (Fig. 2): plaintexts go
/// down to the AES and benign circuit; ciphertexts and recorded sums
/// come back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UartFrame {
    /// The payload bytes.
    pub payload: Vec<u8>,
}

impl UartFrame {
    const SYNC: u8 = 0xa5;

    /// Creates a frame.
    pub fn new(payload: Vec<u8>) -> Self {
        UartFrame { payload }
    }

    /// Serializes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 4);
        out.push(Self::SYNC);
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.push(self.payload.iter().fold(0u8, |a, &b| a ^ b));
        out
    }

    /// Parses one frame from the start of `bytes`, returning the frame
    /// and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`FabricError::Transport`] for bad sync, truncation, or checksum
    /// mismatch.
    pub fn decode(bytes: &[u8]) -> Result<(UartFrame, usize), FabricError> {
        if bytes.len() < 4 {
            return Err(FabricError::Transport("truncated header".into()));
        }
        if bytes[0] != Self::SYNC {
            return Err(FabricError::Transport(format!(
                "bad sync byte {:#04x}",
                bytes[0]
            )));
        }
        let len = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
        let total = 3 + len + 1;
        if bytes.len() < total {
            return Err(FabricError::Transport("truncated payload".into()));
        }
        let payload = bytes[3..3 + len].to_vec();
        let expect = payload.iter().fold(0u8, |a, &b| a ^ b);
        let got = bytes[3 + len];
        if expect != got {
            return Err(FabricError::Transport(format!(
                "checksum mismatch: expected {expect:#04x}, got {got:#04x}"
            )));
        }
        Ok((UartFrame { payload }, total))
    }
}

/// A bidirectional byte link with a finite baud rate.
#[derive(Debug, Clone)]
pub struct UartLink {
    baud: u64,
    to_fpga: VecDeque<u8>,
    to_host: VecDeque<u8>,
    bytes_moved: u64,
}

impl UartLink {
    /// Creates a link at the given baud rate (10 bits per byte on the
    /// wire: start + 8 data + stop).
    pub fn new(baud: u64) -> Self {
        UartLink {
            baud,
            to_fpga: VecDeque::new(),
            to_host: VecDeque::new(),
            bytes_moved: 0,
        }
    }

    /// Queues a frame from the host to the FPGA.
    pub fn host_send(&mut self, frame: &UartFrame) {
        self.to_fpga.extend(frame.encode());
    }

    /// Queues a frame from the FPGA to the host.
    pub fn fpga_send(&mut self, frame: &UartFrame) {
        self.to_host.extend(frame.encode());
    }

    /// Receives the next complete frame on the FPGA side, if any.
    ///
    /// # Errors
    ///
    /// Propagates decode failures (the malformed bytes are discarded).
    pub fn fpga_recv(&mut self) -> Result<Option<UartFrame>, FabricError> {
        Self::recv(&mut self.to_fpga, &mut self.bytes_moved)
    }

    /// Receives the next complete frame on the host side, if any.
    ///
    /// # Errors
    ///
    /// Propagates decode failures (the malformed bytes are discarded).
    pub fn host_recv(&mut self) -> Result<Option<UartFrame>, FabricError> {
        Self::recv(&mut self.to_host, &mut self.bytes_moved)
    }

    fn recv(
        queue: &mut VecDeque<u8>,
        moved: &mut u64,
    ) -> Result<Option<UartFrame>, FabricError> {
        if queue.len() < 4 {
            return Ok(None);
        }
        let bytes: Vec<u8> = queue.iter().copied().collect();
        match UartFrame::decode(&bytes) {
            Ok((frame, used)) => {
                queue.drain(..used);
                *moved += used as u64;
                Ok(Some(frame))
            }
            Err(FabricError::Transport(msg)) if msg.starts_with("truncated") => Ok(None),
            Err(e) => {
                queue.clear();
                Err(e)
            }
        }
    }

    /// Seconds of wire time consumed so far (for throughput estimates —
    /// the reason capturing 500 k traces takes hours on real hardware).
    pub fn elapsed_s(&self) -> f64 {
        (self.bytes_moved * 10) as f64 / self.baud as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let f = UartFrame::new(vec![1, 2, 3, 0xff]);
        let wire = f.encode();
        let (g, used) = UartFrame::decode(&wire).unwrap();
        assert_eq!(g, f);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn empty_payload() {
        let f = UartFrame::new(vec![]);
        let (g, _) = UartFrame::decode(&f.encode()).unwrap();
        assert!(g.payload.is_empty());
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut wire = UartFrame::new(vec![9, 8, 7]).encode();
        wire[4] ^= 0x10;
        assert!(matches!(
            UartFrame::decode(&wire),
            Err(FabricError::Transport(_))
        ));
    }

    #[test]
    fn bad_sync_rejected() {
        let mut wire = UartFrame::new(vec![1]).encode();
        wire[0] = 0x00;
        assert!(UartFrame::decode(&wire).is_err());
    }

    #[test]
    fn link_roundtrip_and_partial_delivery() {
        let mut link = UartLink::new(115_200);
        assert!(link.host_recv().unwrap().is_none());
        link.host_send(&UartFrame::new(vec![0x42; 16]));
        let got = link.fpga_recv().unwrap().unwrap();
        assert_eq!(got.payload, vec![0x42; 16]);
        assert!(link.fpga_recv().unwrap().is_none());
        link.fpga_send(&UartFrame::new(vec![7]));
        assert_eq!(link.host_recv().unwrap().unwrap().payload, vec![7]);
        assert!(link.elapsed_s() > 0.0);
    }

    #[test]
    fn trace_campaign_wire_time_is_hours() {
        // 500k traces × (16B pt down + (16B ct + 64B trace) up) at 115200
        // baud: the reason the paper's capture campaigns are slow.
        let bytes_per_trace = (16 + 16 + 64) as f64;
        let s = 500_000.0 * bytes_per_trace * 10.0 / 115_200.0;
        assert!(s > 3600.0, "wire time {s} s should exceed an hour");
    }
}
