//! Framed UART transport between the FPGA and the workstation.
//!
//! Wire format (all multi-byte fields little-endian):
//!
//! ```text
//! 0xA5 | seq (u8) | len (u16) | payload (len bytes) | crc16 (u16)
//! ```
//!
//! The sequence number lets the host match responses to requests after
//! retries, and the CRC-16/CCITT covers `seq | len | payload` so header
//! corruption is caught as reliably as payload corruption. The decoder
//! is a *scanner*: on corruption it discards the minimum prefix and
//! hunts for the next sync byte instead of giving up, so one glitched
//! byte costs one frame, not the whole capture session.

use crate::error::{FabricError, TransportError};
use crate::wire_faults::{WireFaultInjector, WireFaultPlan, WireFaultStats};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// CRC-16/CCITT-FALSE: polynomial 0x1021, initial value 0xFFFF, no
/// reflection, no final XOR. `crc16(b"123456789") == 0x29B1`.
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xffff;
    for &b in bytes {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// One framed message carrying a sequence number and payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UartFrame {
    /// Sequence number; the responder echoes the request's value.
    pub seq: u8,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// Result of scanning a receive buffer for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// A complete, CRC-clean frame starting at the head of the buffer.
    Frame {
        /// The decoded frame.
        frame: UartFrame,
        /// Bytes consumed from the head of the buffer.
        consumed: usize,
    },
    /// The buffer holds a plausible frame prefix; wait for more bytes.
    NeedMore {
        /// Total frame length implied so far (lower bound while the
        /// header itself is still incomplete).
        need: usize,
    },
    /// The head of the buffer is corrupt; discard `skip` bytes and
    /// rescan.
    Corrupt {
        /// Minimum prefix to discard before rescanning.
        skip: usize,
        /// What was wrong.
        error: TransportError,
    },
}

impl UartFrame {
    /// Frame sync marker.
    pub const SYNC: u8 = 0xa5;
    /// Bytes before the payload: sync + seq + len.
    pub const HEADER_LEN: usize = 4;
    /// Bytes after the payload: the CRC-16.
    pub const TRAILER_LEN: usize = 2;
    /// Largest payload the protocol carries. A header declaring more is
    /// corrupt — without this bound a flipped length bit would make the
    /// receiver wait forever for a 64 KiB frame that never comes.
    pub const MAX_PAYLOAD: usize = 8192;

    /// Creates a frame.
    pub fn new(seq: u8, payload: Vec<u8>) -> Self {
        UartFrame { seq, payload }
    }

    /// Serializes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= Self::MAX_PAYLOAD,
            "payload exceeds MAX_PAYLOAD"
        );
        let mut out = Vec::with_capacity(Self::HEADER_LEN + self.payload.len() + Self::TRAILER_LEN);
        out.push(Self::SYNC);
        out.push(self.seq);
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&crc16(&out[1..]).to_le_bytes());
        out
    }

    /// Scans the head of `bytes` for one frame.
    ///
    /// This is the resilient primitive behind [`UartLink`]: unlike
    /// [`UartFrame::decode`] it never conflates "wait" with "corrupt".
    /// On corruption it reports the *minimum* prefix to discard — one
    /// byte for a bad CRC or oversized length — so a corrupted header
    /// cannot swallow a healthy frame right behind it.
    pub fn scan(bytes: &[u8]) -> DecodeOutcome {
        let min = Self::HEADER_LEN + Self::TRAILER_LEN;
        if bytes.is_empty() {
            return DecodeOutcome::NeedMore { need: min };
        }
        if bytes[0] != Self::SYNC {
            // Hunt for the next candidate sync byte.
            let skip = bytes
                .iter()
                .position(|&b| b == Self::SYNC)
                .unwrap_or(bytes.len());
            return DecodeOutcome::Corrupt {
                skip,
                error: TransportError::Desync { skipped: skip },
            };
        }
        if bytes.len() < Self::HEADER_LEN {
            return DecodeOutcome::NeedMore { need: min };
        }
        let len = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        if len > Self::MAX_PAYLOAD {
            return DecodeOutcome::Corrupt {
                skip: 1,
                error: TransportError::FrameTooLong { len },
            };
        }
        let total = Self::HEADER_LEN + len + Self::TRAILER_LEN;
        if bytes.len() < total {
            return DecodeOutcome::NeedMore { need: total };
        }
        let expected = crc16(&bytes[1..Self::HEADER_LEN + len]);
        let got = u16::from_le_bytes([bytes[total - 2], bytes[total - 1]]);
        if expected != got {
            return DecodeOutcome::Corrupt {
                skip: 1,
                error: TransportError::CrcMismatch { expected, got },
            };
        }
        DecodeOutcome::Frame {
            frame: UartFrame {
                seq: bytes[1],
                payload: bytes[Self::HEADER_LEN..Self::HEADER_LEN + len].to_vec(),
            },
            consumed: total,
        }
    }

    /// Parses one frame from the start of `bytes`, returning the frame
    /// and the number of bytes consumed.
    ///
    /// Strict single-frame view of [`UartFrame::scan`], kept for tests
    /// and tools that hold a complete buffer.
    ///
    /// # Errors
    ///
    /// [`FabricError::Transport`] with [`TransportError::Incomplete`]
    /// when more bytes are needed, or the corrupting fault otherwise.
    pub fn decode(bytes: &[u8]) -> Result<(UartFrame, usize), FabricError> {
        match Self::scan(bytes) {
            DecodeOutcome::Frame { frame, consumed } => Ok((frame, consumed)),
            DecodeOutcome::NeedMore { need } => Err(TransportError::Incomplete {
                have: bytes.len(),
                need,
            }
            .into()),
            DecodeOutcome::Corrupt { error, .. } => Err(error.into()),
        }
    }
}

/// Per-direction resynchronization accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Clean frames delivered.
    pub frames_delivered: u64,
    /// Times the scanner discarded bytes to regain sync.
    pub resyncs: u64,
    /// Total bytes discarded across all resyncs.
    pub bytes_discarded: u64,
}

/// Per-direction sliding resync state: how much was buffered at the
/// last poll, and the wire-time deadline by which the head frame must
/// have completed.
#[derive(Debug, Clone, Copy)]
struct RxState {
    buffered: usize,
    deadline: u64,
}

impl Default for RxState {
    fn default() -> Self {
        RxState {
            buffered: 0,
            deadline: u64::MAX,
        }
    }
}

/// A bidirectional byte link with a finite baud rate and an optional
/// fault injector standing on the wire.
#[derive(Debug, Clone)]
pub struct UartLink {
    baud: u64,
    to_fpga: VecDeque<u8>,
    to_host: VecDeque<u8>,
    bytes_moved: u64,
    injector: Option<WireFaultInjector>,
    stats: LinkStats,
    fpga_rx: RxState,
    host_rx: RxState,
    resync_timeout_bytes: u64,
}

impl UartLink {
    /// Default resync timeout, in wire byte-slots: the time a maximum-
    /// length frame takes to arrive. If the head of the buffer still
    /// has not become a complete frame after this much wire time with
    /// no new bytes, whatever it is, it is not a frame.
    pub const DEFAULT_RESYNC_TIMEOUT_BYTES: u64 =
        (UartFrame::HEADER_LEN + UartFrame::MAX_PAYLOAD + UartFrame::TRAILER_LEN) as u64;

    /// Creates a clean link at the given baud rate (10 bits per byte on
    /// the wire: start + 8 data + stop).
    pub fn new(baud: u64) -> Self {
        UartLink {
            baud,
            to_fpga: VecDeque::new(),
            to_host: VecDeque::new(),
            bytes_moved: 0,
            injector: None,
            stats: LinkStats::default(),
            fpga_rx: RxState::default(),
            host_rx: RxState::default(),
            resync_timeout_bytes: Self::DEFAULT_RESYNC_TIMEOUT_BYTES,
        }
    }

    /// Overrides the sliding resync timeout (wire byte-slots).
    pub fn with_resync_timeout_bytes(mut self, bytes: u64) -> Self {
        self.resync_timeout_bytes = bytes.max(1);
        self
    }

    /// Creates a link whose wire runs through a seeded fault injector.
    /// Both directions are mangled — requests can die as easily as
    /// responses.
    pub fn with_faults(baud: u64, plan: WireFaultPlan) -> Self {
        let mut link = Self::new(baud);
        link.injector = Some(WireFaultInjector::new(plan));
        link
    }

    fn put(&mut self, to_fpga: bool, frame: &UartFrame) {
        let mut bytes = frame.encode();
        // Wire time is charged for what the sender transmitted, faulted
        // or not — a dropped byte still occupied its slot on the line.
        self.bytes_moved += bytes.len() as u64;
        if let Some(inj) = &mut self.injector {
            bytes = inj.mangle(bytes);
        }
        if to_fpga {
            self.to_fpga.extend(bytes);
        } else {
            self.to_host.extend(bytes);
        }
    }

    /// Queues a frame from the host to the FPGA.
    pub fn host_send(&mut self, frame: &UartFrame) {
        self.put(true, frame);
    }

    /// Queues a frame from the FPGA to the host.
    pub fn fpga_send(&mut self, frame: &UartFrame) {
        self.put(false, frame);
    }

    /// Injects raw bytes onto the host-bound wire, outside any frame:
    /// line noise, a glitching transceiver, or a misbehaving neighbor
    /// driving the shared pin. Wire time is charged exactly as for real
    /// traffic; the bytes land in front of whatever the FPGA sends
    /// next, so the host-side scanner has to resynchronize past them.
    pub fn inject_to_host(&mut self, bytes: &[u8]) {
        self.bytes_moved += bytes.len() as u64;
        self.to_host.extend(bytes.iter().copied());
    }

    /// Receives the next complete frame on the FPGA side, if any.
    pub fn fpga_recv(&mut self) -> Option<UartFrame> {
        Self::recv(
            &mut self.to_fpga,
            &mut self.stats,
            &mut self.fpga_rx,
            self.bytes_moved,
            self.resync_timeout_bytes,
        )
    }

    /// Receives the next complete frame on the host side, if any.
    pub fn host_recv(&mut self) -> Option<UartFrame> {
        Self::recv(
            &mut self.to_host,
            &mut self.stats,
            &mut self.host_rx,
            self.bytes_moved,
            self.resync_timeout_bytes,
        )
    }

    /// Scans the queue for the next clean frame, discarding corrupt
    /// prefixes and counting each discard as a resync. Returns `None`
    /// when the queue holds no complete clean frame — corruption is
    /// *recorded*, never fatal, because the request/response layer above
    /// handles loss by retrying.
    ///
    /// A stuck prefix cannot park the scanner: a fake sync byte whose
    /// implied length promises a frame that never arrives is covered by
    /// a sliding timeout. Every time the buffer grows the deadline
    /// slides forward by the resync timeout; once wire time passes the
    /// deadline with the head still incomplete, the head byte is
    /// discarded and the scan repeats until a clean frame surfaces or
    /// the stale prefix is gone — no driver-level flush required.
    fn recv(
        queue: &mut VecDeque<u8>,
        stats: &mut LinkStats,
        state: &mut RxState,
        now: u64,
        timeout: u64,
    ) -> Option<UartFrame> {
        loop {
            let bytes = queue.make_contiguous();
            match UartFrame::scan(bytes) {
                DecodeOutcome::Frame { frame, consumed } => {
                    queue.drain(..consumed);
                    stats.frames_delivered += 1;
                    *state = RxState {
                        buffered: queue.len(),
                        deadline: now.saturating_add(timeout),
                    };
                    return Some(frame);
                }
                DecodeOutcome::NeedMore { .. } => {
                    if queue.is_empty() {
                        *state = RxState::default();
                        return None;
                    }
                    if queue.len() > state.buffered {
                        // Bytes arrived since the last poll: progress,
                        // so the deadline slides.
                        *state = RxState {
                            buffered: queue.len(),
                            deadline: now.saturating_add(timeout),
                        };
                        return None;
                    }
                    if now < state.deadline {
                        return None;
                    }
                    // Timed out parked on a prefix that never completed:
                    // drop the head byte and rescan. The discard counts
                    // as progress, so the new head gets a fresh
                    // deadline — an expired timer must never burn
                    // through a younger, still-arriving frame behind.
                    queue.drain(..1);
                    stats.resyncs += 1;
                    stats.bytes_discarded += 1;
                    *state = RxState {
                        buffered: queue.len(),
                        deadline: now.saturating_add(timeout),
                    };
                }
                DecodeOutcome::Corrupt { skip, .. } => {
                    let skip = skip.max(1).min(queue.len());
                    queue.drain(..skip);
                    stats.resyncs += 1;
                    stats.bytes_discarded += skip as u64;
                    *state = RxState {
                        buffered: queue.len(),
                        deadline: now.saturating_add(timeout),
                    };
                }
            }
        }
    }

    /// Discards everything in flight in both directions (used between
    /// retry attempts so a stale half-frame cannot poison the next
    /// exchange). Discarded bytes count toward the resync stats.
    pub fn flush(&mut self) {
        let pending = (self.to_fpga.len() + self.to_host.len()) as u64;
        if pending > 0 {
            self.stats.resyncs += 1;
            self.stats.bytes_discarded += pending;
        }
        self.to_fpga.clear();
        self.to_host.clear();
        self.fpga_rx = RxState::default();
        self.host_rx = RxState::default();
    }

    /// Charges `seconds` of idle wire time (retry backoff, reboot
    /// waits). Modeled as the equivalent number of byte slots so the
    /// cost shows up in [`UartLink::elapsed_s`] like real time would.
    pub fn charge_idle(&mut self, seconds: f64) {
        let bytes = (seconds * self.baud as f64 / 10.0).ceil() as u64;
        self.bytes_moved += bytes;
    }

    /// Seconds of wire time consumed so far (for throughput estimates —
    /// the reason capturing 500 k traces takes hours on real hardware).
    pub fn elapsed_s(&self) -> f64 {
        (self.bytes_moved * 10) as f64 / self.baud as f64
    }

    /// Resynchronization accounting (both directions pooled).
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Fault accounting, when a fault plan is mounted.
    pub fn fault_stats(&self) -> Option<&WireFaultStats> {
        self.injector.as_ref().map(WireFaultInjector::stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_check_value() {
        // The CRC-16/CCITT-FALSE catalog check value.
        assert_eq!(crc16(b"123456789"), 0x29b1);
        assert_eq!(crc16(b""), 0xffff);
    }

    #[test]
    fn golden_wire_bytes() {
        // Pin the wire format: sync, seq, len LE, payload, CRC LE.
        // Computed once by hand from the CRC-16/CCITT-FALSE definition;
        // if this test fails the protocol changed and the FPGA side
        // (and any captured .slmt transcripts) are invalidated.
        let frame = UartFrame::new(0x2a, vec![0xde, 0xad, 0xbe, 0xef]);
        let wire = frame.encode();
        let crc = crc16(&[0x2a, 0x04, 0x00, 0xde, 0xad, 0xbe, 0xef]);
        let mut expect = vec![0xa5, 0x2a, 0x04, 0x00, 0xde, 0xad, 0xbe, 0xef];
        expect.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(wire, expect);
        assert_eq!(
            wire.len(),
            UartFrame::HEADER_LEN + 4 + UartFrame::TRAILER_LEN
        );
    }

    #[test]
    fn frame_roundtrip() {
        let f = UartFrame::new(7, vec![1, 2, 3, 0xff]);
        let wire = f.encode();
        let (g, used) = UartFrame::decode(&wire).unwrap();
        assert_eq!(g, f);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn empty_payload() {
        let f = UartFrame::new(0, vec![]);
        let (g, _) = UartFrame::decode(&f.encode()).unwrap();
        assert!(g.payload.is_empty());
        assert_eq!(g.seq, 0);
    }

    #[test]
    fn truncation_reports_incomplete_not_corrupt() {
        let wire = UartFrame::new(1, vec![9, 8, 7]).encode();
        for cut in 0..wire.len() {
            match UartFrame::scan(&wire[..cut]) {
                DecodeOutcome::NeedMore { need } => assert!(need > cut),
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn crc_detects_corruption_of_any_byte() {
        let clean = UartFrame::new(3, vec![0x11, 0x22, 0x33]).encode();
        for i in 1..clean.len() {
            let mut wire = clean.clone();
            wire[i] ^= 0x04;
            match UartFrame::scan(&wire) {
                DecodeOutcome::Frame { frame, .. } => {
                    panic!("corrupted byte {i} decoded as {frame:?}")
                }
                DecodeOutcome::Corrupt { .. } | DecodeOutcome::NeedMore { .. } => {}
            }
        }
    }

    #[test]
    fn oversized_length_is_corrupt_not_wait() {
        let mut wire = UartFrame::new(0, vec![1]).encode();
        wire[2] = 0xff;
        wire[3] = 0xff; // declares a 65535-byte payload
        assert!(matches!(
            UartFrame::scan(&wire),
            DecodeOutcome::Corrupt {
                error: TransportError::FrameTooLong { len: 65535 },
                ..
            }
        ));
    }

    #[test]
    fn bad_sync_skips_to_next_candidate() {
        let mut wire = vec![0x00, 0x13, 0x37];
        wire.extend(UartFrame::new(5, vec![42]).encode());
        match UartFrame::scan(&wire) {
            DecodeOutcome::Corrupt { skip, .. } => assert_eq!(skip, 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn link_roundtrip_and_partial_delivery() {
        let mut link = UartLink::new(115_200);
        assert!(link.host_recv().is_none());
        link.host_send(&UartFrame::new(1, vec![0x42; 16]));
        let got = link.fpga_recv().unwrap();
        assert_eq!(got.payload, vec![0x42; 16]);
        assert_eq!(got.seq, 1);
        assert!(link.fpga_recv().is_none());
        link.fpga_send(&UartFrame::new(1, vec![7]));
        assert_eq!(link.host_recv().unwrap().payload, vec![7]);
        assert!(link.elapsed_s() > 0.0);
        assert_eq!(link.stats().frames_delivered, 2);
        assert_eq!(link.stats().resyncs, 0);
    }

    #[test]
    fn link_resyncs_past_garbage_to_next_frame() {
        let mut link = UartLink::new(115_200);
        // Simulate line garbage followed by two good frames. (Garbage
        // containing a fake sync byte is covered separately by the
        // sliding resync timeout.)
        link.to_host.extend([0xff, 0x00, 0x13, 0x37]);
        let f1 = UartFrame::new(9, vec![1, 2, 3]);
        let f2 = UartFrame::new(10, vec![4, 5]);
        link.to_host.extend(f1.encode());
        link.to_host.extend(f2.encode());
        assert_eq!(link.host_recv().unwrap(), f1);
        assert_eq!(link.host_recv().unwrap(), f2);
        assert!(link.stats().resyncs > 0);
        assert!(link.stats().bytes_discarded >= 4);
    }

    #[test]
    fn corrupt_frame_does_not_swallow_the_next_one() {
        let mut link = UartLink::new(115_200);
        let mut bad = UartFrame::new(1, vec![0xaa; 8]).encode();
        bad[6] ^= 0x80; // payload corruption -> CRC mismatch
        let good = UartFrame::new(2, vec![0xbb; 8]);
        link.to_host.extend(bad);
        link.to_host.extend(good.encode());
        assert_eq!(link.host_recv().unwrap(), good);
    }

    #[test]
    fn fake_sync_cannot_park_the_scanner() {
        // A fake sync byte whose implied length (0x1337 > nothing, but
        // within MAX_PAYLOAD bounds) promises a frame that never
        // arrives, with a real frame queued right behind it. The old
        // scanner sat in NeedMore forever; the sliding timeout digs the
        // real frame out once wire time passes the deadline.
        let mut link = UartLink::new(115_200);
        let real = UartFrame::new(7, vec![0xaa, 0xbb]);
        link.to_host.extend([UartFrame::SYNC, 0x00, 0x00, 0x13]); // len = 0x1300
        link.to_host.extend(real.encode());
        // Before the deadline: parked (this is a plausible partial frame).
        assert!(link.host_recv().is_none());
        assert!(link.host_recv().is_none());
        // Let more than a max-frame's worth of wire time pass idle.
        let timeout_s = UartLink::DEFAULT_RESYNC_TIMEOUT_BYTES as f64 * 10.0 / 115_200.0;
        link.charge_idle(timeout_s * 1.1);
        assert_eq!(link.host_recv().unwrap(), real);
        assert!(link.stats().resyncs > 0);
        assert!(link.host_recv().is_none());
    }

    #[test]
    fn deadline_slides_while_bytes_trickle_in() {
        // As long as the buffer keeps growing, an incomplete frame is
        // never condemned — the timeout measures silence, not patience.
        let mut link = UartLink::new(115_200).with_resync_timeout_bytes(64);
        let frame = UartFrame::new(3, vec![0x55; 100]);
        let wire = frame.encode();
        for chunk in wire.chunks(8) {
            assert!(link.host_recv().is_none() || chunk.is_empty());
            link.to_host.extend(chunk);
            link.charge_idle(50.0 * 10.0 / 115_200.0); // 50 byte-slots idle
        }
        assert_eq!(link.host_recv().unwrap(), frame);
        assert_eq!(link.stats().resyncs, 0, "no byte was condemned");
    }

    #[test]
    fn idle_time_is_charged_to_the_wire() {
        let mut link = UartLink::new(115_200);
        let before = link.elapsed_s();
        link.charge_idle(0.25);
        assert!(link.elapsed_s() - before >= 0.25);
    }

    #[test]
    fn faulted_link_counts_faults() {
        let mut link = UartLink::with_faults(115_200, WireFaultPlan::new(5).with_stall(1.0));
        link.host_send(&UartFrame::new(0, vec![1, 2, 3]));
        assert!(link.fpga_recv().is_none());
        assert_eq!(link.fault_stats().unwrap().frames_stalled, 1);
        // Stalled bytes still cost wire time.
        assert!(link.elapsed_s() > 0.0);
    }

    #[test]
    fn trace_campaign_wire_time_is_hours() {
        // 500k traces × (16B pt down + (16B ct + 64B trace) up) at 115200
        // baud: the reason the paper's capture campaigns are slow.
        let bytes_per_trace = (16 + 16 + 64) as f64;
        let s = 500_000.0 * bytes_per_trace * 10.0 / 115_200.0;
        assert!(s > 3600.0, "wire time {s} s should exceed an hour");
    }
}
