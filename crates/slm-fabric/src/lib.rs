//! Multi-tenant FPGA fabric simulation.
//!
//! This crate glues the substrates together into the paper's
//! experimental setup (Fig. 2):
//!
//! * [`Mmcm`] — clock generation from the board's 125 MHz reference,
//!   with 7-series-style VCO constraints (the 50/100/150/300 MHz domains
//!   the experiments use),
//! * [`BenignCircuit`] — the two victim-tenant circuits the paper
//!   misuses (the 192-bit ALU and two parallel C6288 multipliers), with
//!   their reset/measure stimulus pairs,
//! * [`MultiTenantFabric`] — the electrical co-simulation: AES victim,
//!   RO array, TDC and benign sensor all sharing one PDN, stepped on a
//!   300 MHz tick,
//! * [`BramCapture`] — on-chip trace buffering with bounded depth,
//! * [`UartLink`] — the framed workstation transport,
//! * [`RemoteSession`] — the complete workstation↔FPGA round trip
//!   (plaintext down, ciphertext + BRAM-staged trace back),
//! * [`floorplan`] — region-constrained placement and rendering
//!   (Figs. 3, 4).
//!
//! # Example
//!
//! ```
//! use slm_fabric::{FabricConfig, MultiTenantFabric, BenignCircuit};
//!
//! let config = FabricConfig {
//!     benign: BenignCircuit::Alu192,
//!     ..FabricConfig::default()
//! };
//! let mut fabric = MultiTenantFabric::new(&config).unwrap();
//! let record = fabric.encrypt_and_capture([0x42; 16]);
//! assert_eq!(record.ciphertext,
//!            slm_aes::soft::encrypt(&config.aes_key, &[0x42; 16]));
//! assert!(!record.benign.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggressor;
mod bram;
mod circuit;
mod clock;
mod error;
pub mod floorplan;
mod remote;
mod scenario;
mod uart;
mod wire_faults;

pub use aggressor::{AggressorSpec, FaultTelemetry, VictimCone};
pub use bram::BramCapture;
pub use circuit::{BenignCircuit, BuiltCircuit};
pub use clock::{ClockSpec, Mmcm};
pub use error::{FabricError, TransportError};
// `WireFault*` were historically named `Fault*`; they are the UART
// transport adversary. The unqualified fault-injection vocabulary
// (`AggressorSpec`, `FaultTelemetry`) now unambiguously means PDN
// timing faults.
pub use remote::{
    CampaignDriver, CampaignStats, QuarantinedTrace, RemoteSession, RetryPolicy, ShardOutcome,
    ShardedCampaign,
};
pub use wire_faults::{WireFaultInjector, WireFaultPlan, WireFaultStats};
// Shard planning vocabulary, re-exported so campaign callers need not
// depend on slm-par directly.
pub use scenario::{
    ActivityTrace, AesActivity, CaptureRecord, FabricConfig, FabricPrototype, FenceConfig,
    MultiTenantFabric, RoSchedule,
};
// Countermeasure vocabulary, re-exported so defended campaigns can be
// configured without depending on slm-defense directly.
pub use slm_defense::{
    AdaptivePolicy, AlternationDetector, ClockJitterConfig, DefenseConfig, DefenseRuntime,
    DefenseTelemetry, DetectorConfig, FenceMode, FenceSpec, LdoConfig,
};
pub use slm_par::{ShardPlan, ShardSpec};
pub use uart::{crc16, DecodeOutcome, LinkStats, UartFrame, UartLink};
