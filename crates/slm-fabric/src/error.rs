//! Fabric error type.

use std::error::Error;
use std::fmt;

/// Errors raised while assembling or running the fabric simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FabricError {
    /// The benign circuit failed to build.
    Circuit(slm_netlist::NetlistError),
    /// Timing analysis of the benign circuit failed.
    Timing(slm_timing::TimingError),
    /// The requested clock frequency cannot be synthesized by the MMCM.
    UnachievableClock {
        /// Requested frequency, MHz.
        requested_mhz: f64,
    },
    /// A UART frame failed its checksum or framing.
    Transport(String),
    /// Trace capture overflowed the BRAM and `strict` capture is on.
    CaptureOverflow {
        /// Configured capture depth.
        depth: usize,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Circuit(e) => write!(f, "benign circuit error: {e}"),
            FabricError::Timing(e) => write!(f, "timing analysis error: {e}"),
            FabricError::UnachievableClock { requested_mhz } => {
                write!(f, "MMCM cannot synthesize {requested_mhz} MHz")
            }
            FabricError::Transport(msg) => write!(f, "transport error: {msg}"),
            FabricError::CaptureOverflow { depth } => {
                write!(f, "BRAM capture overflow (depth {depth})")
            }
        }
    }
}

impl Error for FabricError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FabricError::Circuit(e) => Some(e),
            FabricError::Timing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<slm_netlist::NetlistError> for FabricError {
    fn from(e: slm_netlist::NetlistError) -> Self {
        FabricError::Circuit(e)
    }
}

impl From<slm_timing::TimingError> for FabricError {
    fn from(e: slm_timing::TimingError) -> Self {
        FabricError::Timing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FabricError::UnachievableClock {
            requested_mhz: 17.3,
        };
        assert!(e.to_string().contains("17.3"));
        let e: FabricError = slm_timing::TimingError::CyclicNetlist.into();
        assert!(e.source().is_some());
    }
}
