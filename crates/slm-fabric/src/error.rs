//! Fabric error types.

use std::error::Error;
use std::fmt;

/// A typed transport fault on the UART path.
///
/// Every variant carries enough context to act on it, and
/// [`TransportError::retryable`] classifies whether a host-side driver
/// should re-issue the request (transient wire noise) or give up
/// (exhausted retry budget). This is what lets a capture campaign
/// survive an adversarially noisy link: the campaign driver retries the
/// retryable faults and quarantines the rest, instead of aborting on
/// the first glitch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The receive buffer holds a plausible frame prefix but not yet a
    /// complete frame: wait for more bytes. `need` is the total frame
    /// length implied by the header so far.
    Incomplete {
        /// Bytes currently buffered.
        have: usize,
        /// Bytes required for a complete frame (lower bound while the
        /// header itself is incomplete).
        need: usize,
    },
    /// The first buffered byte is not the sync marker; the decoder
    /// skips to the next candidate sync byte.
    Desync {
        /// Bytes discarded while searching for the next sync byte.
        skipped: usize,
    },
    /// A header declared a payload longer than the protocol allows —
    /// corrupt header, not a frame to wait for.
    FrameTooLong {
        /// The declared payload length.
        len: usize,
    },
    /// Frame arrived complete but its CRC-16 check failed.
    CrcMismatch {
        /// CRC computed over the received header + payload.
        expected: u16,
        /// CRC carried by the frame.
        got: u16,
    },
    /// No response frame arrived for a request (lost or stalled frame).
    NoResponse,
    /// A response arrived with the wrong sequence number — a stale
    /// retransmission or a silent desync.
    SeqMismatch {
        /// Sequence number of the outstanding request.
        expected: u8,
        /// Sequence number the response carried.
        got: u8,
    },
    /// A frame passed CRC but its payload does not parse as a valid
    /// protocol message.
    MalformedResponse {
        /// What was wrong.
        detail: String,
    },
    /// A response parsed but failed semantic validation (e.g. the
    /// ciphertext disagrees with the reference AES model) — a silently
    /// corrupted trace that must be quarantined, not analyzed.
    ValidationFailed {
        /// What was wrong.
        detail: String,
    },
    /// The retry budget is spent; `last` is the final attempt's fault.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The fault that killed the final attempt.
        last: Box<TransportError>,
    },
}

impl TransportError {
    /// Whether a driver should re-issue the request after this fault.
    ///
    /// Everything except an exhausted retry budget is retryable: wire
    /// noise ([`Self::CrcMismatch`], [`Self::Desync`],
    /// [`Self::FrameTooLong`]), losses ([`Self::NoResponse`]), stale or
    /// desynchronized responses ([`Self::SeqMismatch`],
    /// [`Self::MalformedResponse`], [`Self::ValidationFailed`]), and
    /// [`Self::Incomplete`] (which simply means "wait").
    pub fn retryable(&self) -> bool {
        !matches!(self, TransportError::RetriesExhausted { .. })
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Incomplete { have, need } => {
                write!(f, "incomplete frame: have {have} bytes, need {need}")
            }
            TransportError::Desync { skipped } => {
                write!(f, "lost sync, skipped {skipped} bytes")
            }
            TransportError::FrameTooLong { len } => {
                write!(f, "corrupt header: declared payload of {len} bytes")
            }
            TransportError::CrcMismatch { expected, got } => {
                write!(
                    f,
                    "CRC mismatch: computed {expected:#06x}, frame carried {got:#06x}"
                )
            }
            TransportError::NoResponse => write!(f, "no response frame"),
            TransportError::SeqMismatch { expected, got } => {
                write!(f, "sequence mismatch: expected {expected}, got {got}")
            }
            TransportError::MalformedResponse { detail } => {
                write!(f, "malformed response: {detail}")
            }
            TransportError::ValidationFailed { detail } => {
                write!(f, "trace validation failed: {detail}")
            }
            TransportError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl Error for TransportError {}

/// Errors raised while assembling or running the fabric simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FabricError {
    /// The benign circuit failed to build.
    Circuit(slm_netlist::NetlistError),
    /// Timing analysis of the benign circuit failed.
    Timing(slm_timing::TimingError),
    /// The requested clock frequency cannot be synthesized by the MMCM.
    UnachievableClock {
        /// Requested frequency, MHz.
        requested_mhz: f64,
    },
    /// A UART transport fault; see [`TransportError`] for the taxonomy
    /// and retry classification.
    Transport(TransportError),
    /// Trace capture overflowed the BRAM and `strict` capture is on.
    CaptureOverflow {
        /// Configured capture depth.
        depth: usize,
    },
}

impl FabricError {
    /// Whether the operation may succeed if simply re-issued — true
    /// only for retryable transport faults.
    pub fn retryable(&self) -> bool {
        match self {
            FabricError::Transport(t) => t.retryable(),
            _ => false,
        }
    }
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Circuit(e) => write!(f, "benign circuit error: {e}"),
            FabricError::Timing(e) => write!(f, "timing analysis error: {e}"),
            FabricError::UnachievableClock { requested_mhz } => {
                write!(f, "MMCM cannot synthesize {requested_mhz} MHz")
            }
            FabricError::Transport(e) => write!(f, "transport error: {e}"),
            FabricError::CaptureOverflow { depth } => {
                write!(f, "BRAM capture overflow (depth {depth})")
            }
        }
    }
}

impl Error for FabricError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FabricError::Circuit(e) => Some(e),
            FabricError::Timing(e) => Some(e),
            FabricError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<slm_netlist::NetlistError> for FabricError {
    fn from(e: slm_netlist::NetlistError) -> Self {
        FabricError::Circuit(e)
    }
}

impl From<slm_timing::TimingError> for FabricError {
    fn from(e: slm_timing::TimingError) -> Self {
        FabricError::Timing(e)
    }
}

impl From<TransportError> for FabricError {
    fn from(e: TransportError) -> Self {
        FabricError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FabricError::UnachievableClock {
            requested_mhz: 17.3,
        };
        assert!(e.to_string().contains("17.3"));
        let e: FabricError = slm_timing::TimingError::CyclicNetlist.into();
        assert!(e.source().is_some());
        let e: FabricError = TransportError::NoResponse.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn retryable_classification() {
        assert!(TransportError::NoResponse.retryable());
        assert!(TransportError::CrcMismatch {
            expected: 1,
            got: 2
        }
        .retryable());
        assert!(TransportError::Desync { skipped: 5 }.retryable());
        assert!(TransportError::SeqMismatch {
            expected: 0,
            got: 1
        }
        .retryable());
        assert!(TransportError::ValidationFailed {
            detail: "ct".into()
        }
        .retryable());
        let fatal = TransportError::RetriesExhausted {
            attempts: 4,
            last: Box::new(TransportError::NoResponse),
        };
        assert!(!fatal.retryable());
        assert!(!FabricError::from(fatal).retryable());
        assert!(!FabricError::CaptureOverflow { depth: 1 }.retryable());
        assert!(FabricError::from(TransportError::NoResponse).retryable());
    }
}
