//! Region-constrained placement and floorplan rendering.
//!
//! Reproduces the content of the paper's Figs. 3 and 4: the mapped
//! benign circuit is *scattered* across its tenant region with its
//! voltage-sensitive endpoints sprinkled throughout, while a purpose-
//! built TDC is a compact column — the visual argument for why
//! structural/placement screening cannot spot the benign sensor.

use serde::{Deserialize, Serialize};
use slm_pdn::noise::Rng64;

/// What occupies a CLB cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Unused fabric.
    Empty,
    /// Benign-circuit logic (Figs. 3/4: yellow).
    BenignLogic,
    /// A benign-circuit cell driving a sensitive endpoint (red).
    SensitiveEndpoint,
    /// TDC sensor logic (green).
    Tdc,
    /// AES victim logic (lilac).
    Aes,
    /// Ring-oscillator array (light blue).
    Ro,
}

impl CellKind {
    /// Single-character glyph for ASCII rendering.
    pub fn glyph(self) -> char {
        match self {
            CellKind::Empty => '.',
            CellKind::BenignLogic => 'b',
            CellKind::SensitiveEndpoint => 'S',
            CellKind::Tdc => 'T',
            CellKind::Aes => 'A',
            CellKind::Ro => 'r',
        }
    }
}

/// A rectangular region of the CLB grid (a tenant's partial-
/// reconfiguration slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rect {
    /// Left column.
    pub x: usize,
    /// Top row.
    pub y: usize,
    /// Width in cells.
    pub w: usize,
    /// Height in cells.
    pub h: usize,
}

impl Rect {
    /// Number of cells.
    pub fn area(&self) -> usize {
        self.w * self.h
    }
}

/// A placed floorplan on a CLB grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Floorplan {
    width: usize,
    height: usize,
    cells: Vec<CellKind>,
}

impl Floorplan {
    /// An empty grid.
    pub fn new(width: usize, height: usize) -> Self {
        Floorplan {
            width,
            height,
            cells: vec![CellKind::Empty; width * height],
        }
    }

    /// A grid sized like the XC7Z020 CLB array (approximately 50 × 50
    /// usable CLB columns/rows for this model's purposes).
    pub fn zynq7020() -> Self {
        Self::new(50, 50)
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The cell at `(x, y)`.
    pub fn cell(&self, x: usize, y: usize) -> CellKind {
        self.cells[y * self.width + x]
    }

    /// Number of cells of a given kind.
    pub fn count(&self, kind: CellKind) -> usize {
        self.cells.iter().filter(|&&c| c == kind).count()
    }

    /// Splits the grid into a `rows × cols` lattice of region
    /// rectangles — the partial-reconfiguration slots a cloud scheduler
    /// hands out to tenants. Regions tile the grid exactly (remainder
    /// cells go to the last row/column) and come back in row-major
    /// order, so the slot list is a pure function of the geometry.
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` is zero or exceeds the grid dimensions.
    pub fn partition(&self, rows: usize, cols: usize) -> Vec<Rect> {
        assert!(
            (1..=self.height).contains(&rows) && (1..=self.width).contains(&cols),
            "partition {rows}x{cols} does not fit a {}x{} grid",
            self.width,
            self.height
        );
        let (rw, rh) = (self.width / cols, self.height / rows);
        let mut regions = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let (x, y) = (c * rw, r * rh);
                regions.push(Rect {
                    x,
                    y,
                    w: if c + 1 == cols { self.width - x } else { rw },
                    h: if r + 1 == rows { self.height - y } else { rh },
                });
            }
        }
        regions
    }

    /// Scatter-places `count` cells of `kind` pseudo-randomly inside
    /// `region` (mimicking how a mapper spreads a non-constrained
    /// circuit), skipping occupied cells. Returns the placed positions.
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit on the grid or has fewer free
    /// cells than `count`.
    pub fn scatter(
        &mut self,
        region: Rect,
        kind: CellKind,
        count: usize,
        seed: u64,
    ) -> Vec<(usize, usize)> {
        assert!(region.x + region.w <= self.width, "region exceeds grid");
        assert!(region.y + region.h <= self.height, "region exceeds grid");
        let mut free: Vec<(usize, usize)> = (0..region.area())
            .map(|i| (region.x + i % region.w, region.y + i / region.w))
            .filter(|&(x, y)| self.cell(x, y) == CellKind::Empty)
            .collect();
        assert!(free.len() >= count, "region too small for {count} cells");
        // Fisher–Yates with the deterministic workspace RNG.
        let mut rng = Rng64::new(seed);
        for i in (1..free.len()).rev() {
            free.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let placed: Vec<(usize, usize)> = free.into_iter().take(count).collect();
        for &(x, y) in &placed {
            self.cells[y * self.width + x] = kind;
        }
        placed
    }

    /// Column-places `count` cells of `kind` as a compact vertical strip
    /// starting at the region's top-left — how a placement-constrained
    /// TDC looks.
    ///
    /// # Panics
    ///
    /// Panics if the region cannot hold `count` cells.
    pub fn column(&mut self, region: Rect, kind: CellKind, count: usize) -> Vec<(usize, usize)> {
        assert!(count <= region.area(), "region too small");
        let mut placed = Vec::with_capacity(count);
        'outer: for dx in 0..region.w {
            for dy in 0..region.h {
                if placed.len() == count {
                    break 'outer;
                }
                let (x, y) = (region.x + dx, region.y + dy);
                self.cells[y * self.width + x] = kind;
                placed.push((x, y));
            }
        }
        placed
    }

    /// Upgrades `n` already-placed `BenignLogic` cells to
    /// `SensitiveEndpoint` markers, pseudo-randomly (the red cells of
    /// Figs. 3/4).
    pub fn mark_sensitive(&mut self, n: usize, seed: u64) -> usize {
        let mut idx: Vec<usize> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == CellKind::BenignLogic)
            .map(|(i, _)| i)
            .collect();
        let mut rng = Rng64::new(seed);
        for i in (1..idx.len()).rev() {
            idx.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let marked = idx.len().min(n);
        for &i in idx.iter().take(marked) {
            self.cells[i] = CellKind::SensitiveEndpoint;
        }
        marked
    }

    /// Renders the grid as ASCII art with a legend.
    pub fn render_ascii(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height + 128);
        for y in 0..self.height {
            for x in 0..self.width {
                out.push(self.cell(x, y).glyph());
            }
            out.push('\n');
        }
        out.push_str("legend: b=benign logic  S=sensitive endpoint  T=TDC  A=AES  r=RO  .=empty\n");
        out
    }

    /// Packing density of a kind: cells divided by bounding-box area.
    /// A placement-constrained TDC is dense (≈ 1); a mapper-scattered
    /// benign circuit is sparse — the quantitative form of the visual
    /// contrast in Figs. 3/4.
    pub fn density(&self, kind: CellKind) -> f64 {
        let mut min_x = usize::MAX;
        let mut min_y = usize::MAX;
        let mut max_x = 0usize;
        let mut max_y = 0usize;
        let mut count = 0usize;
        for i in 0..self.cells.len() {
            if self.cells[i] == kind {
                let (x, y) = (i % self.width, i / self.width);
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
                count += 1;
            }
        }
        if count == 0 {
            return 0.0;
        }
        let area = (max_x - min_x + 1) * (max_y - min_y + 1);
        count as f64 / area as f64
    }

    /// Renders the grid as a binary PPM (P6) image, `scale` pixels per
    /// cell, using the Figs. 3/4 colour convention (benign yellow,
    /// sensitive red, TDC green, AES lilac, RO light blue).
    pub fn render_ppm(&self, scale: usize) -> Vec<u8> {
        let scale = scale.max(1);
        let (w, h) = (self.width * scale, self.height * scale);
        let mut out = Vec::with_capacity(32 + 3 * w * h);
        out.extend_from_slice(format!("P6\n{w} {h}\n255\n").as_bytes());
        for py in 0..h {
            for px in 0..w {
                let cell = self.cell(px / scale, py / scale);
                let rgb: [u8; 3] = match cell {
                    CellKind::Empty => [24, 24, 28],
                    CellKind::BenignLogic => [230, 200, 60],
                    CellKind::SensitiveEndpoint => [220, 50, 40],
                    CellKind::Tdc => [60, 180, 80],
                    CellKind::Aes => [190, 130, 220],
                    CellKind::Ro => [110, 190, 230],
                };
                out.extend_from_slice(&rgb);
            }
        }
        out
    }

    /// Mean pairwise spread (RMS distance from centroid) of cells of a
    /// kind — quantifies "scattered vs compact" between the benign
    /// sensor and the TDC.
    pub fn spread(&self, kind: CellKind) -> f64 {
        let pts: Vec<(f64, f64)> = (0..self.cells.len())
            .filter(|&i| self.cells[i] == kind)
            .map(|i| ((i % self.width) as f64, (i / self.width) as f64))
            .collect();
        if pts.is_empty() {
            return 0.0;
        }
        let (cx, cy) = (
            pts.iter().map(|p| p.0).sum::<f64>() / pts.len() as f64,
            pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64,
        );
        (pts.iter()
            .map(|&(x, y)| (x - cx).powi(2) + (y - cy).powi(2))
            .sum::<f64>()
            / pts.len() as f64)
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_tiles_the_grid_exactly() {
        for (w, h, rows, cols) in [(50, 50, 2, 2), (50, 50, 3, 4), (7, 5, 5, 7), (10, 10, 1, 1)] {
            let fp = Floorplan::new(w, h);
            let regions = fp.partition(rows, cols);
            assert_eq!(regions.len(), rows * cols);
            assert_eq!(
                regions.iter().map(Rect::area).sum::<usize>(),
                w * h,
                "{rows}x{cols} over {w}x{h} must cover every cell"
            );
            // No overlap: paint each region and count coverage.
            let mut hits = vec![0u8; w * h];
            for r in &regions {
                assert!(r.x + r.w <= w && r.y + r.h <= h, "region off-grid");
                assert!(r.w > 0 && r.h > 0, "degenerate region");
                for y in r.y..r.y + r.h {
                    for x in r.x..r.x + r.w {
                        hits[y * w + x] += 1;
                    }
                }
            }
            assert!(hits.iter().all(|&c| c == 1), "overlapping regions");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn partition_rejects_oversubscribed_lattice() {
        Floorplan::new(4, 4).partition(5, 2);
    }

    #[test]
    fn scatter_stays_in_region_and_counts() {
        let mut fp = Floorplan::zynq7020();
        let region = Rect {
            x: 5,
            y: 5,
            w: 20,
            h: 20,
        };
        let placed = fp.scatter(region, CellKind::BenignLogic, 150, 1);
        assert_eq!(placed.len(), 150);
        assert_eq!(fp.count(CellKind::BenignLogic), 150);
        for (x, y) in placed {
            assert!((5..25).contains(&x) && (5..25).contains(&y));
        }
    }

    #[test]
    fn scatter_avoids_occupied() {
        let mut fp = Floorplan::new(4, 4);
        let region = Rect {
            x: 0,
            y: 0,
            w: 4,
            h: 4,
        };
        fp.column(region, CellKind::Tdc, 8);
        let placed = fp.scatter(region, CellKind::BenignLogic, 8, 2);
        assert_eq!(placed.len(), 8);
        assert_eq!(fp.count(CellKind::Tdc), 8);
    }

    #[test]
    fn tdc_column_is_more_compact_than_scatter() {
        let mut fp = Floorplan::zynq7020();
        fp.column(
            Rect {
                x: 0,
                y: 0,
                w: 2,
                h: 40,
            },
            CellKind::Tdc,
            64,
        );
        fp.scatter(
            Rect {
                x: 10,
                y: 10,
                w: 30,
                h: 30,
            },
            CellKind::BenignLogic,
            200,
            3,
        );
        assert!(
            fp.density(CellKind::Tdc) > 3.0 * fp.density(CellKind::BenignLogic),
            "tdc density {} vs benign {}",
            fp.density(CellKind::Tdc),
            fp.density(CellKind::BenignLogic)
        );
        // spread still distinguishes direction: the scatter covers a
        // larger area around its centroid per cell placed
        assert!(fp.spread(CellKind::BenignLogic) > 0.0);
        assert_eq!(fp.density(CellKind::Aes), 0.0);
    }

    #[test]
    fn mark_sensitive_converts_cells() {
        let mut fp = Floorplan::new(10, 10);
        fp.scatter(
            Rect {
                x: 0,
                y: 0,
                w: 10,
                h: 10,
            },
            CellKind::BenignLogic,
            50,
            4,
        );
        let marked = fp.mark_sensitive(20, 5);
        assert_eq!(marked, 20);
        assert_eq!(fp.count(CellKind::SensitiveEndpoint), 20);
        assert_eq!(fp.count(CellKind::BenignLogic), 30);
        // asking for more than available clamps
        assert_eq!(fp.mark_sensitive(100, 6), 30);
    }

    #[test]
    fn ascii_render_shape() {
        let mut fp = Floorplan::new(6, 3);
        fp.column(
            Rect {
                x: 0,
                y: 0,
                w: 1,
                h: 3,
            },
            CellKind::Tdc,
            3,
        );
        let art = fp.render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4); // 3 rows + legend
        assert!(lines[0].starts_with('T'));
        assert!(lines[3].contains("legend"));
    }

    #[test]
    fn ppm_render_shape_and_colors() {
        let mut fp = Floorplan::new(4, 2);
        fp.column(
            Rect {
                x: 0,
                y: 0,
                w: 1,
                h: 2,
            },
            CellKind::Tdc,
            2,
        );
        let ppm = fp.render_ppm(2);
        let header = b"P6\n8 4\n255\n";
        assert_eq!(&ppm[..header.len()], header);
        assert_eq!(ppm.len(), header.len() + 3 * 8 * 4);
        // first pixel is TDC green
        let px = &ppm[header.len()..header.len() + 3];
        assert_eq!(px, &[60, 180, 80]);
        // scale clamps to at least 1
        assert!(fp.render_ppm(0).len() > 12);
    }

    #[test]
    #[should_panic(expected = "region too small")]
    fn overfull_region_panics() {
        let mut fp = Floorplan::new(3, 3);
        fp.scatter(
            Rect {
                x: 0,
                y: 0,
                w: 2,
                h: 2,
            },
            CellKind::Aes,
            5,
            1,
        );
    }
}
