//! PDN fault-injection aggressor (FLARE / "Hacking the Fabric" style).
//!
//! The same shared-PDN coupling the paper exploits for *sensing* also
//! works in reverse: a malicious tenant that switches enough current
//! droops the victim region's rail, gate delays stretch under the
//! alpha-power law, and late-arriving bits of the victim's combinational
//! cone miss the clock edge — a timing-violation fault, injected with
//! zero wires crossed.
//!
//! Three pieces live here:
//!
//! * [`AggressorSpec`] — the attacker's current profile: a square-wave
//!   duty cycle over the 300 MHz fabric tick. Deliberately RNG-free: the
//!   drawn current is a pure function of the tick index, so a sharded
//!   campaign needs no seed lane for it and disabled aggressors are
//!   trivially bit-exact (the same discipline as the PR 5 defenses).
//! * [`VictimCone`] — the victim's critical combinational cone, timed
//!   once by [`slm_timing::StaEngine`] and checked per AES cycle against
//!   the voltage-derated clock-period criterion
//!   ([`slm_timing::StaEngine::derated_violations`] pins the linearity
//!   this relies on).
//! * [`FaultTelemetry`] — what actually happened: cycles that violated,
//!   bits flipped, deepest victim droop.

use crate::error::FabricError;
use serde::{Deserialize, Serialize};
use slm_netlist::generators::ripple_carry_adder;
use slm_timing::{DelayModel, StaEngine, VoltageDelayLaw};

/// Duty-cycled current profile of a fault-injection aggressor.
///
/// Within each `period_ticks`-tick period the aggressor draws
/// `peak_current_a` amps for the first `on_ticks` ticks (after the
/// `phase_ticks` offset) and nothing for the rest. The square wave is a
/// faithful model of how FPGA aggressors are actually built — a bank of
/// ring oscillators or clock-gated shift registers toggled by a counter
/// — and its duty period is exactly the knob the
/// [`slm_defense::AlternationDetector`] keys on, which is what the
/// combined SCA/FI matrix sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggressorSpec {
    /// Current drawn during the on-phase, amps.
    pub peak_current_a: f64,
    /// On-phase length, fabric ticks.
    pub on_ticks: u64,
    /// Full duty period, fabric ticks.
    pub period_ticks: u64,
    /// Offset of the first on-phase within the period, ticks (lets
    /// sweeps slide the on-window across the AES schedule).
    pub phase_ticks: u64,
}

impl AggressorSpec {
    /// A square-wave aggressor with zero phase offset.
    ///
    /// # Panics
    ///
    /// Panics if `period_ticks` is zero or `on_ticks > period_ticks`.
    pub fn square(peak_current_a: f64, on_ticks: u64, period_ticks: u64) -> Self {
        assert!(period_ticks > 0, "aggressor period must be positive");
        assert!(on_ticks <= period_ticks, "on-phase exceeds period");
        AggressorSpec {
            peak_current_a,
            on_ticks,
            period_ticks,
            phase_ticks: 0,
        }
    }

    /// The stealthy operating point: a short, *even-length* burst in an
    /// odd, encryption-length-coprime period (12 of 151 ticks).
    ///
    /// Even-length constant runs cancel in the detector's alternating
    /// sum, and gcd(151, ticks-per-encryption) = 1 sweeps the burst
    /// across every phase of the AES schedule, so round-9 cycles are
    /// hit without any synchronization to the victim. The burst is kept
    /// short so the PDN droop peak is narrow: the violating window then
    /// spans only a few AES cycles and frequently lands *inside* round 9
    /// without clipping round 8 — exactly the clean single-round faults
    /// DFA wants. (Longer on-phases at the same peak mostly produce
    /// early-round avalanche faults, which DFA has to discard.)
    pub fn stealthy(peak_current_a: f64) -> Self {
        Self::square(peak_current_a, 12, 151)
    }

    /// The detector's home turf: toggling at the tick rate (1 of 2
    /// ticks), the Nyquist-rate signature the alternation detector was
    /// built to flag.
    pub fn tick_rate(peak_current_a: f64) -> Self {
        Self::square(peak_current_a, 1, 2)
    }

    /// Fraction of each period spent drawing current.
    pub fn duty_fraction(&self) -> f64 {
        self.on_ticks as f64 / self.period_ticks as f64
    }

    /// Current drawn at fabric tick `tick`, amps — a pure function, no
    /// stream state.
    pub fn current_a(&self, tick: u64) -> f64 {
        let phase = tick.wrapping_add(self.period_ticks - self.phase_ticks % self.period_ticks)
            % self.period_ticks;
        if phase < self.on_ticks {
            self.peak_current_a
        } else {
            0.0
        }
    }

    /// A content-derived tag for seed-lane derivation in matrix sweeps
    /// (two distinct specs get distinct lanes with overwhelming
    /// probability; the same spec always gets the same lane).
    pub fn tag(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for w in [
            self.peak_current_a.to_bits(),
            self.on_ticks,
            self.period_ticks,
            self.phase_ticks,
        ] {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Fraction of the full-round cone depth active in the final AES round:
/// round 10 has no MixColumns, so its combinational cone is much
/// shallower and (at realistic droops) never violates — which is why
/// the induced faults land in rounds 1–9 and classic last-round DFA
/// applies.
const ROUND10_CONE_FRACTION: f64 = 0.62;

/// The victim's per-column combinational cone, timed once at nominal
/// voltage.
///
/// The cone is modeled as a 32-bit carry chain
/// ([`ripple_carry_adder`]`(32)`) calibrated so its critical endpoint
/// arrives at `critical_ns` — the victim column's worst slack against
/// its own clock period. Endpoints are rank-interleaved across the
/// column's four bytes (deepest endpoint → byte 0 bit 0, next → byte 1
/// bit 0, …), matching how synthesis spreads a column's late bits over
/// four byte registers: marginal droop flips one bit in each byte, and
/// deeper droop grows each byte's flipped-low-bit run — small per-byte
/// Hamming distances, the regime single-byte DFA models.
#[derive(Debug, Clone)]
pub struct VictimCone {
    /// Nominal endpoint arrivals, ns, indexed by rank (0 = deepest).
    arrival_ns: Vec<f64>,
    law: VoltageDelayLaw,
    period_ns: f64,
}

impl VictimCone {
    /// Times the victim cone: generates the carry-chain netlist,
    /// calibrates the annotation so the critical path lands at
    /// `critical_ns`, and reads the endpoint arrivals out of a
    /// [`StaEngine`] pass.
    ///
    /// # Errors
    ///
    /// Propagates netlist generation and timing analysis failures.
    pub fn build(
        delay_model: &DelayModel,
        critical_ns: f64,
        period_ns: f64,
    ) -> Result<Self, FabricError> {
        let nl = ripple_carry_adder(32)?;
        let ann = delay_model.annotate_for_period(&nl, critical_ns, 1.0)?;
        let engine = StaEngine::new(&ann)?;
        let mut arrival_ns: Vec<f64> = engine
            .output_arrivals_ps()
            .into_iter()
            .map(|ps| ps / 1000.0)
            .collect();
        // Deepest first; keep the 32 latest endpoints (the carry-out
        // rides along with the 32 sum bits).
        arrival_ns.sort_by(|a, b| b.partial_cmp(a).expect("arrivals are finite"));
        arrival_ns.truncate(32);
        Ok(VictimCone {
            arrival_ns,
            law: VoltageDelayLaw::default(),
            period_ns,
        })
    }

    /// Nominal endpoint arrivals, ns, deepest first.
    pub fn arrival_ns(&self) -> &[f64] {
        &self.arrival_ns
    }

    /// The delay-vs-voltage law the cone is derated with.
    pub fn law(&self) -> &VoltageDelayLaw {
        &self.law
    }

    /// XOR fault mask for one AES column captured while the victim rail
    /// bottomed out at `v_min`: byte `b` of the mask covers state bytes
    /// `4c + b` of the captured column.
    ///
    /// An endpoint flips when its voltage-derated arrival misses the
    /// clock edge: `arrival × scale(v_min) > period` (for the final
    /// round the arrival is first shrunk by [`ROUND10_CONE_FRACTION`]).
    /// All-nominal voltage returns the zero mask.
    ///
    /// `rotation` shifts the rank→byte assignment within the column.
    /// Which endpoints of a carry chain are *actually* near-critical
    /// depends on the operands propagating through it, not just the
    /// static worst case; callers pass a data-derived rotation so that
    /// marginal droops (which only overrun the deepest ranks) fault
    /// different bytes of the column on different encryptions. A fixed
    /// rotation of 0 reproduces the static worst-case ordering.
    pub fn column_fault_mask(&self, v_min: f64, last_round: bool, rotation: usize) -> [u8; 4] {
        let scale = self.law.scale(v_min);
        let depth = if last_round {
            ROUND10_CONE_FRACTION
        } else {
            1.0
        };
        let mut mask = [0u8; 4];
        for (rank, arrival) in self.arrival_ns.iter().enumerate() {
            if arrival * depth * scale > self.period_ns {
                mask[(rank + rotation) % 4] |= 1u8 << (rank / 4);
            }
        }
        mask
    }

    /// The shallowest victim voltage that still meets timing: droops
    /// below this flip at least one bit per column.
    pub fn fault_threshold_v(&self) -> f64 {
        let deepest = self.arrival_ns.first().copied().unwrap_or(0.0);
        if deepest <= 0.0 {
            return 0.0;
        }
        self.law.voltage_for_scale(self.period_ns / deepest)
    }
}

/// Ground-truth accounting of the induced faults (simulation-side
/// telemetry, not attacker-visible data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultTelemetry {
    /// Encryptions run with the aggressor mounted.
    pub encryptions: u64,
    /// Encryptions whose ciphertext was corrupted.
    pub faulted_encryptions: u64,
    /// AES capture cycles that violated timing.
    pub fault_cycles: u64,
    /// Total state bits flipped across all faults.
    pub flipped_bits: u64,
    /// Deepest victim-rail voltage seen during captures, volts.
    pub min_victim_v: f64,
}

impl FaultTelemetry {
    pub(crate) fn new(v_nominal: f64) -> Self {
        FaultTelemetry {
            encryptions: 0,
            faulted_encryptions: 0,
            fault_cycles: 0,
            flipped_bits: 0,
            min_victim_v: v_nominal,
        }
    }

    /// Induced-fault rate per 1000 encryptions.
    pub fn faults_per_1k(&self) -> f64 {
        if self.encryptions == 0 {
            return 0.0;
        }
        1000.0 * self.faulted_encryptions as f64 / self.encryptions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_wave_shape_and_phase() {
        let a = AggressorSpec::square(2.0, 3, 10);
        let on: Vec<u64> = (0..20).filter(|&t| a.current_a(t) > 0.0).collect();
        assert_eq!(on, vec![0, 1, 2, 10, 11, 12]);
        assert_eq!(a.duty_fraction(), 0.3);
        // A phase offset slides the on-window without changing the duty.
        let shifted = AggressorSpec {
            phase_ticks: 4,
            ..a
        };
        let on: Vec<u64> = (0..20).filter(|&t| shifted.current_a(t) > 0.0).collect();
        assert_eq!(on, vec![4, 5, 6, 14, 15, 16]);
    }

    #[test]
    fn zero_on_ticks_never_draws() {
        let a = AggressorSpec::square(5.0, 0, 7);
        assert!((0..50).all(|t| a.current_a(t) == 0.0));
    }

    #[test]
    #[should_panic(expected = "on-phase exceeds period")]
    fn oversized_on_phase_panics() {
        let _ = AggressorSpec::square(1.0, 11, 10);
    }

    #[test]
    fn tags_distinguish_specs() {
        let a = AggressorSpec::stealthy(3.5);
        let b = AggressorSpec::tick_rate(3.5);
        let c = AggressorSpec::stealthy(3.0);
        assert_ne!(a.tag(), b.tag());
        assert_ne!(a.tag(), c.tag());
        assert_eq!(a.tag(), AggressorSpec::stealthy(3.5).tag());
    }

    #[test]
    fn cone_flips_nothing_at_nominal_and_deepest_first_under_droop() {
        let cone = VictimCone::build(&DelayModel::default(), 9.0, 10.0).unwrap();
        assert_eq!(cone.arrival_ns().len(), 32);
        assert!((cone.arrival_ns()[0] - 9.0).abs() < 1e-9, "calibrated");
        assert_eq!(cone.column_fault_mask(1.0, false, 0), [0u8; 4]);
        // Just past the threshold, only low bits flip; flipped-bit count
        // grows monotonically as the rail sinks.
        let threshold = cone.fault_threshold_v();
        assert!(threshold < 1.0 && threshold > 0.9, "threshold {threshold}");
        let mut prev = 0u32;
        for mv in 1..60 {
            let v = threshold - f64::from(mv) * 1e-3;
            let mask = cone.column_fault_mask(v, false, 0);
            let bits: u32 = mask.iter().map(|b| b.count_ones()).sum();
            assert!(bits >= prev, "monotone at v = {v}");
            prev = bits;
        }
        assert!(prev >= 4, "deep droop flips several bits: {prev}");
        // Marginal droop keeps per-byte Hamming distance at 1 — the
        // single-byte DFA regime.
        let marginal = cone.column_fault_mask(threshold - 2e-3, false, 0);
        assert!(marginal.iter().any(|&b| b != 0));
        assert!(marginal.iter().all(|&b| b.count_ones() <= 1));
    }

    #[test]
    fn round10_cone_is_far_harder_to_fault() {
        let cone = VictimCone::build(&DelayModel::default(), 9.0, 10.0).unwrap();
        // A droop that solidly faults a MixColumns round leaves the
        // shallow final round intact.
        let v = cone.fault_threshold_v() - 0.02;
        assert_ne!(cone.column_fault_mask(v, false, 0), [0u8; 4]);
        assert_eq!(cone.column_fault_mask(v, true, 0), [0u8; 4]);
    }

    #[test]
    fn cone_mask_agrees_with_derated_sta_engine() {
        // The fabric's per-cycle check must be the StaEngine criterion:
        // rebuild the annotation, derate it by scale(v), re-run STA and
        // compare violation sets endpoint by endpoint.
        let model = DelayModel::default();
        let cone = VictimCone::build(&model, 9.0, 10.0).unwrap();
        let nl = ripple_carry_adder(32).unwrap();
        let ann = model.annotate_for_period(&nl, 9.0, 1.0).unwrap();
        let engine = StaEngine::new(&ann).unwrap();
        for v in [0.97, 0.945, 0.93, 0.91] {
            let scale = cone.law().scale(v);
            let violating = engine.derated_violations(scale, 10.0 * 1000.0);
            let mask = cone.column_fault_mask(v, false, 0);
            let flipped: u32 = mask.iter().map(|b| b.count_ones()).sum();
            // Ranks are a sorted view of the same arrivals, so the
            // violation *count* must match exactly (the cone keeps the
            // 32 deepest of 33 endpoints; the dropped shallowest can
            // never violate before all kept ones do).
            assert_eq!(
                flipped.min(32),
                (violating.len() as u32).min(32),
                "at v = {v}"
            );
        }
    }
}
