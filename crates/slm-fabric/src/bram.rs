//! BRAM trace capture model.

use crate::error::FabricError;
use serde::{Deserialize, Serialize};

/// A bounded on-chip capture buffer, as the paper's design uses to store
/// each benign-circuit result "in BRAM and returned to the workstation
/// as a trace along with the ciphertext".
///
/// A 7-series 36 Kb BRAM stores 1024 × 36-bit words; the model counts
/// capacity in 64-bit sample words and either drops new samples or
/// errors on overflow depending on `strict`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BramCapture {
    depth_words: usize,
    strict: bool,
    data: Vec<u64>,
    dropped: usize,
}

impl BramCapture {
    /// Creates a capture buffer holding `depth_words` 64-bit words.
    pub fn new(depth_words: usize, strict: bool) -> Self {
        BramCapture {
            depth_words,
            strict,
            data: Vec::new(),
            dropped: 0,
        }
    }

    /// Capacity of one Zynq-7020 36 Kb block RAM in 64-bit words.
    pub fn single_bram36() -> Self {
        Self::new(36 * 1024 / 64, false)
    }

    /// Words currently stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Words that did not fit (non-strict mode).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Remaining capacity in words.
    pub fn free(&self) -> usize {
        self.depth_words - self.data.len()
    }

    /// Appends sample words.
    ///
    /// # Errors
    ///
    /// In strict mode, [`FabricError::CaptureOverflow`] when the buffer
    /// would overflow (nothing is written). In non-strict mode the
    /// overflowing words are counted in [`BramCapture::dropped`].
    pub fn push(&mut self, words: &[u64]) -> Result<(), FabricError> {
        if self.data.len() + words.len() > self.depth_words {
            if self.strict {
                return Err(FabricError::CaptureOverflow {
                    depth: self.depth_words,
                });
            }
            let fit = self.depth_words - self.data.len();
            self.data.extend_from_slice(&words[..fit]);
            self.dropped += words.len() - fit;
            return Ok(());
        }
        self.data.extend_from_slice(words);
        Ok(())
    }

    /// Drains the buffer, returning all stored words (the UART readout).
    pub fn drain(&mut self) -> Vec<u64> {
        self.dropped = 0;
        std::mem::take(&mut self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain() {
        let mut b = BramCapture::new(4, true);
        b.push(&[1, 2]).unwrap();
        b.push(&[3]).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.free(), 1);
        assert_eq!(b.drain(), vec![1, 2, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn strict_overflow_errors_atomically() {
        let mut b = BramCapture::new(2, true);
        b.push(&[1]).unwrap();
        let err = b.push(&[2, 3]).unwrap_err();
        assert!(matches!(err, FabricError::CaptureOverflow { depth: 2 }));
        assert_eq!(b.len(), 1, "failed push must not partially write");
    }

    #[test]
    fn lossy_overflow_counts_drops() {
        let mut b = BramCapture::new(2, false);
        b.push(&[1, 2, 3, 4]).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 2);
        assert_eq!(b.drain(), vec![1, 2]);
        assert_eq!(b.dropped(), 0);
    }

    #[test]
    fn bram36_capacity() {
        let b = BramCapture::single_bram36();
        assert_eq!(b.free(), 576);
    }
}
