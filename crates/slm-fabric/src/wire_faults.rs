//! Deterministic fault injection for the UART wire.
//!
//! Real multi-tenant capture rigs lose bytes: shared-shell crosstalk,
//! marginal level shifters, a host process that deschedules mid-frame.
//! A capture campaign that assumes a clean wire silently corrupts its
//! trace set — the CPA ingests a desynchronized ciphertext/trace pair
//! and the correlation peak washes out. To test the resilient path, a
//! [`WireFaultPlan`] mounts a seeded adversary between the two frame
//! queues: every byte and every frame passes through it, and the same
//! seed replays the exact same fault sequence.

use slm_pdn::noise::Rng64;

/// A declarative description of wire faults, applied deterministically
/// from `seed`.
///
/// Byte-level probabilities are per byte moved; frame-level
/// probabilities are per frame queued. All rates default to zero, so
/// `WireFaultPlan::new(seed)` is a transparent wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFaultPlan {
    /// Seed for the fault stream. The same plan + seed replays
    /// identically, which is what makes fault campaigns debuggable.
    pub seed: u64,
    /// Probability a byte has one random bit flipped.
    pub bit_flip: f64,
    /// Probability a byte is dropped from the stream.
    pub drop_byte: f64,
    /// Probability a byte is duplicated.
    pub dup_byte: f64,
    /// Probability a frame gets a burst of random bytes spliced in.
    pub burst: f64,
    /// Maximum burst length in bytes (uniform in `1..=burst_len`).
    pub burst_len: usize,
    /// Probability a frame is truncated (tail cut off mid-flight).
    pub truncate: f64,
    /// Probability a frame is lost entirely (stalled responder, host
    /// overrun); the receiver sees nothing.
    pub stall: f64,
}

impl WireFaultPlan {
    /// A transparent plan: no faults, but the injector machinery (and
    /// its accounting) stays in the path.
    pub fn new(seed: u64) -> Self {
        WireFaultPlan {
            seed,
            bit_flip: 0.0,
            drop_byte: 0.0,
            dup_byte: 0.0,
            burst: 0.0,
            burst_len: 8,
            truncate: 0.0,
            stall: 0.0,
        }
    }

    /// Uniform byte-fault profile: flips, drops and duplications each
    /// at `rate` per byte, plus rare frame-level faults (burst,
    /// truncation, stall) at `50 × rate` per frame — roughly the shape
    /// of a marginal but usable serial link.
    pub fn byte_noise(seed: u64, rate: f64) -> Self {
        let frame_rate = (50.0 * rate).min(1.0);
        WireFaultPlan {
            bit_flip: rate,
            drop_byte: rate,
            dup_byte: rate,
            burst: frame_rate,
            truncate: frame_rate,
            stall: frame_rate,
            ..WireFaultPlan::new(seed)
        }
    }

    /// The same fault profile on an independent stream for shard
    /// `index` of a sharded campaign (see
    /// [`crate::FabricConfig::for_shard`]). Rates are unchanged; only
    /// the seed forks, so every shard's wire misbehaves with the same
    /// statistics but its own reproducible fault sequence.
    pub fn fork(&self, index: usize) -> WireFaultPlan {
        WireFaultPlan {
            seed: slm_par::mix_seed(self.seed, index as u64),
            ..self.clone()
        }
    }

    /// Sets the bit-flip probability per byte.
    pub fn with_bit_flip(mut self, p: f64) -> Self {
        self.bit_flip = p;
        self
    }

    /// Sets the byte-drop probability per byte.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_byte = p;
        self
    }

    /// Sets the byte-duplication probability per byte.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_byte = p;
        self
    }

    /// Sets the per-frame burst-noise probability and burst length cap.
    pub fn with_burst(mut self, p: f64, max_len: usize) -> Self {
        self.burst = p;
        self.burst_len = max_len.max(1);
        self
    }

    /// Sets the per-frame truncation probability.
    pub fn with_truncate(mut self, p: f64) -> Self {
        self.truncate = p;
        self
    }

    /// Sets the per-frame stall (whole-frame loss) probability.
    pub fn with_stall(mut self, p: f64) -> Self {
        self.stall = p;
        self
    }
}

/// Counters for every fault actually applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireFaultStats {
    /// Frames that passed through the injector.
    pub frames_seen: u64,
    /// Bytes that passed through the injector.
    pub bytes_seen: u64,
    /// Bytes that had a bit flipped.
    pub bits_flipped: u64,
    /// Bytes silently removed.
    pub bytes_dropped: u64,
    /// Bytes duplicated.
    pub bytes_duplicated: u64,
    /// Random-byte bursts spliced into frames.
    pub bursts: u64,
    /// Frames with their tails cut off.
    pub frames_truncated: u64,
    /// Frames lost entirely.
    pub frames_stalled: u64,
}

impl WireFaultStats {
    /// Total individual fault events applied.
    pub fn total_faults(&self) -> u64 {
        self.bits_flipped
            + self.bytes_dropped
            + self.bytes_duplicated
            + self.bursts
            + self.frames_truncated
            + self.frames_stalled
    }
}

/// Applies a [`WireFaultPlan`] to frames crossing the wire.
#[derive(Debug, Clone)]
pub struct WireFaultInjector {
    plan: WireFaultPlan,
    rng: Rng64,
    stats: WireFaultStats,
}

impl WireFaultInjector {
    /// Creates an injector; the fault stream is fully determined by
    /// `plan.seed`.
    pub fn new(plan: WireFaultPlan) -> Self {
        let rng = Rng64::new(plan.seed);
        WireFaultInjector {
            plan,
            rng,
            stats: WireFaultStats::default(),
        }
    }

    /// Runs one encoded frame through the fault model, returning the
    /// bytes that actually reach the far queue (possibly empty).
    pub fn mangle(&mut self, frame: Vec<u8>) -> Vec<u8> {
        self.stats.frames_seen += 1;
        self.stats.bytes_seen += frame.len() as u64;

        if self.rng.chance(self.plan.stall) {
            self.stats.frames_stalled += 1;
            return Vec::new();
        }

        let mut bytes = frame;
        if self.rng.chance(self.plan.truncate) && !bytes.is_empty() {
            let keep = self.rng.below(bytes.len() as u64) as usize;
            bytes.truncate(keep);
            self.stats.frames_truncated += 1;
        }

        let mut out = Vec::with_capacity(bytes.len() + self.plan.burst_len);
        if self.rng.chance(self.plan.burst) {
            // Burst noise lands *before* the frame: the classic shape of
            // line glitches between frames, which is exactly what the
            // scanning decoder must skip over.
            let n = 1 + self.rng.below(self.plan.burst_len as u64) as usize;
            let mut noise = vec![0u8; n];
            self.rng.fill_bytes(&mut noise);
            out.extend_from_slice(&noise);
            self.stats.bursts += 1;
        }
        for b in bytes {
            if self.rng.chance(self.plan.drop_byte) {
                self.stats.bytes_dropped += 1;
                continue;
            }
            let b = if self.rng.chance(self.plan.bit_flip) {
                self.stats.bits_flipped += 1;
                b ^ (1u8 << self.rng.below(8))
            } else {
                b
            };
            out.push(b);
            if self.rng.chance(self.plan.dup_byte) {
                self.stats.bytes_duplicated += 1;
                out.push(b);
            }
        }
        out
    }

    /// Fault accounting so far.
    pub fn stats(&self) -> &WireFaultStats {
        &self.stats
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &WireFaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_plan_passes_bytes_untouched() {
        let mut inj = WireFaultInjector::new(WireFaultPlan::new(7));
        let frame: Vec<u8> = (0..64).collect();
        assert_eq!(inj.mangle(frame.clone()), frame);
        assert_eq!(inj.stats().total_faults(), 0);
        assert_eq!(inj.stats().frames_seen, 1);
        assert_eq!(inj.stats().bytes_seen, 64);
    }

    #[test]
    fn same_seed_replays_identical_faults() {
        let plan = WireFaultPlan::byte_noise(42, 0.01);
        let mut a = WireFaultInjector::new(plan.clone());
        let mut b = WireFaultInjector::new(plan);
        for i in 0..200u64 {
            let frame: Vec<u8> = (0..48).map(|j| (i as u8).wrapping_add(j)).collect();
            assert_eq!(a.mangle(frame.clone()), b.mangle(frame));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn noisy_plan_actually_faults() {
        // 0.005/byte keeps the derived frame-level rates at 0.25, so
        // most frames still carry bytes for the byte-level faults.
        let mut inj = WireFaultInjector::new(WireFaultPlan::byte_noise(1, 0.005));
        for _ in 0..500 {
            inj.mangle(vec![0xaa; 64]);
        }
        let s = inj.stats();
        assert!(s.bits_flipped > 0, "expected bit flips: {s:?}");
        assert!(s.bytes_dropped > 0, "expected drops: {s:?}");
        assert!(s.bytes_duplicated > 0, "expected dups: {s:?}");
        assert!(s.frames_stalled > 0, "expected stalls: {s:?}");
    }

    #[test]
    fn stall_swallows_whole_frame() {
        let mut inj = WireFaultInjector::new(WireFaultPlan::new(3).with_stall(1.0));
        assert!(inj.mangle(vec![1, 2, 3]).is_empty());
        assert_eq!(inj.stats().frames_stalled, 1);
    }
}
