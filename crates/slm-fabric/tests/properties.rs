//! Property-based tests for the fabric co-simulation.

use proptest::prelude::*;
use slm_aes::soft;
use slm_fabric::{
    AesActivity, BenignCircuit, CampaignDriver, DecodeOutcome, FabricConfig, FabricError,
    MultiTenantFabric, RemoteSession, TransportError, UartFrame, UartLink, WireFaultPlan,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the seed and plaintext, the fabric's ciphertext is the
    /// reference AES ciphertext: the side-channel machinery must never
    /// perturb function.
    #[test]
    fn ciphertext_always_correct(pt in any::<[u8; 16]>(), seed in any::<u64>()) {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let rec = fabric.encrypt_and_capture(pt);
        prop_assert_eq!(rec.ciphertext, soft::encrypt(&config.aes_key, &pt));
    }

    /// Capture geometry is invariant: sample counts and endpoint widths
    /// never depend on data or seed.
    #[test]
    fn capture_geometry_invariant(pt in any::<[u8; 16]>(), seed in any::<u64>()) {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let rec = fabric.encrypt_and_capture(pt);
        prop_assert_eq!(rec.benign.len(), fabric.samples_per_encryption());
        prop_assert_eq!(rec.tdc.len(), rec.benign.len());
        for s in &rec.benign {
            prop_assert_eq!(s.len, 64);
        }
    }

    /// Same seed ⇒ bit-identical runs; different seeds ⇒ different
    /// sensor noise (with overwhelming probability).
    #[test]
    fn determinism_per_seed(pt in any::<[u8; 16]>(), seed in any::<u64>()) {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            ..FabricConfig::default()
        };
        let r1 = MultiTenantFabric::new(&config).unwrap().encrypt_and_capture(pt);
        let r2 = MultiTenantFabric::new(&config).unwrap().encrypt_and_capture(pt);
        prop_assert_eq!(&r1, &r2);
        let other = FabricConfig { seed: seed ^ 1, ..config };
        let r3 = MultiTenantFabric::new(&other).unwrap().encrypt_and_capture(pt);
        prop_assert_ne!(&r1.tdc, &r3.tdc);
    }

    /// UART frames round-trip arbitrary payloads and sequence numbers.
    #[test]
    fn uart_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        seq in 0u8..=255,
    ) {
        let frame = UartFrame::new(seq, payload.clone());
        let wire = frame.encode();
        let (back, used) = UartFrame::decode(&wire).unwrap();
        prop_assert_eq!(back.payload, payload);
        prop_assert_eq!(back.seq, seq);
        prop_assert_eq!(used, wire.len());
    }

    /// Any single flipped byte in a nonempty payload is detected (sync,
    /// header or CRC), or re-parses as a strictly shorter frame — never
    /// as silently corrupted same-length data.
    #[test]
    fn uart_detects_single_byte_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        seq in 0u8..=255,
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let frame = UartFrame::new(seq, payload.clone());
        let mut wire = frame.encode();
        let pos = (pos_seed as usize) % wire.len();
        wire[pos] ^= flip;
        match UartFrame::decode(&wire) {
            Err(_) => {} // detected
            Ok((back, _)) => {
                // a length-field corruption can reframe the stream; the
                // decoded payload must then differ in length (the CRC
                // protects same-length payload substitution)
                prop_assert_ne!(back.payload.len(), payload.len());
            }
        }
    }

    /// The scanning decoder never panics and never hands back a
    /// same-geometry corrupted payload, on arbitrarily mutated streams:
    /// encode a batch of frames, splatter byte mutations over the
    /// buffer, then scan to exhaustion. Every frame that comes out must
    /// be byte-identical to one that went in (CRC-16 collisions on
    /// random corruption are ~2^-16 per candidate; the deterministic
    /// cases here contain none).
    #[test]
    fn scanner_survives_arbitrary_mutation(
        payload_len in 0usize..48,
        n_frames in 1usize..6,
        n_mutations in 0usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = seed;
        let mut next = move || {
            // splitmix64 — deterministic per-case byte source
            rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut sent = Vec::new();
        let mut wire = Vec::new();
        for i in 0..n_frames {
            let payload: Vec<u8> = (0..payload_len).map(|_| next() as u8).collect();
            let f = UartFrame::new(i as u8, payload);
            wire.extend(f.encode());
            sent.push(f);
        }
        for _ in 0..n_mutations {
            if wire.is_empty() { break; }
            let pos = (next() as usize) % wire.len();
            wire[pos] ^= (next() as u8) | 1;
        }
        // Scan to exhaustion; must terminate and only yield sent frames.
        let mut offset = 0usize;
        let mut decoded = Vec::new();
        while offset < wire.len() {
            match UartFrame::scan(&wire[offset..]) {
                DecodeOutcome::Frame { frame, consumed } => {
                    decoded.push(frame);
                    offset += consumed;
                }
                DecodeOutcome::NeedMore { .. } => break,
                DecodeOutcome::Corrupt { skip, .. } => offset += skip.max(1),
            }
        }
        for f in &decoded {
            prop_assert!(
                sent.contains(f),
                "scanner fabricated a frame: {:?}", f
            );
        }
    }

    /// Full-size campaign-driver property (12 cases × 8 captures on
    /// the big C6288 fabric) — nightly only; the un-ignored
    /// `campaign_driver_validated_or_typed_error_quick` below covers
    /// the same property at tier-1 scale.
    #[test]
    #[ignore = "slow: full fabric simulation per case; run with --ignored"]
    fn campaign_driver_validated_or_typed_error(
        seed in any::<u64>(),
        rate_exp in 2.0f64..4.0,
    ) {
        check_campaign_driver(seed, rate_exp, BenignCircuit::DualC6288, 8);
    }

    /// A link under arbitrary byte noise never delivers a corrupted
    /// frame: whatever comes out of `host_recv` must be one of the
    /// frames the FPGA actually sent.
    #[test]
    fn faulty_link_never_delivers_garbage(
        seed in any::<u64>(),
        rate_exp in 1.5f64..3.5,
        n_frames in 1usize..20,
    ) {
        let rate = 10f64.powf(-rate_exp);
        let mut link = UartLink::with_faults(921_600, WireFaultPlan::byte_noise(seed, rate));
        let mut sent = Vec::new();
        for i in 0..n_frames {
            let f = UartFrame::new(i as u8, vec![i as u8; 24]);
            link.fpga_send(&f);
            sent.push(f);
        }
        while let Some(got) = link.host_recv() {
            prop_assert!(sent.contains(&got), "link fabricated {:?}", got);
        }
    }

    /// run_activity returns exactly the requested number of samples with
    /// consistent side arrays.
    #[test]
    fn activity_run_geometry(samples in 1usize..200, seed in any::<u64>()) {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let t = fabric.run_activity(None, AesActivity::Continuous, samples);
        prop_assert_eq!(t.benign.len(), samples);
        prop_assert_eq!(t.tdc.len(), samples);
        prop_assert_eq!(t.voltage.len(), samples);
        prop_assert_eq!(t.ro_enabled.len(), samples);
        for &v in &t.voltage {
            prop_assert!((0.5..1.2).contains(&v), "implausible rail voltage {v}");
        }
    }

    /// A stale garbage prefix — even one ending in a fake sync byte
    /// whose implied length promises a frame that never arrives — can
    /// never park the host-side scanner. Idle wire time alone walks the
    /// sliding resync timeout past the junk and delivers the real frame
    /// that was queued behind it, with no driver-level `flush()`.
    #[test]
    fn fake_sync_prefix_never_parks_the_host_scanner(
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
        fake_len in 4096u16..8192,
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        seq in any::<u8>(),
    ) {
        const TIMEOUT_SLOTS: u64 = 256;
        let baud = 115_200u64;
        let mut link = UartLink::new(baud).with_resync_timeout_bytes(TIMEOUT_SLOTS);
        // Arbitrary line noise, then the adversarial worst case: a fake
        // sync header implying a frame far longer than anything buffered.
        let mut noise = garbage;
        noise.push(UartFrame::SYNC);
        noise.push(0x00);
        noise.extend(fake_len.to_le_bytes());
        link.inject_to_host(&noise);
        let frame = UartFrame::new(seq, payload);
        link.fpga_send(&frame);
        let timeout_s = TIMEOUT_SLOTS as f64 * 10.0 / baud as f64;
        let mut delivered = false;
        for _ in 0..200 {
            if let Some(got) = link.host_recv() {
                if got == frame {
                    delivered = true;
                    break;
                }
                // A CRC-lucky frame assembled from noise: keep scanning.
                continue;
            }
            link.charge_idle(timeout_s * 1.1);
        }
        prop_assert!(
            delivered,
            "scanner parked on a fake sync prefix: {:?}",
            link.stats()
        );
    }
}

/// Shared body of the campaign-driver property: a `CampaignDriver`
/// over a seeded fault plan yields, for every request, either a
/// validated record (correct ciphertext) or a typed transport error —
/// never a panic, never a silently wrong trace.
fn check_campaign_driver(seed: u64, rate_exp: f64, circuit: BenignCircuit, captures: u8) {
    let rate = 10f64.powf(-rate_exp); // 1e-4 ..= 1e-2 per byte
    let config = FabricConfig {
        benign: circuit,
        ..FabricConfig::default()
    };
    let session =
        RemoteSession::with_fault_plan(&config, vec![], WireFaultPlan::byte_noise(seed, rate))
            .unwrap();
    let key = session.fabric().config().aes_key;
    let mut driver = CampaignDriver::new(session);
    for i in 0..captures {
        let pt = [i.wrapping_mul(17) ^ (seed as u8); 16];
        match driver.capture(pt) {
            Ok(rec) => {
                prop_assert_eq!(rec.ciphertext, slm_aes::soft::encrypt(&key, &pt));
                prop_assert!(!rec.tdc.is_empty());
            }
            Err(FabricError::Transport(TransportError::RetriesExhausted { .. })) => {}
            Err(other) => prop_assert!(false, "untyped failure: {}", other),
        }
    }
}

proptest! {
    // Tier-1 sizing: few cases on the small ALU fabric, enough to keep
    // the validated-or-typed-error contract exercised on every `cargo
    // test` run; the 12-case C6288 variant above stays behind
    // `--ignored` for the nightly job.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn campaign_driver_validated_or_typed_error_quick(
        seed in any::<u64>(),
        rate_exp in 2.0f64..4.0,
    ) {
        check_campaign_driver(seed, rate_exp, BenignCircuit::Alu192, 3);
    }
}
