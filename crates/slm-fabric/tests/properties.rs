//! Property-based tests for the fabric co-simulation.

use proptest::prelude::*;
use slm_aes::soft;
use slm_fabric::{AesActivity, BenignCircuit, FabricConfig, MultiTenantFabric, UartFrame};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the seed and plaintext, the fabric's ciphertext is the
    /// reference AES ciphertext: the side-channel machinery must never
    /// perturb function.
    #[test]
    fn ciphertext_always_correct(pt in any::<[u8; 16]>(), seed in any::<u64>()) {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let rec = fabric.encrypt_and_capture(pt);
        prop_assert_eq!(rec.ciphertext, soft::encrypt(&config.aes_key, &pt));
    }

    /// Capture geometry is invariant: sample counts and endpoint widths
    /// never depend on data or seed.
    #[test]
    fn capture_geometry_invariant(pt in any::<[u8; 16]>(), seed in any::<u64>()) {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let rec = fabric.encrypt_and_capture(pt);
        prop_assert_eq!(rec.benign.len(), fabric.samples_per_encryption());
        prop_assert_eq!(rec.tdc.len(), rec.benign.len());
        for s in &rec.benign {
            prop_assert_eq!(s.len, 64);
        }
    }

    /// Same seed ⇒ bit-identical runs; different seeds ⇒ different
    /// sensor noise (with overwhelming probability).
    #[test]
    fn determinism_per_seed(pt in any::<[u8; 16]>(), seed in any::<u64>()) {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            ..FabricConfig::default()
        };
        let r1 = MultiTenantFabric::new(&config).unwrap().encrypt_and_capture(pt);
        let r2 = MultiTenantFabric::new(&config).unwrap().encrypt_and_capture(pt);
        prop_assert_eq!(&r1, &r2);
        let other = FabricConfig { seed: seed ^ 1, ..config };
        let r3 = MultiTenantFabric::new(&other).unwrap().encrypt_and_capture(pt);
        prop_assert_ne!(&r1.tdc, &r3.tdc);
    }

    /// UART frames round-trip arbitrary payloads.
    #[test]
    fn uart_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let frame = UartFrame::new(payload.clone());
        let wire = frame.encode();
        let (back, used) = UartFrame::decode(&wire).unwrap();
        prop_assert_eq!(back.payload, payload);
        prop_assert_eq!(used, wire.len());
    }

    /// Any single flipped byte in a nonempty payload is detected (sync,
    /// length or checksum), or re-parses as a strictly shorter frame —
    /// never as silently corrupted same-length data.
    #[test]
    fn uart_detects_single_byte_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let frame = UartFrame::new(payload.clone());
        let mut wire = frame.encode();
        let pos = (pos_seed as usize) % wire.len();
        wire[pos] ^= flip;
        match UartFrame::decode(&wire) {
            Err(_) => {} // detected
            Ok((back, _)) => {
                // a length-field corruption can reframe the stream; the
                // decoded payload must then differ in length (the
                // checksum protects same-length payload substitution)
                prop_assert_ne!(back.payload.len(), payload.len());
            }
        }
    }

    /// run_activity returns exactly the requested number of samples with
    /// consistent side arrays.
    #[test]
    fn activity_run_geometry(samples in 1usize..200, seed in any::<u64>()) {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            seed,
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let t = fabric.run_activity(None, AesActivity::Continuous, samples);
        prop_assert_eq!(t.benign.len(), samples);
        prop_assert_eq!(t.tdc.len(), samples);
        prop_assert_eq!(t.voltage.len(), samples);
        prop_assert_eq!(t.ro_enabled.len(), samples);
        for &v in &t.voltage {
            prop_assert!((0.5..1.2).contains(&v), "implausible rail voltage {v}");
        }
    }
}
