//! What a tenant hands the provider: a netlist, the interface contract
//! it claims, the workload it wants to run once deployed, and the
//! quota it bought.

use serde::{Deserialize, Serialize};
use slm_cpa::DfaModel;
use slm_fabric::AggressorSpec;
use slm_fabric::BenignCircuit;
use slm_netlist::Netlist;

pub use slm_core::experiments::{DefenseArm, SensorSource};

/// The clock portion of a tenant's interface contract.
///
/// In the deployment model the provider's shell owns clock routing: a
/// tenant wanting the clock on a pin must declare it regardless of what
/// the pin is named, and a requested operating frequency subjects the
/// design to the strict timing check at admission. Both feed the
/// admission scan, so lying in the contract changes the verdict, not
/// the scan's blind spots.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClockContract {
    /// Input pins the contract declares as clock-fed (seeds the
    /// semantic clock-taint pass).
    pub declared_clocks: Vec<String>,
    /// Requested operating frequency; `Some` additionally runs the
    /// strict STA timing check at admission.
    pub clock_mhz: Option<f64>,
}

/// What kind of campaign each deployed tenant run drives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CampaignKind {
    /// Passive sensing: a CPA key-recovery campaign reading the given
    /// sensor source.
    Cpa {
        /// Which sensor output the campaign records.
        source: SensorSource,
    },
    /// Active fault injection: a PDN aggressor mounted at runtime, with
    /// last-round DFA over the resulting correct/faulty pairs. The
    /// aggressor is invisible to admission — it is runtime behaviour,
    /// not netlist structure — which is exactly the gap the stealthy
    /// co-residency scenario demonstrates.
    Fault {
        /// The aggressor operating point.
        aggressor: AggressorSpec,
        /// The DFA fault model analysing the pairs.
        model: DfaModel,
    },
}

/// The traffic a tenant wants to run once placed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The fabric-side benign circuit the campaign shares the PDN with.
    pub circuit: BenignCircuit,
    /// Campaign flavour (passive CPA or active fault injection).
    pub kind: CampaignKind,
    /// Captures per campaign.
    pub traces: u64,
    /// How many campaigns the tenant wants delivered.
    pub campaigns: u32,
    /// Countermeasure arm the provider deploys on this tenant's
    /// fabric, if any.
    pub defense: Option<DefenseArm>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            circuit: BenignCircuit::Alu192,
            kind: CampaignKind::Cpa {
                source: SensorSource::TdcAll,
            },
            traces: 120,
            campaigns: 1,
            defense: None,
        }
    }
}

/// Per-tenant resource limits, in the service's logical units: rounds
/// of the event loop stand in for wall seconds (the loop is the
/// service's clock), so `max_region_rounds` is the region-seconds
/// quota and `max_traces_per_round` is the traces/sec rate cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantQuota {
    /// Total trace budget across every campaign. A tenant whose next
    /// campaign would exceed it is preempted (evicted) instead.
    pub max_traces: u64,
    /// Rounds the tenant may hold a region before preemption.
    pub max_region_rounds: u64,
    /// Traces the tenant may have dispatched within one round.
    pub max_traces_per_round: u64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_traces: u64::MAX,
            max_region_rounds: u64::MAX,
            max_traces_per_round: u64::MAX,
        }
    }
}

/// One tenant submission: the admission queue's unit of work.
#[derive(Debug, Clone)]
pub struct TenantSubmission {
    /// Tenant name (unique per submission sequence by convention; used
    /// in reports and co-residency policies).
    pub tenant: String,
    /// The netlist the tenant wants deployed — what admission scans.
    pub netlist: Netlist,
    /// The clock contract accompanying the netlist.
    pub contract: ClockContract,
    /// The campaign traffic to run once placed.
    pub workload: WorkloadSpec,
    /// The tenant's resource limits.
    pub quota: TenantQuota,
}

impl TenantSubmission {
    /// A submission with default contract, workload and quota.
    pub fn new(tenant: impl Into<String>, netlist: Netlist) -> Self {
        TenantSubmission {
            tenant: tenant.into(),
            netlist,
            contract: ClockContract::default(),
            workload: WorkloadSpec::default(),
            quota: TenantQuota::default(),
        }
    }

    /// Replaces the clock contract.
    pub fn with_contract(mut self, contract: ClockContract) -> Self {
        self.contract = contract;
        self
    }

    /// Replaces the workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Replaces the quota.
    pub fn with_quota(mut self, quota: TenantQuota) -> Self {
        self.quota = quota;
        self
    }

    /// The tenant's region demand in grid cells: netlist nets divided
    /// by the scheduler's packing factor, with a floor of one cell.
    pub fn demand_cells(&self, nets_per_cell: usize) -> usize {
        self.netlist.len().div_ceil(nets_per_cell.max(1)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let sub = TenantSubmission::new("alice", slm_netlist::generators::c17())
            .with_contract(ClockContract {
                declared_clocks: vec!["clk".into()],
                clock_mhz: Some(300.0),
            })
            .with_workload(WorkloadSpec {
                campaigns: 3,
                ..WorkloadSpec::default()
            })
            .with_quota(TenantQuota {
                max_traces: 500,
                ..TenantQuota::default()
            });
        assert_eq!(sub.tenant, "alice");
        assert_eq!(sub.contract.declared_clocks, vec!["clk".to_string()]);
        assert_eq!(sub.workload.campaigns, 3);
        assert_eq!(sub.quota.max_traces, 500);
    }

    #[test]
    fn demand_rounds_up_and_clamps() {
        let sub = TenantSubmission::new("t", slm_netlist::generators::c17());
        let nets = sub.netlist.len();
        assert_eq!(sub.demand_cells(1), nets);
        assert_eq!(sub.demand_cells(4), nets.div_ceil(4));
        assert_eq!(sub.demand_cells(0), nets, "packing factor clamps to 1");
        assert_eq!(sub.demand_cells(10_000), 1, "never zero cells");
    }
}
