//! `slm-cloud` — the multi-tenant fabric **service**: what the rest of
//! the workspace models as isolated experiments, packaged as a cloud
//! provider's control plane.
//!
//! The paper's threat model assumes an FPGA cloud that rents fabric
//! regions to mutually distrusting tenants. This crate builds that
//! provider:
//!
//! * **Intake & admission** — tenant submissions (netlist + clock
//!   contract + workload) flow through bounded queues into the full
//!   `slm-checker` pass suite. `Reject` findings deny the tenant with
//!   diagnostics; `Warn` findings admit it *flagged*; scans replay
//!   through a shared [`ScanCache`](slm_checker::ScanCache).
//! * **Region scheduling** — admitted tenants are best-fit packed onto
//!   partial-reconfiguration slots carved from
//!   [`Floorplan`](slm_fabric::floorplan::Floorplan) boards, under an
//!   explicit [`CoResidencyPolicy`]: attacker/victim pairing is a
//!   scenario the operator opts into, never an accident.
//! * **Campaign runtime** — placed tenants drive capture/defense
//!   campaigns (CPA or PDN fault injection) on an `slm-par`-backed
//!   fan-out, with per-tenant quotas (lifetime traces, per-round rate,
//!   region lease), preemption on exhaustion, load shedding on queue
//!   overflow, and graceful drain.
//! * **Observability** — every stage records `cloud.*` counters,
//!   queue-depth gauges, an admission-latency histogram (in logical
//!   rounds) and spans through `slm-obs`.
//!
//! The whole service is deterministic under a seed: the same
//! submission sequence and [`ServiceConfig`] produce a bit-identical
//! [`ServiceReport`] — and worker-invariant deterministic metrics — at
//! any worker count. The property tests in `tests/cloud_service.rs`
//! pin exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod queue;
pub mod quota;
pub mod scheduler;
pub mod service;
pub mod submission;

pub use admission::{AdmissionDecision, AdmissionGate, AdmissionVerdict};
pub use queue::BoundedQueue;
pub use quota::{QuotaDecision, QuotaLedger};
pub use scheduler::{
    CoResidencyMode, CoResidencyPolicy, Occupant, Placement, RegionScheduler, RegionSpec,
};
pub use service::{
    CampaignOutcome, CloudService, ServiceConfig, ServiceError, ServiceReport, TenantRecord,
    TenantStatus,
};
pub use submission::{
    CampaignKind, ClockContract, DefenseArm, SensorSource, TenantQuota, TenantSubmission,
    WorkloadSpec,
};
