//! Scan-gated admission: every tenant submission runs the full
//! `slm-checker` pass suite (plus the strict timing check when the
//! contract requests a frequency) before any fabric is provisioned.
//!
//! The gate is the service's security boundary, so its verdict
//! vocabulary is deliberately small: `Reject` findings deny the
//! tenant outright, `Warn` findings admit it *flagged* — visible to
//! the co-residency policy — and a clean report admits it unmarked.
//! Scans replay through a shared [`ScanCache`], so a workload that
//! resubmits the same netlist (the common case for campaign fleets)
//! pays for one scan.

use crate::submission::TenantSubmission;
use serde::{Deserialize, Serialize};
use slm_checker::{check_timing, CheckReport, CheckerConfig, PassManager, ScanCache, Severity};
use slm_timing::DelayModel;

/// The gate's three-way outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionVerdict {
    /// Clean report: deploy unmarked.
    Admitted,
    /// `Warn`-level findings: deploy, but flag the tenant for the
    /// co-residency policy.
    AdmittedWithFlags,
    /// `Reject`-level findings: no fabric for this netlist.
    Denied,
}

impl AdmissionVerdict {
    /// Whether the tenant gets fabric at all.
    pub fn admitted(self) -> bool {
        !matches!(self, AdmissionVerdict::Denied)
    }
}

/// The gate's full answer for one submission.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionDecision {
    /// Three-way outcome.
    pub verdict: AdmissionVerdict,
    /// Human-readable lines, one per active finding — what a denied
    /// tenant is told.
    pub diagnostics: Vec<String>,
    /// The underlying scan report (timing findings appended when the
    /// contract requested a frequency).
    pub report: CheckReport,
}

/// The admission gate: one full pass pipeline plus the scan cache it
/// warms. Shared (`&self`) across worker threads — the pass manager is
/// stateless and the cache is internally synchronised.
pub struct AdmissionGate {
    pm: PassManager,
    cache: ScanCache,
    base: CheckerConfig,
}

impl AdmissionGate {
    /// A gate running [`PassManager::full`] with default thresholds
    /// over `cache`.
    pub fn new(cache: ScanCache) -> Self {
        AdmissionGate {
            pm: PassManager::full(),
            cache,
            base: CheckerConfig::default(),
        }
    }

    /// Replaces the base checker configuration (thresholds,
    /// suppressions). Per-submission declared clocks are layered on
    /// top of this at decision time.
    pub fn with_config(mut self, base: CheckerConfig) -> Self {
        self.base = base;
        self
    }

    /// The checker configuration a submission is scanned under: the
    /// gate's base config with the contract's declared clocks merged
    /// into the taint section.
    pub fn config_for(&self, sub: &TenantSubmission) -> CheckerConfig {
        let mut config = self.base.clone();
        for clk in &sub.contract.declared_clocks {
            if !config.taint.declared_clocks.contains(clk) {
                config.taint.declared_clocks.push(clk.clone());
            }
        }
        config
    }

    /// The content key under which `sub`'s scan is cached and
    /// deduplicated: the checker scan key (netlist content + full
    /// config, declared clocks included) extended with the requested
    /// clock bits, because the timing check runs *outside* the pass
    /// pipeline and its result is part of the verdict.
    pub fn dedup_key(&self, sub: &TenantSubmission) -> (u64, u64) {
        let config = self.config_for(sub);
        let scan = self.cache.scan_key(&sub.netlist, &config);
        let mhz = sub.contract.clock_mhz.map_or(0, f64::to_bits);
        (scan, mhz)
    }

    /// Scans one submission and renders the verdict.
    pub fn decide(&self, sub: &TenantSubmission) -> AdmissionDecision {
        let config = self.config_for(sub);
        let mut report = self.pm.run_cached(&sub.netlist, &config, &self.cache);
        if let Some(mhz) = sub.contract.clock_mhz {
            let ann = DelayModel::default().annotate(&sub.netlist);
            report.findings.extend(check_timing(&ann, mhz).findings);
        }
        let verdict = match report.max_severity() {
            Some(Severity::Reject) => AdmissionVerdict::Denied,
            Some(Severity::Warn) => AdmissionVerdict::AdmittedWithFlags,
            _ => AdmissionVerdict::Admitted,
        };
        let diagnostics = report
            .active()
            .filter(|f| f.severity >= Severity::Warn)
            .map(|f| {
                format!(
                    "[{}] {} ({}): {}",
                    f.severity.as_str(),
                    f.kind.as_str(),
                    f.pass,
                    f.detail
                )
            })
            .collect();
        AdmissionDecision {
            verdict,
            diagnostics,
            report,
        }
    }

    /// Entries the cache served without re-scanning.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Lookups that had to run a pass.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submission::ClockContract;
    use slm_netlist::generators;

    fn gate() -> AdmissionGate {
        AdmissionGate::new(ScanCache::in_memory())
    }

    #[test]
    fn benign_design_is_admitted_clean() {
        let g = gate();
        let d = g.decide(&TenantSubmission::new(
            "alice",
            generators::alu(192).unwrap(),
        ));
        assert_eq!(d.verdict, AdmissionVerdict::Admitted);
        assert!(d.diagnostics.is_empty());
        assert!(d.report.is_clean());
    }

    #[test]
    fn ring_oscillator_is_denied_with_diagnostics() {
        let g = gate();
        let d = g.decide(&TenantSubmission::new(
            "mallory",
            generators::ring_oscillator(8).unwrap(),
        ));
        assert_eq!(d.verdict, AdmissionVerdict::Denied);
        assert!(!d.diagnostics.is_empty(), "denial must explain itself");
        assert!(d.diagnostics.iter().any(|l| l.contains("[reject]")));
    }

    #[test]
    fn contract_clocks_change_the_verdict_and_the_key() {
        let g = gate();
        // carry_sensor misuses a declared clock as data: with the
        // contract declaring "sense" the taint pass rejects it, without
        // the declaration the structural heuristics still flag it.
        let sub = TenantSubmission::new("eve", generators::carry_sensor(64, 4).unwrap())
            .with_contract(ClockContract {
                declared_clocks: vec!["sense".into()],
                clock_mhz: None,
            });
        let bare = TenantSubmission::new("eve", generators::carry_sensor(64, 4).unwrap());
        assert_ne!(
            g.dedup_key(&sub),
            g.dedup_key(&bare),
            "declared clocks are part of the scan identity"
        );
        let d = g.decide(&sub);
        assert_eq!(d.verdict, AdmissionVerdict::Denied);
    }

    #[test]
    fn overclock_contract_denies_via_timing_check() {
        let g = gate();
        let nl = generators::kogge_stone_adder(32).unwrap();
        let ok = TenantSubmission::new("a", nl.clone()).with_contract(ClockContract {
            declared_clocks: vec![],
            clock_mhz: Some(100.0),
        });
        let hot = TenantSubmission::new("a", nl).with_contract(ClockContract {
            declared_clocks: vec![],
            clock_mhz: Some(2_000.0),
        });
        assert_ne!(
            g.dedup_key(&ok),
            g.dedup_key(&hot),
            "requested frequency is part of the scan identity"
        );
        assert_eq!(g.decide(&ok).verdict, AdmissionVerdict::Admitted);
        let d = g.decide(&hot);
        assert_eq!(d.verdict, AdmissionVerdict::Denied);
        assert!(d.diagnostics.iter().any(|l| l.contains("timing")));
    }

    #[test]
    fn repeat_submissions_hit_the_cache() {
        let g = gate();
        let sub = TenantSubmission::new("alice", generators::alu(192).unwrap());
        let first = g.decide(&sub);
        let misses_after_first = g.cache_misses();
        let second = g.decide(&sub);
        assert_eq!(first, second, "cached replay is bit-identical");
        assert_eq!(g.cache_misses(), misses_after_first, "no new pass runs");
        assert!(g.cache_hits() > 0);
    }
}
