//! The cloud service proper: a deterministic round-based event loop
//! that takes a submission sequence from intake through admission,
//! placement, quota-bounded campaign execution and teardown.
//!
//! # Determinism contract
//!
//! The loop is the service's logical clock. Every decision — intake
//! order, admission verdicts, placements, dispatch order, eviction —
//! is a pure function of the submission sequence, the [`ServiceConfig`]
//! and its seed. Parallelism lives strictly *inside* a round:
//! admission scans and campaign executions fan out over
//! [`slm_par::par_map`] (order-preserving), each task seeds its own
//! lane via [`slm_par::mix_seed`], and per-task metric frames are
//! absorbed in task order. Consequently the same submissions + seed
//! produce a bit-identical [`ServiceReport`] — and worker-invariant
//! [`deterministic`](slm_obs::MetricsFrame::deterministic) metrics —
//! at any worker count. The admission-latency histogram records
//! *rounds*, not wall time, for the same reason; wall-clock latency is
//! the benchmark's job.
//!
//! # Backpressure
//!
//! Both queues are bounded. A full admission queue defers intake (the
//! submission stays outside, `cloud.intake.deferred` counts the
//! refusals); a full wait queue sheds the tenant at admission
//! (`cloud.shed` — admission succeeded, capacity did not). Placed
//! tenants dispatch at most [`ServiceConfig::max_campaigns_per_round`]
//! campaigns per round, round-robin in submission order, each charged
//! against the tenant's [`TenantQuota`](crate::submission::TenantQuota).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};
use slm_checker::ScanCache;
use slm_core::experiments::{run_cpa_with, run_fault_campaign, CpaExperiment, FaultCampaign};
use slm_fabric::{DetectorConfig, FabricConfig, FabricError};
use slm_obs::Obs;

use crate::admission::{AdmissionDecision, AdmissionGate, AdmissionVerdict};
use crate::queue::BoundedQueue;
use crate::quota::{QuotaDecision, QuotaLedger};
use crate::scheduler::{CoResidencyPolicy, Occupant, Placement, RegionScheduler};
use crate::submission::{CampaignKind, TenantSubmission};

/// Service-wide tunables. Everything here is part of the determinism
/// key: two runs with equal configs, seeds and submissions match
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Boards in the fleet, each a zynq7020-sized grid.
    pub boards: usize,
    /// Region lattice rows per board.
    pub region_rows: usize,
    /// Region lattice columns per board.
    pub region_cols: usize,
    /// Packing density: netlist nets per grid cell when converting a
    /// design's size into region demand.
    pub nets_per_cell: usize,
    /// Who may share a board with whom.
    pub policy: CoResidencyPolicy,
    /// Admission queue capacity (backpressure boundary for intake).
    pub admission_queue_depth: usize,
    /// Submissions moved from intake into the admission queue per
    /// round.
    pub intake_per_round: usize,
    /// Admitted-but-unplaced queue capacity; overflow is shed.
    pub wait_queue_depth: usize,
    /// Campaign dispatch budget per round (across all tenants).
    pub max_campaigns_per_round: usize,
    /// Rounds after which a non-empty service errors out as stalled
    /// (deadlock guard; generous by default).
    pub max_rounds: u64,
    /// Worker threads for in-round fan-out (0 = machine parallelism).
    pub workers: usize,
    /// Master seed; campaign lanes split from it deterministically.
    pub seed: u64,
    /// Detector operating point used when a workload deploys a
    /// defense arm.
    pub detector: DetectorConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            boards: 2,
            region_rows: 2,
            region_cols: 2,
            nets_per_cell: 16,
            policy: CoResidencyPolicy::open(),
            admission_queue_depth: 16,
            intake_per_round: 8,
            wait_queue_depth: 16,
            max_campaigns_per_round: 16,
            max_rounds: 10_000,
            workers: 0,
            seed: 0x51_c10d,
            detector: DetectorConfig::default(),
        }
    }
}

/// Where a tenant's journey through the service ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantStatus {
    /// Admission denied; no fabric was provisioned.
    Denied,
    /// Admitted, but the wait queue was full: dropped under load.
    Shed,
    /// Every requested campaign was delivered.
    Completed,
    /// Preempted mid-flight on quota exhaustion (traces or lease).
    Evicted,
    /// Service shut down before the tenant reached another terminal
    /// state (graceful drain).
    Cancelled,
}

/// The distilled result of one delivered campaign. Plain data — what
/// the determinism property test compares across worker counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignOutcome {
    /// A CPA key-recovery campaign.
    Cpa {
        /// The leading candidate at the end, if it strictly led.
        recovered_key_byte: Option<u8>,
        /// Ground-truth last-round key byte.
        correct_key_byte: u8,
        /// Traces processed.
        traces: u64,
    },
    /// A fault-injection campaign.
    Fault {
        /// Encryptions captured.
        captures: u64,
        /// Encryptions whose ciphertext came back corrupted.
        faulted: u64,
        /// Last-round key bytes unambiguously recovered by the DFA.
        recovered_bytes: usize,
        /// Whether the full master key fell out.
        key_recovered: bool,
    },
}

/// Everything the service records about one submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantRecord {
    /// Tenant name.
    pub tenant: String,
    /// Index in the submission sequence.
    pub id: usize,
    /// Terminal status.
    pub status: TenantStatus,
    /// Admission outcome (set for every tenant that reached the gate).
    pub verdict: Option<AdmissionVerdict>,
    /// Admission diagnostics (why denied / why flagged).
    pub diagnostics: Vec<String>,
    /// Where the tenant ran, if it was ever placed.
    pub placement: Option<Placement>,
    /// Rounds between intake and the admission verdict.
    pub admission_latency_rounds: Option<u64>,
    /// Campaigns delivered before the terminal state.
    pub campaigns_delivered: u32,
    /// Traces charged against the quota.
    pub traces_charged: u64,
    /// Rounds the tenant held its region.
    pub region_rounds: u64,
    /// Per-campaign results, in delivery order.
    pub outcomes: Vec<CampaignOutcome>,
}

/// The service's summary of a full run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// One record per submission, in submission order.
    pub tenants: Vec<TenantRecord>,
    /// Rounds the event loop ran.
    pub rounds: u64,
    /// Campaigns delivered across all tenants.
    pub campaigns_delivered: u64,
    /// Tenants admitted (flagged or not).
    pub admitted: u64,
    /// Tenants denied at the gate.
    pub denied: u64,
    /// Tenants preempted on quota exhaustion.
    pub evicted: u64,
    /// Tenants shed on wait-queue overflow.
    pub shed: u64,
    /// Tenants cancelled by shutdown.
    pub cancelled: u64,
    /// Scan-cache hits over the run.
    pub cache_hits: u64,
    /// Scan-cache misses over the run.
    pub cache_misses: u64,
}

impl ServiceReport {
    /// The record for `tenant`, if it was ever submitted.
    pub fn tenant(&self, tenant: &str) -> Option<&TenantRecord> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }

    /// Scan-cache hit rate in `[0, 1]` (0 when no lookups ran).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Why a run aborted.
#[derive(Debug)]
pub enum ServiceError {
    /// A campaign's fabric failed to construct.
    Fabric(FabricError),
    /// The event loop exceeded [`ServiceConfig::max_rounds`] with work
    /// still queued — the deadlock guard tripped.
    Stalled {
        /// The round at which the guard fired.
        round: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Fabric(e) => write!(f, "campaign fabric failed: {e}"),
            ServiceError::Stalled { round } => {
                write!(f, "service stalled with work queued after round {round}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<FabricError> for ServiceError {
    fn from(e: FabricError) -> Self {
        ServiceError::Fabric(e)
    }
}

/// A submission waiting in (or bound for) the admission queue.
struct Queued {
    id: usize,
    sub: TenantSubmission,
    intake_round: u64,
}

/// A placed tenant with live campaign state.
struct Resident {
    id: usize,
    sub: TenantSubmission,
    placement: Placement,
    ledger: QuotaLedger,
    delivered: u32,
}

/// The multi-tenant fabric service.
pub struct CloudService {
    config: ServiceConfig,
    gate: AdmissionGate,
}

impl CloudService {
    /// A service over an in-memory scan cache.
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_cache(config, ScanCache::in_memory())
    }

    /// A service whose admission gate warms `cache` (pass a disk-backed
    /// [`ScanCache`] to persist scans across service restarts).
    pub fn with_cache(config: ServiceConfig, cache: ScanCache) -> Self {
        CloudService {
            config,
            gate: AdmissionGate::new(cache),
        }
    }

    /// Replaces the admission gate's base checker configuration
    /// (thresholds, suppressions, opt-in heuristics). Per-submission
    /// contract clocks still layer on top at decision time.
    pub fn with_checker_config(mut self, base: slm_checker::CheckerConfig) -> Self {
        self.gate = self.gate.with_config(base);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Runs the submission sequence to completion.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Fabric`] if a campaign's fabric fails to build,
    /// [`ServiceError::Stalled`] if the deadlock guard trips.
    pub fn run(&self, submissions: Vec<TenantSubmission>) -> Result<ServiceReport, ServiceError> {
        self.run_recorded(submissions, &Obs::null())
    }

    /// [`CloudService::run`] with an observability handle: emits
    /// `cloud.*` counters, queue-depth gauges, the admission-latency
    /// histogram (in rounds) and per-stage spans.
    ///
    /// # Errors
    ///
    /// See [`CloudService::run`].
    pub fn run_recorded(
        &self,
        submissions: Vec<TenantSubmission>,
        obs: &Obs,
    ) -> Result<ServiceReport, ServiceError> {
        self.run_until(submissions, u64::MAX, obs)
    }

    /// Runs at most `round_budget` rounds, then drains gracefully:
    /// tenants that have not reached a terminal state are marked
    /// [`TenantStatus::Cancelled`], their regions released, and the
    /// report returned — the shutdown path.
    ///
    /// # Errors
    ///
    /// See [`CloudService::run`]; the stall guard still applies when
    /// `round_budget` exceeds [`ServiceConfig::max_rounds`].
    pub fn run_until(
        &self,
        submissions: Vec<TenantSubmission>,
        round_budget: u64,
        obs: &Obs,
    ) -> Result<ServiceReport, ServiceError> {
        let cfg = &self.config;
        let plan = slm_fabric::floorplan::Floorplan::zynq7020();
        let mut scheduler =
            RegionScheduler::new(cfg.boards, &plan, cfg.region_rows, cfg.region_cols);

        // Records start as placeholders and are finalized in place;
        // submission order is report order.
        let mut records: Vec<TenantRecord> = submissions
            .iter()
            .enumerate()
            .map(|(id, s)| TenantRecord {
                tenant: s.tenant.clone(),
                id,
                status: TenantStatus::Cancelled,
                verdict: None,
                diagnostics: Vec::new(),
                placement: None,
                admission_latency_rounds: None,
                campaigns_delivered: 0,
                traces_charged: 0,
                region_rounds: 0,
                outcomes: Vec::new(),
            })
            .collect();
        obs.add("cloud.submitted", submissions.len() as u64);

        let mut intake: std::collections::VecDeque<Queued> = submissions
            .into_iter()
            .enumerate()
            .map(|(id, sub)| Queued {
                id,
                sub,
                intake_round: 0,
            })
            .collect();
        let mut admission_queue: BoundedQueue<Queued> =
            BoundedQueue::new(cfg.admission_queue_depth);
        let mut wait_queue: BoundedQueue<Queued> = BoundedQueue::new(cfg.wait_queue_depth);
        let mut residents: Vec<Resident> = Vec::new();

        let mut round: u64 = 0;
        let mut counts = Tally::default();

        while !(intake.is_empty()
            && admission_queue.is_empty()
            && wait_queue.is_empty()
            && residents.is_empty())
        {
            if round >= round_budget {
                break;
            }
            if round >= cfg.max_rounds {
                return Err(ServiceError::Stalled { round });
            }
            round += 1;
            let _round_span = obs.span("cloud.round");

            // ---- intake: feed the admission queue, deferring on
            // backpressure ---------------------------------------------
            let mut moved = 0;
            while moved < cfg.intake_per_round {
                let Some(mut item) = intake.pop_front() else {
                    break;
                };
                item.intake_round = round;
                match admission_queue.push(item) {
                    Ok(()) => moved += 1,
                    Err(item) => {
                        obs.incr("cloud.intake.deferred");
                        intake.push_front(item);
                        break;
                    }
                }
            }
            obs.gauge("cloud.queue.admission.depth", admission_queue.len() as f64);

            // ---- admission: drain the queue through the gate ---------
            let batch = admission_queue.drain_all();
            let decisions = self.admit_batch(&batch, obs);
            for (item, decision) in batch.into_iter().zip(decisions) {
                let rec = &mut records[item.id];
                rec.verdict = Some(decision.verdict);
                rec.diagnostics = decision.diagnostics;
                let latency = round - item.intake_round;
                rec.admission_latency_rounds = Some(latency);
                obs.observe("cloud.admission.latency_rounds", latency as f64);
                match decision.verdict {
                    AdmissionVerdict::Denied => {
                        rec.status = TenantStatus::Denied;
                        counts.denied += 1;
                        obs.incr("cloud.admission.denied");
                    }
                    verdict => {
                        counts.admitted += 1;
                        obs.incr("cloud.admitted");
                        if verdict == AdmissionVerdict::AdmittedWithFlags {
                            obs.incr("cloud.admission.flagged");
                        }
                        if let Err(item) = wait_queue.push(item) {
                            records[item.id].status = TenantStatus::Shed;
                            counts.shed += 1;
                            obs.incr("cloud.shed");
                        }
                    }
                }
            }
            obs.gauge("cloud.queue.wait.depth", wait_queue.len() as f64);

            // ---- placement: one pass over the wait queue, in order ---
            let waiting = wait_queue.drain_all();
            for item in waiting {
                let flagged = records[item.id].verdict == Some(AdmissionVerdict::AdmittedWithFlags);
                let demand = item.sub.demand_cells(cfg.nets_per_cell);
                let occupant = Occupant {
                    tenant: item.sub.tenant.clone(),
                    flagged,
                };
                match scheduler.place(occupant, demand, &cfg.policy) {
                    Some(placement) => {
                        let _span = obs.span("cloud.scheduler.place");
                        obs.incr("cloud.placed");
                        records[item.id].placement = Some(placement);
                        residents.push(Resident {
                            id: item.id,
                            sub: item.sub,
                            placement,
                            ledger: QuotaLedger::default(),
                            delivered: 0,
                        });
                    }
                    None => {
                        // No slot this round; the push cannot overflow
                        // because the queue just drained this item.
                        let _ = wait_queue.push(item);
                    }
                }
            }
            residents.sort_by_key(|r| r.id);
            obs.gauge("cloud.regions.free", scheduler.free_regions() as f64);

            // ---- dispatch: round-robin campaigns under quota ---------
            let (dispatch, evictions) = plan_dispatch(cfg, &residents);
            let outcomes = self.execute_batch(&residents, &dispatch, obs)?;
            for (&(resident_idx, _campaign), outcome) in dispatch.iter().zip(outcomes) {
                let resident = &mut residents[resident_idx];
                resident.ledger.charge(resident.sub.workload.traces);
                resident.delivered += 1;
                counts.delivered += 1;
                obs.incr("cloud.campaigns.delivered");
                records[resident.id].outcomes.push(outcome);
            }
            // Evictions are planned as indexes into the pre-dispatch
            // resident list and removed in descending order, after the
            // dispatch indexes are done being used.
            for idx in evictions {
                let resident = residents.remove(idx);
                scheduler.release(resident.placement);
                let rec = &mut records[resident.id];
                rec.status = TenantStatus::Evicted;
                rec.campaigns_delivered = resident.delivered;
                rec.traces_charged = resident.ledger.traces_used;
                rec.region_rounds = resident.ledger.region_rounds;
                counts.evicted += 1;
                obs.incr("cloud.evicted");
            }

            // ---- completion & round close ----------------------------
            let mut i = 0;
            while i < residents.len() {
                if residents[i].delivered >= residents[i].sub.workload.campaigns {
                    let resident = residents.remove(i);
                    scheduler.release(resident.placement);
                    let rec = &mut records[resident.id];
                    rec.status = TenantStatus::Completed;
                    rec.campaigns_delivered = resident.delivered;
                    rec.traces_charged = resident.ledger.traces_used;
                    rec.region_rounds = resident.ledger.region_rounds;
                    obs.incr("cloud.completed");
                } else {
                    residents[i].ledger.tick_round();
                    i += 1;
                }
            }
        }

        // ---- graceful drain: whatever is still live is cancelled -----
        for resident in residents {
            scheduler.release(resident.placement);
            let rec = &mut records[resident.id];
            rec.status = TenantStatus::Cancelled;
            rec.campaigns_delivered = resident.delivered;
            rec.traces_charged = resident.ledger.traces_used;
            rec.region_rounds = resident.ledger.region_rounds;
            counts.cancelled += 1;
            obs.incr("cloud.cancelled");
        }
        for item in intake
            .into_iter()
            .chain(admission_queue.drain_all())
            .chain(wait_queue.drain_all())
        {
            records[item.id].status = TenantStatus::Cancelled;
            counts.cancelled += 1;
            obs.incr("cloud.cancelled");
        }

        Ok(ServiceReport {
            tenants: records,
            rounds: round,
            campaigns_delivered: counts.delivered,
            admitted: counts.admitted,
            denied: counts.denied,
            evicted: counts.evicted,
            shed: counts.shed,
            cancelled: counts.cancelled,
            cache_hits: self.gate.cache_hits(),
            cache_misses: self.gate.cache_misses(),
        })
    }

    /// Scans a drained admission batch, deduplicating identical scans
    /// so concurrent submissions of one design cost one scan — which
    /// also keeps the cache's hit/miss counters a pure function of the
    /// submission sequence.
    ///
    /// The parallel fan-out is keyed on the checker *scan key* alone
    /// (netlist content + checker config): two parallel scans of the
    /// same key would race the cache's hit/miss counters, so each
    /// unique key scans exactly once concurrently. Contract variants
    /// that share a scan key but differ in requested frequency are
    /// decided serially afterwards — every pass lookup then replays
    /// from the just-warmed cache, deterministically.
    fn admit_batch(&self, batch: &[Queued], obs: &Obs) -> Vec<AdmissionDecision> {
        // Unique keys in first-appearance order (determinism: the
        // fan-out order must not depend on hash iteration).
        let mut scan_order: Vec<&Queued> = Vec::new();
        let mut seen_scan: HashSet<u64> = HashSet::new();
        let keys: Vec<(u64, u64)> = batch
            .iter()
            .map(|item| {
                let key = self.gate.dedup_key(&item.sub);
                if seen_scan.insert(key.0) {
                    scan_order.push(item);
                }
                key
            })
            .collect();
        let scanned = slm_par::par_map(self.config.workers, &scan_order, |item| {
            let scan_obs = obs.fork();
            let decision = {
                let _span = scan_obs.span("cloud.admission.scan");
                self.gate.decide(&item.sub)
            };
            (
                self.gate.dedup_key(&item.sub),
                decision,
                scan_obs.snapshot(),
            )
        });
        let mut decided: HashMap<(u64, u64), AdmissionDecision> = HashMap::new();
        for (key, decision, frame) in scanned {
            obs.absorb(&frame);
            decided.insert(key, decision);
        }
        // Serial pass for contract variants of already-scanned designs
        // (cache-warm, so these replay without re-running passes).
        let mut out: Vec<AdmissionDecision> = Vec::with_capacity(batch.len());
        for (item, key) in batch.iter().zip(&keys) {
            let decision = match decided.get(key) {
                Some(d) => d.clone(),
                None => {
                    let _span = obs.span("cloud.admission.scan");
                    let d = self.gate.decide(&item.sub);
                    decided.insert(*key, d.clone());
                    d
                }
            };
            out.push(decision);
        }
        out
    }

    /// Executes a dispatch batch in parallel, one campaign per task,
    /// frames absorbed in dispatch order.
    fn execute_batch(
        &self,
        residents: &[Resident],
        dispatch: &[(usize, u32)],
        obs: &Obs,
    ) -> Result<Vec<CampaignOutcome>, ServiceError> {
        let results = slm_par::par_map(self.config.workers, dispatch, |&(idx, campaign)| {
            let resident = &residents[idx];
            let task_obs = obs.fork();
            let outcome = {
                let _span = task_obs.span("cloud.campaign");
                self.run_campaign(resident, campaign)
            };
            (outcome, task_obs.snapshot())
        });
        let mut outcomes = Vec::with_capacity(results.len());
        for (outcome, frame) in results {
            obs.absorb(&frame);
            outcomes.push(outcome?);
        }
        Ok(outcomes)
    }

    /// Runs one campaign for a resident tenant. The seed lane is a
    /// pure function of the master seed, the submission index and the
    /// campaign index — never of scheduling.
    fn run_campaign(
        &self,
        resident: &Resident,
        campaign: u32,
    ) -> Result<CampaignOutcome, FabricError> {
        let workload = &resident.sub.workload;
        let lane = ((resident.id as u64) << 32) | campaign as u64;
        let seed = slm_par::mix_seed(self.config.seed, lane);
        let defense = workload
            .defense
            .as_ref()
            .and_then(|arm| arm.deployment(self.config.detector, slm_par::mix_seed(seed, 0xdef)));
        match workload.kind {
            CampaignKind::Cpa { source } => {
                let exp = CpaExperiment {
                    circuit: workload.circuit,
                    source,
                    traces: workload.traces,
                    checkpoints: 2,
                    pilot_traces: 16,
                    seed,
                };
                let result = run_cpa_with(&exp, |fc| {
                    fc.defense = defense;
                })?;
                Ok(CampaignOutcome::Cpa {
                    recovered_key_byte: result.recovered_key_byte,
                    correct_key_byte: result.correct_key_byte,
                    traces: result.traces,
                })
            }
            CampaignKind::Fault { aggressor, model } => {
                let fault = FaultCampaign {
                    config: FabricConfig {
                        benign: workload.circuit,
                        seed,
                        aggressor: Some(aggressor),
                        defense,
                        ..FabricConfig::default()
                    },
                    model,
                    captures: workload.traces,
                    shard_captures: workload.traces.max(1),
                    // The service parallelism is the campaign fan-out;
                    // shards inside one campaign stay serial.
                    workers: 1,
                };
                let outcome = run_fault_campaign(&fault)?;
                Ok(CampaignOutcome::Fault {
                    captures: outcome.captures,
                    faulted: outcome.faulted,
                    recovered_bytes: outcome.dfa.recovered_bytes(),
                    key_recovered: outcome.dfa.recovered_master_key().is_some(),
                })
            }
        }
    }
}

/// Per-run terminal-state tallies.
#[derive(Default)]
struct Tally {
    admitted: u64,
    denied: u64,
    evicted: u64,
    shed: u64,
    cancelled: u64,
    delivered: u64,
}

/// Plans this round's dispatch: round-robin over residents in
/// submission order, one campaign per turn, until the round budget is
/// spent or nobody can dispatch. Also returns the residents to evict
/// (quota-exhausted), as indexes in **descending** order so removal is
/// safe.
fn plan_dispatch(cfg: &ServiceConfig, residents: &[Resident]) -> DispatchPlan {
    let mut planned: Vec<(usize, u32)> = Vec::new();
    let mut evict: Vec<usize> = Vec::new();
    // Shadow ledgers: quota decisions for later turns must see the
    // charges planned in earlier turns of the same round.
    let mut shadow: Vec<QuotaLedger> = residents.iter().map(|r| r.ledger).collect();
    let mut next_campaign: Vec<u32> = residents.iter().map(|r| r.delivered).collect();
    let mut blocked: Vec<bool> = residents
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let remaining = r.delivered < r.sub.workload.campaigns;
            if !remaining {
                return true; // completes this round without dispatching
            }
            match r.ledger.admit(&r.sub.quota, r.sub.workload.traces) {
                QuotaDecision::ExhaustedTraces | QuotaDecision::ExhaustedLease => {
                    evict.push(i);
                    true
                }
                QuotaDecision::Throttle => true,
                QuotaDecision::Allow => false,
            }
        })
        .collect();

    'budget: while planned.len() < cfg.max_campaigns_per_round {
        let mut progressed = false;
        for i in 0..residents.len() {
            if blocked[i] {
                continue;
            }
            let r = &residents[i];
            if next_campaign[i] >= r.sub.workload.campaigns {
                blocked[i] = true;
                continue;
            }
            match shadow[i].admit(&r.sub.quota, r.sub.workload.traces) {
                QuotaDecision::Allow => {
                    planned.push((i, next_campaign[i]));
                    shadow[i].charge(r.sub.workload.traces);
                    next_campaign[i] += 1;
                    progressed = true;
                    if planned.len() >= cfg.max_campaigns_per_round {
                        break 'budget;
                    }
                }
                _ => blocked[i] = true,
            }
        }
        if !progressed {
            break;
        }
    }
    evict.sort_unstable_by(|a, b| b.cmp(a));
    (planned, evict)
}

type DispatchPlan = (Vec<(usize, u32)>, Vec<usize>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::submission::{TenantQuota, WorkloadSpec};
    use slm_netlist::generators;

    fn tiny_workload(campaigns: u32) -> WorkloadSpec {
        WorkloadSpec {
            traces: 24,
            campaigns,
            ..WorkloadSpec::default()
        }
    }

    fn quick_config() -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn benign_tenant_completes_with_outcomes() {
        let service = CloudService::new(quick_config());
        let sub = TenantSubmission::new("alice", generators::alu(192).unwrap())
            .with_workload(tiny_workload(2));
        let report = service.run(vec![sub]).unwrap();
        let alice = report.tenant("alice").unwrap();
        assert_eq!(alice.status, TenantStatus::Completed);
        assert_eq!(alice.verdict, Some(AdmissionVerdict::Admitted));
        assert!(alice.placement.is_some());
        assert_eq!(alice.campaigns_delivered, 2);
        assert_eq!(alice.outcomes.len(), 2);
        assert_eq!(alice.traces_charged, 48);
        assert_eq!(report.campaigns_delivered, 2);
    }

    #[test]
    fn malicious_tenant_is_denied_and_never_placed() {
        let service = CloudService::new(quick_config());
        let sub = TenantSubmission::new("mallory", generators::ring_oscillator(8).unwrap());
        let report = service.run(vec![sub]).unwrap();
        let mallory = report.tenant("mallory").unwrap();
        assert_eq!(mallory.status, TenantStatus::Denied);
        assert!(mallory.placement.is_none());
        assert!(!mallory.diagnostics.is_empty());
        assert_eq!(report.denied, 1);
        assert_eq!(report.campaigns_delivered, 0);
    }

    #[test]
    fn quota_exhaustion_evicts_and_frees_the_region() {
        let mut cfg = quick_config();
        cfg.boards = 1;
        cfg.region_rows = 1;
        cfg.region_cols = 1; // one region: b must wait for a's slot
        let service = CloudService::new(cfg);
        let a = TenantSubmission::new("a", generators::alu(192).unwrap())
            .with_workload(tiny_workload(4))
            .with_quota(TenantQuota {
                max_traces: 30, // one 24-trace campaign fits, two do not
                ..TenantQuota::default()
            });
        let b = TenantSubmission::new("b", generators::alu(192).unwrap())
            .with_workload(tiny_workload(1));
        let report = service.run(vec![a, b]).unwrap();
        let a = report.tenant("a").unwrap();
        assert_eq!(a.status, TenantStatus::Evicted);
        assert_eq!(a.campaigns_delivered, 1, "delivered until the budget died");
        let b = report.tenant("b").unwrap();
        assert_eq!(b.status, TenantStatus::Completed, "freed region was reused");
        assert_eq!(report.evicted, 1);
    }

    #[test]
    fn rate_cap_throttles_across_rounds_instead_of_evicting() {
        let service = CloudService::new(quick_config());
        let sub = TenantSubmission::new("slow", generators::alu(192).unwrap())
            .with_workload(tiny_workload(3))
            .with_quota(TenantQuota {
                max_traces_per_round: 24, // one campaign per round
                ..TenantQuota::default()
            });
        let report = service.run(vec![sub]).unwrap();
        let slow = report.tenant("slow").unwrap();
        assert_eq!(slow.status, TenantStatus::Completed);
        assert_eq!(slow.campaigns_delivered, 3);
        assert!(
            slow.region_rounds >= 2,
            "throttling must stretch delivery over rounds (held {} rounds)",
            slow.region_rounds
        );
    }

    #[test]
    fn wait_queue_overflow_sheds() {
        let mut cfg = quick_config();
        cfg.boards = 1;
        cfg.region_rows = 1;
        cfg.region_cols = 1;
        cfg.wait_queue_depth = 2;
        cfg.intake_per_round = 8;
        cfg.admission_queue_depth = 8;
        // Give the resident tenant a long-running workload so the
        // region stays occupied while later admissions pile into the
        // two-slot wait queue; the third admitted tenant overflows it.
        let service = CloudService::new(cfg);
        let subs = vec![
            TenantSubmission::new("hold", generators::alu(192).unwrap())
                .with_workload(tiny_workload(3))
                .with_quota(TenantQuota {
                    max_traces_per_round: 24,
                    ..TenantQuota::default()
                }),
            TenantSubmission::new("wait", generators::alu(192).unwrap())
                .with_workload(tiny_workload(1)),
            TenantSubmission::new("shed", generators::alu(192).unwrap())
                .with_workload(tiny_workload(1)),
        ];
        let report = service.run(subs).unwrap();
        assert_eq!(
            report.tenant("hold").unwrap().status,
            TenantStatus::Completed
        );
        assert_eq!(
            report.tenant("wait").unwrap().status,
            TenantStatus::Completed
        );
        assert_eq!(report.tenant("shed").unwrap().status, TenantStatus::Shed);
        assert_eq!(report.shed, 1);
    }

    #[test]
    fn graceful_shutdown_cancels_remaining_work() {
        let service = CloudService::new(quick_config());
        let subs = vec![TenantSubmission::new("a", generators::alu(192).unwrap())
            .with_workload(tiny_workload(50))];
        let report = service.run_until(subs, 2, &Obs::null()).unwrap();
        let a = report.tenant("a").unwrap();
        assert_eq!(a.status, TenantStatus::Cancelled);
        assert_eq!(report.rounds, 2);
        assert_eq!(report.cancelled, 1);
        assert!(
            a.campaigns_delivered > 0,
            "work done before shutdown is reported"
        );
    }

    #[test]
    fn stall_guard_trips_on_unplaceable_tenant() {
        let mut cfg = quick_config();
        cfg.nets_per_cell = 0; // demand = nets; alu192 >> one cell
        cfg.region_rows = 50;
        cfg.region_cols = 50; // 1-cell regions: nothing fits
        cfg.max_rounds = 5;
        let service = CloudService::new(cfg);
        let sub = TenantSubmission::new("big", generators::alu(192).unwrap());
        match service.run(vec![sub]) {
            Err(ServiceError::Stalled { round }) => assert_eq!(round, 5),
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_submissions_scan_once_per_batch() {
        let mut cfg = quick_config();
        cfg.intake_per_round = 8;
        cfg.admission_queue_depth = 8;
        let service = CloudService::new(cfg);
        let nl = generators::alu(192).unwrap();
        let subs: Vec<TenantSubmission> = (0..4)
            .map(|i| TenantSubmission::new(format!("t{i}"), nl.clone()))
            .collect();
        let report = service.run(subs).unwrap();
        assert_eq!(report.admitted, 4);
        // One scan's worth of misses, zero hits: the batch deduped
        // instead of racing four identical scans through the cache.
        assert_eq!(report.cache_hits, 0);
        assert!(report.cache_misses > 0);
    }
}
