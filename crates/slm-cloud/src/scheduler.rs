//! Region scheduling: carving boards into partial-reconfiguration
//! slots and packing admitted tenants onto them.
//!
//! Each board is a [`Floorplan`] partitioned into a fixed lattice of
//! rectangular regions (one tenant per region — the PR-slot model the
//! paper's threat model assumes). Placement is best-fit by capacity
//! with ties broken by `(board, region)` index, so the same admission
//! sequence always lands on the same slots regardless of worker count.
//!
//! Co-residency is policy, not accident: [`CoResidencyPolicy`] decides
//! which tenants may share a board, which makes the attacker/victim
//! pairing of the paper an *explicit scenario* the operator opts into
//! (via [`CoResidencyPolicy::allow`]) rather than an emergent property
//! of bin-packing.

use serde::{Deserialize, Serialize};
use slm_fabric::floorplan::{Floorplan, Rect};

/// One schedulable partial-reconfiguration slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Board the slot lives on.
    pub board: usize,
    /// Slot index within the board.
    pub index: usize,
    /// The slot's rectangle on the board's grid.
    pub rect: Rect,
    /// Capacity in grid cells ([`Rect::area`]).
    pub capacity_cells: usize,
}

/// Where a tenant landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Board index.
    pub board: usize,
    /// Slot index within the board.
    pub region: usize,
}

/// A placed tenant, as the scheduler sees it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Occupant {
    /// Tenant name.
    pub tenant: String,
    /// Whether admission flagged the tenant (admitted-with-flags).
    pub flagged: bool,
}

/// How freely tenants may share a board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CoResidencyMode {
    /// Any admitted tenants may co-reside (the multi-tenant default —
    /// and the paper's attack surface).
    #[default]
    Open,
    /// A flagged tenant may share a board only with tenants it is
    /// explicitly paired with; unflagged tenants co-reside freely.
    IsolateFlagged,
}

/// The operator's co-residency rules.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoResidencyPolicy {
    /// Isolation mode.
    pub mode: CoResidencyMode,
    /// Unordered tenant pairs exempt from isolation — the explicit
    /// attacker/victim co-residency scenario.
    pub allow_pairs: Vec<(String, String)>,
}

impl CoResidencyPolicy {
    /// The permissive default: everyone shares.
    pub fn open() -> Self {
        CoResidencyPolicy::default()
    }

    /// Flagged tenants are quarantined unless explicitly paired.
    pub fn isolate_flagged() -> Self {
        CoResidencyPolicy {
            mode: CoResidencyMode::IsolateFlagged,
            allow_pairs: Vec::new(),
        }
    }

    /// Adds an (unordered) co-residency exemption for two tenants.
    pub fn allow(mut self, a: impl Into<String>, b: impl Into<String>) -> Self {
        self.allow_pairs.push((a.into(), b.into()));
        self
    }

    fn pair_allowed(&self, a: &str, b: &str) -> bool {
        self.allow_pairs
            .iter()
            .any(|(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Whether `candidate` may join a board already hosting
    /// `neighbours`.
    pub fn permits(&self, candidate: &Occupant, neighbours: &[&Occupant]) -> bool {
        match self.mode {
            CoResidencyMode::Open => true,
            CoResidencyMode::IsolateFlagged => neighbours.iter().all(|n| {
                (!candidate.flagged && !n.flagged)
                    || self.pair_allowed(&candidate.tenant, &n.tenant)
            }),
        }
    }
}

/// Capacity-aware best-fit packer over a fleet of partitioned boards.
#[derive(Debug, Clone)]
pub struct RegionScheduler {
    regions: Vec<RegionSpec>,
    occupants: Vec<Option<Occupant>>,
    per_board: usize,
}

impl RegionScheduler {
    /// Carves `boards` copies of `plan` into a `rows × cols` lattice
    /// of slots each.
    pub fn new(boards: usize, plan: &Floorplan, rows: usize, cols: usize) -> Self {
        let rects = plan.partition(rows, cols);
        let per_board = rects.len();
        let mut regions = Vec::with_capacity(boards * per_board);
        for board in 0..boards {
            for (index, &rect) in rects.iter().enumerate() {
                regions.push(RegionSpec {
                    board,
                    index,
                    rect,
                    capacity_cells: rect.area(),
                });
            }
        }
        let occupants = vec![None; regions.len()];
        RegionScheduler {
            regions,
            occupants,
            per_board,
        }
    }

    /// Best-fit placement: the smallest free slot that covers
    /// `demand_cells` on a board `policy` permits, ties broken by
    /// `(board, region)` — fully deterministic.
    ///
    /// Returns `None` when no free slot fits or the policy refuses
    /// every board with room.
    pub fn place(
        &mut self,
        occupant: Occupant,
        demand_cells: usize,
        policy: &CoResidencyPolicy,
    ) -> Option<Placement> {
        let mut best: Option<usize> = None;
        for (i, region) in self.regions.iter().enumerate() {
            if self.occupants[i].is_some() || region.capacity_cells < demand_cells {
                continue;
            }
            let neighbours: Vec<&Occupant> = self.board_occupants(region.board).collect();
            if !policy.permits(&occupant, &neighbours) {
                continue;
            }
            match best {
                Some(b) if self.regions[b].capacity_cells <= region.capacity_cells => {}
                _ => best = Some(i),
            }
        }
        let slot = best?;
        let spec = self.regions[slot];
        self.occupants[slot] = Some(occupant);
        Some(Placement {
            board: spec.board,
            region: spec.index,
        })
    }

    /// Frees a slot, returning its occupant (if the slot was held).
    pub fn release(&mut self, placement: Placement) -> Option<Occupant> {
        let i = self.flat_index(placement)?;
        self.occupants[i].take()
    }

    /// The occupant of a slot.
    pub fn occupant(&self, placement: Placement) -> Option<&Occupant> {
        self.flat_index(placement)
            .and_then(|i| self.occupants[i].as_ref())
    }

    /// Every slot, in `(board, region)` order.
    pub fn regions(&self) -> &[RegionSpec] {
        &self.regions
    }

    /// Number of unoccupied slots.
    pub fn free_regions(&self) -> usize {
        self.occupants.iter().filter(|o| o.is_none()).count()
    }

    /// Total slots across all boards.
    pub fn total_regions(&self) -> usize {
        self.regions.len()
    }

    /// The occupants currently resident on `board`.
    pub fn board_occupants(&self, board: usize) -> impl Iterator<Item = &Occupant> {
        let start = board * self.per_board;
        self.occupants
            .iter()
            .skip(start)
            .take(self.per_board)
            .filter_map(Option::as_ref)
    }

    fn flat_index(&self, placement: Placement) -> Option<usize> {
        let i = placement.board * self.per_board + placement.region;
        (placement.region < self.per_board && i < self.regions.len()).then_some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occupant(name: &str, flagged: bool) -> Occupant {
        Occupant {
            tenant: name.into(),
            flagged,
        }
    }

    fn sched(boards: usize) -> RegionScheduler {
        RegionScheduler::new(boards, &Floorplan::zynq7020(), 2, 2)
    }

    #[test]
    fn best_fit_is_deterministic_and_capacity_aware() {
        let mut s = sched(1);
        assert_eq!(s.total_regions(), 4);
        // Equal-capacity lattice: ties break to the lowest index.
        let p = s.place(occupant("a", false), 100, &CoResidencyPolicy::open());
        assert_eq!(
            p,
            Some(Placement {
                board: 0,
                region: 0
            })
        );
        let p2 = s.place(occupant("b", false), 100, &CoResidencyPolicy::open());
        assert_eq!(
            p2,
            Some(Placement {
                board: 0,
                region: 1
            })
        );
        assert_eq!(s.free_regions(), 2);
    }

    #[test]
    fn oversized_demand_is_refused_and_release_frees() {
        let mut s = sched(1);
        let cap = s.regions()[0].capacity_cells;
        assert!(s
            .place(occupant("big", false), cap + 1, &CoResidencyPolicy::open())
            .is_none());
        let p = s
            .place(occupant("a", false), cap, &CoResidencyPolicy::open())
            .unwrap();
        assert_eq!(s.occupant(p).unwrap().tenant, "a");
        assert_eq!(s.release(p).unwrap().tenant, "a");
        assert_eq!(s.free_regions(), 4);
        assert!(s.release(p).is_none(), "double release is a no-op");
    }

    #[test]
    fn isolate_flagged_quarantines_without_a_pair() {
        let mut s = sched(2);
        let policy = CoResidencyPolicy::isolate_flagged();
        let victim = s.place(occupant("victim", false), 1, &policy).unwrap();
        assert_eq!(victim.board, 0);
        // The flagged tenant cannot join board 0; it lands on board 1.
        let flagged = s.place(occupant("eve", true), 1, &policy).unwrap();
        assert_eq!(flagged.board, 1);
        // A second unflagged tenant avoids eve's board too.
        let p = s.place(occupant("bob", false), 1, &policy).unwrap();
        assert_eq!(p.board, 0);
    }

    #[test]
    fn allow_pair_makes_co_residency_an_explicit_scenario() {
        let mut s = sched(1);
        let policy = CoResidencyPolicy::isolate_flagged().allow("victim", "eve");
        s.place(occupant("victim", false), 1, &policy).unwrap();
        // With only one board, eve fits only if the pairing is allowed.
        let p = s.place(occupant("eve", true), 1, &policy);
        assert!(p.is_some(), "explicitly paired attacker co-resides");
        // A third, unpaired flagged tenant is still refused.
        assert!(s.place(occupant("mallory", true), 1, &policy).is_none());
    }

    #[test]
    fn open_mode_ignores_flags() {
        let mut s = sched(1);
        let policy = CoResidencyPolicy::open();
        s.place(occupant("victim", false), 1, &policy).unwrap();
        assert!(s.place(occupant("eve", true), 1, &policy).is_some());
    }
}
