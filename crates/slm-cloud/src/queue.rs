//! A bounded FIFO with explicit backpressure.
//!
//! The service's event loop is single-threaded by design (determinism
//! lives in *what* each round does, parallelism lives inside the
//! round), so the queue needs no locking — what it needs is a `push`
//! that can *refuse*: a full admission queue defers intake, a full
//! wait queue sheds the tenant. Both behaviours hinge on getting the
//! rejected item back, which is why [`BoundedQueue::push`] returns it
//! instead of growing.

use std::collections::VecDeque;

/// A FIFO that never exceeds its construction-time capacity.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Appends `item`, or hands it back when the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity; the caller
    /// decides whether that means "defer" or "shed".
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Removes every item, oldest first.
    pub fn drain_all(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Maximum depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_refuses_beyond_capacity_and_returns_the_item() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3), "rejected item comes back");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1), "FIFO order");
        assert!(q.push(3).is_ok(), "popping frees a slot");
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push('a').is_ok());
        assert_eq!(q.push('b'), Err('b'));
    }

    #[test]
    fn drain_preserves_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain_all(), vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }
}
