//! Per-tenant resource accounting against a [`TenantQuota`].
//!
//! The ledger counts in the service's logical units — traces and event
//! loop rounds — so the same submission sequence produces the same
//! charge history at any worker count. Wall-clock never enters quota
//! decisions.

use crate::submission::TenantQuota;
use serde::{Deserialize, Serialize};

/// Running consumption of one placed tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QuotaLedger {
    /// Traces dispatched over the tenant's lifetime.
    pub traces_used: u64,
    /// Traces dispatched within the current round (rate-cap window).
    pub round_traces: u64,
    /// Completed rounds the tenant has held a region.
    pub region_rounds: u64,
}

/// Why a dispatch was refused this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuotaDecision {
    /// The dispatch fits every limit.
    Allow,
    /// The per-round rate cap is hit; retry next round.
    Throttle,
    /// The lifetime trace budget cannot cover the dispatch: preempt.
    ExhaustedTraces,
    /// The region-rounds lease has run out: preempt.
    ExhaustedLease,
}

impl QuotaLedger {
    /// Judges a prospective dispatch of `traces` against `quota`.
    ///
    /// Exhaustion outranks throttling: a tenant that can never afford
    /// its next campaign is preempted even if the rate cap would also
    /// have stalled it this round.
    pub fn admit(&self, quota: &TenantQuota, traces: u64) -> QuotaDecision {
        if self.region_rounds >= quota.max_region_rounds {
            QuotaDecision::ExhaustedLease
        } else if self.traces_used.saturating_add(traces) > quota.max_traces {
            QuotaDecision::ExhaustedTraces
        } else if self.round_traces.saturating_add(traces) > quota.max_traces_per_round {
            QuotaDecision::Throttle
        } else {
            QuotaDecision::Allow
        }
    }

    /// Records a dispatched campaign of `traces`.
    pub fn charge(&mut self, traces: u64) {
        self.traces_used = self.traces_used.saturating_add(traces);
        self.round_traces = self.round_traces.saturating_add(traces);
    }

    /// Closes the round: resets the rate-cap window and ages the
    /// region lease by one round.
    pub fn tick_round(&mut self) {
        self.round_traces = 0;
        self.region_rounds = self.region_rounds.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota() -> TenantQuota {
        TenantQuota {
            max_traces: 100,
            max_region_rounds: 3,
            max_traces_per_round: 40,
        }
    }

    #[test]
    fn rate_cap_throttles_within_a_round_and_resets() {
        let q = quota();
        let mut l = QuotaLedger::default();
        assert_eq!(l.admit(&q, 30), QuotaDecision::Allow);
        l.charge(30);
        assert_eq!(l.admit(&q, 30), QuotaDecision::Throttle);
        l.tick_round();
        assert_eq!(l.admit(&q, 30), QuotaDecision::Allow, "window resets");
    }

    #[test]
    fn lifetime_budget_preempts() {
        let q = quota();
        let mut l = QuotaLedger::default();
        l.charge(40);
        l.tick_round();
        l.charge(40);
        l.tick_round();
        assert_eq!(l.traces_used, 80);
        assert_eq!(l.admit(&q, 30), QuotaDecision::ExhaustedTraces);
        assert_eq!(l.admit(&q, 20), QuotaDecision::Allow, "exact fit is fine");
    }

    #[test]
    fn lease_expiry_preempts_even_with_trace_budget_left() {
        let q = quota();
        let mut l = QuotaLedger::default();
        for _ in 0..3 {
            l.tick_round();
        }
        assert_eq!(l.admit(&q, 1), QuotaDecision::ExhaustedLease);
    }

    #[test]
    fn default_quota_is_unlimited() {
        let q = TenantQuota::default();
        let mut l = QuotaLedger::default();
        l.charge(u64::MAX / 2);
        l.tick_round();
        assert_eq!(l.admit(&q, u64::MAX / 4), QuotaDecision::Allow);
    }
}
