//! Sustained-traffic benchmark of the `slm-cloud` fabric service.
//!
//! The preamble study feeds `BENCH_service.json` at the workspace
//! root: a fleet of CPA tenants (plus one denied specimen, so the
//! admission path exercises its denial branch under load) is pushed
//! through a full service run and we record the sustained campaign
//! throughput, the wall-clock admission-gate latency distribution
//! (p50/p99 over per-submission `decide()` calls), and the scan-cache
//! hit rate the duplicate-heavy fleet achieves.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use slm_checker::ScanCache;
use slm_cloud::{
    AdmissionGate, CampaignKind, CloudService, SensorSource, ServiceConfig, TenantQuota,
    TenantStatus, TenantSubmission, WorkloadSpec,
};
use slm_netlist::generators;
use std::hint::black_box;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

#[derive(Debug, Serialize)]
struct ServiceBench {
    bench: String,
    quick: bool,
    tenants: usize,
    campaigns_delivered: u64,
    rounds: u64,
    elapsed_seconds: f64,
    sustained_campaigns_per_sec: f64,
    admission_samples: usize,
    admission_p50_us: f64,
    admission_p99_us: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
}

/// The traffic mix: many tenants resubmitting a handful of distinct
/// netlists (the duplicate-heavy shape real campaign fleets have), a
/// structural specimen the gate must deny, and per-round rate caps so
/// the run stretches over multiple scheduling rounds.
fn fleet(tenants: usize, campaigns: u32, traces: u64) -> Vec<TenantSubmission> {
    let designs = [
        generators::c17(),
        generators::kogge_stone_adder(16).expect("ksa"),
        generators::ripple_carry_adder(24).expect("rca"),
    ];
    let workload = WorkloadSpec {
        kind: CampaignKind::Cpa {
            source: SensorSource::TdcAll,
        },
        traces,
        campaigns,
        ..WorkloadSpec::default()
    };
    let mut subs: Vec<TenantSubmission> = (0..tenants)
        .map(|i| {
            TenantSubmission::new(format!("tenant{i:03}"), designs[i % designs.len()].clone())
                .with_workload(workload)
                .with_quota(TenantQuota {
                    max_traces_per_round: traces * 2,
                    ..TenantQuota::default()
                })
        })
        .collect();
    subs.push(TenantSubmission::new(
        "specimen",
        generators::ring_oscillator(8).expect("ro"),
    ));
    subs
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn service_study() -> ServiceBench {
    let (tenants, campaigns, traces) = if quick() { (12, 2, 8) } else { (48, 4, 16) };
    let subs = fleet(tenants, campaigns, traces);

    // Admission-gate latency: time each `decide()` against a shared
    // warm-capable cache, exactly as the service's intake does.
    let gate = AdmissionGate::new(ScanCache::in_memory());
    let mut lat_us: Vec<f64> = subs
        .iter()
        .map(|sub| {
            let t = std::time::Instant::now();
            black_box(gate.decide(sub));
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let admission_p50_us = percentile_us(&lat_us, 0.50);
    let admission_p99_us = percentile_us(&lat_us, 0.99);

    // Sustained throughput: one full service run, wall-clocked. Small
    // intake batches model a steady arrival stream (rather than one
    // bulk drop), which is also what lets later rounds replay
    // duplicate scans from the warmed cache.
    let service = CloudService::new(ServiceConfig {
        intake_per_round: 4,
        admission_queue_depth: 4,
        // Every admitted tenant waits for a region rather than being
        // shed: throughput under contention is the point of the study.
        wait_queue_depth: tenants + 1,
        max_campaigns_per_round: 8,
        workers: 0,
        ..ServiceConfig::default()
    });
    let t = std::time::Instant::now();
    let report = service.run(subs).expect("service drains");
    let elapsed_seconds = t.elapsed().as_secs_f64();

    let expected = tenants as u64 * campaigns as u64;
    assert_eq!(report.campaigns_delivered, expected);
    assert_eq!(report.denied, 1, "the specimen must be denied");
    for rec in &report.tenants {
        assert!(
            matches!(rec.status, TenantStatus::Completed | TenantStatus::Denied),
            "{} did not drain: {:?}",
            rec.tenant,
            rec.status
        );
    }
    assert!(
        report.cache_hit_rate() > 0.5,
        "duplicate-heavy fleet must mostly hit the scan cache, got {:.2}",
        report.cache_hit_rate()
    );
    let sustained = report.campaigns_delivered as f64 / elapsed_seconds.max(f64::EPSILON);
    println!(
        "[service] {} tenants, {} campaigns in {elapsed_seconds:.3}s \
         ({sustained:.0} campaigns/s, admission p50 {admission_p50_us:.0}us \
         p99 {admission_p99_us:.0}us, cache {:.0}% hit)",
        tenants,
        report.campaigns_delivered,
        100.0 * report.cache_hit_rate(),
    );
    ServiceBench {
        bench: "service".to_string(),
        quick: quick(),
        tenants,
        campaigns_delivered: report.campaigns_delivered,
        rounds: report.rounds,
        elapsed_seconds,
        sustained_campaigns_per_sec: sustained,
        admission_samples: lat_us.len(),
        admission_p50_us,
        admission_p99_us,
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
        cache_hit_rate: report.cache_hit_rate(),
    }
}

fn service_traffic(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let record = service_study();
        let json = serde_json::to_string_pretty(&record)
            .expect("bench record serialization is infallible");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
        std::fs::write(path, json + "\n").expect("workspace root is writable");
        println!("[service] wrote {path}");
    });

    // Timed kernels: the admission decision for a mid-size benign
    // design (cold cache each iteration would dominate, so this is the
    // warm path the service actually runs at traffic), and one small
    // end-to-end service drain.
    let gate = AdmissionGate::new(ScanCache::in_memory());
    let sub = TenantSubmission::new("alice", generators::alu(96).expect("alu"));
    let _ = gate.decide(&sub);
    c.bench_function("service_admission_warm_alu96", |b| {
        b.iter(|| gate.decide(black_box(&sub)))
    });

    c.bench_function("service_drain_4xc17", |b| {
        b.iter(|| {
            let service = CloudService::new(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            });
            let subs: Vec<TenantSubmission> = (0..4)
                .map(|i| {
                    TenantSubmission::new(format!("t{i}"), generators::c17()).with_workload(
                        WorkloadSpec {
                            kind: CampaignKind::Cpa {
                                source: SensorSource::TdcAll,
                            },
                            traces: 8,
                            campaigns: 1,
                            ..WorkloadSpec::default()
                        },
                    )
                })
                .collect();
            service.run(black_box(subs)).expect("service drains")
        })
    });
}

criterion_group!(benches, service_traffic);
criterion_main!(benches);
