//! Observability overhead: the cost of `slm-obs` on the campaign path.
//!
//! Two claims are asserted, not just reported:
//!
//! 1. **Disabled is free (< 1%).** The default `NullRecorder` handle
//!    turns every record call into one virtual dispatch on a no-op.
//!    A microbenchmark measures ns per null op and projects the worst
//!    case onto the measured per-trace simulation cost.
//! 2. **Enabled is cheap (< 3%).** The same sharded campaign runs
//!    null-handled and memory-recorded, interleaved, min-of-3; the
//!    enabled run may be at most 3% slower.
//!
//! Results (and the asserted bounds) land in `BENCH_obs.json` at the
//! workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use slm_core::experiments::{
    run_cpa_parallel, run_cpa_parallel_recorded, CpaExperiment, ParallelCpa, SensorSource,
};
use slm_fabric::BenignCircuit;
use slm_obs::Obs;
use std::hint::black_box;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

/// Obs calls per captured trace on the CPA path: one capture counter,
/// one accumulator counter — generously doubled for checkpoint-heavy
/// configurations.
const OBS_OPS_PER_TRACE: f64 = 4.0;

const NULL_BUDGET: f64 = 0.01;
const ENABLED_BUDGET: f64 = 0.03;

#[derive(Debug, Serialize)]
struct ObsBench {
    bench: String,
    quick: bool,
    traces: u64,
    null_ns_per_op: f64,
    /// Projected fraction of per-trace time spent in null obs calls.
    null_projected_overhead: f64,
    null_budget: f64,
    t_null_s: f64,
    t_enabled_s: f64,
    enabled_overhead: f64,
    enabled_budget: f64,
    deterministic: bool,
}

fn experiment() -> ParallelCpa {
    let traces = if quick() { 400 } else { 2_000 };
    ParallelCpa {
        base: CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces,
            checkpoints: 4,
            pilot_traces: if quick() { 30 } else { 100 },
            seed: 31,
        },
        shard_traces: (traces / 8).max(1),
        workers: 1,
    }
}

/// ns per obs call on a null handle: the price every instrumented hot
/// path pays when metrics are off.
fn null_ns_per_op() -> f64 {
    let obs = Obs::null();
    let iters = 2_000_000u64;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        black_box(&obs).incr(black_box("bench.null_op"));
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn observability_overhead(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let exp = experiment();

        // Warm-up run: page in code and the allocator before timing.
        run_cpa_parallel(&exp).expect("fabric builds");

        // Interleaved min-of-3: the minimum is the least-disturbed
        // observation of each configuration.
        let mut t_null = f64::INFINITY;
        let mut t_enabled = f64::INFINITY;
        let mut deterministic = true;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            let plain = run_cpa_parallel(&exp).expect("fabric builds");
            t_null = t_null.min(start.elapsed().as_secs_f64());

            let obs = Obs::memory();
            let start = std::time::Instant::now();
            let recorded = run_cpa_parallel_recorded(&exp, &obs).expect("fabric builds");
            t_enabled = t_enabled.min(start.elapsed().as_secs_f64());

            deterministic &= plain == recorded;
            let frame = obs.snapshot();
            assert_eq!(
                frame.counter("cpa.traces_absorbed"),
                exp.base.traces,
                "instrumentation must see every trace"
            );
        }
        assert!(deterministic, "recording must never perturb the result");

        let enabled_overhead = t_enabled / t_null - 1.0;
        let ns_op = null_ns_per_op();
        let per_trace_ns = t_null * 1e9 / exp.base.traces as f64;
        let null_projected = OBS_OPS_PER_TRACE * ns_op / per_trace_ns;

        println!(
            "[obs] null: {ns_op:.2} ns/op, {null_projected:.5} of per-trace cost \
             (budget {NULL_BUDGET})"
        );
        println!(
            "[obs] enabled: {t_enabled:.3}s vs {t_null:.3}s null, overhead \
             {enabled_overhead:+.4} (budget {ENABLED_BUDGET})"
        );
        assert!(
            null_projected < NULL_BUDGET,
            "null-recorder cost {null_projected:.5} exceeds the {NULL_BUDGET} budget"
        );
        assert!(
            enabled_overhead < ENABLED_BUDGET,
            "enabled-metrics overhead {enabled_overhead:.4} exceeds the {ENABLED_BUDGET} budget"
        );

        let record = ObsBench {
            bench: "observability".to_string(),
            quick: quick(),
            traces: exp.base.traces,
            null_ns_per_op: ns_op,
            null_projected_overhead: null_projected,
            null_budget: NULL_BUDGET,
            t_null_s: t_null,
            t_enabled_s: t_enabled,
            enabled_overhead,
            enabled_budget: ENABLED_BUDGET,
            deterministic,
        };
        let json = serde_json::to_string_pretty(&record)
            .expect("bench record serialization is infallible");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
        std::fs::write(path, json + "\n").expect("workspace root is writable");
        println!("[obs] wrote {path}");
    });

    // Timed kernel: the memory recorder's fork/record/absorb cycle —
    // the per-shard bookkeeping a parallel campaign adds.
    c.bench_function("obs_fork_record_absorb", |b| {
        b.iter(|| {
            let obs = Obs::memory();
            let shard = obs.fork();
            for _ in 0..100 {
                shard.incr(black_box("cpa.traces_absorbed"));
            }
            obs.absorb(&shard.snapshot());
            black_box(obs.snapshot())
        })
    });
}

criterion_group!(benches, observability_overhead);
criterion_main!(benches);
