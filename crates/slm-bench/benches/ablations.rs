//! Ablation benches for the design choices DESIGN.md calls out: which
//! physical ingredients the attack actually needs. Each ablation prints
//! a short table (captured in bench_output.txt) and times the varied
//! kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use slm_atpg::{Objective, StimulusSearch};
use slm_fabric::{BenignCircuit, FabricConfig, MultiTenantFabric};
use slm_pdn::PdnConfig;
use slm_sensors::BenignSensorConfig;
use slm_timing::{simulate_transition, DelayModel};
use std::hint::black_box;
use std::sync::OnceLock;

/// How many benign endpoints react to a fixed droop, as sensor jitter is
/// swept — the dither that turns discrete thresholds into an analog
/// response (DESIGN.md §5).
fn ablate_sensor_jitter(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        println!("[ablate_jitter] jitter_ps sensitive_endpoints");
        for jitter in [0.0, 15.0, 30.0, 60.0, 120.0] {
            let config = FabricConfig {
                benign: BenignCircuit::Alu192,
                sensor: BenignSensorConfig {
                    jitter_sigma_ps: jitter,
                    ..BenignSensorConfig::overclocked_300mhz(1)
                },
                ..FabricConfig::default()
            };
            let mut fabric = MultiTenantFabric::new(&config).unwrap();
            let trace = fabric.run_activity(
                Some(&slm_fabric::RoSchedule::paper_4mhz()),
                slm_fabric::AesActivity::Idle,
                600,
            );
            let mut act = slm_cpa::BitActivity::new(fabric.endpoints());
            for s in &trace.benign {
                act.add(s);
            }
            println!("[ablate_jitter] {jitter} {}", act.sensitive_bits().len());
        }
    });
    c.bench_function("ablation_jitter_sweep_one_point", |b| {
        let config = FabricConfig::default();
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        b.iter(|| fabric.run_activity(None, slm_fabric::AesActivity::Idle, black_box(50)))
    });
}

/// The overclock is the attack's key knob: at the synthesis clock the
/// capture edge lands after every endpoint settles and nothing is
/// sensitive; past ~2× overclock a band of endpoints dithers.
fn ablate_overclock(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        println!("[ablate_overclock] clock_mhz sensitive_endpoints");
        for clock in [50.0, 100.0, 200.0, 250.0, 300.0, 350.0] {
            let config = FabricConfig {
                benign: BenignCircuit::Alu192,
                sensor: BenignSensorConfig {
                    clock_mhz: clock,
                    ..BenignSensorConfig::overclocked_300mhz(2)
                },
                ..FabricConfig::default()
            };
            let mut fabric = MultiTenantFabric::new(&config).unwrap();
            let trace = fabric.run_activity(
                Some(&slm_fabric::RoSchedule::paper_4mhz()),
                slm_fabric::AesActivity::Idle,
                600,
            );
            let mut act = slm_cpa::BitActivity::new(fabric.endpoints());
            for s in &trace.benign {
                act.add(s);
            }
            println!("[ablate_overclock] {clock} {}", act.sensitive_bits().len());
        }
    });
    c.bench_function("ablation_overclock_fabric_build", |b| {
        b.iter(|| MultiTenantFabric::new(black_box(&FabricConfig::default())).unwrap())
    });
}

/// Kill the wideband supply path (r_fast = 0): the package resonance
/// low-passes the per-cycle AES signature away and the side channel
/// disappears, however good the sensor is.
fn ablate_wideband_path(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        println!("[ablate_rfast] r_fast voltage_stddev_during_aes");
        for r_fast in [0.0, 0.004, 0.012] {
            let config = FabricConfig {
                benign: BenignCircuit::DualC6288,
                pdn: PdnConfig {
                    r_fast,
                    noise_sigma_v: 0.0,
                    ..PdnConfig::default()
                },
                ..FabricConfig::default()
            };
            let mut fabric = MultiTenantFabric::new(&config).unwrap();
            let trace = fabric.run_activity(None, slm_fabric::AesActivity::Continuous, 600);
            let mean = trace.voltage.iter().sum::<f64>() / trace.voltage.len() as f64;
            let var = trace
                .voltage
                .iter()
                .map(|v| (v - mean).powi(2))
                .sum::<f64>()
                / trace.voltage.len() as f64;
            println!("[ablate_rfast] {r_fast} {:.6}", var.sqrt());
        }
    });
    c.bench_function("ablation_rfast_activity_run", |b| {
        let mut fabric = MultiTenantFabric::new(&FabricConfig::default()).unwrap();
        b.iter(|| fabric.run_activity(None, slm_fabric::AesActivity::Continuous, black_box(50)))
    });
}

/// Routing spread ablation: with zero routing randomness the adder's
/// endpoint thresholds collapse onto a regular grid; the spread is what
/// diversifies per-endpoint sensitivity.
fn ablate_routing_spread(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        println!("[ablate_routing] spread_ps settle_p10_ps settle_p90_ps");
        for (lo, hi) in [(0.0, 0.0), (30.0, 120.0), (30.0, 220.0)] {
            let built = BenignCircuit::Alu192.build().unwrap();
            let model = DelayModel {
                routing_min_ps: lo,
                routing_max_ps: hi,
                ..DelayModel::default()
            };
            let ann = model.annotate_for_period(&built.netlist, 5.2, 1.0).unwrap();
            let waves = simulate_transition(&ann, &built.reset, &built.measure).unwrap();
            let mut settles: Vec<u64> = waves
                .output_waves()
                .iter()
                .map(|w| w.settle_time_fs())
                .collect();
            settles.sort_unstable();
            println!(
                "[ablate_routing] {lo}-{hi} {:.0} {:.0}",
                settles[settles.len() / 10] as f64 / 1000.0,
                settles[settles.len() * 9 / 10] as f64 / 1000.0
            );
        }
    });
    c.bench_function("ablation_routing_annotate_and_sim", |b| {
        let built = BenignCircuit::Alu192.build().unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&built.netlist, 5.2, 1.0)
            .unwrap();
        b.iter(|| simulate_transition(&ann, black_box(&built.reset), &built.measure).unwrap())
    });
}

/// ATPG restart budget: solution quality vs search effort.
fn ablate_atpg_budget(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let nl = slm_netlist::generators::c6288().unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&nl, 5.2, 1.0)
            .unwrap();
        println!("[ablate_atpg] restarts active_endpoints evaluations");
        for restarts in [1usize, 3, 6, 12] {
            let search = StimulusSearch::new(
                &ann,
                Objective::MaxActiveEndpoints {
                    window_lo_ps: 2700.0,
                    window_hi_ps: 4100.0,
                },
            );
            let found = search.run(restarts, 99);
            println!(
                "[ablate_atpg] {restarts} {} {}",
                found.score, found.evaluations
            );
        }
    });
    c.bench_function("ablation_atpg_one_restart_c6288", |b| {
        let nl = slm_netlist::generators::c6288().unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&nl, 5.2, 1.0)
            .unwrap();
        b.iter(|| {
            let search = StimulusSearch::new(
                &ann,
                Objective::MaxActiveEndpoints {
                    window_lo_ps: 2700.0,
                    window_hi_ps: 4100.0,
                },
            );
            search.run(black_box(1), 5)
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablate_sensor_jitter, ablate_overclock, ablate_wideband_path,
              ablate_routing_spread, ablate_atpg_budget,
}
criterion_main!(ablations);
