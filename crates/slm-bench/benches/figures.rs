//! One bench group per paper figure. Each group prints the figure's
//! series/summary once (the reproduction record) and then times the
//! underlying kernel.
//!
//! Scale note: the paper's campaigns run to 500 k traces on silicon; the
//! bench-scale runs here use smaller budgets whose *shape* (who wins, by
//! how much, MTD ordering) matches — see EXPERIMENTS.md for the mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use slm_bench::run_and_report;
use slm_core::experiments::{
    activity_study, atpg_stimulus_study, floorplan_views, ro_response, stealth_audit, timing_audit,
    CpaExperiment, SensorSource,
};
use slm_core::report;
use slm_fabric::{BenignCircuit, FabricConfig, MultiTenantFabric};
use std::hint::black_box;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

/// Trace budget helper: full bench scale unless SLM_BENCH_QUICK is set.
fn budget(full: u64) -> u64 {
    if quick() {
        (full / 50).max(200)
    } else {
        full
    }
}

fn fig03_04_floorplans(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        for circuit in [BenignCircuit::Alu192, BenignCircuit::DualC6288] {
            let v = floorplan_views(circuit, 49, 7).unwrap();
            println!(
                "[fig03/04] {} benign_density={:.3} tdc_density={:.3} sensitive={}",
                v.name, v.benign_density, v.tdc_density, v.sensitive_cells
            );
        }
    });
    c.bench_function("fig03_04_floorplan_place_and_render", |b| {
        b.iter(|| floorplan_views(black_box(BenignCircuit::Alu192), 49, 7).unwrap())
    });
}

fn fig05_alu_raw_ro(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let r = ro_response(BenignCircuit::Alu192, 240, 1).unwrap();
        let vals: Vec<f64> = r.raw_values.iter().map(|&v| (v & 0xffff) as f64).collect();
        print!(
            "{}",
            report::series_table(
                "fig05: raw ALU word (low bits) per sample",
                "sample",
                "raw",
                &vals
            )
        );
        println!("[fig05] sensitive_bits={}", r.sensitive_bits.len());
    });
    c.bench_function("fig05_alu_ro_response_240_samples", |b| {
        b.iter(|| ro_response(black_box(BenignCircuit::Alu192), 240, 1).unwrap())
    });
}

fn fig06_tdc_vs_alu(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let r = ro_response(BenignCircuit::Alu192, 240, 2).unwrap();
        println!("[fig06] sample tdc hw_alu ro_enabled");
        for i in 0..r.tdc.len() {
            println!(
                "[fig06] {} {} {} {}",
                i, r.tdc[i], r.hw_sensitive[i], r.ro_enabled[i]
            );
        }
    });
    c.bench_function("fig06_dual_sensor_ro_burst", |b| {
        b.iter(|| ro_response(black_box(BenignCircuit::Alu192), 120, 2).unwrap())
    });
}

fn fig07_08_alu_census(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let s = activity_study(BenignCircuit::Alu192, 3000, 3).unwrap();
        println!(
            "[fig07] alu total={} ro_sensitive={} aes={} intersection={} aes_only={} unaffected={}",
            s.census.total,
            s.census.ro_sensitive.len(),
            s.census.aes_sensitive.len(),
            s.census.intersection.len(),
            s.census.aes_only.len(),
            s.census.unaffected
        );
        println!("[fig08] endpoint var_ro var_aes");
        for (i, vro, vaes) in &s.variance.rows {
            println!("[fig08] {i} {vro:.5} {vaes:.5}");
        }
        println!(
            "[fig08] best_aes_endpoint={:?}",
            s.variance.best_aes_endpoint
        );
    });
    c.bench_function("fig07_08_alu_activity_study_600", |b| {
        b.iter(|| activity_study(black_box(BenignCircuit::Alu192), 600, 3).unwrap())
    });
}

fn fig09_cpa_tdc(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        run_and_report(
            "fig09",
            &CpaExperiment {
                circuit: BenignCircuit::Alu192,
                source: SensorSource::TdcAll,
                traces: budget(20_000),
                checkpoints: 20,
                pilot_traces: 100,
                seed: 9,
            },
        );
    });
    bench_trace_kernel(c, "fig09_tdc_trace_kernel", SensorSource::TdcAll);
}

fn fig10_cpa_alu(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        run_and_report(
            "fig10",
            &CpaExperiment {
                circuit: BenignCircuit::Alu192,
                source: SensorSource::BenignHammingWeight,
                traces: budget(400_000),
                checkpoints: 40,
                pilot_traces: 500,
                seed: 10,
            },
        );
    });
    bench_trace_kernel(
        c,
        "fig10_alu_hw_trace_kernel",
        SensorSource::BenignHammingWeight,
    );
}

fn fig11_cpa_tdc_bit32(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        run_and_report(
            "fig11",
            &CpaExperiment {
                circuit: BenignCircuit::Alu192,
                source: SensorSource::TdcSingleBit(None),
                traces: budget(20_000),
                checkpoints: 20,
                pilot_traces: 100,
                seed: 11,
            },
        );
    });
    bench_trace_kernel(
        c,
        "fig11_tdc_bit_trace_kernel",
        SensorSource::TdcSingleBit(None),
    );
}

fn fig12_cpa_alu_bit_best(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        run_and_report(
            "fig12",
            &CpaExperiment {
                circuit: BenignCircuit::Alu192,
                source: SensorSource::BenignSingleBit(None),
                traces: budget(400_000),
                checkpoints: 40,
                pilot_traces: 500,
                seed: 12,
            },
        );
    });
    bench_trace_kernel(
        c,
        "fig12_alu_single_bit_trace_kernel",
        SensorSource::BenignSingleBit(None),
    );
}

fn fig13_cpa_alu_alt_bit(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        // The paper repeats fig12 with an alternate endpoint (bit 6 of
        // its ALU). We take the second-best pilot endpoint.
        let pilot = slm_core::experiments::aes_pilot_activity(BenignCircuit::Alu192, 3000, 13)
            .expect("fabric builds");
        let ranked = pilot.by_variance();
        let alt = ranked.get(1).copied().unwrap_or(ranked[0]);
        println!("[fig13] alternate endpoint chosen: {alt}");
        run_and_report(
            "fig13",
            &CpaExperiment {
                circuit: BenignCircuit::Alu192,
                source: SensorSource::BenignSingleBit(Some(alt)),
                traces: budget(400_000),
                checkpoints: 40,
                pilot_traces: 500,
                seed: 13,
            },
        );
    });
    c.bench_function("fig13_pilot_variance_ranking", |b| {
        b.iter(|| {
            slm_core::experiments::aes_pilot_activity(black_box(BenignCircuit::Alu192), 300, 13)
                .unwrap()
                .by_variance()
        })
    });
}

fn fig14_c6288_raw_ro(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let r = ro_response(BenignCircuit::DualC6288, 240, 14).unwrap();
        let vals: Vec<f64> = r.toggle_counts.iter().map(|&v| f64::from(v)).collect();
        print!(
            "{}",
            report::series_table(
                "fig14: toggling C6288 bits per sample",
                "sample",
                "toggles",
                &vals
            )
        );
        println!("[fig14] sensitive_bits={} of 64", r.sensitive_bits.len());
    });
    c.bench_function("fig14_c6288_ro_response_240_samples", |b| {
        b.iter(|| ro_response(black_box(BenignCircuit::DualC6288), 240, 14).unwrap())
    });
}

fn fig15_16_c6288_census(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let s = activity_study(BenignCircuit::DualC6288, 3000, 15).unwrap();
        println!(
            "[fig15] c6288 total={} ro_sensitive={} aes={} intersection={} aes_only={} unaffected={}",
            s.census.total,
            s.census.ro_sensitive.len(),
            s.census.aes_sensitive.len(),
            s.census.intersection.len(),
            s.census.aes_only.len(),
            s.census.unaffected
        );
        println!("[fig16] endpoint var_ro var_aes");
        for (i, vro, vaes) in &s.variance.rows {
            println!("[fig16] {i} {vro:.5} {vaes:.5}");
        }
        println!("[fig16] best_aes_endpoint={:?}", s.variance.best_aes_endpoint);
    });
    c.bench_function("fig15_16_c6288_activity_study_600", |b| {
        b.iter(|| activity_study(black_box(BenignCircuit::DualC6288), 600, 15).unwrap())
    });
}

fn fig17_cpa_c6288(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        run_and_report(
            "fig17",
            &CpaExperiment {
                circuit: BenignCircuit::DualC6288,
                source: SensorSource::BenignHammingWeight,
                traces: budget(800_000),
                checkpoints: 40,
                pilot_traces: 500,
                seed: 17,
            },
        );
    });
    c.bench_function("fig17_c6288_hw_trace_kernel", |b| {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let window = fabric.last_round_window();
        let endpoints: Vec<usize> = (0..32).collect();
        b.iter(|| {
            let pt = fabric.random_plaintext();
            fabric.encrypt_windowed(black_box(pt), window.clone(), &endpoints)
        })
    });
}

fn fig18_cpa_c6288_bit_best(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        run_and_report(
            "fig18",
            &CpaExperiment {
                circuit: BenignCircuit::DualC6288,
                source: SensorSource::BenignSingleBit(None),
                traces: budget(500_000),
                checkpoints: 40,
                pilot_traces: 500,
                seed: 18,
            },
        );
    });
    c.bench_function("fig18_c6288_single_bit_kernel", |b| {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            ..FabricConfig::default()
        };
        let mut fabric = MultiTenantFabric::new(&config).unwrap();
        let window = fabric.last_round_window();
        let endpoints = vec![28usize];
        b.iter(|| {
            let pt = fabric.random_plaintext();
            fabric.encrypt_windowed(black_box(pt), window.clone(), &endpoints)
        })
    });
}

fn stealth_and_timing(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let audit = stealth_audit().unwrap();
        for (name, report, is_attack) in &audit.rows {
            println!(
                "[stealth] {} attack={} clean={} findings={}",
                name,
                is_attack,
                report.is_clean(),
                report.findings.len()
            );
        }
        println!("[stealth] demonstrated={}", audit.stealth_demonstrated());
        let t = timing_audit(5.2).unwrap();
        for row in &t.rows {
            println!(
                "[timing] {} fmax={:.1}MHz ok@50={} ok@300={} strict_fires={}",
                row.name,
                row.fmax_mhz,
                row.meets_synth_clock,
                row.meets_overclock,
                row.strict_check_fires
            );
        }
    });
    c.bench_function("stealth_checker_full_zoo", |b| {
        b.iter(|| stealth_audit().unwrap())
    });
    c.bench_function("strict_timing_audit", |b| {
        b.iter(|| timing_audit(5.2).unwrap())
    });
}

fn atpg_stimuli(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let s = atpg_stimulus_study(16, 40, 3).unwrap();
        println!(
            "[atpg] hand={:.0}ps found={:.0}ps ratio={:.2} evals={}",
            s.hand_settle_ps, s.found.score, s.ratio, s.found.evaluations
        );
    });
    c.bench_function("atpg_search_12bit_adder", |b| {
        b.iter(|| atpg_stimulus_study(black_box(12), 10, 3).unwrap())
    });
}

/// Shared kernel measurement: one windowed capture through the ALU
/// fabric with the endpoints a given source would use.
fn bench_trace_kernel(c: &mut Criterion, name: &str, source: SensorSource) {
    let config = FabricConfig {
        benign: BenignCircuit::Alu192,
        ..FabricConfig::default()
    };
    let mut fabric = MultiTenantFabric::new(&config).unwrap();
    let window = fabric.last_round_window();
    let endpoints: Vec<usize> = match source {
        SensorSource::TdcAll | SensorSource::TdcSingleBit(_) => Vec::new(),
        SensorSource::BenignHammingWeight => (0..64).collect(),
        SensorSource::BenignSingleBit(_) => vec![21],
    };
    c.bench_function(name, |b| {
        b.iter(|| {
            let pt = fabric.random_plaintext();
            fabric.encrypt_windowed(black_box(pt), window.clone(), &endpoints)
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        fig03_04_floorplans,
        fig05_alu_raw_ro,
        fig06_tdc_vs_alu,
        fig07_08_alu_census,
        fig09_cpa_tdc,
        fig10_cpa_alu,
        fig11_cpa_tdc_bit32,
        fig12_cpa_alu_bit_best,
        fig13_cpa_alu_alt_bit,
        fig14_c6288_raw_ro,
        fig15_16_c6288_census,
        fig17_cpa_c6288,
        fig18_cpa_c6288_bit_best,
        stealth_and_timing,
        atpg_stimuli,
}
criterion_main!(figures);
