//! Streaming campaign engine: crash-safety smoke and long-horizon MTD.
//!
//! Two preamble studies feed `BENCH_streaming.json` at the workspace
//! root:
//!
//! 1. **Resume-after-kill smoke** — a campaign is killed mid-pipeline
//!    (after a fold, then again with a torn commit), resumed from its
//!    generation ledger, and asserted bit-identical to the
//!    uninterrupted run, with the raw-trace retention bound checked.
//! 2. **Long-horizon defense MTD** — the defense arms the matrix bench
//!    only proves "defeated at 3k traces" are re-run at a 50k-trace
//!    budget (2k in quick mode) through the streaming engine with
//!    online-MTD early stop, reporting each arm's true — or still
//!    budget-censored — measurements-to-disclosure.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use slm_core::experiments::{
    run_streaming, run_streaming_crashing, run_streaming_with_recorded, CpaExperiment, CrashPlan,
    CrashSite, DefenseArm, EarlyStop, SensorSource, StreamOutcome, StreamingCpa,
};
use slm_fabric::{BenignCircuit, DetectorConfig};
use slm_obs::Obs;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slm-bench-stream-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Serialize)]
struct CrashSmoke {
    kills_injected: u64,
    torn_generations_recovered: u64,
    resume_bit_identical: bool,
    window_traces: u64,
    peak_raw_traces: u64,
}

#[derive(Debug, Serialize)]
struct MtdRow {
    arm: String,
    traces_budget: u64,
    traces_run: u64,
    windows: u64,
    early_stopped: bool,
    disclosed: bool,
    mtd: Option<u64>,
    seconds: f64,
    traces_per_sec: f64,
    commits: u64,
    bytes_journaled: u64,
}

#[derive(Debug, Serialize)]
struct StreamingBench {
    bench: String,
    quick: bool,
    circuit: String,
    source: String,
    crash_smoke: CrashSmoke,
    rows: Vec<MtdRow>,
}

fn base(traces: u64) -> CpaExperiment {
    CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces,
        checkpoints: 4,
        pilot_traces: if quick() { 30 } else { 100 },
        seed: 41,
    }
}

/// Kill a campaign twice (after a fold, then with a torn commit),
/// resume it to completion, and compare against the clean run.
fn crash_smoke() -> CrashSmoke {
    let traces = if quick() { 600 } else { 2_000 };
    let window = traces / 10;
    let exp = StreamingCpa::new(base(traces))
        .with_window(window)
        .with_commit_every(1);
    let clean_dir = scratch_dir("smoke-clean");
    let clean = run_streaming(&exp, &clean_dir).expect("fabric builds");

    let dir = scratch_dir("smoke-killed");
    let mut plan = CrashPlan::none()
        .kill_at(2, CrashSite::AfterFold)
        .kill_at(5, CrashSite::TornCommit);
    let mut kills = 0u64;
    let resumed = loop {
        match run_streaming_crashing(&exp, &dir, |_| {}, &Obs::null(), &mut plan)
            .expect("streaming run")
        {
            StreamOutcome::Complete(r) => break r,
            StreamOutcome::Killed { .. } => kills += 1,
        }
    };
    assert_eq!(kills, 2, "both scheduled kills must fire");
    assert_eq!(
        resumed.result, clean.result,
        "killed+resumed campaign must be bit-identical to the clean run"
    );
    assert_eq!(
        resumed.recovered_generations, 1,
        "the torn generation must be recovered past"
    );
    assert!(
        resumed.peak_raw_traces <= window,
        "raw retention {} exceeds the window bound {window}",
        resumed.peak_raw_traces
    );
    println!(
        "[streaming] crash smoke: {kills} kills, {} torn generation(s) recovered, \
         resume bit-identical, peak raw {} <= window {window}",
        resumed.recovered_generations, resumed.peak_raw_traces
    );
    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
    CrashSmoke {
        kills_injected: kills,
        torn_generations_recovered: resumed.recovered_generations,
        resume_bit_identical: true,
        window_traces: window,
        peak_raw_traces: resumed.peak_raw_traces,
    }
}

/// Re-run the "defeated at 3k" defense arms at a long-horizon budget.
fn mtd_study() -> Vec<MtdRow> {
    let budget: u64 = if quick() { 2_000 } else { 50_000 };
    let window: u64 = if quick() { 250 } else { 1_000 };
    let detector = DetectorConfig {
        window_ticks: 4098,
        alarm_threshold: 0.05,
    };
    let arms = [
        DefenseArm::Undefended,
        DefenseArm::PrngFence(1.5),
        DefenseArm::AdaptiveFence(1.5),
        DefenseArm::Ldo(0.25),
        DefenseArm::ClockJitter(8),
    ];
    let mut rows = Vec::new();
    for (tag, arm) in arms.into_iter().enumerate() {
        let exp = StreamingCpa::new(base(budget))
            .with_window(window)
            .with_commit_every(2)
            .with_config_tag(tag as u64 + 1)
            .with_early_stop(EarlyStop {
                min_traces: budget / 10,
                stable_commits: 3,
                min_margin: 0.01,
            });
        let dir = scratch_dir(&format!("mtd-{tag}"));
        let deployment = arm.deployment(detector, 0xbe7);
        let obs = Obs::memory();
        let start = std::time::Instant::now();
        let r = run_streaming_with_recorded(
            &exp,
            &dir,
            |config| {
                if !matches!(arm, DefenseArm::Undefended) {
                    config.stimulus_alternation = 0.3;
                    config.defense = deployment;
                }
            },
            &obs,
        )
        .expect("fabric builds");
        let seconds = start.elapsed().as_secs_f64();
        let frame = obs.snapshot();
        println!(
            "[streaming] arm={} traces={}/{budget} early_stop={} mtd={:?} \
             elapsed={seconds:.2}s traces/sec={:.0}",
            arm.label(),
            r.traces,
            r.early_stopped,
            r.result.mtd,
            r.traces as f64 / seconds,
        );
        rows.push(MtdRow {
            arm: arm.label(),
            traces_budget: budget,
            traces_run: r.traces,
            windows: r.windows,
            early_stopped: r.early_stopped,
            disclosed: r.result.mtd.is_some(),
            mtd: r.result.mtd,
            seconds,
            traces_per_sec: r.traces as f64 / seconds,
            commits: frame.counter("stream.commits"),
            bytes_journaled: frame.counter("stream.bytes_journaled"),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert!(
        rows[0].disclosed,
        "undefended long-horizon baseline must disclose the key"
    );
    rows
}

fn streaming_engine(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let smoke = crash_smoke();
        let rows = mtd_study();
        let record = StreamingBench {
            bench: "streaming".to_string(),
            quick: quick(),
            circuit: "DualC6288".to_string(),
            source: "TdcAll".to_string(),
            crash_smoke: smoke,
            rows,
        };
        let json = serde_json::to_string_pretty(&record)
            .expect("bench record serialization is infallible");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
        std::fs::write(path, json + "\n").expect("workspace root is writable");
        println!("[streaming] wrote {path}");
    });

    // Timed kernel: a small streaming campaign end to end, including
    // its ledger commits.
    c.bench_function("streaming_campaign_300_traces", |b| {
        b.iter(|| {
            let dir = scratch_dir("kernel");
            let exp = StreamingCpa::new(base(300))
                .with_window(75)
                .with_commit_every(2);
            let r = run_streaming(black_box(&exp), &dir).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            r
        })
    });
}

criterion_group!(benches, streaming_engine);
criterion_main!(benches);
