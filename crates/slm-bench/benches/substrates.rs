//! Throughput benches for every substrate the reproduction builds —
//! the performance envelope that makes the 10^5-trace campaigns of the
//! paper's figures feasible in simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use slm_aes::{Aes32Rtl, LeakageModel};
use slm_cpa::{CpaAttack, LastRoundModel};
use slm_fabric::{BenignCircuit, FabricConfig, MultiTenantFabric};
use slm_netlist::generators::{alu, c6288, ripple_carry_adder};
use slm_netlist::{bench as bench_fmt, words};
use slm_pdn::noise::Rng64;
use slm_pdn::{Pdn, PdnConfig};
use slm_sensors::{BenignSensor, BenignSensorConfig, TdcConfig, TdcSensor};
use slm_timing::{simulate_transition, DelayModel};
use std::hint::black_box;

fn netlist_eval(c: &mut Criterion) {
    let nl = c6288().unwrap();
    let mut ins = words::to_bits(0x9d77, 16);
    ins.extend(words::to_bits(0xf7d6, 16));
    let mut group = c.benchmark_group("netlist");
    group.throughput(Throughput::Elements(nl.len() as u64));
    group.bench_function("c6288_functional_eval", |b| {
        b.iter(|| nl.eval(black_box(&ins)).unwrap())
    });
    let ins64: Vec<u64> = ins.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
    group.throughput(Throughput::Elements(64 * nl.len() as u64));
    group.bench_function("c6288_parallel_eval_64x", |b| {
        b.iter(|| nl.eval_parallel(black_box(&ins64)).unwrap())
    });
    group.finish();
}

fn bench_format(c: &mut Criterion) {
    let nl = c6288().unwrap();
    let text = bench_fmt::write(&nl);
    c.bench_function("bench_format_parse_c6288", |b| {
        b.iter(|| bench_fmt::parse(black_box(&text), "c6288").unwrap())
    });
    c.bench_function("bench_format_write_c6288", |b| {
        b.iter(|| bench_fmt::write(black_box(&nl)))
    });
}

fn timing_analysis(c: &mut Criterion) {
    let nl = alu(192).unwrap();
    let model = DelayModel::default();
    c.bench_function("annotate_alu192", |b| {
        b.iter(|| model.annotate(black_box(&nl)))
    });
    let ann = model.annotate(&nl);
    c.bench_function("sta_alu192", |b| b.iter(|| ann.sta().unwrap()));
    let built = BenignCircuit::Alu192.build().unwrap();
    c.bench_function("event_sim_alu192_carry_stimulus", |b| {
        b.iter(|| simulate_transition(&ann, black_box(&built.reset), &built.measure).unwrap())
    });
}

fn pdn_and_sensors(c: &mut Criterion) {
    let mut group = c.benchmark_group("electrical");
    group.throughput(Throughput::Elements(1));
    group.bench_function("pdn_step", |b| {
        let mut pdn = Pdn::new(PdnConfig::default());
        let mut i = 0.0f64;
        b.iter(|| {
            i = (i + 0.37) % 3.0;
            pdn.step(black_box(i), 3.33e-9)
        })
    });
    group.bench_function("tdc_sample", |b| {
        let mut tdc = TdcSensor::new(TdcConfig::paper_150mhz(1));
        b.iter(|| tdc.sample(black_box(0.99)))
    });
    group.bench_function("benign_sensor_sample_193_endpoints", |b| {
        let built = BenignCircuit::Alu192.build().unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&built.netlist, 5.2, 1.0)
            .unwrap();
        let waves = simulate_transition(&ann, &built.reset, &built.measure)
            .unwrap()
            .into_output_waves();
        let mut sensor = BenignSensor::new(waves, BenignSensorConfig::overclocked_300mhz(2));
        b.iter(|| sensor.sample(black_box(0.995)))
    });
    group.finish();
}

fn aes_rtl(c: &mut Criterion) {
    let rtl = Aes32Rtl::new([7u8; 16]);
    let model = LeakageModel::default();
    let mut rng = Rng64::new(3);
    let mut group = c.benchmark_group("aes");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encrypt_with_power", |b| {
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            rtl.encrypt_with_power(black_box([i; 16]), &model, &mut rng)
        })
    });
    group.finish();
}

fn fabric_capture(c: &mut Criterion) {
    let config = FabricConfig::default();
    let mut fabric = MultiTenantFabric::new(&config).unwrap();
    let window = fabric.last_round_window();
    let mut group = c.benchmark_group("fabric");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encrypt_and_capture_full", |b| {
        b.iter(|| {
            let pt = fabric.random_plaintext();
            fabric.encrypt_and_capture(black_box(pt))
        })
    });
    group.bench_function("encrypt_windowed_last_round", |b| {
        let endpoints: Vec<usize> = (80..140).collect();
        b.iter(|| {
            let pt = fabric.random_plaintext();
            fabric.encrypt_windowed(black_box(pt), window.clone(), &endpoints)
        })
    });
    group.finish();
}

fn cpa_attack(c: &mut Criterion) {
    let model = LastRoundModel::paper_target();
    let mut group = c.benchmark_group("cpa");
    group.throughput(Throughput::Elements(1));
    group.bench_function("add_trace_7_points", |b| {
        let mut attack = CpaAttack::new(model, 7);
        let mut rng = Rng64::new(4);
        b.iter(|| {
            let mut ct = [0u8; 16];
            rng.fill_bytes(&mut ct);
            let pts: Vec<f64> = (0..7).map(|_| rng.normal()).collect();
            attack.add_trace(black_box(&ct), &pts);
        })
    });
    group.bench_function("correlations_256x7_from_bins", |b| {
        let mut attack = CpaAttack::new(model, 7);
        let mut rng = Rng64::new(5);
        for _ in 0..10_000 {
            let mut ct = [0u8; 16];
            rng.fill_bytes(&mut ct);
            let pts: Vec<f64> = (0..7).map(|_| rng.normal()).collect();
            attack.add_trace(&ct, &pts);
        }
        b.iter_batched(
            || attack.clone(),
            |a| a.correlations(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn transport_and_store(c: &mut Criterion) {
    use slm_cpa::store::TraceWriter;
    use slm_fabric::RemoteSession;
    let mut group = c.benchmark_group("transport");
    group.throughput(Throughput::Elements(1));
    group.bench_function("remote_session_round_trip", |b| {
        let config = FabricConfig {
            benign: BenignCircuit::DualC6288,
            ..FabricConfig::default()
        };
        let mut session = RemoteSession::new(&config, (0..16).collect()).unwrap();
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            session.host_encrypt(black_box([i; 16])).unwrap()
        })
    });
    group.bench_function("trace_store_write_7_points", |b| {
        let mut rng = Rng64::new(11);
        let mut writer = TraceWriter::new(Vec::new(), 7).unwrap();
        b.iter(|| {
            let mut ct = [0u8; 16];
            rng.fill_bytes(&mut ct);
            let pts: Vec<f64> = (0..7).map(|_| rng.normal()).collect();
            writer.write_trace(black_box(&ct), &pts).unwrap();
        })
    });
    group.finish();
}

fn adder_scaling(c: &mut Criterion) {
    // How event-sim cost scales with the carry-chain length — the
    // substrate property behind "any big circuit is a usable sensor".
    let mut group = c.benchmark_group("event_sim_scaling");
    for n in [32usize, 64, 128, 192] {
        let nl = ripple_carry_adder(n).unwrap();
        let ann = DelayModel::default().annotate(&nl);
        let mut reset = words::to_bits(0, n);
        reset.extend(words::to_bits(0, n));
        let mut measure = vec![true; n];
        measure.extend(words::to_bits(1, n));
        group.throughput(Throughput::Elements(nl.len() as u64));
        group.bench_function(format!("rca{n}"), |b| {
            b.iter(|| simulate_transition(&ann, black_box(&reset), &measure).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = netlist_eval, bench_format, timing_analysis, pdn_and_sensors,
              aes_rtl, fabric_capture, cpa_attack, transport_and_store,
              adder_scaling,
}
criterion_main!(substrates);
