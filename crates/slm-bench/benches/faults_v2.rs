//! Fault-injection throughput and the combined SCA/FI matrix.
//!
//! Runs the standard-shape aggressor-vs-defense fault matrix (weak and
//! calibrated stealthy bursts plus the blatant tick-rate duty cycle,
//! against no defense and the LDO), records faults-per-1k, DFA key
//! recovery and detector scores to `BENCH_fault.json` at the workspace
//! root, and smoke-checks the headline claims: the undefended
//! calibrated aggressor yields the full master key, the LDO suppresses
//! every fault, and the stealthy burst evades the alternation detector
//! that flags the blatant one.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use slm_core::experiments::{
    fault_matrix, run_fault_campaign, DefenseArm, FaultCampaign, FaultMatrixExperiment,
};
use slm_cpa::DfaModel;
use slm_fabric::{AggressorSpec, BenignCircuit, FabricConfig};
use std::hint::black_box;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

fn aggressor_label(aggressor: &Option<AggressorSpec>) -> String {
    match aggressor {
        None => "none".into(),
        Some(a) => format!(
            "{:.1}A {}on/{}period",
            a.peak_current_a, a.on_ticks, a.period_ticks
        ),
    }
}

#[derive(Debug, Serialize)]
struct FaultCell {
    aggressor: String,
    arm: String,
    faults_per_1k: f64,
    pairs_accepted: u64,
    pairs_discarded: u64,
    recovered_bytes: usize,
    key_recovered: bool,
    min_victim_v: f64,
    alarm_windows: u64,
}

#[derive(Debug, Serialize)]
struct DetectorRow {
    aggressor: String,
    windows: u64,
    alarm_windows: u64,
    max_score: f64,
    detected: bool,
}

#[derive(Debug, Serialize)]
struct FaultBench {
    bench: String,
    quick: bool,
    circuit: String,
    model: String,
    captures: u64,
    seconds: f64,
    captures_per_sec: f64,
    cells: Vec<FaultCell>,
    detector: Vec<DetectorRow>,
}

fn fault_matrix_once(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        // Key recovery needs the full capture budget even in quick
        // mode (2k captures run in well under a second); quick mode
        // trims the detector observation span instead.
        let exp = FaultMatrixExperiment {
            arms: vec![DefenseArm::Undefended, DefenseArm::Ldo(0.25)],
            detector_samples: if quick() { 4200 } else { 8200 },
            ..FaultMatrixExperiment::standard(11)
        };
        let start = std::time::Instant::now();
        let matrix = fault_matrix(&exp).expect("fabric builds");
        let seconds = start.elapsed().as_secs_f64();
        let total_captures = exp.captures * matrix.cells.len() as u64;

        let stealthy = Some(AggressorSpec::stealthy(3.0));
        let hot = matrix
            .cell(stealthy, &DefenseArm::Undefended)
            .expect("matrix has the undefended stealthy cell");
        assert!(
            hot.key_recovered(),
            "undefended calibrated aggressor must recover the key \
             ({} bytes)",
            hot.recovered_bytes
        );
        let cold = matrix
            .cell(stealthy, &DefenseArm::Ldo(0.25))
            .expect("matrix has the LDO stealthy cell");
        assert_eq!(cold.faults_per_1k, 0.0, "LDO must suppress all faults");
        let blatant = matrix
            .detector_for(Some(AggressorSpec::tick_rate(3.0)))
            .expect("matrix watched the tick-rate row");
        assert!(blatant.detected(), "tick-rate duty cycle must alarm");
        let evader = matrix
            .detector_for(stealthy)
            .expect("matrix watched the stealthy row");
        assert!(
            !evader.detected(),
            "stealthy burst must evade the alternation detector"
        );
        println!(
            "[faults] matrix {}x{} in {seconds:.2}s: hot faults/1k={:.0} \
             recovered={} ldo faults/1k={:.0} stealthy score={:.4} \
             blatant score={:.1}",
            exp.aggressors.len(),
            exp.arms.len(),
            hot.faults_per_1k,
            hot.recovered_bytes,
            cold.faults_per_1k,
            evader.reading.max_score,
            blatant.reading.max_score,
        );

        let record = FaultBench {
            bench: "faults".to_string(),
            quick: quick(),
            circuit: "DualC6288".to_string(),
            model: format!("{:?}", exp.model),
            captures: exp.captures,
            seconds,
            captures_per_sec: total_captures as f64 / seconds,
            cells: matrix
                .cells
                .iter()
                .map(|c| FaultCell {
                    aggressor: aggressor_label(&c.aggressor),
                    arm: c.arm.label(),
                    faults_per_1k: c.faults_per_1k,
                    pairs_accepted: c.pairs_accepted,
                    pairs_discarded: c.pairs_discarded,
                    recovered_bytes: c.recovered_bytes,
                    key_recovered: c.key_recovered(),
                    min_victim_v: c.min_victim_v,
                    alarm_windows: c.alarm_windows,
                })
                .collect(),
            detector: matrix
                .detector
                .iter()
                .map(|d| DetectorRow {
                    aggressor: aggressor_label(&d.aggressor),
                    windows: d.reading.windows,
                    alarm_windows: d.reading.alarm_windows,
                    max_score: d.reading.max_score,
                    detected: d.detected(),
                })
                .collect(),
        };
        let json = serde_json::to_string_pretty(&record)
            .expect("bench record serialization is infallible");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault.json");
        std::fs::write(path, json + "\n").expect("workspace root is writable");
        println!("[faults] wrote {path}");
    });

    // Timed kernel: one sharded fault campaign, ciphertext-only.
    c.bench_function("fault_campaign_400_captures", |b| {
        b.iter(|| {
            let exp = FaultCampaign {
                config: FabricConfig {
                    benign: BenignCircuit::DualC6288,
                    seed: 11,
                    aggressor: Some(AggressorSpec::stealthy(3.0)),
                    ..FabricConfig::default()
                },
                model: DfaModel::SingleByte { max_fault_bits: 2 },
                captures: 400,
                shard_captures: 100,
                workers: 1,
            };
            run_fault_campaign(black_box(&exp)).unwrap()
        })
    });
}

criterion_group!(benches, fault_matrix_once);
criterion_main!(benches);
