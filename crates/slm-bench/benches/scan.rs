//! Admission-at-traffic scan scheduling: the content-hash scan cache.
//!
//! The preamble study feeds `BENCH_scan.json` at the workspace root:
//! a corpus of zoo and size-swept designs is batch-scanned cold (fresh
//! cache directory), then warm (a new `ScanCache` instance over the
//! same directory, so every hit replays through the disk tier). The
//! study asserts the admission-path contract: the warm batch is
//! **bit-identical** to the cold one and at least **5× faster** —
//! a full cache hit skips analysis construction and every pass.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use slm_checker::{CheckerConfig, PassManager, ScanCache, TaintConfig};
use slm_netlist::generators::{
    alu, array_multiplier, carry_sensor, kogge_stone_adder, tdc_delay_line, wallace_multiplier, zoo,
};
use slm_netlist::Netlist;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slm-bench-scan-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Serialize)]
struct ScanBench {
    bench: String,
    quick: bool,
    designs: usize,
    total_nets: usize,
    passes: Vec<String>,
    cold_seconds: f64,
    warm_seconds: f64,
    speedup: f64,
    designs_per_sec_cold: f64,
    designs_per_sec_warm: f64,
    warm_cache_hits: u64,
    warm_cache_misses: u64,
    bit_identical: bool,
}

/// The admission corpus: every zoo design plus size-swept arithmetic
/// so the cold scan has real analysis work to amortize.
fn corpus() -> Vec<Netlist> {
    let mut designs: Vec<Netlist> = zoo().into_iter().map(|e| e.netlist).collect();
    let sweep: &[usize] = if quick() {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };
    for &n in sweep {
        designs.push(alu(n).unwrap());
        designs.push(kogge_stone_adder(n).unwrap());
        designs.push(tdc_delay_line(n).unwrap());
        designs.push(carry_sensor(n, 4).unwrap());
    }
    let mults: &[usize] = if quick() { &[12] } else { &[16, 24] };
    for &m in mults {
        designs.push(array_multiplier(m).unwrap());
        designs.push(wallace_multiplier(m).unwrap());
    }
    designs
}

fn scan_study() -> ScanBench {
    let pm = PassManager::full();
    // One admission config for the whole queue; the declared pin also
    // exercises the taint pass on the carry sensors.
    let config = CheckerConfig {
        taint: TaintConfig {
            declared_clocks: vec!["sense".to_string()],
            ..TaintConfig::default()
        },
        ..CheckerConfig::default()
    };
    let designs = corpus();
    let refs: Vec<&Netlist> = designs.iter().collect();
    let total_nets: usize = designs.iter().map(Netlist::len).sum();
    let dir = scratch_dir("cache");

    let cold_cache = ScanCache::with_dir(&dir).expect("scratch dir is writable");
    let t = std::time::Instant::now();
    let cold = pm.run_batch(&refs, &config, Some(&cold_cache), 1);
    let cold_seconds = t.elapsed().as_secs_f64();
    drop(cold_cache);

    // A fresh instance over the same directory: every warm hit goes
    // through the on-disk tier, as it would across slm-scan invocations.
    let warm_cache = ScanCache::with_dir(&dir).expect("scratch dir is writable");
    let t = std::time::Instant::now();
    let warm = pm.run_batch(&refs, &config, Some(&warm_cache), 1);
    let warm_seconds = t.elapsed().as_secs_f64();

    let cold_json: Vec<String> = cold.iter().map(|r| r.to_json()).collect();
    let warm_json: Vec<String> = warm.iter().map(|r| r.to_json()).collect();
    let bit_identical = cold_json == warm_json;
    assert!(bit_identical, "warm replay must be bit-identical");
    assert_eq!(
        warm_cache.misses(),
        0,
        "an unchanged corpus must replay entirely from cache"
    );
    let speedup = cold_seconds / warm_seconds.max(f64::EPSILON);
    assert!(
        speedup >= 5.0,
        "warm batch must be at least 5x cold, got {speedup:.1}x \
         (cold {cold_seconds:.4}s, warm {warm_seconds:.4}s)"
    );
    println!(
        "[scan] {} designs, {total_nets} nets: cold {cold_seconds:.3}s, \
         warm {warm_seconds:.4}s ({speedup:.1}x, {} hits)",
        designs.len(),
        warm_cache.hits(),
    );
    let _ = std::fs::remove_dir_all(&dir);
    ScanBench {
        bench: "scan".to_string(),
        quick: quick(),
        designs: designs.len(),
        total_nets,
        passes: pm.pass_names().iter().map(|s| s.to_string()).collect(),
        cold_seconds,
        warm_seconds,
        speedup,
        designs_per_sec_cold: designs.len() as f64 / cold_seconds,
        designs_per_sec_warm: designs.len() as f64 / warm_seconds,
        warm_cache_hits: warm_cache.hits(),
        warm_cache_misses: warm_cache.misses(),
        bit_identical,
    }
}

fn scan_scheduling(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let record = scan_study();
        let json = serde_json::to_string_pretty(&record)
            .expect("bench record serialization is infallible");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
        std::fs::write(path, json + "\n").expect("workspace root is writable");
        println!("[scan] wrote {path}");
    });

    // Timed kernels: one cold full-pipeline scan vs the warm cached
    // admission path for a mid-size design.
    let nl = alu(96).unwrap();
    let pm = PassManager::full();
    let config = CheckerConfig::default();
    c.bench_function("scan_cold_alu96", |b| {
        b.iter(|| pm.run(black_box(&nl), &config))
    });
    let cache = ScanCache::in_memory();
    let _ = pm.run_cached(&nl, &config, &cache);
    c.bench_function("scan_warm_alu96", |b| {
        b.iter(|| pm.run_cached(black_box(&nl), &config, &cache))
    });
}

criterion_group!(benches, scan_scheduling);
criterion_main!(benches);
