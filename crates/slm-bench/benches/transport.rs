//! Fault-robustness benches: the cost of an unreliable UART.
//!
//! Regenerates the fault-rate vs. MTD sweep (the robustness analogue of
//! the paper's trace-count figures) and measures the hot kernels the
//! resilient transport adds: CRC-16 framing, the scanning decoder under
//! noise, and CPA checkpoint serialization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use slm_core::experiments::{transport_fault_study, TransportFaultStudy};
use slm_cpa::store::{read_checkpoint, write_checkpoint};
use slm_cpa::{CpaAttack, LastRoundModel};
use slm_fabric::{crc16, UartFrame, UartLink, WireFaultInjector, WireFaultPlan};
use slm_pdn::noise::Rng64;
use std::hint::black_box;

/// Fault probability vs. measurements-to-disclosure — the headline
/// sweep: how much trace overhead the retry/quarantine loop pays at
/// each wire quality, and where the attack stops converging.
fn fault_rate_vs_mtd(c: &mut Criterion) {
    let exp = TransportFaultStudy {
        // MTD on this fabric varies a few-fold with the plaintext
        // stream; 6k traces puts every benign rate safely past it so a
        // non-converged row means the wire, not an unlucky stream.
        traces: 6_000,
        fault_rates: vec![0.0, 1e-4, 1e-3, 5e-3],
        seed: 41,
        ..TransportFaultStudy::default()
    };
    let start = std::time::Instant::now();
    let r = transport_fault_study(&exp).expect("fabric builds");
    for row in &r.rows {
        println!(
            "[fault_sweep] rate={:.0e} delivered={}/{} retries={} quarantined={} resyncs={} \
             recovered={} mtd={:?} wire_s={:.1}",
            row.fault_rate,
            row.delivered,
            row.requested,
            row.retries,
            row.quarantined,
            row.resyncs,
            row.recovered,
            row.mtd,
            row.wire_time_s,
        );
    }
    println!("[fault_sweep] elapsed={:.1?}", start.elapsed());

    c.bench_function("fault_study_row_1e-3", |b| {
        b.iter(|| {
            let exp = TransportFaultStudy {
                traces: 200,
                fault_rates: vec![1e-3],
                checkpoints: 2,
                seed: 42,
                ..TransportFaultStudy::default()
            };
            transport_fault_study(black_box(&exp)).unwrap()
        })
    });
}

fn framing_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport");
    let payload = vec![0x5au8; 96];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("crc16_96B", |b| b.iter(|| crc16(black_box(&payload))));
    let frame = UartFrame::new(7, payload);
    group.bench_function("encode_96B", |b| b.iter(|| black_box(&frame).encode()));
    let wire = frame.encode();
    group.bench_function("scan_clean_96B", |b| {
        b.iter(|| UartFrame::scan(black_box(&wire)))
    });

    // Scanner under fire: a buffer of noisy frames, decoded to exhaustion.
    let mut inj = WireFaultInjector::new(WireFaultPlan::byte_noise(9, 2e-3));
    let mut noisy = Vec::new();
    for i in 0..64u8 {
        noisy.extend(inj.mangle(UartFrame::new(i, vec![i; 96]).encode()));
    }
    group.throughput(Throughput::Bytes(noisy.len() as u64));
    group.bench_function("scan_noisy_64_frames", |b| {
        b.iter(|| {
            let mut off = 0usize;
            let mut delivered = 0u32;
            while off < noisy.len() {
                match UartFrame::scan(black_box(&noisy[off..])) {
                    slm_fabric::DecodeOutcome::Frame { consumed, .. } => {
                        delivered += 1;
                        off += consumed;
                    }
                    slm_fabric::DecodeOutcome::NeedMore { .. } => break,
                    slm_fabric::DecodeOutcome::Corrupt { skip, .. } => off += skip.max(1),
                }
            }
            delivered
        })
    });
    group.finish();
}

fn link_roundtrip(c: &mut Criterion) {
    c.bench_function("link_roundtrip_faulty_1e-3", |b| {
        let mut link = UartLink::with_faults(921_600, WireFaultPlan::byte_noise(3, 1e-3));
        let mut seq = 0u8;
        b.iter(|| {
            seq = seq.wrapping_add(1);
            link.host_send(&UartFrame::new(seq, vec![seq; 64]));
            black_box(link.fpga_recv())
        })
    });
}

fn checkpoint_io(c: &mut Criterion) {
    let mut attack = CpaAttack::new(LastRoundModel::paper_target(), 7);
    let mut rng = Rng64::new(17);
    let mut pts = [0.0f64; 7];
    for _ in 0..5_000 {
        let mut ct = [0u8; 16];
        rng.fill_bytes(&mut ct);
        for p in &mut pts {
            *p = rng.normal();
        }
        attack.add_trace(&ct, &pts);
    }
    let cp = attack.checkpoint();
    let mut bytes = Vec::new();
    write_checkpoint(&mut bytes, &cp).unwrap();
    let mut group = c.benchmark_group("checkpoint");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("write_7pt", |b| {
        b.iter_batched(
            Vec::new,
            |mut sink| {
                write_checkpoint(&mut sink, black_box(&cp)).unwrap();
                sink
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("read_7pt", |b| {
        b.iter(|| read_checkpoint(black_box(&bytes[..])).unwrap())
    });
    group.bench_function("resume_7pt", |b| {
        b.iter_batched(
            || cp.clone(),
            |cp| CpaAttack::resume(cp).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    fault_rate_vs_mtd,
    framing_kernels,
    link_roundtrip,
    checkpoint_io
);
criterion_main!(benches);
