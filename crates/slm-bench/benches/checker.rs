//! Structural-scan throughput: the full generator zoo under the
//! complete pipeline, plus the delay-line pass alone on chains up to
//! 50 k stages. The scaling group is the regression guard for the
//! fanout-index rewrite — the old per-net successor scan was quadratic,
//! so doubling the chain length quadrupled its time; with the index the
//! three sizes below must scale linearly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slm_checker::passes::DelayLinePass;
use slm_checker::{CheckerConfig, PassManager};
use slm_netlist::generators::{tdc_delay_line, zoo};
use std::hint::black_box;

fn zoo_scan(c: &mut Criterion) {
    let pm = PassManager::structural();
    let config = CheckerConfig::default();
    let entries = zoo();
    let nets: usize = entries.iter().map(|e| e.netlist.len()).sum();
    let mut group = c.benchmark_group("checker");
    group.throughput(Throughput::Elements(nets as u64));
    group.bench_function("structural_scan_full_zoo", |b| {
        b.iter(|| {
            for e in &entries {
                black_box(pm.run(black_box(&e.netlist), &config));
            }
        })
    });
    group.finish();
}

fn delay_line_scaling(c: &mut Criterion) {
    let mut pm = PassManager::empty();
    pm.push(Box::new(DelayLinePass));
    let config = CheckerConfig::default();
    let mut group = c.benchmark_group("checker_chain_scaling");
    group.sample_size(10);
    for stages in [12_500usize, 25_000, 50_000] {
        let nl = tdc_delay_line(stages).unwrap();
        group.throughput(Throughput::Elements(nl.len() as u64));
        group.bench_function(format!("delay_line_pass_{stages}_stages"), |b| {
            b.iter(|| black_box(pm.run(black_box(&nl), &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, zoo_scan, delay_line_scaling);
criterion_main!(benches);
