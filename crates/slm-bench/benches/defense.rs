//! Defense overhead: capture throughput of each countermeasure arm.
//!
//! Runs the same serial TDC campaign undefended and under each defense
//! arm, records traces/sec and the relative overhead to
//! `BENCH_defense.json` at the workspace root, and smoke-checks a
//! 2-point attack-vs-defense matrix (undefended baseline discloses, a
//! strong PRNG fence raises the bar, the detector separates the
//! attacker from a benign tenant).

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use slm_core::experiments::{
    defense_matrix, run_cpa_with, CpaExperiment, DefenseArm, DefenseMatrixExperiment, SensorSource,
};
use slm_fabric::{BenignCircuit, DetectorConfig};
use std::hint::black_box;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

#[derive(Debug, Serialize)]
struct DefenseRow {
    arm: String,
    seconds: f64,
    traces_per_sec: f64,
    /// Throughput relative to the undefended baseline (1.0 = free).
    relative_throughput: f64,
    disclosed: bool,
    mtd: Option<u64>,
}

#[derive(Debug, Serialize)]
struct DefenseBench {
    bench: String,
    quick: bool,
    circuit: String,
    source: String,
    traces: u64,
    stimulus_alternation: f64,
    /// Detector hits vs false alarms in the matrix smoke run.
    detector_hits: u64,
    detector_false_alarms: u64,
    fence_mtd_monotonic: bool,
    rows: Vec<DefenseRow>,
}

fn base(traces: u64) -> CpaExperiment {
    CpaExperiment {
        circuit: BenignCircuit::DualC6288,
        source: SensorSource::TdcAll,
        traces,
        checkpoints: 4,
        pilot_traces: if quick() { 30 } else { 100 },
        seed: 41,
    }
}

fn defense_overhead(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        // Even quick mode needs enough traces for the undefended
        // baseline to disclose (MTD for this circuit/seed sits well
        // under 3k; captures run at tens of thousands of traces/sec).
        let traces = if quick() { 3_000 } else { 4_000 };
        let detector = DetectorConfig {
            window_ticks: 4098,
            alarm_threshold: 0.05,
        };
        let arms = [
            DefenseArm::Undefended,
            DefenseArm::ConstantFence(1.5),
            DefenseArm::PrngFence(1.5),
            DefenseArm::AdaptiveFence(1.5),
            DefenseArm::Ldo(0.25),
            DefenseArm::ClockJitter(8),
        ];
        let mut rows = Vec::new();
        let mut baseline_tps = 0.0f64;
        for arm in arms {
            let exp = base(traces);
            let deployment = arm.deployment(detector, 0xbe7);
            let start = std::time::Instant::now();
            let r = run_cpa_with(&exp, |config| {
                config.stimulus_alternation = 0.3;
                config.defense = deployment;
            })
            .expect("fabric builds");
            let seconds = start.elapsed().as_secs_f64();
            let traces_per_sec = traces as f64 / seconds;
            if matches!(arm, DefenseArm::Undefended) {
                baseline_tps = traces_per_sec;
            }
            println!(
                "[defense] arm={} elapsed={seconds:.2}s traces/sec={traces_per_sec:.0} \
                 relative={:.2} mtd={:?}",
                arm.label(),
                traces_per_sec / baseline_tps,
                r.mtd,
            );
            rows.push(DefenseRow {
                arm: arm.label(),
                seconds,
                traces_per_sec,
                relative_throughput: traces_per_sec / baseline_tps,
                disclosed: r.mtd.is_some(),
                mtd: r.mtd,
            });
        }
        assert!(
            rows[0].disclosed,
            "undefended baseline must disclose the key"
        );

        // 2-point matrix smoke: baseline vs strong PRNG fence, plus the
        // detector evaluation.
        let matrix_exp = DefenseMatrixExperiment {
            base: base(traces),
            arms: vec![DefenseArm::Undefended, DefenseArm::PrngFence(1.5)],
            stimulus_alternation: 0.3,
            detector,
            detector_samples: if quick() { 4200 } else { 8200 },
            workers: 0,
        };
        let matrix = defense_matrix(&matrix_exp).expect("fabric builds");
        let monotonic = matrix.fence_mtd_monotonic();
        assert!(monotonic, "fence sweep must not improve the attack");
        assert!(
            matrix.detector.discriminates(),
            "detector must separate attacker ({} hits) from benign ({} false alarms)",
            matrix.detector.attacker.alarm_windows,
            matrix.detector.benign.alarm_windows,
        );
        println!(
            "[defense] matrix: baseline mtd={:?} fenced mtd={:?} detector hits={} false_alarms={}",
            matrix.cells[0].result.mtd,
            matrix.cells[1].result.mtd,
            matrix.detector.attacker.alarm_windows,
            matrix.detector.benign.alarm_windows,
        );

        let record = DefenseBench {
            bench: "defense".to_string(),
            quick: quick(),
            circuit: "DualC6288".to_string(),
            source: "TdcAll".to_string(),
            traces,
            stimulus_alternation: 0.3,
            detector_hits: matrix.detector.attacker.alarm_windows,
            detector_false_alarms: matrix.detector.benign.alarm_windows,
            fence_mtd_monotonic: monotonic,
            rows,
        };
        let json = serde_json::to_string_pretty(&record)
            .expect("bench record serialization is infallible");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_defense.json");
        std::fs::write(path, json + "\n").expect("workspace root is writable");
        println!("[defense] wrote {path}");
    });

    // Timed kernel: a small defended capture campaign end to end.
    c.bench_function("defended_campaign_300_traces", |b| {
        b.iter(|| {
            let exp = base(300);
            let deployment = DefenseArm::PrngFence(1.0).deployment(
                DetectorConfig {
                    window_ticks: 4098,
                    alarm_threshold: 0.05,
                },
                0xbe7,
            );
            run_cpa_with(black_box(&exp), |config| {
                config.stimulus_alternation = 0.3;
                config.defense = deployment;
            })
            .unwrap()
        })
    });
}

criterion_group!(benches, defense_overhead);
criterion_main!(benches);
