//! Parallel-campaign throughput: traces/sec at 1/2/4/8 workers.
//!
//! Runs the same sharded TDC campaign (`run_cpa_parallel`) at several
//! worker counts, checks the results are bit-identical (the determinism
//! contract), and records traces/sec and speedup to
//! `BENCH_campaign.json` at the workspace root. Speedup scales with
//! the cores actually available — on a single-core runner every worker
//! count measures the same serial throughput, and the JSON records
//! `available_workers` so the numbers can be read honestly.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use slm_core::experiments::{run_cpa_parallel, CpaExperiment, ParallelCpa, SensorSource};
use slm_fabric::BenignCircuit;
use std::hint::black_box;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

#[derive(Debug, Serialize)]
struct CampaignRow {
    workers: usize,
    seconds: f64,
    traces_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(Debug, Serialize)]
struct CampaignBench {
    bench: String,
    quick: bool,
    available_workers: usize,
    circuit: String,
    source: String,
    traces: u64,
    shard_traces: u64,
    pilot_traces: usize,
    /// Whether every worker count produced a bit-identical CpaResult.
    deterministic: bool,
    rows: Vec<CampaignRow>,
}

fn experiment(workers: usize) -> ParallelCpa {
    let traces = if quick() { 600 } else { 4_000 };
    ParallelCpa {
        base: CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces,
            checkpoints: 4,
            pilot_traces: if quick() { 30 } else { 100 },
            seed: 23,
        },
        shard_traces: (traces / 16).max(1),
        workers,
    }
}

fn campaign_scaling(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let mut rows = Vec::new();
        let mut results = Vec::new();
        let mut serial_tps = 0.0f64;
        for workers in [1usize, 2, 4, 8] {
            let exp = experiment(workers);
            let start = std::time::Instant::now();
            let r = run_cpa_parallel(&exp).expect("fabric builds");
            let seconds = start.elapsed().as_secs_f64();
            let traces_per_sec = exp.base.traces as f64 / seconds;
            if workers == 1 {
                serial_tps = traces_per_sec;
            }
            println!(
                "[campaign] workers={workers} traces={} elapsed={seconds:.2}s \
                 traces/sec={traces_per_sec:.0} speedup={:.2} recovered={}",
                exp.base.traces,
                traces_per_sec / serial_tps,
                r.recovered_key_byte == Some(r.correct_key_byte),
            );
            rows.push(CampaignRow {
                workers,
                seconds,
                traces_per_sec,
                speedup_vs_serial: traces_per_sec / serial_tps,
            });
            results.push(r);
        }
        let deterministic = results.windows(2).all(|w| w[0] == w[1]);
        println!("[campaign] deterministic_across_worker_counts={deterministic}");
        assert!(
            deterministic,
            "worker count leaked into the campaign result"
        );

        let exp = experiment(1);
        let record = CampaignBench {
            bench: "campaign".to_string(),
            quick: quick(),
            available_workers: slm_par::available_workers(),
            circuit: "DualC6288".to_string(),
            source: "TdcAll".to_string(),
            traces: exp.base.traces,
            shard_traces: exp.shard_traces,
            pilot_traces: exp.base.pilot_traces,
            deterministic,
            rows,
        };
        let json = serde_json::to_string_pretty(&record)
            .expect("bench record serialization is infallible");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
        std::fs::write(path, json + "\n").expect("workspace root is writable");
        println!("[campaign] wrote {path}");
    });

    // Timed kernel: a small sharded campaign end to end (pilot, shard
    // capture on the pool, merge, evaluation).
    c.bench_function("parallel_campaign_600_traces", |b| {
        b.iter(|| {
            let exp = ParallelCpa {
                base: CpaExperiment {
                    circuit: BenignCircuit::DualC6288,
                    source: SensorSource::TdcAll,
                    traces: 600,
                    checkpoints: 2,
                    pilot_traces: 20,
                    seed: 29,
                },
                shard_traces: 75,
                workers: 0,
            };
            run_cpa_parallel(black_box(&exp)).unwrap()
        })
    });
}

criterion_group!(benches, campaign_scaling);
criterion_main!(benches);
