//! Parallel-campaign throughput: traces/sec at 1/2/4/8 workers.
//!
//! Runs the same sharded TDC campaign (`run_cpa_parallel`) at several
//! worker counts, checks the results are bit-identical (the determinism
//! contract), and records traces/sec, speedup and a per-phase time
//! breakdown to `BENCH_campaign.json` at the workspace root. Speedup
//! scales with the cores actually available — on a single-core runner
//! every worker count measures the same serial throughput, and the JSON
//! records `available_workers` so the numbers can be read honestly.
//!
//! A warm-up campaign runs before the timed rows so the fabric
//! prototype cache is hot: the rows measure steady-state capture
//! throughput, not the one-time netlist build + event simulation that
//! the first campaign of a process pays (and that every later campaign
//! skips).
//!
//! Regression assertions (the perf contract of the incremental-capture
//! work): serial throughput must stay ≥ 5× the pre-optimization
//! baseline of 14.6k traces/sec, and — on machines that actually have
//! 8 workers — the 8-worker speedup must stay ≥ 4× (≥ 2× in quick
//! mode, which runs far fewer traces per shard).

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use slm_core::experiments::{
    run_cpa_parallel, run_cpa_parallel_recorded, CpaExperiment, ParallelCpa, SensorSource,
};
use slm_fabric::BenignCircuit;
use slm_obs::Obs;
use std::hint::black_box;
use std::sync::OnceLock;

fn quick() -> bool {
    std::env::var("SLM_BENCH_QUICK").is_ok()
}

/// Pre-optimization serial throughput (PR 7 baseline), traces/sec.
const BASELINE_SERIAL_TPS: f64 = 14_600.0;

/// Where the wall-clock of a campaign went, harvested from the
/// recorder's span totals. `sim` is trace capture (fabric ticks and
/// sampling), `sta` is per-shard fabric construction (delay
/// annotation, static timing, prototype-cache hits), `cpa` is
/// accumulator absorption plus checkpoint/final correlation
/// evaluation, and `transport` is UART framing time (zero for the
/// in-process campaign runner, which skips the wire). Shard phases
/// sum over shards, so on a multi-worker run the phases can
/// legitimately sum past the row's wall-clock `seconds`.
#[derive(Debug, Default, Serialize)]
struct PhaseBreakdown {
    pilot_s: f64,
    sta_s: f64,
    sim_s: f64,
    cpa_s: f64,
    transport_s: f64,
}

#[derive(Debug, Serialize)]
struct CampaignRow {
    workers: usize,
    seconds: f64,
    traces_per_sec: f64,
    speedup_vs_serial: f64,
    phase: PhaseBreakdown,
}

#[derive(Debug, Serialize)]
struct CampaignBench {
    bench: String,
    quick: bool,
    available_workers: usize,
    circuit: String,
    source: String,
    traces: u64,
    shard_traces: u64,
    pilot_traces: usize,
    baseline_serial_traces_per_sec: f64,
    /// Whether every worker count produced a bit-identical CpaResult.
    deterministic: bool,
    rows: Vec<CampaignRow>,
}

fn experiment(workers: usize) -> ParallelCpa {
    let traces = if quick() { 600 } else { 4_000 };
    ParallelCpa {
        base: CpaExperiment {
            circuit: BenignCircuit::DualC6288,
            source: SensorSource::TdcAll,
            traces,
            checkpoints: 4,
            // 40 pilot traces suffice for the TDC source (the pilot
            // only contributes bits-of-interest metadata there); the
            // accuracy assertion below keeps the shrink honest.
            pilot_traces: if quick() { 30 } else { 40 },
            seed: 23,
        },
        shard_traces: traces.div_ceil(16).max(1),
        workers,
    }
}

fn phases_of(frame: &slm_obs::MetricsFrame) -> PhaseBreakdown {
    let span_s = |name: &str| {
        frame
            .spans
            .get(name)
            .map_or(0.0, |s| s.total_ns as f64 / 1e9)
    };
    PhaseBreakdown {
        pilot_s: span_s("cpa.pilot"),
        sta_s: span_s("cpa.build"),
        sim_s: span_s("cpa.capture"),
        cpa_s: span_s("cpa.absorb") + span_s("cpa.eval"),
        transport_s: span_s("fabric.host_encrypt"),
    }
}

fn campaign_scaling(c: &mut Criterion) {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        // Warm the fabric prototype cache so the timed rows measure
        // steady-state throughput (see module docs).
        run_cpa_parallel(&experiment(1)).expect("fabric builds");

        let mut rows = Vec::new();
        let mut results = Vec::new();
        let mut serial_tps = 0.0f64;
        for workers in [1usize, 2, 4, 8] {
            let exp = experiment(workers);
            let obs = Obs::memory();
            let start = std::time::Instant::now();
            let r = run_cpa_parallel_recorded(&exp, &obs).expect("fabric builds");
            let seconds = start.elapsed().as_secs_f64();
            let traces_per_sec = exp.base.traces as f64 / seconds;
            if workers == 1 {
                serial_tps = traces_per_sec;
            }
            let phase = phases_of(&obs.snapshot());
            println!(
                "[campaign] workers={workers} traces={} elapsed={seconds:.2}s \
                 traces/sec={traces_per_sec:.0} speedup={:.2} recovered={} \
                 phases: pilot={:.3}s sta={:.3}s sim={:.3}s cpa={:.3}s transport={:.3}s",
                exp.base.traces,
                traces_per_sec / serial_tps,
                r.recovered_key_byte == Some(r.correct_key_byte),
                phase.pilot_s,
                phase.sta_s,
                phase.sim_s,
                phase.cpa_s,
                phase.transport_s,
            );
            // Accuracy assertion backing the shortened pilot: the
            // full-budget campaign must still recover the key with an
            // MTD well inside the budget. (Quick mode's 600 traces are
            // below the TDC disclosure point by design, so it only
            // smoke-tests the machinery.)
            if !quick() {
                assert_eq!(
                    r.recovered_key_byte,
                    Some(r.correct_key_byte),
                    "campaign must recover the key"
                );
                let mtd = r.mtd.expect("TDC should disclose the key");
                assert!(mtd <= 3_000, "TDC MTD {mtd} regressed past 3k traces");
            }
            rows.push(CampaignRow {
                workers,
                seconds,
                traces_per_sec,
                speedup_vs_serial: traces_per_sec / serial_tps,
                phase,
            });
            results.push(r);
        }
        let deterministic = results.windows(2).all(|w| w[0] == w[1]);
        println!("[campaign] deterministic_across_worker_counts={deterministic}");
        assert!(
            deterministic,
            "worker count leaked into the campaign result"
        );

        // Perf regression assertions. The serial floor holds on any
        // machine (it measures one worker); the parallel-scaling floor
        // only means something when 8 workers actually exist, so a
        // 1-core CI runner skips it with a note instead of asserting
        // vacuously against itself.
        if !quick() {
            assert!(
                serial_tps >= 5.0 * BASELINE_SERIAL_TPS,
                "serial throughput {serial_tps:.0} traces/sec regressed below 5x the \
                 {BASELINE_SERIAL_TPS:.0} baseline"
            );
        }
        let speedup_at_8 = rows[3].speedup_vs_serial;
        if slm_par::available_workers() >= 8 {
            let floor = if quick() { 2.0 } else { 4.0 };
            assert!(
                speedup_at_8 >= floor,
                "8-worker speedup {speedup_at_8:.2} below the {floor:.0}x floor"
            );
        } else {
            println!(
                "[campaign] skipping 8-worker speedup floor: only {} workers available",
                slm_par::available_workers()
            );
        }

        let exp = experiment(1);
        let record = CampaignBench {
            bench: "campaign".to_string(),
            quick: quick(),
            available_workers: slm_par::available_workers(),
            circuit: "DualC6288".to_string(),
            source: "TdcAll".to_string(),
            traces: exp.base.traces,
            shard_traces: exp.shard_traces,
            pilot_traces: exp.base.pilot_traces,
            baseline_serial_traces_per_sec: BASELINE_SERIAL_TPS,
            deterministic,
            rows,
        };
        let json = serde_json::to_string_pretty(&record)
            .expect("bench record serialization is infallible");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
        std::fs::write(path, json + "\n").expect("workspace root is writable");
        println!("[campaign] wrote {path}");
    });

    // Timed kernel: a small sharded campaign end to end (pilot, shard
    // capture on the pool, merge, evaluation).
    c.bench_function("parallel_campaign_600_traces", |b| {
        b.iter(|| {
            let exp = ParallelCpa {
                base: CpaExperiment {
                    circuit: BenignCircuit::DualC6288,
                    source: SensorSource::TdcAll,
                    traces: 600,
                    checkpoints: 2,
                    pilot_traces: 20,
                    seed: 29,
                },
                shard_traces: 75,
                workers: 0,
            };
            run_cpa_parallel(black_box(&exp)).unwrap()
        })
    });
}

criterion_group!(benches, campaign_scaling);
criterion_main!(benches);
