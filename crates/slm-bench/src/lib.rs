//! Shared helpers for the benchmark harness.
//!
//! The benches in this crate have two jobs:
//!
//! 1. **Regenerate figure data** — each `fig*` bench first runs the
//!    corresponding experiment once at bench scale and prints the same
//!    series/summary the paper plots (captured in `bench_output.txt`).
//! 2. **Measure** — the timed loop then exercises the computational
//!    kernel behind the figure, so regressions in the simulation stack
//!    show up as bench deltas.

use slm_core::experiments::{run_cpa, CpaExperiment, CpaResult};

/// Runs a CPA experiment and prints the figure-style summary.
pub fn run_and_report(label: &str, exp: &CpaExperiment) -> CpaResult {
    let start = std::time::Instant::now();
    let r = run_cpa(exp).expect("fabric builds");
    let ok = r.recovered_key_byte == Some(r.correct_key_byte);
    println!(
        "[{label}] traces={} recovered={} mtd={:?} bits_of_interest={} selected_bit={:?} elapsed={:.1?}",
        r.traces,
        ok,
        r.mtd,
        r.bits_of_interest.len(),
        r.selected_bit,
        start.elapsed()
    );
    for p in &r.progress {
        println!(
            "[{label}] progress traces={} correct_peak={:+.4} best_wrong={:+.4}",
            p.traces,
            p.peak_corr[r.correct_key_byte as usize],
            p.peak_corr[r.correct_key_byte as usize] - p.margin(r.correct_key_byte),
        );
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_core::experiments::SensorSource;
    use slm_fabric::BenignCircuit;

    #[test]
    fn report_helper_runs() {
        let r = run_and_report(
            "smoke",
            &CpaExperiment {
                circuit: BenignCircuit::DualC6288,
                source: SensorSource::TdcAll,
                traces: 300,
                checkpoints: 3,
                pilot_traces: 20,
                seed: 1,
            },
        );
        assert_eq!(r.traces, 300);
    }
}
