//! Property-based tests for the netlist substrate.

use proptest::prelude::*;
use slm_netlist::generators::{
    alu, array_multiplier, equality_comparator, parity_tree, ripple_carry_adder, AluOp,
};
use slm_netlist::{bench, words, GateKind, Netlist, NetlistBuilder};

fn eval_int(nl: &Netlist, ins: &[bool]) -> u128 {
    words::from_bits(&nl.eval(ins).unwrap())
}

proptest! {
    #[test]
    fn adder_computes_sum(a in any::<u64>(), b in any::<u64>()) {
        let n = 64;
        let nl = ripple_carry_adder(n).unwrap();
        let mut ins = words::to_bits(a as u128, n);
        ins.extend(words::to_bits(b as u128, n));
        let out = nl.eval(&ins).unwrap();
        let sum = words::from_bits(&out[..n]);
        let cout = out[n];
        prop_assert_eq!(sum, (a as u128 + b as u128) & (u64::MAX as u128));
        prop_assert_eq!(cout, (a as u128 + b as u128) > u64::MAX as u128);
    }

    #[test]
    fn multiplier_computes_product(a in any::<u16>(), b in any::<u16>()) {
        let nl = array_multiplier(16).unwrap();
        let mut ins = words::to_bits(a as u128, 16);
        ins.extend(words::to_bits(b as u128, 16));
        prop_assert_eq!(eval_int(&nl, &ins), a as u128 * b as u128);
    }

    #[test]
    fn alu_matches_reference(a in any::<u32>(), b in any::<u32>(), op_idx in 0usize..8) {
        let width = 32;
        let op = AluOp::ALL[op_idx];
        let nl = alu(width).unwrap();
        let mut ins = words::to_bits(a as u128, width);
        ins.extend(words::to_bits(b as u128, width));
        ins.extend(op.opcode_bits());
        let out = nl.eval(&ins).unwrap();
        prop_assert_eq!(
            words::from_bits(&out[..width]),
            op.reference(a as u128, b as u128, width)
        );
    }

    #[test]
    fn comparator_equality(a in any::<u16>(), b in any::<u16>()) {
        let nl = equality_comparator(16).unwrap();
        let mut ins = words::to_bits(a as u128, 16);
        ins.extend(words::to_bits(b as u128, 16));
        prop_assert_eq!(nl.eval(&ins).unwrap()[0], a == b);
    }

    #[test]
    fn parity_counts_ones(v in any::<u32>(), n in 1usize..32) {
        let nl = parity_tree(n).unwrap();
        let ins = words::to_bits(v as u128, n);
        let expect = ins.iter().filter(|&&b| b).count() % 2 == 1;
        prop_assert_eq!(nl.eval(&ins).unwrap()[0], expect);
    }

    #[test]
    fn parallel_eval_agrees_with_scalar(a in any::<u16>(), b in any::<u16>()) {
        let nl = array_multiplier(8).unwrap();
        let (a, b) = (a as u128 & 0xff, b as u128 & 0xff);
        // put the pattern in bit 17 of each word, garbage elsewhere
        let mut ins = Vec::new();
        for bit in words::to_bits(a, 8).into_iter().chain(words::to_bits(b, 8)) {
            ins.push(if bit { 1u64 << 17 } else { 0 } | 0xdead_0000_0000_0000);
        }
        let par = nl.eval_parallel(&ins).unwrap();
        let mut sins = words::to_bits(a, 8);
        sins.extend(words::to_bits(b, 8));
        let scal = nl.eval(&sins).unwrap();
        for (w, s) in par.iter().zip(&scal) {
            prop_assert_eq!((w >> 17) & 1 == 1, *s);
        }
    }

    #[test]
    fn bench_roundtrip_preserves_function(a in any::<u8>(), b in any::<u8>()) {
        let nl = ripple_carry_adder(8).unwrap();
        let nl2 = bench::parse(&bench::write(&nl), "rt").unwrap();
        let mut ins = words::to_bits(a as u128, 8);
        ins.extend(words::to_bits(b as u128, 8));
        prop_assert_eq!(nl.eval(&ins).unwrap(), nl2.eval(&ins).unwrap());
    }

    #[test]
    fn topological_order_is_valid(seed in any::<u64>()) {
        // Build a random DAG via the builder (acyclic by construction) and
        // verify the computed order puts fanins first.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut bld = NetlistBuilder::new("rand");
        let mut nets = vec![bld.input("a"), bld.input("b"), bld.input("c")];
        for _ in 0..50 {
            let x = nets[(next() as usize) % nets.len()];
            let y = nets[(next() as usize) % nets.len()];
            let kind = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand][(next() as usize) % 4];
            nets.push(bld.gate(kind, &[x, y]));
        }
        let last = *nets.last().unwrap();
        bld.output("y", last);
        let nl = bld.finish().unwrap();
        let order = nl.topological_order().unwrap();
        let mut pos = vec![0usize; nl.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for (gi, g) in nl.gates().iter().enumerate() {
            for f in &g.fanin {
                prop_assert!(pos[f.index()] < pos[gi]);
            }
        }
    }

    /// The .bench parser must reject garbage gracefully — errors, never
    /// panics — whatever bytes arrive.
    #[test]
    fn bench_parser_never_panics(src in ".{0,400}") {
        let _ = bench::parse(&src, "fuzz");
    }

    /// Structured-ish garbage: random keyword soup still never panics.
    #[test]
    fn bench_parser_survives_keyword_soup(parts in proptest::collection::vec(
        proptest::sample::select(vec![
            "INPUT(a)", "OUTPUT(y)", "y = AND(a, a)", "= NAND(", "x = ",
            "INPUT()", "OUTPUT", "y = FROB(a)", "a = NOT(a)", "(((", "# c",
        ]), 0..20))
    {
        let src = parts.join("\n");
        let _ = bench::parse(&src, "soup");
    }

    #[test]
    fn depth_bounded_by_gate_count(n in 2usize..10) {
        let nl = array_multiplier(n).unwrap();
        let stats = nl.stats().unwrap();
        prop_assert!(stats.depth < stats.gates);
        prop_assert!(stats.depth >= 2 * n - 2);
    }
}
