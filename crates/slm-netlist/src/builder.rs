//! Incremental netlist construction.

use crate::error::NetlistError;
use crate::gate::{Gate, GateKind, NetId};
use crate::netlist::Netlist;
use std::collections::HashMap;

/// Builds a [`Netlist`] gate by gate.
///
/// Gates must reference already-created nets, so builder-produced netlists
/// are acyclic by construction.
///
/// # Example
///
/// ```
/// use slm_netlist::{NetlistBuilder, GateKind};
/// let mut b = NetlistBuilder::new("mux2");
/// let s = b.input("s");
/// let a = b.input("a");
/// let c = b.input("b");
/// let ns = b.not(s);
/// let t0 = b.and2(ns, a);
/// let t1 = b.and2(s, c);
/// let y = b.or2(t0, t1);
/// b.output("y", y);
/// let nl = b.finish().unwrap();
/// assert_eq!(nl.eval(&[false, true, false]).unwrap(), vec![true]);
/// assert_eq!(nl.eval(&[true, true, false]).unwrap(), vec![false]);
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    net_names: Vec<Option<String>>,
    used_names: HashMap<String, NetId>,
    error: Option<NetlistError>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a netlist called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            net_names: Vec::new(),
            used_names: HashMap::new(),
            error: None,
        }
    }

    fn push(&mut self, kind: GateKind, fanin: Vec<NetId>, name: Option<String>) -> NetId {
        let id = NetId(self.gates.len() as u32);
        let (lo, hi) = kind.arity();
        if fanin.len() < lo || fanin.len() > hi {
            self.error.get_or_insert(NetlistError::BadArity {
                kind,
                got: fanin.len(),
            });
        }
        for &f in &fanin {
            if f.index() >= self.gates.len() {
                self.error.get_or_insert(NetlistError::UnknownNet(f));
            }
        }
        if let Some(n) = &name {
            if self.used_names.contains_key(n) {
                self.error
                    .get_or_insert(NetlistError::DuplicateName(n.clone()));
            } else {
                self.used_names.insert(n.clone(), id);
            }
        }
        self.gates.push(Gate::new(kind, fanin));
        self.net_names.push(name);
        id
    }

    /// Declares a named primary input and returns its net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.push(GateKind::Input, vec![], Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Declares `width` primary inputs named `prefix[0]..prefix[width-1]`,
    /// least-significant first.
    pub fn input_bus(&mut self, prefix: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{prefix}[{i}]")))
            .collect()
    }

    /// Adds an anonymous gate.
    pub fn gate(&mut self, kind: GateKind, fanin: &[NetId]) -> NetId {
        self.push(kind, fanin.to_vec(), None)
    }

    /// Adds a named gate.
    pub fn named_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: &[NetId],
    ) -> NetId {
        self.push(kind, fanin.to_vec(), Some(name.into()))
    }

    /// Two-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::And, &[a, b])
    }

    /// Two-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Or, &[a, b])
    }

    /// Two-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Xor, &[a, b])
    }

    /// Two-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nand, &[a, b])
    }

    /// Two-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(GateKind::Nor, &[a, b])
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Not, &[a])
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(GateKind::Buf, &[a])
    }

    /// Constant 0.
    pub fn const0(&mut self) -> NetId {
        self.gate(GateKind::Const0, &[])
    }

    /// Constant 1.
    pub fn const1(&mut self) -> NetId {
        self.gate(GateKind::Const1, &[])
    }

    /// Two-to-one multiplexer: `if s { b } else { a }`.
    pub fn mux2(&mut self, s: NetId, a: NetId, b: NetId) -> NetId {
        let ns = self.not(s);
        let t0 = self.and2(ns, a);
        let t1 = self.and2(s, b);
        self.or2(t0, t1)
    }

    /// Declares a named primary output driven by `net`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        let name = name.into();
        if net.index() >= self.gates.len() {
            self.error.get_or_insert(NetlistError::UnknownNet(net));
        }
        self.outputs.push((name, net));
    }

    /// Declares outputs `prefix[0]..` for each net in `nets`.
    pub fn output_bus(&mut self, prefix: &str, nets: &[NetId]) {
        for (i, &n) in nets.iter().enumerate() {
            self.output(format!("{prefix}[{i}]"), n);
        }
    }

    /// Number of gates created so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether no gates have been created yet.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Finalizes the netlist.
    ///
    /// # Errors
    ///
    /// Returns the first construction error encountered (bad arity,
    /// unknown net, duplicate name).
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Netlist::from_parts(
            self.name,
            self.gates,
            self.inputs,
            self.outputs,
            self.net_names,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_helpers() {
        let mut b = NetlistBuilder::new("bus");
        let xs = b.input_bus("x", 4);
        assert_eq!(xs.len(), 4);
        let inv: Vec<NetId> = xs.iter().map(|&x| b.not(x)).collect();
        b.output_bus("y", &inv);
        let nl = b.finish().unwrap();
        assert_eq!(nl.inputs().len(), 4);
        assert_eq!(nl.outputs().len(), 4);
        assert_eq!(nl.outputs()[2].0, "y[2]");
        assert_eq!(
            nl.eval(&[true, false, true, false]).unwrap(),
            vec![false, true, false, true]
        );
        assert!(nl.find("x[3]").is_some());
    }

    #[test]
    fn error_is_deferred_to_finish() {
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let _ = b.gate(GateKind::And, &[a]); // arity violation
        assert!(matches!(
            b.finish(),
            Err(NetlistError::BadArity {
                kind: GateKind::And,
                got: 1
            })
        ));
    }

    #[test]
    fn duplicate_input_name_rejected() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a");
        b.input("a");
        assert!(matches!(b.finish(), Err(NetlistError::DuplicateName(_))));
    }

    #[test]
    fn mux_truth_table() {
        let mut b = NetlistBuilder::new("m");
        let s = b.input("s");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.mux2(s, a, c);
        b.output("y", y);
        let nl = b.finish().unwrap();
        assert!(nl.eval(&[false, true, false]).unwrap()[0]);
        assert!(!nl.eval(&[true, true, false]).unwrap()[0]);
        assert!(nl.eval(&[true, false, true]).unwrap()[0]);
    }

    #[test]
    fn constants() {
        let mut b = NetlistBuilder::new("c");
        let z = b.const0();
        let o = b.const1();
        let y = b.or2(z, o);
        b.output("y", y);
        let nl = b.finish().unwrap();
        assert_eq!(nl.eval(&[]).unwrap(), vec![true]);
    }
}
