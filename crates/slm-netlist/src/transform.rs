//! Netlist transformations and equivalence checking.
//!
//! A light optimization pipeline (constant propagation, dead-logic
//! removal) plus random-simulation equivalence checking. These serve
//! two purposes in the reproduction: they model what a synthesis flow
//! does to a tenant's netlist before the checker sees it, and the
//! equivalence checker validates that transformations — and hand edits
//! like sensor-stimulus rewiring — preserve function.

use crate::error::NetlistError;
use crate::gate::{Gate, GateKind, NetId};
use crate::netlist::Netlist;

/// Result of one optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Gates before the pass.
    pub gates_before: usize,
    /// Gates after the pass.
    pub gates_after: usize,
}

impl PassStats {
    /// Gates removed.
    pub fn removed(&self) -> usize {
        self.gates_before - self.gates_after
    }
}

/// Propagates constants: gates whose value is fixed by `Const0`/`Const1`
/// fanins (or by constant-forcing inputs, e.g. `AND(x, 0)`) are replaced
/// by constants, iterating to a fixed point; the result is then
/// dead-logic cleaned.
///
/// # Errors
///
/// Fails on cyclic netlists.
pub fn propagate_constants(nl: &Netlist) -> Result<(Netlist, PassStats), NetlistError> {
    let order = nl.topological_order()?.to_vec();
    // lattice: None = unknown, Some(v) = constant v
    let mut konst: Vec<Option<bool>> = vec![None; nl.len()];
    for &id in &order {
        let g = nl.gate(id);
        konst[id.index()] = match g.kind {
            GateKind::Const0 => Some(false),
            GateKind::Const1 => Some(true),
            GateKind::Input => None,
            kind => {
                let vals: Vec<Option<bool>> = g.fanin.iter().map(|f| konst[f.index()]).collect();
                match kind {
                    GateKind::And | GateKind::Nand => {
                        if vals.contains(&Some(false)) {
                            Some(kind == GateKind::Nand)
                        } else if vals.iter().all(|v| *v == Some(true)) {
                            Some(kind == GateKind::And)
                        } else {
                            None
                        }
                    }
                    GateKind::Or | GateKind::Nor => {
                        if vals.contains(&Some(true)) {
                            Some(kind == GateKind::Or)
                        } else if vals.iter().all(|v| *v == Some(false)) {
                            Some(kind == GateKind::Nor)
                        } else {
                            None
                        }
                    }
                    GateKind::Xor | GateKind::Xnor => {
                        if vals.iter().all(Option::is_some) {
                            let parity = vals.iter().fold(false, |acc, v| acc ^ v.unwrap_or(false));
                            Some(parity ^ (kind == GateKind::Xnor))
                        } else {
                            None
                        }
                    }
                    GateKind::Not => vals[0].map(|v| !v),
                    GateKind::Buf => vals[0],
                    _ => None,
                }
            }
        };
    }
    // Rebuild: constant gates become Const0/Const1 with no fanin.
    let gates: Vec<Gate> = nl
        .gates()
        .iter()
        .enumerate()
        .map(|(i, g)| match konst[i] {
            Some(false) if g.kind != GateKind::Input => Gate::new(GateKind::Const0, vec![]),
            Some(true) if g.kind != GateKind::Input => Gate::new(GateKind::Const1, vec![]),
            _ => g.clone(),
        })
        .collect();
    let names = (0..nl.len())
        .map(|i| nl.net_name(NetId(i as u32)).map(str::to_string))
        .collect();
    let rebuilt = Netlist::from_parts(
        nl.name().to_string(),
        gates,
        nl.inputs().to_vec(),
        nl.outputs().to_vec(),
        names,
    )?;
    let before = nl.len();
    let cleaned = sweep_dead_logic(&rebuilt)?;
    let after = cleaned.len();
    Ok((
        cleaned,
        PassStats {
            gates_before: before,
            gates_after: after,
        },
    ))
}

/// Removes gates that no primary output transitively depends on.
/// Primary inputs are kept even when dead, so port interfaces stay
/// stable.
///
/// # Errors
///
/// Fails on cyclic netlists.
pub fn sweep_dead_logic(nl: &Netlist) -> Result<Netlist, NetlistError> {
    nl.topological_order()?;
    let mut live = vec![false; nl.len()];
    let mut stack: Vec<NetId> = nl.outputs().iter().map(|&(_, o)| o).collect();
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        stack.extend(nl.gate(id).fanin.iter().copied());
    }
    for &pi in nl.inputs() {
        live[pi.index()] = true;
    }
    // compact ids
    let mut remap: Vec<Option<NetId>> = vec![None; nl.len()];
    let mut gates = Vec::new();
    let mut names = Vec::new();
    for i in 0..nl.len() {
        if live[i] {
            remap[i] = Some(NetId(gates.len() as u32));
            let g = nl.gate(NetId(i as u32));
            gates.push(g.clone());
            names.push(nl.net_name(NetId(i as u32)).map(str::to_string));
        }
    }
    for g in &mut gates {
        for f in &mut g.fanin {
            *f = remap[f.index()].expect("fanin of live gate is live");
        }
    }
    let inputs = nl
        .inputs()
        .iter()
        .map(|pi| remap[pi.index()].expect("inputs kept live"))
        .collect();
    let outputs = nl
        .outputs()
        .iter()
        .map(|(n, o)| (n.clone(), remap[o.index()].expect("outputs are live")))
        .collect();
    Netlist::from_parts(nl.name().to_string(), gates, inputs, outputs, names)
}

/// Random-simulation equivalence check: compares the outputs of two
/// netlists with the same interface over `rounds × 64` random patterns.
///
/// A mismatch is definitive; agreement is probabilistic (like any
/// simulation-based miter) but with hundreds of random 64-bit-parallel
/// rounds the escape probability for ordinary logic is negligible.
///
/// # Errors
///
/// Fails on interface mismatch or cyclic netlists.
///
/// Returns `Ok(None)` when equivalent, `Ok(Some(pattern))` with a
/// counterexample input assignment otherwise.
pub fn check_equivalence(
    a: &Netlist,
    b: &Netlist,
    rounds: usize,
    seed: u64,
) -> Result<Option<Vec<bool>>, NetlistError> {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return Err(NetlistError::InputCountMismatch {
            expected: a.inputs().len(),
            got: b.inputs().len(),
        });
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..rounds {
        let ins: Vec<u64> = (0..a.inputs().len()).map(|_| next()).collect();
        let oa = a.eval_parallel(&ins)?;
        let ob = b.eval_parallel(&ins)?;
        for (k, (&wa, wb)) in oa.iter().zip(&ob).enumerate() {
            let diff = wa ^ wb;
            if diff != 0 {
                let bit = diff.trailing_zeros();
                let pattern = ins.iter().map(|w| (w >> bit) & 1 == 1).collect();
                let _ = k;
                return Ok(Some(pattern));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::generators::{alu, ripple_carry_adder};

    #[test]
    fn constant_folding_collapses_gated_logic() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let zero = b.const0();
        let dead_and = b.and2(x, zero); // always 0
        let y = b.or2(dead_and, x); // == x
        b.output("y", y);
        let nl = b.finish().unwrap();
        let (opt, stats) = propagate_constants(&nl).unwrap();
        assert!(stats.removed() >= 1, "{stats:?}");
        // still functionally x
        assert_eq!(opt.eval(&[true]).unwrap(), vec![true]);
        assert_eq!(opt.eval(&[false]).unwrap(), vec![false]);
        assert!(check_equivalence(&nl, &opt, 16, 1).unwrap().is_none());
    }

    #[test]
    fn xor_and_not_folding() {
        let mut b = NetlistBuilder::new("t");
        let one = b.const1();
        let zero = b.const0();
        let x = b.gate(GateKind::Xor, &[one, zero]);
        let y = b.not(x);
        b.output("y", y); // constant 0
        let nl = b.finish().unwrap();
        let (opt, _) = propagate_constants(&nl).unwrap();
        assert_eq!(opt.eval(&[]).unwrap(), vec![false]);
        assert!(opt.len() <= 2, "should fold to one constant + alias");
    }

    #[test]
    fn dead_sweep_keeps_interface() {
        let mut b = NetlistBuilder::new("t");
        let x = b.input("x");
        let unused = b.input("unused");
        let _dead = b.not(unused);
        let y = b.not(x);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let swept = sweep_dead_logic(&nl).unwrap();
        assert_eq!(swept.inputs().len(), 2, "ports must stay");
        assert_eq!(swept.len(), nl.len() - 1);
        assert_eq!(swept.eval(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn optimized_alu_stays_equivalent() {
        let nl = alu(16).unwrap();
        let (opt, stats) = propagate_constants(&nl).unwrap();
        // the shifter's const0 bit and mux feed constants through
        assert!(stats.gates_after <= stats.gates_before);
        assert!(check_equivalence(&nl, &opt, 64, 7).unwrap().is_none());
    }

    #[test]
    fn equivalence_finds_counterexample() {
        let a = ripple_carry_adder(8).unwrap();
        // b computes a+b+1 via the cin variant wired to const1
        let mut bld = NetlistBuilder::new("plus1");
        let xa = bld.input_bus("a", 8);
        let xb = bld.input_bus("b", 8);
        let mut carry = bld.const1();
        let mut sums = Vec::new();
        for i in 0..8 {
            let axb = bld.xor2(xa[i], xb[i]);
            let s = bld.xor2(axb, carry);
            let t0 = bld.and2(xa[i], xb[i]);
            let t1 = bld.and2(axb, carry);
            carry = bld.or2(t0, t1);
            sums.push(s);
        }
        bld.output_bus("sum", &sums);
        bld.output("cout", carry);
        let b = bld.finish().unwrap();
        let cex = check_equivalence(&a, &b, 64, 3).unwrap();
        let pattern = cex.expect("must find a counterexample");
        // verify the counterexample really differs
        assert_ne!(a.eval(&pattern).unwrap(), b.eval(&pattern).unwrap());
    }

    #[test]
    fn interface_mismatch_rejected() {
        let a = ripple_carry_adder(8).unwrap();
        let b = ripple_carry_adder(4).unwrap();
        assert!(check_equivalence(&a, &b, 4, 1).is_err());
    }
}
