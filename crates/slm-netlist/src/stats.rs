//! Structural statistics: gate census, logic depth, fanout profile.

use crate::gate::GateKind;
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-netlist structural summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Total gate count, including `Input` pseudo-gates.
    pub gates: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Gate count per kind (kind displayed name → count).
    pub by_kind: BTreeMap<String, usize>,
    /// Maximum logic depth (levels from inputs, inputs at level 0).
    pub depth: usize,
    /// Maximum fanout of any net.
    pub max_fanout: usize,
}

/// Per-output logic level profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthProfile {
    /// Logic level of each net, indexed by [`crate::NetId::index`].
    pub level: Vec<usize>,
    /// Logic level of each primary output, in declaration order.
    pub output_levels: Vec<usize>,
}

impl Netlist {
    /// Computes logic levels for every net (unit delay per gate).
    ///
    /// # Errors
    ///
    /// Fails on cyclic netlists.
    pub fn depth_profile(&self) -> Result<DepthProfile, crate::NetlistError> {
        let order = self.topological_order()?;
        let mut level = vec![0usize; self.len()];
        for &id in order {
            let g = self.gate(id);
            if matches!(
                g.kind,
                GateKind::Input | GateKind::Const0 | GateKind::Const1
            ) {
                continue;
            }
            level[id.index()] = 1 + g.fanin.iter().map(|f| level[f.index()]).max().unwrap_or(0);
        }
        let output_levels = self
            .outputs()
            .iter()
            .map(|&(_, o)| level[o.index()])
            .collect();
        Ok(DepthProfile {
            level,
            output_levels,
        })
    }

    /// Computes the structural summary.
    ///
    /// # Errors
    ///
    /// Fails on cyclic netlists (depth is undefined there).
    pub fn stats(&self) -> Result<NetlistStats, crate::NetlistError> {
        let profile = self.depth_profile()?;
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        for g in self.gates() {
            *by_kind.entry(g.kind.to_string()).or_insert(0) += 1;
        }
        let mut fanout = vec![0usize; self.len()];
        for g in self.gates() {
            for &f in &g.fanin {
                fanout[f.index()] += 1;
            }
        }
        Ok(NetlistStats {
            gates: self.len(),
            inputs: self.inputs().len(),
            outputs: self.outputs().len(),
            by_kind,
            depth: profile.level.iter().copied().max().unwrap_or(0),
            max_fanout: fanout.into_iter().max().unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::NetlistBuilder;
    use crate::gate::GateKind;

    #[test]
    fn depth_of_chain() {
        let mut b = NetlistBuilder::new("chain");
        let mut n = b.input("a");
        for _ in 0..10 {
            n = b.not(n);
        }
        b.output("y", n);
        let nl = b.finish().unwrap();
        let stats = nl.stats().unwrap();
        assert_eq!(stats.depth, 10);
        assert_eq!(stats.by_kind["NOT"], 10);
        assert_eq!(nl.depth_profile().unwrap().output_levels, vec![10]);
    }

    #[test]
    fn fanout_counted() {
        let mut b = NetlistBuilder::new("fan");
        let a = b.input("a");
        let x = b.not(a);
        for _ in 0..5 {
            let g = b.gate(GateKind::Buf, &[x]);
            b.output(format!("o{g}"), g);
        }
        let nl = b.finish().unwrap();
        assert_eq!(nl.stats().unwrap().max_fanout, 5);
    }
}
