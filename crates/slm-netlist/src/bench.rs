//! ISCAS-85 `.bench` format reader and writer.
//!
//! The `.bench` dialect accepted here is the common one used by the
//! ISCAS-85/89 benchmark distributions:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G3)
//! G3 = NAND(G1, G2)
//! ```
//!
//! Definitions may appear in any order (forward references are resolved);
//! `DFF` cells are not supported because the misuse model in this
//! reproduction treats registers as sampling boundaries outside the
//! combinational netlist.

use crate::error::NetlistError;
use crate::gate::{Gate, GateKind, NetId};
use crate::netlist::Netlist;
use std::collections::HashMap;
use std::fmt::Write as _;

fn kind_from_keyword(kw: &str) -> Option<GateKind> {
    match kw.to_ascii_uppercase().as_str() {
        "AND" => Some(GateKind::And),
        "NAND" => Some(GateKind::Nand),
        "OR" => Some(GateKind::Or),
        "NOR" => Some(GateKind::Nor),
        "XOR" => Some(GateKind::Xor),
        "XNOR" => Some(GateKind::Xnor),
        "NOT" | "INV" => Some(GateKind::Not),
        "BUFF" | "BUF" => Some(GateKind::Buf),
        "CONST0" => Some(GateKind::Const0),
        "CONST1" => Some(GateKind::Const1),
        _ => None,
    }
}

/// Parses `.bench` source text into a [`Netlist`].
///
/// # Errors
///
/// [`NetlistError::BenchSyntax`] for malformed lines,
/// [`NetlistError::UndrivenOutput`] / [`NetlistError::UnknownName`] for
/// dangling references, plus the usual construction errors.
///
/// # Example
///
/// ```
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let nl = slm_netlist::bench::parse(src, "nand2").unwrap();
/// assert_eq!(nl.eval(&[true, true]).unwrap(), vec![false]);
/// ```
pub fn parse(src: &str, name: &str) -> Result<Netlist, NetlistError> {
    struct Def {
        kind: GateKind,
        fanin_names: Vec<String>,
        line: usize,
    }
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: Vec<(String, Def)> = Vec::new();

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let err = |message: String| NetlistError::BenchSyntax { line, message };
        let upper = text.to_ascii_uppercase();
        if upper.starts_with("INPUT") || upper.starts_with("OUTPUT") {
            let open = text.find('(').ok_or_else(|| err("missing `(`".into()))?;
            let close = text.rfind(')').ok_or_else(|| err("missing `)`".into()))?;
            if close <= open {
                return Err(err("mismatched parentheses".into()));
            }
            let sig = text[open + 1..close].trim().to_string();
            if sig.is_empty() {
                return Err(err("empty signal name".into()));
            }
            if upper.starts_with("INPUT") {
                inputs.push(sig);
            } else {
                outputs.push(sig);
            }
            continue;
        }
        // name = KIND(a, b, ...)
        let eq = text
            .find('=')
            .ok_or_else(|| err("expected `=` definition".into()))?;
        let lhs = text[..eq].trim().to_string();
        let rhs = text[eq + 1..].trim();
        if lhs.is_empty() {
            return Err(err("empty left-hand side".into()));
        }
        let open = rhs.find('(').ok_or_else(|| err("missing `(`".into()))?;
        let close = rhs.rfind(')').ok_or_else(|| err("missing `)`".into()))?;
        if close <= open {
            return Err(err("mismatched parentheses".into()));
        }
        let kw = rhs[..open].trim();
        if kw.eq_ignore_ascii_case("DFF") {
            return Err(err("DFF cells are not supported".into()));
        }
        let kind = kind_from_keyword(kw).ok_or_else(|| err(format!("unknown gate `{kw}`")))?;
        let args: Vec<String> = rhs[open + 1..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        defs.push((
            lhs,
            Def {
                kind,
                fanin_names: args,
                line,
            },
        ));
    }

    // Assign net ids: inputs first, then definitions in file order.
    let mut ids: HashMap<String, NetId> = HashMap::new();
    let mut gates: Vec<Gate> = Vec::new();
    let mut net_names: Vec<Option<String>> = Vec::new();
    let mut input_ids = Vec::new();
    for sig in &inputs {
        if ids.contains_key(sig) {
            return Err(NetlistError::DuplicateName(sig.clone()));
        }
        let id = NetId(gates.len() as u32);
        ids.insert(sig.clone(), id);
        gates.push(Gate::new(GateKind::Input, vec![]));
        net_names.push(Some(sig.clone()));
        input_ids.push(id);
    }
    for (lhs, def) in &defs {
        if ids.contains_key(lhs) {
            return Err(NetlistError::DuplicateName(lhs.clone()));
        }
        let id = NetId(gates.len() as u32);
        ids.insert(lhs.clone(), id);
        gates.push(Gate::new(def.kind, vec![])); // fanins patched below
        net_names.push(Some(lhs.clone()));
    }
    // Patch fanins now that every name is known.
    let base = input_ids.len();
    for (i, (_, def)) in defs.iter().enumerate() {
        let mut fanin = Vec::with_capacity(def.fanin_names.len());
        for fname in &def.fanin_names {
            let &fid = ids.get(fname).ok_or_else(|| NetlistError::BenchSyntax {
                line: def.line,
                message: format!("undefined signal `{fname}`"),
            })?;
            fanin.push(fid);
        }
        gates[base + i].fanin = fanin;
    }
    let mut output_pairs = Vec::with_capacity(outputs.len());
    for sig in &outputs {
        let &id = ids
            .get(sig)
            .ok_or_else(|| NetlistError::UndrivenOutput(sig.clone()))?;
        output_pairs.push((sig.clone(), id));
    }
    Netlist::from_parts(name, gates, input_ids, output_pairs, net_names)
}

/// Serializes a netlist to `.bench` text.
///
/// Anonymous nets receive synthetic `n<i>` names. The output parses back
/// into a functionally identical netlist (see the round-trip tests).
pub fn write(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", nl.name());
    let _ = writeln!(
        out,
        "# {} gates, {} inputs, {} outputs",
        nl.len(),
        nl.inputs().len(),
        nl.outputs().len()
    );
    let sig = |id: NetId| -> String {
        nl.net_name(id)
            .map(str::to_string)
            .unwrap_or_else(|| format!("n{}", id.0))
    };
    for &pi in nl.inputs() {
        let _ = writeln!(out, "INPUT({})", sig(pi));
    }
    for (name, _) in nl.outputs() {
        let _ = writeln!(out, "OUTPUT({name})");
    }
    // Output nets may carry output names distinct from their net names;
    // emit BUFF aliases where needed.
    let mut aliases = Vec::new();
    for (oname, onet) in nl.outputs() {
        if sig(*onet) != *oname {
            aliases.push((oname.clone(), *onet));
        }
    }
    for (i, g) in nl.gates().iter().enumerate() {
        if g.kind == GateKind::Input {
            continue;
        }
        let kw = g.kind.bench_name().expect("non-input kinds have keywords");
        let args: Vec<String> = g.fanin.iter().map(|&f| sig(f)).collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            sig(NetId(i as u32)),
            kw,
            args.join(", ")
        );
    }
    for (oname, onet) in aliases {
        let _ = writeln!(out, "{oname} = BUFF({})", sig(onet));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    const C17: &str = "
# c17 — smallest ISCAS-85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parse_c17() {
        let nl = parse(C17, "c17").unwrap();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.len(), 5 + 6);
        // exhaustive check against reference equations
        for p in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (p >> i) & 1 == 1).collect();
            let (i1, i2, i3, i6, i7) = (bits[0], bits[1], bits[2], bits[3], bits[4]);
            let g10 = !(i1 & i3);
            let g11 = !(i3 & i6);
            let g16 = !(i2 & g11);
            let g19 = !(g11 & i7);
            let g22 = !(g10 & g16);
            let g23 = !(g16 & g19);
            assert_eq!(nl.eval(&bits).unwrap(), vec![g22, g23], "pattern {p}");
        }
    }

    #[test]
    fn forward_references_resolve() {
        let src = "
INPUT(a)
OUTPUT(y)
y = NOT(t)
t = BUFF(a)
";
        let nl = parse(src, "fwd").unwrap();
        assert_eq!(nl.eval(&[true]).unwrap(), vec![false]);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let src = "INPUT(a)\nz = FROB(a)\n";
        match parse(src, "bad") {
            Err(NetlistError::BenchSyntax { line: 2, message }) => {
                assert!(message.contains("FROB"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn undefined_fanin_rejected() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        assert!(matches!(
            parse(src, "bad"),
            Err(NetlistError::BenchSyntax { line: 3, .. })
        ));
    }

    #[test]
    fn undriven_output_rejected() {
        let src = "INPUT(a)\nOUTPUT(y)\n";
        assert!(matches!(
            parse(src, "bad"),
            Err(NetlistError::UndrivenOutput(_))
        ));
    }

    #[test]
    fn dff_rejected() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        assert!(parse(src, "seq").is_err());
    }

    #[test]
    fn roundtrip_c17() {
        let nl = parse(C17, "c17").unwrap();
        let text = write(&nl);
        let nl2 = parse(&text, "c17rt").unwrap();
        assert_eq!(nl2.inputs().len(), nl.inputs().len());
        for p in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (p >> i) & 1 == 1).collect();
            assert_eq!(nl.eval(&bits).unwrap(), nl2.eval(&bits).unwrap());
        }
    }

    #[test]
    fn roundtrip_generated_adder() {
        let nl = generators::ripple_carry_adder(8).unwrap();
        let nl2 = parse(&write(&nl), "rt").unwrap();
        for (a, b) in [(0u128, 0u128), (255, 1), (170, 85), (200, 100)] {
            let mut ins = crate::words::to_bits(a, 8);
            ins.extend(crate::words::to_bits(b, 8));
            assert_eq!(nl.eval(&ins).unwrap(), nl2.eval(&ins).unwrap());
        }
    }
}
