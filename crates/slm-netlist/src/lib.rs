//! Gate-level netlist intermediate representation for the stealthy-logic-misuse
//! reproduction.
//!
//! This crate provides the structural substrate every other crate builds on:
//!
//! * [`Netlist`] — a single-output-per-gate ("AIG-style") combinational gate
//!   graph with named primary inputs and outputs,
//! * [`NetlistBuilder`] — an ergonomic constructor API,
//! * [`mod@bench`] — an ISCAS-85 `.bench` format parser and writer,
//! * [`generators`] — programmatic generators for the circuits the paper
//!   misuses as sensors: ripple-carry adders, a 192-bit multi-function ALU,
//!   and the ISCAS-85 C6288 16×16 array multiplier, plus small classics
//!   (C17) used in tests,
//! * functional simulation, both single-pattern ([`Netlist::eval`]) and
//!   64-way bit-parallel ([`Netlist::eval_parallel`]).
//!
//! # Example
//!
//! ```
//! use slm_netlist::{NetlistBuilder, GateKind};
//!
//! let mut b = NetlistBuilder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.gate(GateKind::Xor, &[a, c]);
//! let carry = b.gate(GateKind::And, &[a, c]);
//! b.output("sum", sum);
//! b.output("carry", carry);
//! let nl = b.finish().unwrap();
//!
//! let out = nl.eval(&[true, true]).unwrap();
//! assert_eq!(out, vec![false, true]); // 1 + 1 = 0b10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod builder;
mod error;
mod gate;
pub mod generators;
pub mod graph;
mod netlist;
mod stats;
pub mod transform;
pub mod words;

pub use builder::NetlistBuilder;
pub use error::NetlistError;
pub use gate::{Gate, GateKind, NetId};
pub use netlist::Netlist;
pub use stats::{DepthProfile, NetlistStats};
pub use transform::{check_equivalence, propagate_constants, sweep_dead_logic, PassStats};
