//! Multi-function ALU generator.
//!
//! The paper's first benign sensor is "an ALU including a 192-bit Adder"
//! (Section IV). This generator produces a combinational ALU with a
//! shared ripple-carry add/subtract chain, a logic unit, a shifter and a
//! pass-through, selected by a 3-bit opcode through a per-bit 8:1
//! multiplexer tree. The diverse functional units give the 192 result
//! endpoints a wide spread of path depths — exactly what makes a subset
//! of them voltage-sensitive when overclocked.

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::netlist::Netlist;
use serde::{Deserialize, Serialize};

use super::adder::full_adder;

/// Number of opcode input bits.
pub const ALU_OPCODE_BITS: usize = 3;

/// Operations implemented by the generated ALU, with their opcode values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AluOp {
    /// `r = a + b`
    Add = 0,
    /// `r = a - b` (two's complement)
    Sub = 1,
    /// `r = a & b`
    And = 2,
    /// `r = a | b`
    Or = 3,
    /// `r = a ^ b`
    Xor = 4,
    /// `r = !(a | b)`
    Nor = 5,
    /// `r = a << 1`
    Shl = 6,
    /// `r = a`
    Pass = 7,
}

impl AluOp {
    /// All operations in opcode order.
    pub const ALL: [AluOp; 8] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Shl,
        AluOp::Pass,
    ];

    /// The 3-bit opcode for this operation.
    pub fn opcode(self) -> u8 {
        self as u8
    }

    /// Opcode expanded to booleans, LSB first, for use as input stimulus.
    pub fn opcode_bits(self) -> [bool; ALU_OPCODE_BITS] {
        let c = self.opcode();
        [c & 1 != 0, c & 2 != 0, c & 4 != 0]
    }

    /// Reference (software) semantics over `width`-bit operands.
    pub fn reference(self, a: u128, b: u128, width: usize) -> u128 {
        let mask = if width >= 128 {
            u128::MAX
        } else {
            (1 << width) - 1
        };
        let r = match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Shl => a << 1,
            AluOp::Pass => a,
        };
        r & mask
    }
}

/// Generates a `width`-bit ALU.
///
/// Ports, in declaration order:
///
/// * inputs `a[0..width]`, `b[0..width]`, `op[0..3]` (LSB first),
/// * outputs `r[0..width]` then `cout` (adder carry out).
///
/// # Errors
///
/// [`NetlistError::BadGeneratorParameter`] when `width == 0`.
///
/// # Example
///
/// ```
/// use slm_netlist::{generators::{alu, AluOp}, words};
/// let nl = alu(8).unwrap();
/// let mut ins = words::to_bits(0xF0, 8);
/// ins.extend(words::to_bits(0x0F, 8));
/// ins.extend(AluOp::Or.opcode_bits());
/// let out = nl.eval(&ins).unwrap();
/// assert_eq!(words::from_bits(&out[..8]), 0xFF);
/// ```
pub fn alu(width: usize) -> Result<Netlist, NetlistError> {
    if width == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "ALU width must be at least 1".into(),
        ));
    }
    let mut bld = NetlistBuilder::new(format!("alu{width}"));
    let a = bld.input_bus("a", width);
    let b = bld.input_bus("b", width);
    let op = bld.input_bus("op", ALU_OPCODE_BITS);
    let (op0, op1, op2) = (op[0], op[1], op[2]);

    // sub = opcode 001
    let n_op1 = bld.not(op1);
    let n_op2 = bld.not(op2);
    let t = bld.and2(n_op1, n_op2);
    let sub = bld.and2(t, op0);

    // shared add/sub chain: b_eff = b ^ sub, cin = sub
    let mut carry = bld.buf(sub);
    let mut sum = Vec::with_capacity(width);
    for i in 0..width {
        let beff = bld.xor2(b[i], sub);
        let (s, c) = full_adder(&mut bld, a[i], beff, carry);
        sum.push(s);
        carry = c;
    }

    let zero = bld.const0();
    let mut result = Vec::with_capacity(width);
    for i in 0..width {
        let f_and = bld.and2(a[i], b[i]);
        let f_or = bld.or2(a[i], b[i]);
        let f_xor = bld.xor2(a[i], b[i]);
        let f_nor = bld.nor2(a[i], b[i]);
        let f_shl = if i == 0 {
            bld.buf(zero)
        } else {
            bld.buf(a[i - 1])
        };
        let f_pass = bld.buf(a[i]);
        // 8:1 mux, opcode order: add, sub, and, or, xor, nor, shl, pass
        let m0 = bld.mux2(op0, sum[i], sum[i]); // add/sub share the chain
        let m1 = bld.mux2(op0, f_and, f_or);
        let m2 = bld.mux2(op0, f_xor, f_nor);
        let m3 = bld.mux2(op0, f_shl, f_pass);
        let n0 = bld.mux2(op1, m0, m1);
        let n1 = bld.mux2(op1, m2, m3);
        let r = bld.mux2(op2, n0, n1);
        result.push(r);
    }
    bld.output_bus("r", &result);
    bld.output("cout", carry);
    bld.finish()
}

/// The paper's configuration: a 192-bit ALU.
pub fn alu192() -> Result<Netlist, NetlistError> {
    alu(192)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words;

    fn run(nl: &Netlist, width: usize, op: AluOp, a: u128, b: u128) -> u128 {
        let mut ins = words::to_bits(a, width);
        ins.extend(words::to_bits(b, width));
        ins.extend(op.opcode_bits());
        let out = nl.eval(&ins).unwrap();
        words::from_bits(&out[..width])
    }

    #[test]
    fn all_ops_match_reference_16bit() {
        let width = 16;
        let nl = alu(width).unwrap();
        let cases = [
            (0u128, 0u128),
            (1, 1),
            (0xffff, 1),
            (0x1234, 0x5678),
            (0xaaaa, 0x5555),
            (0x8000, 0x8000),
        ];
        for op in AluOp::ALL {
            for &(a, b) in &cases {
                assert_eq!(
                    run(&nl, width, op, a, b),
                    op.reference(a, b, width),
                    "{op:?} a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn carry_out_on_add() {
        let width = 8;
        let nl = alu(width).unwrap();
        let mut ins = words::to_bits(0xff, width);
        ins.extend(words::to_bits(0x01, width));
        ins.extend(AluOp::Add.opcode_bits());
        let out = nl.eval(&ins).unwrap();
        assert!(out[width], "cout must be set for 0xff + 1");
        assert_eq!(words::from_bits(&out[..width]), 0);
    }

    #[test]
    fn alu192_ports() {
        let nl = alu192().unwrap();
        assert_eq!(nl.inputs().len(), 192 * 2 + ALU_OPCODE_BITS);
        assert_eq!(nl.outputs().len(), 193);
        assert!(nl.find("r[191]").is_none() || nl.find("r[191]").is_some());
        // output naming
        assert_eq!(nl.outputs()[0].0, "r[0]");
        assert_eq!(nl.outputs()[192].0, "cout");
    }

    #[test]
    fn adder_path_is_deepest() {
        let nl = alu(32).unwrap();
        let profile = nl.depth_profile().unwrap();
        // r[31] through the carry chain should be much deeper than r[0].
        assert!(profile.output_levels[31] > profile.output_levels[0] + 20);
    }

    #[test]
    fn opcode_bits_roundtrip() {
        for op in AluOp::ALL {
            let bits = op.opcode_bits();
            let v = u8::from(bits[0]) | u8::from(bits[1]) << 1 | u8::from(bits[2]) << 2;
            assert_eq!(v, op.opcode());
        }
    }

    #[test]
    fn zero_width_rejected() {
        assert!(alu(0).is_err());
    }
}
