//! Ripple-carry adder generators.

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::NetId;
use crate::netlist::Netlist;

/// Builds one full adder; returns `(sum, carry_out)`.
pub(crate) fn full_adder(b: &mut NetlistBuilder, a: NetId, x: NetId, cin: NetId) -> (NetId, NetId) {
    let axb = b.xor2(a, x);
    let sum = b.xor2(axb, cin);
    let t0 = b.and2(a, x);
    let t1 = b.and2(axb, cin);
    let cout = b.or2(t0, t1);
    (sum, cout)
}

/// Generates an `n`-bit ripple-carry adder.
///
/// Ports: inputs `a[0..n]`, `b[0..n]` (LSB first); outputs `sum[0..n]`
/// and `cout`.
///
/// This is the carry chain the paper's Section III example sensitizes
/// with `A = 2^n − 1`, `B = 1`: the carry ripples through every stage and
/// every sum bit's settling time depends on supply voltage.
///
/// # Errors
///
/// [`NetlistError::BadGeneratorParameter`] when `n == 0`.
///
/// # Example
///
/// ```
/// use slm_netlist::{generators, words};
/// let nl = generators::ripple_carry_adder(16).unwrap();
/// let mut ins = words::to_bits(12345, 16);
/// ins.extend(words::to_bits(54321, 16));
/// let out = nl.eval(&ins).unwrap();
/// assert_eq!(words::from_bits(&out[..16]), (12345 + 54321) & 0xffff);
/// ```
pub fn ripple_carry_adder(n: usize) -> Result<Netlist, NetlistError> {
    build(n, false)
}

/// Like [`ripple_carry_adder`] but with an explicit `cin` input (declared
/// after the `b` bus).
pub fn ripple_carry_adder_with_cin(n: usize) -> Result<Netlist, NetlistError> {
    build(n, true)
}

fn build(n: usize, with_cin: bool) -> Result<Netlist, NetlistError> {
    if n == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "adder width must be at least 1".into(),
        ));
    }
    let mut b = NetlistBuilder::new(format!("rca{n}"));
    let a_bus = b.input_bus("a", n);
    let b_bus = b.input_bus("b", n);
    let mut carry = if with_cin { b.input("cin") } else { b.const0() };
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let (s, c) = full_adder(&mut b, a_bus[i], b_bus[i], carry);
        sums.push(s);
        carry = c;
    }
    b.output_bus("sum", &sums);
    b.output("cout", carry);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words;

    fn add_via_netlist(nl: &Netlist, n: usize, a: u128, b: u128) -> (u128, bool) {
        let mut ins = words::to_bits(a, n);
        ins.extend(words::to_bits(b, n));
        let out = nl.eval(&ins).unwrap();
        (words::from_bits(&out[..n]), out[n])
    }

    #[test]
    fn adds_exhaustively_4bit() {
        let nl = ripple_carry_adder(4).unwrap();
        for a in 0u128..16 {
            for b in 0u128..16 {
                let (s, c) = add_via_netlist(&nl, 4, a, b);
                assert_eq!(s, (a + b) & 0xf);
                assert_eq!(c, a + b > 0xf, "carry for {a}+{b}");
            }
        }
    }

    #[test]
    fn carry_chain_pattern() {
        // The paper's stimulus: A = 2^n - 1, B = 1 → sum = 0, cout = 1.
        let n = 64;
        let nl = ripple_carry_adder(n).unwrap();
        let (s, c) = add_via_netlist(&nl, n, (1u128 << n) - 1, 1);
        assert_eq!(s, 0);
        assert!(c);
    }

    #[test]
    fn cin_variant() {
        let nl = ripple_carry_adder_with_cin(8).unwrap();
        let mut ins = words::to_bits(100, 8);
        ins.extend(words::to_bits(27, 8));
        ins.push(true);
        let out = nl.eval(&ins).unwrap();
        assert_eq!(words::from_bits(&out[..8]), 128);
    }

    #[test]
    fn zero_width_rejected() {
        assert!(ripple_carry_adder(0).is_err());
    }

    #[test]
    fn depth_grows_linearly() {
        let d8 = ripple_carry_adder(8).unwrap().stats().unwrap().depth;
        let d16 = ripple_carry_adder(16).unwrap().stats().unwrap().depth;
        assert!(d16 > d8 + 4, "carry chain should dominate depth");
    }
}
