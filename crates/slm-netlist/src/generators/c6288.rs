//! ISCAS-85 C6288-style array multiplier generator.
//!
//! C6288 is a 16×16 combinational array multiplier (Hansen, Yalcin and
//! Hayes, "Unveiling the ISCAS-85 benchmarks"). Structurally it is a
//! matrix of 240 full adders and 16 half adders fed by a 256-cell AND
//! partial-product matrix; the original gate mapping is NOR-dominated,
//! but its defining timing property — a deep, triangular spread of path
//! lengths across the 32 product outputs — comes from the adder array,
//! which this generator reproduces as a row-cascaded carry-propagate
//! array. The generated `c6288()` instance therefore exhibits the same
//! "many endpoints with near-critical slack" behaviour the paper exploits
//! in Section V-D.

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::netlist::Netlist;

use super::adder::full_adder;

/// Generates an `n×n` array multiplier.
///
/// Ports: inputs `a[0..n]`, `b[0..n]` (LSB first); outputs `p[0..2n]`.
///
/// # Errors
///
/// [`NetlistError::BadGeneratorParameter`] when `n < 2`.
///
/// # Example
///
/// ```
/// use slm_netlist::{generators, words};
/// let nl = generators::array_multiplier(8).unwrap();
/// let mut ins = words::to_bits(25, 8);
/// ins.extend(words::to_bits(37, 8));
/// let out = nl.eval(&ins).unwrap();
/// assert_eq!(words::from_bits(&out), 25 * 37);
/// ```
pub fn array_multiplier(n: usize) -> Result<Netlist, NetlistError> {
    if n < 2 {
        return Err(NetlistError::BadGeneratorParameter(
            "multiplier width must be at least 2".into(),
        ));
    }
    let mut bld = NetlistBuilder::new(format!("mul{n}x{n}"));
    let a = bld.input_bus("a", n);
    let b = bld.input_bus("b", n);

    // Partial-product matrix.
    let mut pp = vec![Vec::with_capacity(n); n];
    for (row, &bj) in pp.iter_mut().zip(&b) {
        for &ai in a.iter() {
            row.push(bld.and2(ai, bj));
        }
    }

    // Row-cascaded accumulation: acc holds product bits above position j
    // after absorbing row j. Row 0 seeds the accumulator.
    let mut product = Vec::with_capacity(2 * n);
    let mut acc: Vec<crate::NetId> = pp[0].clone();
    product.push(acc.remove(0)); // p[0] = pp[0][0]
    for row in pp.iter().take(n).skip(1) {
        // acc (n-1 bits, weights j..j+n-1) + row j (n bits, weights j..j+n)
        let mut carry = bld.const0();
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let acc_bit = if i < acc.len() { acc[i] } else { bld.const0() };
            let (s, c) = full_adder(&mut bld, acc_bit, row[i], carry);
            next.push(s);
            carry = c;
        }
        next.push(carry);
        product.push(next.remove(0)); // weight-j product bit settles
        acc = next;
    }
    // Remaining accumulator bits are the high half of the product.
    product.extend(acc);
    debug_assert_eq!(product.len(), 2 * n);
    bld.output_bus("p", &product);
    bld.finish()
}

/// The ISCAS-85 C6288 configuration: a 16×16 multiplier with 32 product
/// outputs.
pub fn c6288() -> Result<Netlist, NetlistError> {
    array_multiplier(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words;

    fn mul(nl: &Netlist, n: usize, a: u128, b: u128) -> u128 {
        let mut ins = words::to_bits(a, n);
        ins.extend(words::to_bits(b, n));
        words::from_bits(&nl.eval(&ins).unwrap())
    }

    #[test]
    fn multiplies_exhaustively_4bit() {
        let nl = array_multiplier(4).unwrap();
        for a in 0u128..16 {
            for b in 0u128..16 {
                assert_eq!(mul(&nl, 4, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn c6288_shape() {
        let nl = c6288().unwrap();
        assert_eq!(nl.inputs().len(), 32);
        assert_eq!(nl.outputs().len(), 32);
        let stats = nl.stats().unwrap();
        // The adder array dominates: 15 rows × 16 FAs × 5 gates plus the
        // 256 partial products. Expect a four-digit gate count and a deep
        // critical path, like the original benchmark.
        assert!(stats.gates > 1200, "got {} gates", stats.gates);
        assert!(stats.depth > 60, "got depth {}", stats.depth);
    }

    #[test]
    fn c6288_spot_products() {
        let nl = c6288().unwrap();
        for (a, b) in [(0u128, 0u128), (65535, 65535), (12345, 54321), (256, 255)] {
            assert_eq!(mul(&nl, 16, a, b), a * b);
        }
    }

    #[test]
    fn output_depths_are_triangular() {
        let nl = c6288().unwrap();
        let prof = nl.depth_profile().unwrap();
        let lv = &prof.output_levels;
        // Low product bits settle early; middle/high bits are deep.
        assert!(lv[0] <= 2);
        assert!(lv[20] > lv[2]);
        let max = *lv.iter().max().unwrap();
        // Many outputs near-critical (within 30% of max depth) — the
        // property that makes half the endpoints usable as sensors.
        let near = lv.iter().filter(|&&d| d * 10 >= max * 7).count();
        assert!(near >= 8, "only {near} near-critical outputs");
    }

    #[test]
    fn degenerate_width_rejected() {
        assert!(array_multiplier(0).is_err());
        assert!(array_multiplier(1).is_err());
    }
}
