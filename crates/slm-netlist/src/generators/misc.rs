//! Small generators used by tests and by the structural checker as
//! positive and negative examples.

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::{Gate, GateKind, NetId};
use crate::netlist::Netlist;

/// The ISCAS-85 C17 benchmark (6 NAND gates), built programmatically.
pub fn c17() -> Netlist {
    let mut b = NetlistBuilder::new("c17");
    let i1 = b.input("1");
    let i2 = b.input("2");
    let i3 = b.input("3");
    let i6 = b.input("6");
    let i7 = b.input("7");
    let g10 = b.named_gate("10", GateKind::Nand, &[i1, i3]);
    let g11 = b.named_gate("11", GateKind::Nand, &[i3, i6]);
    let g16 = b.named_gate("16", GateKind::Nand, &[i2, g11]);
    let g19 = b.named_gate("19", GateKind::Nand, &[g11, i7]);
    let g22 = b.named_gate("22", GateKind::Nand, &[g10, g16]);
    let g23 = b.named_gate("23", GateKind::Nand, &[g16, g19]);
    b.output("22", g22);
    b.output("23", g23);
    b.finish().expect("c17 is well-formed")
}

/// `n`-bit equality comparator: output `eq` is 1 iff `a == b`.
pub fn equality_comparator(n: usize) -> Result<Netlist, NetlistError> {
    if n == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "comparator width must be at least 1".into(),
        ));
    }
    let mut b = NetlistBuilder::new(format!("eq{n}"));
    let a_bus = b.input_bus("a", n);
    let b_bus = b.input_bus("b", n);
    let mut eqs: Vec<NetId> = (0..n)
        .map(|i| {
            let x = b.xor2(a_bus[i], b_bus[i]);
            b.not(x)
        })
        .collect();
    // Balanced AND reduction tree.
    while eqs.len() > 1 {
        let mut next = Vec::with_capacity(eqs.len().div_ceil(2));
        for pair in eqs.chunks(2) {
            next.push(if pair.len() == 2 {
                b.and2(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        eqs = next;
    }
    b.output("eq", eqs[0]);
    b.finish()
}

/// `n`-input XOR parity tree; output `parity`.
pub fn parity_tree(n: usize) -> Result<Netlist, NetlistError> {
    if n == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "parity tree needs at least 1 input".into(),
        ));
    }
    let mut b = NetlistBuilder::new(format!("parity{n}"));
    let mut layer = b.input_bus("x", n);
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                b.xor2(pair[0], pair[1])
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    b.output("parity", layer[0]);
    b.finish()
}

/// A classic ring oscillator: an enable NAND followed by `stages`
/// inverters, with the last inverter feeding back into the NAND.
///
/// The result is **cyclic** — it cannot be simulated functionally and is
/// exactly the structure bitstream checkers reject. Used as a
/// known-malicious specimen by `slm-checker` tests.
///
/// `stages` must be even so the loop has odd total inversions (NAND
/// included) and actually oscillates.
pub fn ring_oscillator(stages: usize) -> Result<Netlist, NetlistError> {
    if stages == 0 || stages % 2 != 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "ring oscillator needs an even, nonzero inverter count".into(),
        ));
    }
    // Nets: 0 = enable input, 1 = NAND, 2..2+stages = inverters.
    let mut gates = vec![Gate::new(GateKind::Input, vec![])];
    let last_inv = NetId((1 + stages) as u32);
    gates.push(Gate::new(GateKind::Nand, vec![NetId(0), last_inv]));
    for i in 0..stages {
        gates.push(Gate::new(GateKind::Not, vec![NetId((1 + i) as u32)]));
    }
    let mut names = vec![Some("en".to_string()), Some("ro_nand".to_string())];
    for i in 0..stages {
        names.push(Some(format!("ro_inv{i}")));
    }
    Netlist::from_parts(
        format!("ro{stages}"),
        gates,
        vec![NetId(0)],
        vec![("osc".to_string(), last_inv)],
        names,
    )
}

/// A TDC-style observable delay line: `stages` buffers in series, with an
/// `OUTPUT` tap after every buffer.
///
/// This is the structure of the delay-line sensors of Fig. 1 (right);
/// it is acyclic and functionally trivial (every tap equals the input)
/// but its shape — a long buffer chain with per-stage observation points
/// — is what pattern-matching bitstream checkers flag.
pub fn tdc_delay_line(stages: usize) -> Result<Netlist, NetlistError> {
    if stages == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "delay line needs at least 1 stage".into(),
        ));
    }
    let mut b = NetlistBuilder::new(format!("tdc{stages}"));
    let mut n = b.input("d");
    let mut taps = Vec::with_capacity(stages);
    for i in 0..stages {
        n = b.named_gate(format!("dl{i}"), GateKind::Buf, &[n]);
        taps.push(n);
    }
    b.output_bus("tap", &taps);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_matches_bench_parse() {
        let nl = c17();
        assert_eq!(nl.len(), 11);
        assert!(nl.is_acyclic());
        // spot check one pattern: all ones → 22 = NAND(0, ...) = 1? compute
        let out = nl.eval(&[true; 5]).unwrap();
        // g10 = !(1&1)=0, g11 = 0, g16 = !(1&0)=1, g19 = !(0&1)=1
        // g22 = !(0&1)=1, g23 = !(1&1)=0
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn comparator() {
        let nl = equality_comparator(5).unwrap();
        let mut ins = crate::words::to_bits(0b10110, 5);
        ins.extend(crate::words::to_bits(0b10110, 5));
        assert_eq!(nl.eval(&ins).unwrap(), vec![true]);
        let mut ins2 = crate::words::to_bits(0b10110, 5);
        ins2.extend(crate::words::to_bits(0b10111, 5));
        assert_eq!(nl.eval(&ins2).unwrap(), vec![false]);
    }

    #[test]
    fn parity() {
        let nl = parity_tree(7).unwrap();
        for v in [0u128, 1, 0b1010101, 0x7f] {
            let ins = crate::words::to_bits(v, 7);
            let expect = (v.count_ones() % 2) == 1;
            assert_eq!(nl.eval(&ins).unwrap(), vec![expect], "v={v:#b}");
        }
    }

    #[test]
    fn ring_oscillator_is_cyclic() {
        let ro = ring_oscillator(4).unwrap();
        assert!(!ro.is_acyclic());
        assert!(ro.eval(&[true]).is_err());
        assert!(ring_oscillator(3).is_err());
        assert!(ring_oscillator(0).is_err());
    }

    #[test]
    fn delay_line_taps_follow_input() {
        let nl = tdc_delay_line(16).unwrap();
        assert_eq!(nl.outputs().len(), 16);
        assert!(nl.eval(&[true]).unwrap().iter().all(|&t| t));
        assert!(nl.eval(&[false]).unwrap().iter().all(|&t| !t));
        // depth of tap i is i+1
        let prof = nl.depth_profile().unwrap();
        assert_eq!(prof.output_levels[0], 1);
        assert_eq!(prof.output_levels[15], 16);
    }
}
