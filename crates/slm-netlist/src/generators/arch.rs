//! Alternative arithmetic architectures.
//!
//! The paper's discussion argues *any* sufficiently deep circuit can be
//! misused; these generators provide the comparison set: adders with
//! shorter/flatter critical paths (carry-lookahead, carry-select) and a
//! Wallace-tree multiplier, so the reproduction can study how circuit
//! architecture affects sensor quality (the `architecture_study`
//! experiment and the ablation benches).

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::NetId;
use crate::netlist::Netlist;

use super::adder::full_adder;

/// Generates an `n`-bit two-level carry-lookahead adder (4-bit groups,
/// ripple between groups).
///
/// Ports: inputs `a[0..n]`, `b[0..n]`; outputs `sum[0..n]`, `cout`.
/// Depth grows roughly `n/4`-fold slower than the ripple-carry adder —
/// a *worse* sensor at a given overclock because fewer endpoints land
/// near the capture edge.
///
/// # Errors
///
/// [`NetlistError::BadGeneratorParameter`] when `n == 0`.
pub fn carry_lookahead_adder(n: usize) -> Result<Netlist, NetlistError> {
    if n == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "adder width must be at least 1".into(),
        ));
    }
    let mut bld = NetlistBuilder::new(format!("cla{n}"));
    let a = bld.input_bus("a", n);
    let b = bld.input_bus("b", n);
    let mut carry = bld.const0();
    let mut sums = Vec::with_capacity(n);
    for group in (0..n).step_by(4) {
        let hi = (group + 4).min(n);
        // generate/propagate per bit
        let g: Vec<NetId> = (group..hi).map(|i| bld.and2(a[i], b[i])).collect();
        let p: Vec<NetId> = (group..hi).map(|i| bld.xor2(a[i], b[i])).collect();
        // group-internal carries via lookahead:
        // c1 = g0 | p0·c0 ; c2 = g1 | p1·g0 | p1·p0·c0 ; ...
        let mut carries = vec![carry];
        for k in 0..(hi - group) {
            let mut terms: Vec<NetId> = vec![g[k]];
            for j in (0..k).rev() {
                // p[k]·p[k-1]·…·p[j+1]·g[j]
                let mut t = g[j];
                for pp in &p[j + 1..=k] {
                    t = bld.and2(t, *pp);
                }
                terms.push(t);
            }
            // p[k]·…·p[0]·c_in
            let mut t = carries[0];
            for pp in &p[..=k] {
                t = bld.and2(t, *pp);
            }
            terms.push(t);
            let mut c = terms[0];
            for &term in &terms[1..] {
                c = bld.or2(c, term);
            }
            carries.push(c);
        }
        for k in 0..(hi - group) {
            sums.push(bld.xor2(p[k], carries[k]));
        }
        carry = carries[hi - group];
    }
    bld.output_bus("sum", &sums);
    bld.output("cout", carry);
    bld.finish()
}

/// Generates an `n`-bit carry-select adder with 8-bit blocks: each block
/// computes both carry cases in parallel and a mux picks the result.
///
/// Ports: inputs `a[0..n]`, `b[0..n]`; outputs `sum[0..n]`, `cout`.
///
/// # Errors
///
/// [`NetlistError::BadGeneratorParameter`] when `n == 0`.
pub fn carry_select_adder(n: usize) -> Result<Netlist, NetlistError> {
    if n == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "adder width must be at least 1".into(),
        ));
    }
    let mut bld = NetlistBuilder::new(format!("csel{n}"));
    let a = bld.input_bus("a", n);
    let b = bld.input_bus("b", n);
    let mut carry = bld.const0();
    let mut sums = Vec::with_capacity(n);
    for block in (0..n).step_by(8) {
        let hi = (block + 8).min(n);
        if block == 0 {
            // first block: plain ripple
            for i in block..hi {
                let (s, c) = full_adder(&mut bld, a[i], b[i], carry);
                sums.push(s);
                carry = c;
            }
            continue;
        }
        // two speculative ripples, cin = 0 and cin = 1
        let mut c0 = bld.const0();
        let mut c1 = bld.const1();
        let mut s0 = Vec::with_capacity(hi - block);
        let mut s1 = Vec::with_capacity(hi - block);
        for i in block..hi {
            let (s, c) = full_adder(&mut bld, a[i], b[i], c0);
            s0.push(s);
            c0 = c;
            let (s, c) = full_adder(&mut bld, a[i], b[i], c1);
            s1.push(s);
            c1 = c;
        }
        for k in 0..(hi - block) {
            sums.push(bld.mux2(carry, s0[k], s1[k]));
        }
        carry = bld.mux2(carry, c0, c1);
    }
    bld.output_bus("sum", &sums);
    bld.output("cout", carry);
    bld.finish()
}

/// Generates an `n×n` Wallace-tree multiplier: 3:2 compression of the
/// partial-product matrix, final ripple-carry merge.
///
/// Ports: inputs `a[0..n]`, `b[0..n]`; outputs `p[0..2n]`.
///
/// Logarithmic compression depth plus a final carry chain — a flatter
/// arrival profile than the C6288-style array, concentrating endpoints
/// near the (shorter) critical path.
///
/// # Errors
///
/// [`NetlistError::BadGeneratorParameter`] when `n < 2`.
pub fn wallace_multiplier(n: usize) -> Result<Netlist, NetlistError> {
    if n < 2 {
        return Err(NetlistError::BadGeneratorParameter(
            "multiplier width must be at least 2".into(),
        ));
    }
    let mut bld = NetlistBuilder::new(format!("wallace{n}x{n}"));
    let a = bld.input_bus("a", n);
    let b = bld.input_bus("b", n);
    // columns[w] = list of bits with weight w
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * n];
    for (j, &bj) in b.iter().enumerate() {
        for (i, &ai) in a.iter().enumerate() {
            let pp = bld.and2(ai, bj);
            columns[i + j].push(pp);
        }
    }
    // 3:2 / 2:2 compression until every column has ≤ 2 bits
    loop {
        let max = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max <= 2 {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); 2 * n];
        for w in 0..2 * n {
            let col = &columns[w];
            let mut k = 0;
            while col.len() - k >= 3 {
                let (s, c) = full_adder(&mut bld, col[k], col[k + 1], col[k + 2]);
                next[w].push(s);
                if w + 1 < 2 * n {
                    next[w + 1].push(c);
                }
                k += 3;
            }
            if col.len() - k == 2 {
                let s = bld.xor2(col[k], col[k + 1]);
                let c = bld.and2(col[k], col[k + 1]);
                next[w].push(s);
                if w + 1 < 2 * n {
                    next[w + 1].push(c);
                }
                k += 2;
            }
            if col.len() - k == 1 {
                next[w].push(col[k]);
            }
        }
        columns = next;
    }
    // final carry-propagate merge
    let mut product = Vec::with_capacity(2 * n);
    let mut carry = bld.const0();
    for col in columns.iter() {
        match col.len() {
            0 => {
                product.push(bld.buf(carry));
                carry = bld.const0();
            }
            1 => {
                let (s, c) = {
                    let z = bld.const0();
                    full_adder(&mut bld, col[0], z, carry)
                };
                product.push(s);
                carry = c;
            }
            2 => {
                let (s, c) = full_adder(&mut bld, col[0], col[1], carry);
                product.push(s);
                carry = c;
            }
            _ => unreachable!("compression leaves at most 2 bits per column"),
        }
    }
    product.truncate(2 * n);
    bld.output_bus("p", &product);
    bld.finish()
}

/// Generates an `n`-bit Kogge–Stone adder: a parallel-prefix carry tree
/// with `⌈log₂ n⌉` prefix levels.
///
/// Ports: inputs `a[0..n]`, `b[0..n]`; outputs `sum[0..n]`, `cout`.
///
/// The fastest classic adder topology — and therefore the *worst*
/// benign sensor in the architecture study: its carry arrivals collapse
/// into a logarithmic-depth cluster.
///
/// # Errors
///
/// [`NetlistError::BadGeneratorParameter`] when `n == 0`.
pub fn kogge_stone_adder(n: usize) -> Result<Netlist, NetlistError> {
    if n == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "adder width must be at least 1".into(),
        ));
    }
    let mut bld = NetlistBuilder::new(format!("ks{n}"));
    let a = bld.input_bus("a", n);
    let b = bld.input_bus("b", n);
    // level-0 generate/propagate
    let mut g: Vec<NetId> = (0..n).map(|i| bld.and2(a[i], b[i])).collect();
    let mut p: Vec<NetId> = (0..n).map(|i| bld.xor2(a[i], b[i])).collect();
    let p0 = p.clone(); // sum needs the original propagate bits
                        // prefix levels: (g, p)[i] ∘ (g, p)[i - 2^k]
    let mut dist = 1;
    while dist < n {
        let mut ng = g.clone();
        let mut np = p.clone();
        for i in dist..n {
            // g' = g[i] | p[i]·g[i-d];  p' = p[i]·p[i-d]
            let t = bld.and2(p[i], g[i - dist]);
            ng[i] = bld.or2(g[i], t);
            np[i] = bld.and2(p[i], p[i - dist]);
        }
        g = ng;
        p = np;
        dist *= 2;
    }
    // carries: c[0] = 0; c[i] = g[i-1] (prefix generate up to bit i-1)
    let zero = bld.const0();
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let carry_in = if i == 0 { zero } else { g[i - 1] };
        sums.push(bld.xor2(p0[i], carry_in));
    }
    bld.output_bus("sum", &sums);
    bld.output("cout", g[n - 1]);
    bld.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{array_multiplier, ripple_carry_adder};
    use crate::words;

    fn add(nl: &Netlist, n: usize, a: u128, b: u128) -> (u128, bool) {
        let mut ins = words::to_bits(a, n);
        ins.extend(words::to_bits(b, n));
        let out = nl.eval(&ins).unwrap();
        (words::from_bits(&out[..n]), out[n])
    }

    #[test]
    fn cla_adds_exhaustively_6bit() {
        let nl = carry_lookahead_adder(6).unwrap();
        for a in 0u128..64 {
            for b in 0u128..64 {
                let (s, c) = add(&nl, 6, a, b);
                assert_eq!(s, (a + b) & 0x3f, "{a}+{b}");
                assert_eq!(c, a + b > 0x3f);
            }
        }
    }

    #[test]
    fn csel_adds_spot_checks_24bit() {
        let nl = carry_select_adder(24).unwrap();
        for (a, b) in [
            (0u128, 0u128),
            (0xff_ffff, 1),
            (0x123456, 0x654321),
            (0x800000, 0x800000),
            (0xaaaaaa, 0x555555),
        ] {
            let (s, c) = add(&nl, 24, a, b);
            assert_eq!(s, (a + b) & 0xff_ffff, "{a:#x}+{b:#x}");
            assert_eq!(c, a + b > 0xff_ffff);
        }
    }

    #[test]
    fn wallace_multiplies_exhaustively_4bit() {
        let nl = wallace_multiplier(4).unwrap();
        for a in 0u128..16 {
            for b in 0u128..16 {
                let mut ins = words::to_bits(a, 4);
                ins.extend(words::to_bits(b, 4));
                assert_eq!(words::from_bits(&nl.eval(&ins).unwrap()), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn wallace_16bit_spot_checks() {
        let nl = wallace_multiplier(16).unwrap();
        for (a, b) in [(0xffffu128, 0xffff), (12345, 54321), (256, 255)] {
            let mut ins = words::to_bits(a, 16);
            ins.extend(words::to_bits(b, 16));
            assert_eq!(words::from_bits(&nl.eval(&ins).unwrap()), a * b);
        }
    }

    #[test]
    fn architectural_depth_ordering() {
        // the property the sensor study depends on: rca ≫ csel ≥ cla
        let rca = ripple_carry_adder(32).unwrap().stats().unwrap().depth;
        let cla = carry_lookahead_adder(32).unwrap().stats().unwrap().depth;
        let csel = carry_select_adder(32).unwrap().stats().unwrap().depth;
        assert!(rca * 2 > cla * 3, "rca {rca} vs cla {cla}");
        assert!(rca > csel, "rca {rca} vs csel {csel}");
        let array = array_multiplier(16).unwrap().stats().unwrap().depth;
        let wallace = wallace_multiplier(16).unwrap().stats().unwrap().depth;
        assert!(array > wallace, "array {array} vs wallace {wallace}");
    }

    #[test]
    fn kogge_stone_adds_exhaustively_6bit() {
        let nl = kogge_stone_adder(6).unwrap();
        for a in 0u128..64 {
            for b in 0u128..64 {
                let (s, c) = add(&nl, 6, a, b);
                assert_eq!(s, (a + b) & 0x3f, "{a}+{b}");
                assert_eq!(c, a + b > 0x3f);
            }
        }
    }

    #[test]
    fn kogge_stone_is_logarithmic_depth() {
        let ks = kogge_stone_adder(64).unwrap().stats().unwrap().depth;
        let rca = ripple_carry_adder(64).unwrap().stats().unwrap().depth;
        // prefix tree: ~log2(64) levels of (and+or) plus endpoints
        assert!(ks <= 16, "ks depth = {ks}");
        assert!(rca > 5 * ks, "rca {rca} vs ks {ks}");
    }

    #[test]
    fn degenerate_widths_rejected() {
        assert!(carry_lookahead_adder(0).is_err());
        assert!(carry_select_adder(0).is_err());
        assert!(wallace_multiplier(1).is_err());
        assert!(kogge_stone_adder(0).is_err());
    }
}
