//! Programmatic circuit generators.
//!
//! These reproduce the benign circuits the paper misuses as voltage
//! sensors:
//!
//! * [`ripple_carry_adder`] — the n-bit carry chain at the heart of the
//!   paper's ALU example (Section III),
//! * [`alu`] / [`alu192`] — a multi-function ALU with a 192-bit adder,
//!   matching the experimental setup of Section IV,
//! * [`c6288`] / [`array_multiplier`] — the ISCAS-85 C6288 16×16 array
//!   multiplier used in Section V-D,
//! * small helpers ([`equality_comparator`], [`parity_tree`], [`c17`],
//!   [`ring_oscillator`], [`tdc_delay_line`]) used by tests and by the
//!   structural checker as positive/negative examples.

mod adder;
mod alu;
mod arch;
mod c6288;
mod misc;
mod obfuscated;

pub use adder::{ripple_carry_adder, ripple_carry_adder_with_cin};
pub use alu::{alu, alu192, AluOp, ALU_OPCODE_BITS};
pub use arch::{carry_lookahead_adder, carry_select_adder, kogge_stone_adder, wallace_multiplier};
pub use c6288::{array_multiplier, c6288};
pub use misc::{c17, equality_comparator, parity_tree, ring_oscillator, tdc_delay_line};
pub use obfuscated::{
    carry_sensor, clock_as_data, obfuscated_ring_oscillator, obfuscated_tdc_delay_line, ro_grid,
    tapped_carry_chain, zoo, ZooEntry,
};
