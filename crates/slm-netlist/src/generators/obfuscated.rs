//! Obfuscated malicious specimens and the generator zoo.
//!
//! The paper's structural-screening argument is only interesting if the
//! screen is not trivially evadable by the *known-bad* designs. These
//! generators build the evasive variants a tenant would actually
//! submit: the same RO / TDC / clock-misuse structures with interposed
//! buffers and non-buffer identity gates so that naive pattern matchers
//! (exact cell-kind chains, single topological-sort witnesses) miss
//! them. `slm-checker`'s SCC, signature and SCOAP passes are built to
//! catch exactly these; the [`zoo`] registry enumerates every specimen
//! together with the benign circuits for the detection-matrix
//! experiment.

use crate::builder::NetlistBuilder;
use crate::error::NetlistError;
use crate::gate::{Gate, GateKind, NetId};
use crate::netlist::Netlist;

/// A TDC-style observable delay line hidden from naive chain matchers.
///
/// Every stage is a 2-input identity gate (`AND(x, x)` / `OR(x, x)`
/// alternating) rather than a buffer, stages are separated by an
/// interposed `BUF`, and the per-stage observation taps go through one
/// more `BUF` so no chain net is itself a primary output. Functionally
/// every tap still equals the input; structurally the design is a
/// delay-line sensor, but the plain `DelayLineSensor` pass (which
/// follows `BUF`/`NOT` chains) does not fire on it.
pub fn obfuscated_tdc_delay_line(stages: usize) -> Result<Netlist, NetlistError> {
    if stages == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "obfuscated delay line needs at least 1 stage".into(),
        ));
    }
    let mut b = NetlistBuilder::new(format!("tdc_obf{stages}"));
    let mut n = b.input("d");
    let mut taps = Vec::with_capacity(stages);
    for i in 0..stages {
        let kind = if i % 2 == 0 {
            GateKind::And
        } else {
            GateKind::Or
        };
        let stage = b.named_gate(format!("st{i}"), kind, &[n, n]);
        let tap = b.buf(stage);
        taps.push(tap);
        n = b.buf(stage);
    }
    b.output_bus("tap", &taps);
    b.finish()
}

/// A ring oscillator with interposed buffers between its inverters.
///
/// Same oscillation loop as [`crate::generators::ring_oscillator`]
/// (enable NAND + `stages` inverters, odd total inversion), but each
/// inverter is followed by a `BUF`, so any matcher that looks for a
/// pure inverter ring misses it. `stages` must be even and nonzero.
pub fn obfuscated_ring_oscillator(stages: usize) -> Result<Netlist, NetlistError> {
    if stages == 0 || stages % 2 != 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "obfuscated ring oscillator needs an even, nonzero inverter count".into(),
        ));
    }
    // Nets: 0 = enable, 1 = NAND, then per stage: NOT at 2+2i, BUF at
    // 3+2i. The final BUF feeds back into the NAND.
    let last_buf = NetId((1 + 2 * stages) as u32);
    let mut gates = vec![
        Gate::new(GateKind::Input, vec![]),
        Gate::new(GateKind::Nand, vec![NetId(0), last_buf]),
    ];
    let mut names = vec![Some("en".to_string()), Some("ro_nand".to_string())];
    for i in 0..stages {
        let prev = NetId((1 + 2 * i) as u32);
        gates.push(Gate::new(GateKind::Not, vec![prev]));
        gates.push(Gate::new(GateKind::Buf, vec![NetId((2 + 2 * i) as u32)]));
        names.push(Some(format!("ro_inv{i}")));
        names.push(Some(format!("ro_buf{i}")));
    }
    Netlist::from_parts(
        format!("ro_obf{stages}"),
        gates,
        vec![NetId(0)],
        vec![("osc".to_string(), last_buf)],
        names,
    )
}

/// An RO-grid power virus: `cells` independent three-gate ring
/// oscillators (enable NAND + two inverters each) sharing one enable.
///
/// This is the classic fluctuation-generator / power-virus structure
/// (Gnad et al.; screened for by FPGADefender): thousands of replicated
/// trivial cells, every one of them a combinational loop.
pub fn ro_grid(cells: usize) -> Result<Netlist, NetlistError> {
    if cells == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "RO grid needs at least 1 cell".into(),
        ));
    }
    let mut gates = vec![Gate::new(GateKind::Input, vec![])];
    let mut names = vec![Some("en".to_string())];
    for c in 0..cells {
        let base = (1 + 3 * c) as u32;
        // NAND(en, inv2) -> inv1 -> inv2 -> back into the NAND.
        gates.push(Gate::new(GateKind::Nand, vec![NetId(0), NetId(base + 2)]));
        gates.push(Gate::new(GateKind::Not, vec![NetId(base)]));
        gates.push(Gate::new(GateKind::Not, vec![NetId(base + 1)]));
        names.push(Some(format!("cell{c}_nand")));
        names.push(Some(format!("cell{c}_inv1")));
        names.push(Some(format!("cell{c}_inv2")));
    }
    Netlist::from_parts(
        format!("ro_grid{cells}"),
        gates,
        vec![NetId(0)],
        vec![("osc".to_string(), NetId(3))],
        names,
    )
}

/// A clock-as-data specimen: the tenant's clock pin routed into
/// combinational logic.
///
/// The fourth structural check the paper names (besides loops, delay
/// lines and RO grids) is scanning for clock signals used as LUT data
/// inputs — the standard way to build a latch-based sensor or glitch
/// generator without a combinational loop. Here a `clk` input is XORed
/// into every data bit, which is exactly that misuse shape.
pub fn clock_as_data(width: usize) -> Result<Netlist, NetlistError> {
    if width == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "clock-as-data specimen needs at least 1 data bit".into(),
        ));
    }
    let mut b = NetlistBuilder::new(format!("clk_data{width}"));
    let clk = b.input("clk");
    let d = b.input_bus("d", width);
    let q: Vec<NetId> = d.iter().map(|&di| b.xor2(di, clk)).collect();
    b.output_bus("q", &q);
    b.finish()
}

/// A TDC built out of an adder: a ripple-carry chain with every carry
/// net observed at a primary output (through a buffer).
///
/// This is the paper's "benign logic as sensor" idea pushed one step
/// further into known-bad territory: the arithmetic is a real adder,
/// there is no buffer chain and no combinational loop, so neither the
/// delay-line pass nor the loop pass fires — only the subgraph
/// signature matcher (tapped delay-chain motif) catches it.
pub fn tapped_carry_chain(bits: usize) -> Result<Netlist, NetlistError> {
    if bits == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "tapped carry chain needs at least 1 bit".into(),
        ));
    }
    let mut b = NetlistBuilder::new(format!("carry_tdc{bits}"));
    let a = b.input_bus("a", bits);
    let y = b.input_bus("b", bits);
    let mut carry = b.const0();
    let mut sums = Vec::with_capacity(bits);
    let mut taps = Vec::with_capacity(bits);
    for i in 0..bits {
        let axb = b.xor2(a[i], y[i]);
        sums.push(b.xor2(axb, carry));
        let g0 = b.and2(a[i], y[i]);
        let g1 = b.and2(axb, carry);
        carry = b.or2(g0, g1);
        taps.push(b.buf(carry));
    }
    b.output_bus("s", &sums);
    b.output_bus("t", &taps);
    b.finish()
}

/// The paper's deployed sensor, submitted the way a stealthy tenant
/// would: a real ripple-carry adder whose carry-in is the fabric clock,
/// with the carry chain tapped only every `tap_every` bits.
///
/// Unlike [`tapped_carry_chain`] (taps every carry, which the signature
/// pass's tapped-chain motif catches) the sparse taps leave
/// `2 * tap_every` unobserved gates between observation points — past
/// the matcher's `max_unobserved_gap` — and the clock pin is named
/// `sense`, so the clock-as-data name screen never fires. Structurally
/// this is indistinguishable from a benign adder; it is the specimen
/// the *semantic* passes exist for. At admission time the provider
/// still knows `sense` is clock-fed, because the tenant has to request
/// clock routing from the shell — the zoo records that contract in
/// [`ZooEntry::declared_clocks`].
pub fn carry_sensor(bits: usize, tap_every: usize) -> Result<Netlist, NetlistError> {
    if bits == 0 || tap_every == 0 {
        return Err(NetlistError::BadGeneratorParameter(
            "carry sensor needs nonzero width and tap spacing".into(),
        ));
    }
    let mut b = NetlistBuilder::new(format!("carry_sensor{bits}"));
    let a = b.input_bus("a", bits);
    let y = b.input_bus("b", bits);
    let sense = b.input("sense");
    let mut carry = sense;
    let mut sums = Vec::with_capacity(bits);
    let mut taps = Vec::new();
    for i in 0..bits {
        let axb = b.xor2(a[i], y[i]);
        sums.push(b.xor2(axb, carry));
        let g0 = b.and2(a[i], y[i]);
        let g1 = b.and2(axb, carry);
        carry = b.or2(g0, g1);
        if (i + 1) % tap_every == 0 {
            taps.push(b.buf(carry));
        }
    }
    b.output_bus("s", &sums);
    b.output_bus("t", &taps);
    b.finish()
}

/// One design in the detection-matrix zoo.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Short stable identifier (used in reports and the CLI).
    pub name: &'static str,
    /// Whether the design is malicious by construction (must be flagged
    /// by at least one structural pass) or benign (must stay clean).
    pub malicious: bool,
    /// Input pins the tenant's interface contract declares as clock-fed.
    ///
    /// In the deployment model the provider's shell owns clock routing,
    /// so a tenant wanting the clock on a pin must say so regardless of
    /// what the pin is named — this is what seeds the semantic
    /// clock-taint pass when net names lie.
    pub declared_clocks: &'static [&'static str],
    /// The built netlist.
    pub netlist: Netlist,
}

/// The full generator zoo the detection-matrix experiment scans: every
/// malicious-by-construction specimen and every benign circuit family,
/// at the sizes the paper's evaluation uses.
///
/// # Panics
///
/// Never — all parameters are valid by construction.
pub fn zoo() -> Vec<ZooEntry> {
    use crate::generators::{
        alu, array_multiplier, c17, carry_lookahead_adder, equality_comparator, kogge_stone_adder,
        parity_tree, ring_oscillator, ripple_carry_adder, tdc_delay_line, wallace_multiplier,
    };
    let c6288 = array_multiplier(16).expect("c6288 generator");
    let dual = Netlist::disjoint_union("dual_c6288", &[&c6288, &c6288]).expect("disjoint union");
    let entry = |name, malicious, netlist| ZooEntry {
        name,
        malicious,
        declared_clocks: &[],
        netlist,
    };
    vec![
        // Malicious by construction.
        entry("ring_oscillator", true, ring_oscillator(8).unwrap()),
        entry(
            "ring_oscillator_obfuscated",
            true,
            obfuscated_ring_oscillator(8).unwrap(),
        ),
        entry("ro_grid", true, ro_grid(400).unwrap()),
        entry("tdc_delay_line", true, tdc_delay_line(64).unwrap()),
        entry(
            "tdc_obfuscated",
            true,
            obfuscated_tdc_delay_line(48).unwrap(),
        ),
        entry("clock_as_data", true, clock_as_data(16).unwrap()),
        entry("tapped_carry_chain", true, tapped_carry_chain(64).unwrap()),
        ZooEntry {
            name: "carry_sensor",
            malicious: true,
            declared_clocks: &["sense"],
            netlist: carry_sensor(64, 4).unwrap(),
        },
        // Benign — the paper's sensors and ordinary logic families.
        entry("alu192", false, alu(192).unwrap()),
        entry("dual_c6288", false, dual),
        entry("c17", false, c17()),
        entry("rca64", false, ripple_carry_adder(64).unwrap()),
        entry("cla32", false, carry_lookahead_adder(32).unwrap()),
        entry("kogge_stone32", false, kogge_stone_adder(32).unwrap()),
        entry("wallace12", false, wallace_multiplier(12).unwrap()),
        entry("parity64", false, parity_tree(64).unwrap()),
        entry("comparator32", false, equality_comparator(32).unwrap()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obfuscated_tdc_is_functionally_identity() {
        let nl = obfuscated_tdc_delay_line(16).unwrap();
        assert_eq!(nl.outputs().len(), 16);
        assert!(nl.eval(&[true]).unwrap().iter().all(|&t| t));
        assert!(nl.eval(&[false]).unwrap().iter().all(|&t| !t));
        assert!(obfuscated_tdc_delay_line(0).is_err());
    }

    #[test]
    fn obfuscated_tdc_has_no_buf_not_chain_taps() {
        // The obfuscation invariant: no chain net is itself an output,
        // and no stage gate is a BUF/NOT — the structure the naive
        // delay-line matcher keys on is absent.
        let nl = obfuscated_tdc_delay_line(24).unwrap();
        for &(_, o) in nl.outputs() {
            assert_eq!(nl.gate(o).kind, GateKind::Buf);
            let driver = nl.gate(o).fanin[0];
            assert!(matches!(nl.gate(driver).kind, GateKind::And | GateKind::Or));
        }
    }

    #[test]
    fn obfuscated_ro_is_cyclic_with_odd_inversion() {
        let ro = obfuscated_ring_oscillator(8).unwrap();
        assert!(!ro.is_acyclic());
        let loops = crate::graph::combinational_loops(&ro);
        assert_eq!(loops.len(), 1);
        let inverting = loops[0]
            .iter()
            .filter(|&&id| ro.gate(id).kind.is_inverting())
            .count();
        assert_eq!(inverting % 2, 1, "loop must oscillate");
        assert!(obfuscated_ring_oscillator(3).is_err());
    }

    #[test]
    fn ro_grid_is_many_small_loops() {
        let grid = ro_grid(50).unwrap();
        assert_eq!(grid.len(), 1 + 150);
        let loops = crate::graph::combinational_loops(&grid);
        assert_eq!(loops.len(), 50);
        assert!(loops.iter().all(|l| l.len() == 3));
        assert!(ro_grid(0).is_err());
    }

    #[test]
    fn clock_as_data_uses_clk_combinationally() {
        let nl = clock_as_data(8).unwrap();
        let clk = nl.find("clk").unwrap();
        let idx = crate::graph::FanoutIndex::build(&nl);
        assert_eq!(idx.degree(clk), 8);
        // functional sanity: q = d ^ clk
        let mut ins = vec![true];
        ins.extend([false; 8]);
        assert!(nl.eval(&ins).unwrap().iter().all(|&q| q));
    }

    #[test]
    fn tapped_carry_chain_is_a_real_adder() {
        let nl = tapped_carry_chain(8).unwrap();
        // s = a + b (mod 256); taps mirror the carries.
        let mut ins = vec![false; 16];
        ins[0] = true; // a = 1
        ins[8] = true; // b = 1
        let out = nl.eval(&ins).unwrap();
        let sum: u32 = out[..8]
            .iter()
            .enumerate()
            .map(|(i, &v)| u32::from(v) << i)
            .sum();
        assert_eq!(sum, 2);
        assert!(tapped_carry_chain(0).is_err());
    }

    #[test]
    fn carry_sensor_is_a_real_adder_with_sparse_taps() {
        let nl = carry_sensor(16, 4).unwrap();
        // 16 sums + 4 sparse carry taps.
        assert_eq!(nl.outputs().len(), 20);
        // With sense (carry-in) low: s = a + b (mod 2^16).
        let mut ins = vec![false; 33];
        ins[0] = true; // a = 1
        ins[16] = true; // b = 1
        let out = nl.eval(&ins).unwrap();
        let sum: u32 = out[..16]
            .iter()
            .enumerate()
            .map(|(i, &v)| u32::from(v) << i)
            .sum();
        assert_eq!(sum, 2);
        // With sense high: carry-in adds one.
        ins[32] = true;
        let out = nl.eval(&ins).unwrap();
        let sum: u32 = out[..16]
            .iter()
            .enumerate()
            .map(|(i, &v)| u32::from(v) << i)
            .sum();
        assert_eq!(sum, 3);
        assert!(carry_sensor(0, 4).is_err());
        assert!(carry_sensor(16, 0).is_err());
    }

    #[test]
    fn zoo_is_complete_and_well_formed() {
        let zoo = zoo();
        assert_eq!(zoo.iter().filter(|e| e.malicious).count(), 8);
        assert!(zoo.iter().filter(|e| !e.malicious).count() >= 9);
        let mut names: Vec<&str> = zoo.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), zoo.len(), "zoo names must be unique");
    }
}
