//! The [`Netlist`] container and functional simulation.

use crate::error::NetlistError;
use crate::gate::{Gate, GateKind, NetId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A combinational gate-level netlist.
///
/// Each gate drives exactly one net, identified by [`NetId`]. Primary
/// inputs are gates of kind [`GateKind::Input`]; primary outputs are a
/// named list of nets. Construct with [`crate::NetlistBuilder`], the
/// [`crate::bench`] parser, or one of the [`crate::generators`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    net_names: Vec<Option<String>>,
    name_map: HashMap<String, NetId>,
    /// Cached topological order; `None` when the graph is cyclic.
    topo: Option<Vec<NetId>>,
}

impl Netlist {
    /// Assembles a netlist from raw parts, computing the topological order.
    ///
    /// Cyclic graphs are accepted (so structural checkers can inspect
    /// them), but simulation of a cyclic netlist returns
    /// [`NetlistError::CombinationalCycle`].
    pub fn from_parts(
        name: impl Into<String>,
        gates: Vec<Gate>,
        inputs: Vec<NetId>,
        outputs: Vec<(String, NetId)>,
        net_names: Vec<Option<String>>,
    ) -> Result<Self, NetlistError> {
        let n = gates.len();
        for (i, g) in gates.iter().enumerate() {
            let (lo, hi) = g.kind.arity();
            if g.fanin.len() < lo || g.fanin.len() > hi {
                return Err(NetlistError::BadArity {
                    kind: g.kind,
                    got: g.fanin.len(),
                });
            }
            for &f in &g.fanin {
                if f.index() >= n {
                    return Err(NetlistError::UnknownNet(f));
                }
            }
            debug_assert!(i < n);
        }
        for &(_, o) in &outputs {
            if o.index() >= n {
                return Err(NetlistError::UnknownNet(o));
            }
        }
        let mut name_map = HashMap::new();
        let mut padded_names = net_names;
        padded_names.resize(n, None);
        for (i, nm) in padded_names.iter().enumerate() {
            if let Some(nm) = nm {
                if name_map.insert(nm.clone(), NetId(i as u32)).is_some() {
                    return Err(NetlistError::DuplicateName(nm.clone()));
                }
            }
        }
        let mut nl = Netlist {
            name: name.into(),
            gates,
            inputs,
            outputs,
            net_names: padded_names,
            name_map,
            topo: None,
        };
        nl.topo = nl.compute_topological_order().ok();
        Ok(nl)
    }

    /// The netlist's name (for example `"c6288"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates, indexed by [`NetId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate driving `id`.
    pub fn gate(&self, id: NetId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Number of gates (equivalently, nets).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the netlist contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)` pairs in declaration order.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Net ids of the primary outputs in declaration order.
    pub fn output_nets(&self) -> Vec<NetId> {
        self.outputs.iter().map(|&(_, id)| id).collect()
    }

    /// The name attached to a net, if any.
    pub fn net_name(&self, id: NetId) -> Option<&str> {
        self.net_names.get(id.index()).and_then(|n| n.as_deref())
    }

    /// Finds a net by name.
    pub fn find(&self, name: &str) -> Option<NetId> {
        self.name_map.get(name).copied()
    }

    /// Whether the gate graph is free of combinational cycles.
    pub fn is_acyclic(&self) -> bool {
        self.topo.is_some()
    }

    /// A topological order of all nets (fanins before fanouts).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the graph is cyclic.
    pub fn topological_order(&self) -> Result<&[NetId], NetlistError> {
        match &self.topo {
            Some(order) => Ok(order),
            None => {
                // Recompute to produce a witness for the error message.
                match self.compute_topological_order() {
                    Ok(_) => unreachable!("cached topo missing for acyclic graph"),
                    Err(e) => Err(e),
                }
            }
        }
    }

    fn compute_topological_order(&self) -> Result<Vec<NetId>, NetlistError> {
        let n = self.gates.len();
        let mut indegree = vec![0u32; n];
        // Repeated fanins are counted repeatedly and decremented repeatedly,
        // which balances out.
        // fanout adjacency in CSR form

        let mut fanout_start = vec![0u32; n + 1];
        for g in &self.gates {
            for &f in &g.fanin {
                fanout_start[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            fanout_start[i + 1] += fanout_start[i];
        }
        let total_edges = fanout_start[n] as usize;
        let mut fanout = vec![0u32; total_edges];
        let mut cursor = fanout_start.clone();
        for (gi, g) in self.gates.iter().enumerate() {
            indegree[gi] = g.fanin.len() as u32;
            for &f in &g.fanin {
                fanout[cursor[f.index()] as usize] = gi as u32;
                cursor[f.index()] += 1;
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(NetId(u));
            let s = fanout_start[u as usize] as usize;
            let e = fanout_start[u as usize + 1] as usize;
            for &v in &fanout[s..e] {
                indegree[v as usize] -= 1;
                if indegree[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n {
            let witness = (0..n)
                .find(|&i| indegree[i] > 0)
                .map(|i| NetId(i as u32))
                .expect("cycle implies a node with positive indegree");
            return Err(NetlistError::CombinationalCycle { witness });
        }
        Ok(order)
    }

    /// Fanout lists for every net.
    pub fn fanouts(&self) -> Vec<Vec<NetId>> {
        let mut out = vec![Vec::new(); self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for &f in &g.fanin {
                out[f.index()].push(NetId(gi as u32));
            }
        }
        out
    }

    /// Evaluates all nets for one input pattern.
    ///
    /// `inputs` must match [`Netlist::inputs`] in length and order.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InputCountMismatch`] or
    /// [`NetlistError::CombinationalCycle`].
    pub fn eval_all(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let order = self.topological_order()?;
        let mut values = vec![false; self.gates.len()];
        for (&pi, &v) in self.inputs.iter().zip(inputs) {
            values[pi.index()] = v;
        }
        let mut fanin_buf: Vec<bool> = Vec::with_capacity(8);
        for &id in order {
            let g = &self.gates[id.index()];
            if g.kind == GateKind::Input {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(g.fanin.iter().map(|f| values[f.index()]));
            values[id.index()] = g.kind.eval(&fanin_buf);
        }
        Ok(values)
    }

    /// Evaluates the primary outputs for one input pattern.
    pub fn eval(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.eval_all(inputs)?;
        Ok(self
            .outputs
            .iter()
            .map(|&(_, id)| values[id.index()])
            .collect())
    }

    /// Evaluates all nets for 64 patterns at once (bit `k` of each word is
    /// pattern `k`).
    pub fn eval_all_parallel(&self, inputs: &[u64]) -> Result<Vec<u64>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let order = self.topological_order()?;
        let mut values = vec![0u64; self.gates.len()];
        for (&pi, &v) in self.inputs.iter().zip(inputs) {
            values[pi.index()] = v;
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in order {
            let g = &self.gates[id.index()];
            if g.kind == GateKind::Input {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(g.fanin.iter().map(|f| values[f.index()]));
            values[id.index()] = g.kind.eval_word(&fanin_buf);
        }
        Ok(values)
    }

    /// Evaluates the primary outputs for 64 patterns at once.
    pub fn eval_parallel(&self, inputs: &[u64]) -> Result<Vec<u64>, NetlistError> {
        let values = self.eval_all_parallel(inputs)?;
        Ok(self
            .outputs
            .iter()
            .map(|&(_, id)| values[id.index()])
            .collect())
    }

    /// Places several netlists side by side in one netlist, with no
    /// shared nets: instance `i`'s signal `x` becomes `u{i}_x`, and its
    /// inputs/outputs are appended in instance order.
    ///
    /// This models independent circuit copies in one partial-bitstream
    /// region — e.g. the paper's "two parallel ISCAS-85 C6288 circuits".
    ///
    /// # Errors
    ///
    /// Propagates construction errors (none are expected for well-formed
    /// parts).
    pub fn disjoint_union(
        name: impl Into<String>,
        parts: &[&Netlist],
    ) -> Result<Netlist, NetlistError> {
        let mut gates = Vec::new();
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        let mut net_names = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let base = gates.len() as u32;
            for g in part.gates() {
                let fanin = g.fanin.iter().map(|f| NetId(f.0 + base)).collect();
                gates.push(Gate::new(g.kind, fanin));
            }
            for k in 0..part.len() {
                net_names.push(part.net_name(NetId(k as u32)).map(|n| format!("u{i}_{n}")));
            }
            inputs.extend(part.inputs().iter().map(|&p| NetId(p.0 + base)));
            outputs.extend(
                part.outputs()
                    .iter()
                    .map(|(n, o)| (format!("u{i}_{n}"), NetId(o.0 + base))),
            );
        }
        Netlist::from_parts(name, gates, inputs, outputs, net_names)
    }

    /// A stable FNV-1a fingerprint of the netlist's full content.
    ///
    /// Covers the name, every gate (kind and fanin list), the primary
    /// input/output declarations, and all net names — everything the
    /// checker passes can observe. Two netlists with equal hashes are
    /// treated as identical by the scan cache, so the hash must change
    /// whenever any analyzable detail changes.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&[0xff]);
        for g in &self.gates {
            eat(&[g.kind as u8, 0xfe]);
            eat(&(g.fanin.len() as u32).to_le_bytes());
            for &f in &g.fanin {
                eat(&f.0.to_le_bytes());
            }
        }
        eat(&[0xfd]);
        for &i in &self.inputs {
            eat(&i.0.to_le_bytes());
        }
        eat(&[0xfc]);
        for (n, o) in &self.outputs {
            eat(n.as_bytes());
            eat(&[0xfb]);
            eat(&o.0.to_le_bytes());
        }
        eat(&[0xfa]);
        for n in &self.net_names {
            match n {
                Some(n) => {
                    eat(&[1]);
                    eat(n.as_bytes());
                }
                None => eat(&[0]),
            }
            eat(&[0xf9]);
        }
        h
    }

    /// The transitive fanin cone of a net, as a sorted list of net ids.
    pub fn fanin_cone(&self, root: NetId) -> Vec<NetId> {
        let mut seen = vec![false; self.gates.len()];
        let mut stack = vec![root];
        let mut cone = Vec::new();
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            cone.push(id);
            for &f in &self.gates[id.index()].fanin {
                stack.push(f);
            }
        }
        cone.sort();
        cone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn xor_tree() -> Netlist {
        let mut b = NetlistBuilder::new("xt");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x = b.gate(GateKind::Xor, &[a, c]);
        let y = b.gate(GateKind::Xor, &[x, d]);
        b.output("y", y);
        b.finish().unwrap()
    }

    #[test]
    fn eval_xor_tree() {
        let nl = xor_tree();
        for p in 0..8u32 {
            let ins = [(p & 1) != 0, (p & 2) != 0, (p & 4) != 0];
            let out = nl.eval(&ins).unwrap();
            assert_eq!(out[0], ins[0] ^ ins[1] ^ ins[2]);
        }
    }

    #[test]
    fn parallel_matches_scalar() {
        let nl = xor_tree();
        // Pack 8 exhaustive patterns into word bits 0..8.
        let mut ins = [0u64; 3];
        for p in 0..8u64 {
            for (i, w) in ins.iter_mut().enumerate() {
                if p & (1 << i) != 0 {
                    *w |= 1 << p;
                }
            }
        }
        let out = nl.eval_parallel(&ins).unwrap();
        for p in 0..8u64 {
            let scalar = nl
                .eval(&[(p & 1) != 0, (p & 2) != 0, (p & 4) != 0])
                .unwrap();
            assert_eq!((out[0] >> p) & 1 == 1, scalar[0], "pattern {p}");
        }
    }

    #[test]
    fn input_count_mismatch() {
        let nl = xor_tree();
        let err = nl.eval(&[true]).unwrap_err();
        assert!(matches!(
            err,
            NetlistError::InputCountMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn cyclic_netlist_detected() {
        // Build a 2-gate loop by hand: g0 = NAND(g1, g1); g1 = NAND(g0, g0)
        let gates = vec![
            Gate::new(GateKind::Nand, vec![NetId(1), NetId(1)]),
            Gate::new(GateKind::Nand, vec![NetId(0), NetId(0)]),
        ];
        let nl = Netlist::from_parts("loop", gates, vec![], vec![], vec![]).unwrap();
        assert!(!nl.is_acyclic());
        assert!(matches!(
            nl.topological_order().unwrap_err(),
            NetlistError::CombinationalCycle { .. }
        ));
        assert!(nl.eval(&[]).is_err());
    }

    #[test]
    fn fanin_cone_and_fanouts() {
        let nl = xor_tree();
        let y = nl.outputs()[0].1;
        let cone = nl.fanin_cone(y);
        assert_eq!(cone.len(), nl.len()); // everything feeds y
        let fo = nl.fanouts();
        let a = nl.inputs()[0];
        assert_eq!(fo[a.index()].len(), 1);
    }

    #[test]
    fn disjoint_union_two_instances() {
        let a = crate::generators::ripple_carry_adder(4).unwrap();
        let both = Netlist::disjoint_union("dual", &[&a, &a]).unwrap();
        assert_eq!(both.inputs().len(), 16);
        assert_eq!(both.outputs().len(), 10);
        assert_eq!(both.len(), 2 * a.len());
        assert!(both.find("u0_a[0]").is_some());
        assert!(both.find("u1_a[0]").is_some());
        // instance 0 adds 3+2, instance 1 adds 7+8
        let mut ins = crate::words::to_bits(3, 4);
        ins.extend(crate::words::to_bits(2, 4));
        ins.extend(crate::words::to_bits(7, 4));
        ins.extend(crate::words::to_bits(8, 4));
        let out = both.eval(&ins).unwrap();
        assert_eq!(crate::words::from_bits(&out[..4]), 5);
        assert_eq!(crate::words::from_bits(&out[5..9]), 15);
    }

    #[test]
    fn duplicate_names_rejected() {
        let gates = vec![
            Gate::new(GateKind::Input, vec![]),
            Gate::new(GateKind::Input, vec![]),
        ];
        let err = Netlist::from_parts(
            "dup",
            gates,
            vec![NetId(0), NetId(1)],
            vec![],
            vec![Some("x".into()), Some("x".into())],
        )
        .unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName(_)));
    }

    #[test]
    fn content_hash_tracks_observable_changes() {
        let nl = xor_tree();
        let same = xor_tree();
        assert_eq!(nl.content_hash(), same.content_hash());

        // Renaming an output changes the hash.
        let mut b = NetlistBuilder::new("xt");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x = b.gate(GateKind::Xor, &[a, c]);
        let y = b.gate(GateKind::Xor, &[x, d]);
        b.output("z", y);
        let renamed = b.finish().unwrap();
        assert_ne!(nl.content_hash(), renamed.content_hash());

        // Swapping a gate kind changes the hash.
        let mut b = NetlistBuilder::new("xt");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x = b.gate(GateKind::And, &[a, c]);
        let y = b.gate(GateKind::Xor, &[x, d]);
        b.output("y", y);
        let anded = b.finish().unwrap();
        assert_ne!(nl.content_hash(), anded.content_hash());
    }

    #[test]
    fn bad_fanin_reference_rejected() {
        let gates = vec![Gate::new(GateKind::Not, vec![NetId(5)])];
        assert!(matches!(
            Netlist::from_parts("bad", gates, vec![], vec![], vec![]),
            Err(NetlistError::UnknownNet(NetId(5)))
        ));
    }
}
