//! Helpers for packing integer operands into per-bit boolean input vectors.
//!
//! Circuit generators declare buses least-significant-bit first; these
//! helpers convert between `u128`/bit-slices and the flat `&[bool]` input
//! layout that [`crate::Netlist::eval`] expects.

/// Expands the low `width` bits of `value` into booleans, LSB first.
///
/// ```
/// let bits = slm_netlist::words::to_bits(0b1011, 4);
/// assert_eq!(bits, vec![true, true, false, true]);
/// ```
pub fn to_bits(value: u128, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Packs booleans (LSB first) back into an integer.
///
/// Bits beyond 128 are ignored.
///
/// ```
/// let v = slm_netlist::words::from_bits(&[true, true, false, true]);
/// assert_eq!(v, 0b1011);
/// ```
pub fn from_bits(bits: &[bool]) -> u128 {
    bits.iter()
        .take(128)
        .enumerate()
        .fold(0u128, |acc, (i, &b)| acc | (u128::from(b) << i))
}

/// Expands big integers represented as little-endian 64-bit limbs into
/// booleans, LSB first, `width` bits total.
pub fn limbs_to_bits(limbs: &[u64], width: usize) -> Vec<bool> {
    (0..width)
        .map(|i| {
            let limb = i / 64;
            let bit = i % 64;
            limbs.get(limb).is_some_and(|&l| (l >> bit) & 1 == 1)
        })
        .collect()
}

/// Packs booleans (LSB first) into little-endian 64-bit limbs.
pub fn bits_to_limbs(bits: &[bool]) -> Vec<u64> {
    let mut limbs = vec![0u64; bits.len().div_ceil(64)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            limbs[i / 64] |= 1 << (i % 64);
        }
    }
    limbs
}

/// Counts set bits across a boolean slice (Hamming weight).
pub fn hamming_weight(bits: &[bool]) -> u32 {
    bits.iter().map(|&b| u32::from(b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u128() {
        for v in [0u128, 1, 0xdead_beef, u128::MAX >> 1] {
            assert_eq!(from_bits(&to_bits(v, 128)), v);
        }
    }

    #[test]
    fn roundtrip_limbs() {
        let limbs = vec![0xdead_beef_0bad_f00d, 0x0123_4567_89ab_cdef, 0xffff];
        let bits = limbs_to_bits(&limbs, 192);
        assert_eq!(bits.len(), 192);
        assert_eq!(bits_to_limbs(&bits), limbs);
    }

    #[test]
    fn limbs_width_truncates_and_pads() {
        let bits = limbs_to_bits(&[u64::MAX], 66);
        assert_eq!(bits.len(), 66);
        assert!(bits[63]);
        assert!(!bits[64]); // missing limb reads as zero
    }

    #[test]
    fn hamming() {
        assert_eq!(hamming_weight(&to_bits(0xff, 16)), 8);
        assert_eq!(hamming_weight(&[]), 0);
    }
}
