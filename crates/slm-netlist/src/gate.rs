//! Gate primitives and net identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a net in a [`crate::Netlist`].
///
/// Every gate drives exactly one net, so a `NetId` doubles as a gate
/// identifier: `NetId(i)` names both gate `i` and the net it drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// Returns the underlying index, usable to address per-net side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function computed by a gate.
///
/// The set mirrors the ISCAS-85 `.bench` primitive set plus explicit
/// constants. All multi-input kinds accept two or more fanins; `Not` and
/// `Buf` accept exactly one; `Input` and constants accept none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// A primary input; has no fanin.
    Input,
    /// Logical AND of all fanins.
    And,
    /// Complement of the AND of all fanins.
    Nand,
    /// Logical OR of all fanins.
    Or,
    /// Complement of the OR of all fanins.
    Nor,
    /// Parity (XOR) of all fanins.
    Xor,
    /// Complement of the parity of all fanins.
    Xnor,
    /// Inverter; exactly one fanin.
    Not,
    /// Buffer; exactly one fanin.
    Buf,
    /// Constant logic 0; no fanin.
    Const0,
    /// Constant logic 1; no fanin.
    Const1,
}

impl GateKind {
    /// Evaluates the gate function over boolean fanin values.
    ///
    /// Constants and inputs ignore `fanin`; `Input` evaluates to `false`
    /// here because its value is supplied externally during simulation.
    pub fn eval(self, fanin: &[bool]) -> bool {
        match self {
            GateKind::Input => false,
            GateKind::And => fanin.iter().all(|&v| v),
            GateKind::Nand => !fanin.iter().all(|&v| v),
            GateKind::Or => fanin.iter().any(|&v| v),
            GateKind::Nor => !fanin.iter().any(|&v| v),
            GateKind::Xor => fanin.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Xnor => !fanin.iter().fold(false, |acc, &v| acc ^ v),
            GateKind::Not => !fanin[0],
            GateKind::Buf => fanin[0],
            GateKind::Const0 => false,
            GateKind::Const1 => true,
        }
    }

    /// Evaluates the gate function over 64 patterns at once, one per bit.
    pub fn eval_word(self, fanin: &[u64]) -> u64 {
        match self {
            GateKind::Input => 0,
            GateKind::And => fanin.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Nand => !fanin.iter().fold(u64::MAX, |acc, &v| acc & v),
            GateKind::Or => fanin.iter().fold(0, |acc, &v| acc | v),
            GateKind::Nor => !fanin.iter().fold(0, |acc, &v| acc | v),
            GateKind::Xor => fanin.iter().fold(0, |acc, &v| acc ^ v),
            GateKind::Xnor => !fanin.iter().fold(0, |acc, &v| acc ^ v),
            GateKind::Not => !fanin[0],
            GateKind::Buf => fanin[0],
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
        }
    }

    /// Returns the valid fanin arity range `(min, max)` for this kind.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Not | GateKind::Buf => (1, 1),
            _ => (2, usize::MAX),
        }
    }

    /// The `.bench` keyword for this kind, if it is expressible there.
    ///
    /// `Input` is written via an `INPUT(...)` declaration rather than a
    /// right-hand-side function and therefore returns `None`.
    pub fn bench_name(self) -> Option<&'static str> {
        match self {
            GateKind::Input => None,
            GateKind::And => Some("AND"),
            GateKind::Nand => Some("NAND"),
            GateKind::Or => Some("OR"),
            GateKind::Nor => Some("NOR"),
            GateKind::Xor => Some("XOR"),
            GateKind::Xnor => Some("XNOR"),
            GateKind::Not => Some("NOT"),
            GateKind::Buf => Some("BUFF"),
            GateKind::Const0 => Some("CONST0"),
            GateKind::Const1 => Some("CONST1"),
        }
    }

    /// Whether the gate output is inverting with respect to its "natural"
    /// non-inverting counterpart (NAND/NOR/XNOR/NOT).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// All gate kinds, useful for exhaustive tests.
    pub const ALL: [GateKind; 11] = [
        GateKind::Input,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Const0,
        GateKind::Const1,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            other => other.bench_name().unwrap_or("?"),
        };
        f.write_str(s)
    }
}

/// A single gate instance: a function applied to fanin nets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// The logic function of this gate.
    pub kind: GateKind,
    /// Driving nets, in positional order.
    pub fanin: Vec<NetId>,
}

impl Gate {
    /// Creates a gate, without arity validation (the builder validates).
    pub fn new(kind: GateKind, fanin: Vec<NetId>) -> Self {
        Gate { kind, fanin }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_two_input_truth_tables() {
        let cases: [(GateKind, [bool; 4]); 6] = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval(&[a, b]), e, "{kind} on ({a},{b})");
            }
        }
    }

    #[test]
    fn eval_word_matches_scalar_eval() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for pat in 0u64..4 {
                let a = if pat & 1 != 0 { u64::MAX } else { 0 };
                let b = if pat & 2 != 0 { u64::MAX } else { 0 };
                let w = kind.eval_word(&[a, b]);
                let s = kind.eval(&[pat & 1 != 0, pat & 2 != 0]);
                assert_eq!(w == u64::MAX, s);
                assert!(w == 0 || w == u64::MAX);
            }
        }
    }

    #[test]
    fn multi_input_xor_is_parity() {
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true, true, true]));
        assert!(!GateKind::Xnor.eval(&[true, true, true]));
    }

    #[test]
    fn unary_and_constant_gates() {
        assert!(GateKind::Not.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Const0.eval(&[]));
        assert!(GateKind::Const1.eval(&[]));
        assert_eq!(GateKind::Const1.eval_word(&[]), u64::MAX);
    }

    #[test]
    fn arity_bounds() {
        assert_eq!(GateKind::Input.arity(), (0, 0));
        assert_eq!(GateKind::Not.arity(), (1, 1));
        assert_eq!(GateKind::And.arity().0, 2);
    }

    #[test]
    fn display_and_bench_names() {
        assert_eq!(GateKind::Nand.to_string(), "NAND");
        assert_eq!(GateKind::Buf.bench_name(), Some("BUFF"));
        assert_eq!(GateKind::Input.bench_name(), None);
        assert_eq!(NetId(7).to_string(), "n7");
    }
}
