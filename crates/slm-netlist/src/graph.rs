//! Graph analyses over the gate network: a compact fanout index,
//! strongly connected components, and buffer-collapse.
//!
//! These are the shared substrate of the `slm-checker` pass framework:
//! every structural pass walks the same graph, so the adjacency is
//! built once ([`FanoutIndex`]) instead of rescanning all gates per
//! query, SCCs give *complete* oscillation-loop membership (a
//! topological sort only yields one witness net), and
//! [`collapsed_drivers`] sees through interposed buffers — the cheap
//! obfuscation a tenant would use to break naive pattern matchers.

use crate::gate::{GateKind, NetId};
use crate::netlist::Netlist;

/// Fanout adjacency in compressed-sparse-row form.
///
/// Built in one O(gates + edges) sweep; `fanouts(id)` is then a slice
/// lookup. Replaces the per-query scans that made chain-following
/// passes quadratic on long delay lines.
#[derive(Debug, Clone)]
pub struct FanoutIndex {
    start: Vec<u32>,
    edges: Vec<NetId>,
}

impl FanoutIndex {
    /// Builds the index for `nl`.
    pub fn build(nl: &Netlist) -> Self {
        let n = nl.len();
        let mut start = vec![0u32; n + 1];
        for g in nl.gates() {
            for &f in &g.fanin {
                start[f.index() + 1] += 1;
            }
        }
        for i in 0..n {
            start[i + 1] += start[i];
        }
        let mut edges = vec![NetId(0); start[n] as usize];
        let mut cursor = start.clone();
        for (gi, g) in nl.gates().iter().enumerate() {
            for &f in &g.fanin {
                edges[cursor[f.index()] as usize] = NetId(gi as u32);
                cursor[f.index()] += 1;
            }
        }
        FanoutIndex { start, edges }
    }

    /// The gates reading net `id` (with multiplicity for repeated fanins).
    pub fn fanouts(&self, id: NetId) -> &[NetId] {
        let s = self.start[id.index()] as usize;
        let e = self.start[id.index() + 1] as usize;
        &self.edges[s..e]
    }

    /// Number of fanout edges of net `id`.
    pub fn degree(&self, id: NetId) -> usize {
        self.fanouts(id).len()
    }
}

/// All strongly connected components of the gate graph, in reverse
/// topological order of the condensation (Tarjan's invariant).
///
/// Singleton components without a self-loop are included; use
/// [`combinational_loops`] for just the oscillation-capable ones.
pub fn strongly_connected_components(nl: &Netlist) -> Vec<Vec<NetId>> {
    // Iterative Tarjan over the fanin orientation (SCC sets are
    // invariant under edge reversal). Recursion would overflow on the
    // 50k-stage chains the checker benches run.
    let n = nl.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<NetId>> = Vec::new();
    // Explicit DFS frames: (node, next fanin position to explore).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[v as usize] = next_index;
                lowlink[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            let fanin = &nl.gate(NetId(v)).fanin;
            if let Some(&w) = fanin.get(*pos) {
                *pos += 1;
                let w = w.0;
                if index[w as usize] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                // v is fully explored.
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack holds the component");
                        on_stack[w as usize] = false;
                        comp.push(NetId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// The combinational feedback loops of `nl`: every SCC that can carry a
/// signal back to itself — components of two or more gates, plus
/// single gates that list themselves as a fanin.
///
/// Each returned component is sorted by net id; components are ordered
/// by their smallest member. An acyclic netlist returns an empty list.
pub fn combinational_loops(nl: &Netlist) -> Vec<Vec<NetId>> {
    let mut loops: Vec<Vec<NetId>> = strongly_connected_components(nl)
        .into_iter()
        .filter(|comp| {
            comp.len() > 1 || {
                let id = comp[0];
                nl.gate(id).fanin.contains(&id)
            }
        })
        .collect();
    loops.sort_by_key(|comp| comp[0]);
    loops
}

/// Maps every net to its nearest non-buffer driver.
///
/// Following a `Buf` gate's single fanin repeatedly, each net resolves
/// to the first driver that is *not* a buffer; non-buffer nets resolve
/// to themselves. A (degenerate) all-buffer cycle resolves to a member
/// of the cycle. This is the canonical view the signature matcher scans
/// so interposed buffers cannot break a motif.
pub fn collapsed_drivers(nl: &Netlist) -> Vec<NetId> {
    let n = nl.len();
    let mut root: Vec<Option<NetId>> = vec![None; n];
    for start in 0..n {
        if root[start].is_some() {
            continue;
        }
        // Walk the buffer chain, memoizing the whole path.
        let mut path = Vec::new();
        let mut cur = NetId(start as u32);
        let resolved = loop {
            if let Some(r) = root[cur.index()] {
                break r;
            }
            let g = nl.gate(cur);
            if g.kind != GateKind::Buf {
                break cur;
            }
            if path.contains(&cur) {
                // pure-buffer cycle: anchor it at the re-visited net
                break cur;
            }
            path.push(cur);
            cur = g.fanin[0];
        };
        for p in path {
            root[p.index()] = Some(resolved);
        }
        root[start].get_or_insert(resolved);
    }
    root.into_iter()
        .map(|r| r.expect("every net resolved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::gate::Gate;
    use crate::generators::{ring_oscillator, ripple_carry_adder};

    #[test]
    fn fanout_index_matches_fanouts() {
        let nl = ripple_carry_adder(8).unwrap();
        let idx = FanoutIndex::build(&nl);
        let slow = nl.fanouts();
        for (i, expected) in slow.iter().enumerate() {
            let id = NetId(i as u32);
            let mut a: Vec<NetId> = idx.fanouts(id).to_vec();
            let mut b = expected.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "net {id}");
            assert_eq!(idx.degree(id), b.len());
        }
    }

    #[test]
    fn acyclic_netlist_has_no_loops() {
        let nl = ripple_carry_adder(16).unwrap();
        assert!(combinational_loops(&nl).is_empty());
        // every gate lands in its own singleton SCC
        assert_eq!(strongly_connected_components(&nl).len(), nl.len());
    }

    #[test]
    fn ring_oscillator_loop_membership_is_complete() {
        let ro = ring_oscillator(6).unwrap();
        let loops = combinational_loops(&ro);
        assert_eq!(loops.len(), 1);
        // The loop is the NAND plus all six inverters; the enable input
        // stays outside.
        assert_eq!(loops[0].len(), 7);
        assert!(
            !loops[0].contains(&NetId(0)),
            "enable input is not in the loop"
        );
    }

    #[test]
    fn two_independent_loops_are_separate_components() {
        let a = ring_oscillator(4).unwrap();
        let both = Netlist::disjoint_union("pair", &[&a, &a]).unwrap();
        let loops = combinational_loops(&both);
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].len(), 5);
        assert_eq!(loops[1].len(), 5);
    }

    use crate::netlist::Netlist;

    #[test]
    fn self_loop_gate_is_a_loop() {
        let gates = vec![
            Gate::new(GateKind::Input, vec![]),
            Gate::new(GateKind::Nand, vec![NetId(0), NetId(1)]),
        ];
        let nl = Netlist::from_parts("latch", gates, vec![NetId(0)], vec![], vec![]).unwrap();
        let loops = combinational_loops(&nl);
        assert_eq!(loops, vec![vec![NetId(1)]]);
    }

    #[test]
    fn collapse_sees_through_buffer_runs() {
        let mut b = NetlistBuilder::new("bufs");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and2(x, y);
        let mut t = g;
        for _ in 0..5 {
            t = b.buf(t);
        }
        let h = b.not(t);
        b.output("q", h);
        let nl = b.finish().unwrap();
        let roots = collapsed_drivers(&nl);
        assert_eq!(roots[t.index()], g, "buffer run resolves to the AND");
        assert_eq!(roots[g.index()], g);
        assert_eq!(roots[h.index()], h);
        // the NOT's effective fanin is the AND
        assert_eq!(roots[nl.gate(h).fanin[0].index()], g);
    }

    #[test]
    fn pure_buffer_cycle_terminates() {
        let gates = vec![
            Gate::new(GateKind::Buf, vec![NetId(1)]),
            Gate::new(GateKind::Buf, vec![NetId(0)]),
        ];
        let nl = Netlist::from_parts("bufloop", gates, vec![], vec![], vec![]).unwrap();
        let roots = collapsed_drivers(&nl);
        // Both nets resolve to a member of the cycle.
        assert!(roots.iter().all(|r| r.index() < 2));
        assert_eq!(combinational_loops(&nl).len(), 1);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 60k-stage buffer chain: the iterative Tarjan and the memoized
        // collapse must both handle it without recursion.
        let mut b = NetlistBuilder::new("deep");
        let mut n = b.input("d");
        for _ in 0..60_000 {
            n = b.buf(n);
        }
        b.output("q", n);
        let nl = b.finish().unwrap();
        assert!(combinational_loops(&nl).is_empty());
        let roots = collapsed_drivers(&nl);
        assert_eq!(roots[n.index()], nl.inputs()[0]);
    }
}
