//! Error type for netlist construction, simulation and I/O.

use crate::gate::{GateKind, NetId};
use std::error::Error;
use std::fmt;

/// Errors produced while building, simulating, or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate references a net that does not exist.
    UnknownNet(NetId),
    /// A named signal was referenced but never defined.
    UnknownName(String),
    /// A gate was created with an invalid number of fanins for its kind.
    BadArity {
        /// The offending gate kind.
        kind: GateKind,
        /// The number of fanins supplied.
        got: usize,
    },
    /// The gate graph contains a combinational cycle and cannot be
    /// topologically ordered or simulated.
    CombinationalCycle {
        /// One net known to participate in the cycle.
        witness: NetId,
    },
    /// The number of supplied input values does not match the number of
    /// primary inputs.
    InputCountMismatch {
        /// Primary inputs of the netlist.
        expected: usize,
        /// Values supplied by the caller.
        got: usize,
    },
    /// A duplicate signal name was declared.
    DuplicateName(String),
    /// A `.bench` file could not be parsed.
    BenchSyntax {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An output declaration references an undefined signal.
    UndrivenOutput(String),
    /// A generator was asked for a degenerate size (for example a 0-bit
    /// adder).
    BadGeneratorParameter(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNet(id) => write!(f, "unknown net {id}"),
            NetlistError::UnknownName(name) => write!(f, "unknown signal name `{name}`"),
            NetlistError::BadArity { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} fanin(s)")
            }
            NetlistError::CombinationalCycle { witness } => {
                write!(f, "combinational cycle through {witness}")
            }
            NetlistError::InputCountMismatch { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetlistError::DuplicateName(name) => write!(f, "duplicate signal name `{name}`"),
            NetlistError::BenchSyntax { line, message } => {
                write!(f, "bench syntax error on line {line}: {message}")
            }
            NetlistError::UndrivenOutput(name) => {
                write!(f, "output `{name}` is never driven")
            }
            NetlistError::BadGeneratorParameter(msg) => {
                write!(f, "bad generator parameter: {msg}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::BadArity {
            kind: GateKind::Not,
            got: 3,
        };
        assert!(e.to_string().contains("NOT"));
        assert!(e.to_string().contains('3'));
        let e = NetlistError::BenchSyntax {
            line: 12,
            message: "missing `)`".into(),
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: Error>(_e: E) {}
        takes_err(NetlistError::UnknownNet(NetId(0)));
    }
}
