//! Exporters: the JSON payload behind `--metrics <path>` and the
//! human-readable table.
//!
//! The JSON is hand-rolled (this crate is dependency-free by design):
//! keys come out of `BTreeMap`s already sorted, floats print via
//! Rust's shortest-roundtrip `Display` (never scientific notation, so
//! always a valid JSON number), and non-finite values serialize as
//! `null`.

use crate::frame::MetricsFrame;
use std::fmt::Write as _;

/// A labeled, exportable metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// What produced the snapshot (campaign name, tool name, …).
    pub label: String,
    /// The snapshot itself.
    pub frame: MetricsFrame,
}

impl MetricsReport {
    /// Wraps a frame under a label.
    pub fn new(label: impl Into<String>, frame: MetricsFrame) -> Self {
        MetricsReport {
            label: label.into(),
            frame,
        }
    }

    /// Pretty-printed JSON: sorted keys, two-space indent, stable
    /// across runs for deterministic frames (golden-file friendly).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"tool\": \"slm-obs\",");
        let _ = writeln!(out, "  \"label\": {},", json_str(&self.label));

        json_map(&mut out, "counters", &self.frame.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str(",\n");
        json_map(&mut out, "gauges", &self.frame.gauges, |out, g| {
            let _ = write!(
                out,
                "{{ \"last\": {}, \"min\": {}, \"max\": {}, \"count\": {} }}",
                json_f64(g.last),
                json_f64(g.min),
                json_f64(g.max),
                g.count
            );
        });
        out.push_str(",\n");
        json_map(&mut out, "histograms", &self.frame.histograms, |out, h| {
            let _ = write!(
                out,
                "{{ \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {} }}",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.mean())
            );
        });
        out.push_str(",\n");
        json_map(&mut out, "spans", &self.frame.spans, |out, s| {
            let _ = write!(
                out,
                "{{ \"count\": {}, \"total_ns\": {}, \"max_ns\": {} }}",
                s.count, s.total_ns, s.max_ns
            );
        });
        out.push_str("\n}\n");
        out
    }

    /// An aligned plain-text table, one section per metric kind.
    pub fn to_table(&self) -> String {
        let f = &self.frame;
        let mut out = String::new();
        let _ = writeln!(out, "# metrics: {}", self.label);
        if f.is_empty() {
            let _ = writeln!(out, "(nothing recorded)");
            return out;
        }
        if !f.counters.is_empty() {
            let _ = writeln!(out, "counters");
            for (name, v) in &f.counters {
                let _ = writeln!(out, "  {name:<36} {v:>12}");
            }
        }
        if !f.gauges.is_empty() {
            let _ = writeln!(
                out,
                "gauges{:<32} {:>12} {:>12} {:>12}",
                "", "last", "min", "max"
            );
            for (name, g) in &f.gauges {
                let _ = writeln!(
                    out,
                    "  {name:<36} {:>12.6} {:>12.6} {:>12.6}",
                    g.last, g.min, g.max
                );
            }
        }
        if !f.histograms.is_empty() {
            let _ = writeln!(
                out,
                "histograms{:<28} {:>12} {:>12} {:>12} {:>12}",
                "", "count", "mean", "min", "max"
            );
            for (name, h) in &f.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<36} {:>12} {:>12.6} {:>12.6} {:>12.6}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
        if !f.spans.is_empty() {
            let _ = writeln!(
                out,
                "spans{:<33} {:>12} {:>12} {:>12}",
                "", "count", "total_ms", "max_ms"
            );
            for (name, s) in &f.spans {
                let _ = writeln!(
                    out,
                    "  {name:<36} {:>12} {:>12.3} {:>12.3}",
                    s.count,
                    s.total_ns as f64 / 1e6,
                    s.max_ns as f64 / 1e6
                );
            }
        }
        out
    }
}

/// Writes one `"section": { "name": <value>, … }` JSON object (no
/// trailing newline or comma).
fn json_map<V>(
    out: &mut String,
    section: &str,
    map: &std::collections::BTreeMap<String, V>,
    mut value: impl FnMut(&mut String, &V),
) {
    let _ = write!(out, "  \"{section}\": {{");
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: ", json_str(name));
        value(out, v);
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

/// A JSON string literal for `s`.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number for `v` (`null` when non-finite). Rust's f64
/// `Display` is shortest-roundtrip decimal notation, which is always a
/// valid JSON number.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        let mut f = MetricsFrame::default();
        f.record_count("campaign.requested", 12);
        f.record_gauge("pdn.v_min", 0.953125);
        f.record_observation("campaign.backoff_s", 0.005);
        f.record_observation("campaign.backoff_s", 0.01);
        f.record_span("fabric.host_encrypt", 1_500_000);
        MetricsReport::new("unit \"test\"", f)
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"label\": \"unit \\\"test\\\"\""));
        assert!(a.contains("\"campaign.requested\": 12"));
        assert!(a.contains("\"mean\": 0.0075"));
        assert!(a.contains("\"total_ns\": 1500000"));
    }

    #[test]
    fn json_handles_empty_frame_and_non_finite() {
        let r = MetricsReport::new("empty", MetricsFrame::default());
        let j = r.to_json();
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"spans\": {}"));
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn table_lists_every_section() {
        let t = sample().to_table();
        assert!(t.starts_with("# metrics: unit"));
        for needle in [
            "counters",
            "gauges",
            "histograms",
            "spans",
            "campaign.requested",
            "pdn.v_min",
        ] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
        let empty = MetricsReport::new("x", MetricsFrame::default()).to_table();
        assert!(empty.contains("(nothing recorded)"));
    }
}
