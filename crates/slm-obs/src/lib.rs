//! Dependency-free observability for the campaign stack: counters,
//! gauges, histograms and timed spans, recorded through a [`Recorder`]
//! trait that is **zero-cost when disabled** and **deterministic under
//! merge** when enabled.
//!
//! # Model
//!
//! Instrumented code holds an [`Obs`] handle (a cheap `Arc` clone; the
//! default is the [`NullRecorder`], one virtual call per event and
//! nothing kept). Enabling metrics means passing [`Obs::memory`] (wall
//! clock) or [`Obs::manual`] (logical clock, reproducible span
//! durations) instead; nothing else in the pipeline changes.
//!
//! # Determinism under merge
//!
//! Parallel campaigns follow the `slm-par` discipline: work is split
//! into shards whose identity depends only on the plan, and per-shard
//! partials are folded **in shard index order**. Metrics ride the same
//! rails — a worker [`Obs::fork`]s a private recorder, the shard's
//! [`MetricsFrame`] snapshot travels with the shard result, and the
//! campaign thread [`Obs::absorb`]s the frames in shard order. Every
//! merged quantity is then a pure function of the plan: counters and
//! counts are commutative anyway, f64 sums and gauge `last` values are
//! made order-stable by the fixed fold, and only wall-clock span
//! durations vary run to run ([`MetricsFrame::deterministic`] strips
//! exactly those for equivalence tests).
//!
//! # Example
//!
//! ```
//! use slm_obs::{MetricsReport, Obs};
//!
//! let obs = Obs::memory();
//! obs.incr("campaign.requested");
//! obs.gauge("pdn.v_min", 0.947);
//! {
//!     let _span = obs.span("fabric.host_encrypt");
//!     // ... timed work ...
//! }
//! let report = MetricsReport::new("demo", obs.snapshot());
//! assert_eq!(report.frame.counter("campaign.requested"), 1);
//! println!("{}", report.to_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frame;
mod recorder;
mod report;

pub use frame::{GaugeAgg, HistAgg, MetricsFrame, SpanAgg};
pub use recorder::{MemoryRecorder, NullRecorder, Obs, Recorder, SpanGuard};
pub use report::MetricsReport;
