//! The mergeable metrics state: everything a recorder accumulates,
//! snapshotted as plain data so shards can hand their telemetry back
//! to the campaign thread for an order-fixed merge.

use std::collections::BTreeMap;

/// Aggregate of a gauge: a sampled value whose history is summarized
/// by its extrema and most recent sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeAgg {
    /// Most recently recorded value (under [`MetricsFrame::absorb`],
    /// the last value of the last non-empty operand, so a shard-order
    /// fold keeps the final shard's reading).
    pub last: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Number of recordings.
    pub count: u64,
}

impl GaugeAgg {
    fn record(&mut self, value: f64) {
        self.last = value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.count = self.count.saturating_add(1);
    }

    fn absorb(&mut self, other: &GaugeAgg) {
        if other.count > 0 {
            self.last = other.last;
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
    }
}

impl Default for GaugeAgg {
    fn default() -> Self {
        GaugeAgg {
            last: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }
}

/// Aggregate of a histogram: streaming moments of an observed
/// distribution. Sums fold left-to-right under
/// [`MetricsFrame::absorb`], so a shard-order merge is bit-exact
/// (f64 addition is not associative — the order must be fixed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistAgg {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistAgg {
    fn record(&mut self, value: f64) {
        self.count = self.count.saturating_add(1);
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn absorb(&mut self, other: &HistAgg) {
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistAgg {
    fn default() -> Self {
        HistAgg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Aggregate of a span: how often a region ran and for how long.
///
/// Durations are whatever the recorder's clock measures — wall
/// nanoseconds for [`Obs::memory`](crate::Obs::memory), logical ticks
/// for [`Obs::manual`](crate::Obs::manual) — so only the counts are
/// comparable across runs; [`MetricsFrame::deterministic`] strips the
/// durations for equivalence checks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanAgg {
    /// Number of completed spans.
    pub count: u64,
    /// Total duration, clock units.
    pub total_ns: u64,
    /// Longest single span, clock units.
    pub max_ns: u64,
}

impl SpanAgg {
    fn record(&mut self, ns: u64) {
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn absorb(&mut self, other: &SpanAgg) {
        self.count = self.count.saturating_add(other.count);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// A snapshot of everything a recorder has accumulated.
///
/// Frames are plain mergeable data, the observability analogue of the
/// campaign stack's accumulator partials: each shard records into its
/// own frame, and the campaign thread folds the frames **in shard
/// order** with [`MetricsFrame::absorb`]. Counters and span counts are
/// commutative; f64 sums and gauge `last` values are not, which is why
/// the merge order is pinned to the plan, never to the worker count —
/// the same discipline `slm-par` imposes on trace accumulators.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsFrame {
    /// Monotonic event counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Sampled values, by name.
    pub gauges: BTreeMap<String, GaugeAgg>,
    /// Observed distributions, by name.
    pub histograms: BTreeMap<String, HistAgg>,
    /// Timed regions, by name.
    pub spans: BTreeMap<String, SpanAgg>,
}

impl MetricsFrame {
    /// Adds `delta` to a counter (saturating).
    pub fn record_count(&mut self, name: &str, delta: u64) {
        let c = self.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Records a gauge sample.
    pub fn record_gauge(&mut self, name: &str, value: f64) {
        self.gauges
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Records a histogram observation.
    pub fn record_observation(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Records a completed span of `ns` clock units.
    pub fn record_span(&mut self, name: &str, ns: u64) {
        self.spans.entry(name.to_owned()).or_default().record(ns);
    }

    /// The value of a counter (0 when never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The aggregate of a gauge, if it was ever sampled.
    pub fn gauge(&self, name: &str) -> Option<&GaugeAgg> {
        self.gauges.get(name)
    }

    /// The aggregate of a histogram, if it was ever observed.
    pub fn histogram(&self, name: &str) -> Option<&HistAgg> {
        self.histograms.get(name)
    }

    /// The aggregate of a span, if it ever completed.
    pub fn span(&self, name: &str) -> Option<&SpanAgg> {
        self.spans.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Folds another frame into this one. Applying the shards' frames
    /// in shard index order makes the merged frame a pure function of
    /// the plan: counters/counts saturate-add, extrema fold by min/max,
    /// f64 sums fold left-to-right, and gauge `last` takes the last
    /// non-empty operand's reading.
    pub fn absorb(&mut self, other: &MetricsFrame) {
        for (name, &delta) in &other.counters {
            let c = self.counters.entry(name.clone()).or_insert(0);
            *c = c.saturating_add(delta);
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name.clone()).or_default().absorb(g);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().absorb(h);
        }
        for (name, s) in &other.spans {
            self.spans.entry(name.clone()).or_default().absorb(s);
        }
    }

    /// The merged frame of a set of shard frames, folded in iteration
    /// order (callers pass shards in index order).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a MetricsFrame>) -> MetricsFrame {
        let mut total = MetricsFrame::default();
        for part in parts {
            total.absorb(part);
        }
        total
    }

    /// A copy with every wall-clock-dependent field zeroed: span
    /// durations go to 0 while span *counts* survive. Everything else
    /// in a frame is already a pure function of the campaign plan, so
    /// two runs of the same plan — at any worker count — must produce
    /// equal `deterministic()` views.
    pub fn deterministic(&self) -> MetricsFrame {
        let mut out = self.clone();
        for s in out.spans.values_mut() {
            s.total_ns = 0;
            s.max_ns = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate() {
        let mut f = MetricsFrame::default();
        f.record_count("x", u64::MAX - 1);
        f.record_count("x", 5);
        assert_eq!(f.counter("x"), u64::MAX);
        let mut g = MetricsFrame::default();
        g.record_count("x", 7);
        f.absorb(&g);
        assert_eq!(f.counter("x"), u64::MAX);
    }

    #[test]
    fn gauge_tracks_extrema_and_last() {
        let mut f = MetricsFrame::default();
        f.record_gauge("v", 1.0);
        f.record_gauge("v", -2.0);
        f.record_gauge("v", 0.5);
        let g = f.gauges["v"];
        assert_eq!(g.min, -2.0);
        assert_eq!(g.max, 1.0);
        assert_eq!(g.last, 0.5);
        assert_eq!(g.count, 3);
    }

    #[test]
    fn absorb_in_shard_order_is_deterministic() {
        let shard = |seed: f64| {
            let mut f = MetricsFrame::default();
            f.record_count("traces", 3);
            f.record_observation("backoff", seed);
            f.record_observation("backoff", seed * 0.1);
            f.record_gauge("v_min", -seed);
            f
        };
        let shards: Vec<MetricsFrame> = (1..=5).map(|i| shard(i as f64)).collect();
        let a = MetricsFrame::merged(&shards);
        let b = MetricsFrame::merged(&shards);
        assert_eq!(a, b);
        assert_eq!(a.counter("traces"), 15);
        assert_eq!(a.histograms["backoff"].count, 10);
        assert_eq!(a.gauges["v_min"].last, -5.0, "last shard's reading wins");
        assert_eq!(a.gauges["v_min"].min, -5.0);
    }

    #[test]
    fn deterministic_view_strips_span_durations_only() {
        let mut f = MetricsFrame::default();
        f.record_span("work", 120);
        f.record_count("n", 2);
        let d = f.deterministic();
        assert_eq!(d.spans["work"].count, 1);
        assert_eq!(d.spans["work"].total_ns, 0);
        assert_eq!(d.counter("n"), 2);
    }

    #[test]
    fn empty_frame_reports_empty() {
        assert!(MetricsFrame::default().is_empty());
        let mut f = MetricsFrame::default();
        f.record_count("a", 0);
        assert!(!f.is_empty());
    }

    #[test]
    fn aggregate_accessors_mirror_the_maps() {
        let mut f = MetricsFrame::default();
        assert!(f.gauge("v").is_none());
        assert!(f.histogram("h").is_none());
        assert!(f.span("s").is_none());
        f.record_gauge("v", 2.5);
        f.record_observation("h", 4.0);
        f.record_span("s", 11);
        assert_eq!(f.gauge("v").unwrap().last, 2.5);
        assert_eq!(f.histogram("h").unwrap().count, 1);
        assert_eq!(f.span("s").unwrap().total_ns, 11);
    }

    #[test]
    fn hist_mean() {
        let mut f = MetricsFrame::default();
        assert_eq!(HistAgg::default().mean(), 0.0);
        f.record_observation("h", 1.0);
        f.record_observation("h", 3.0);
        assert_eq!(f.histograms["h"].mean(), 2.0);
    }
}
