//! The recorder trait, its null and in-memory implementations, and the
//! cheap cloneable handle ([`Obs`]) the pipeline threads around.

use crate::frame::MetricsFrame;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of independently locked frame shards in a
/// [`MemoryRecorder`]. Metric names hash to a fixed shard, so two hot
/// paths recording different metrics rarely contend on one lock.
const SINK_SHARDS: usize = 8;

/// A metrics sink.
///
/// All methods take `&self`: recorders use interior mutability so one
/// handle can be shared across worker threads (the `run_many` scan
/// path) or cloned into retry loops. The default implementation of
/// every recording method is a no-op, which is what makes
/// [`NullRecorder`] trivial and instrumentation zero-cost when
/// disabled: the only price on the null path is one virtual call.
pub trait Recorder: std::fmt::Debug + Send + Sync {
    /// Whether this recorder keeps anything. Instrumented code may
    /// skip expensive metric *computation* (not just recording) when
    /// this is false.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to a counter.
    fn add(&self, _name: &'static str, _delta: u64) {}

    /// Records a gauge sample.
    fn gauge(&self, _name: &'static str, _value: f64) {}

    /// Records a histogram observation.
    fn observe(&self, _name: &'static str, _value: f64) {}

    /// Reads the recorder's clock (nanoseconds for wall clocks,
    /// monotone ticks for the manual clock). Used by span guards.
    fn now_ns(&self) -> u64 {
        0
    }

    /// Records a completed span.
    fn span_ns(&self, _name: &'static str, _elapsed_ns: u64) {}

    /// Folds a finished shard's frame into this recorder. Callers fold
    /// shard frames in shard index order to keep the merged state
    /// deterministic (see [`MetricsFrame::absorb`]).
    fn absorb(&self, _frame: &MetricsFrame) {}

    /// Snapshots everything recorded so far.
    fn snapshot(&self) -> MetricsFrame {
        MetricsFrame::default()
    }

    /// A fresh sibling recorder of the same kind (and clock mode) for
    /// a worker to record into privately. Null forks to null, so a
    /// disabled campaign stays disabled in every shard.
    fn fork(&self) -> Arc<dyn Recorder>;
}

/// The disabled recorder: keeps nothing, costs one virtual call.
#[derive(Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn fork(&self) -> Arc<dyn Recorder> {
        null_arc()
    }
}

fn null_arc() -> Arc<dyn Recorder> {
    static NULL: OnceLock<Arc<NullRecorder>> = OnceLock::new();
    NULL.get_or_init(|| Arc::new(NullRecorder)).clone()
}

/// The recorder's time source.
#[derive(Debug)]
enum ClockSource {
    /// Real elapsed nanoseconds since the recorder was built.
    Wall(Instant),
    /// A logical clock: every read returns the next integer. Span
    /// durations become deterministic call counts, which is what lets
    /// a fixed-seed campaign pin its whole metrics report to a golden
    /// file.
    Manual(AtomicU64),
}

impl ClockSource {
    fn now_ns(&self) -> u64 {
        match self {
            ClockSource::Wall(start) => {
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            ClockSource::Manual(ticks) => ticks.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn fork(&self) -> ClockSource {
        match self {
            ClockSource::Wall(_) => ClockSource::Wall(Instant::now()),
            ClockSource::Manual(_) => ClockSource::Manual(AtomicU64::new(0)),
        }
    }
}

/// The enabled in-memory sink: a lock-striped [`MetricsFrame`].
///
/// Each metric name hashes (FNV-1a) to one of [`SINK_SHARDS`] frame
/// stripes with its own mutex, so concurrent recorders of *different*
/// metrics do not serialize on a single lock; a name always lands on
/// the same stripe, so no metric is ever split across stripes.
/// [`Recorder::absorb`]ed shard frames go to a dedicated merge slot
/// folded last, keeping the snapshot a deterministic function of what
/// was recorded and the fold order.
#[derive(Debug)]
pub struct MemoryRecorder {
    stripes: Vec<Mutex<MetricsFrame>>,
    absorbed: Mutex<MetricsFrame>,
    clock: ClockSource,
}

impl MemoryRecorder {
    /// An enabled recorder on the wall clock.
    pub fn wall() -> Self {
        Self::with_clock(ClockSource::Wall(Instant::now()))
    }

    /// An enabled recorder on the deterministic logical clock.
    pub fn manual() -> Self {
        Self::with_clock(ClockSource::Manual(AtomicU64::new(0)))
    }

    fn with_clock(clock: ClockSource) -> Self {
        MemoryRecorder {
            stripes: (0..SINK_SHARDS)
                .map(|_| Mutex::new(MetricsFrame::default()))
                .collect(),
            absorbed: Mutex::new(MetricsFrame::default()),
            clock,
        }
    }

    fn stripe(&self, name: &str) -> &Mutex<MetricsFrame> {
        // FNV-1a over the name bytes; any stable hash works, the only
        // requirement is that a name maps to exactly one stripe.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.stripes[(h % SINK_SHARDS as u64) as usize]
    }
}

impl Recorder for MemoryRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.stripe(name)
            .lock()
            .expect("metrics stripe poisoned")
            .record_count(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.stripe(name)
            .lock()
            .expect("metrics stripe poisoned")
            .record_gauge(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.stripe(name)
            .lock()
            .expect("metrics stripe poisoned")
            .record_observation(name, value);
    }

    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    fn span_ns(&self, name: &'static str, elapsed_ns: u64) {
        self.stripe(name)
            .lock()
            .expect("metrics stripe poisoned")
            .record_span(name, elapsed_ns);
    }

    fn absorb(&self, frame: &MetricsFrame) {
        self.absorbed
            .lock()
            .expect("metrics merge slot poisoned")
            .absorb(frame);
    }

    fn snapshot(&self) -> MetricsFrame {
        let mut out = MetricsFrame::default();
        for stripe in &self.stripes {
            out.absorb(&stripe.lock().expect("metrics stripe poisoned"));
        }
        out.absorb(&self.absorbed.lock().expect("metrics merge slot poisoned"));
        out
    }

    fn fork(&self) -> Arc<dyn Recorder> {
        Arc::new(MemoryRecorder::with_clock(self.clock.fork()))
    }
}

/// The handle instrumented code holds: a cheap-to-clone `Arc` around a
/// [`Recorder`]. `Default` is the null recorder, so every layer can
/// carry an `Obs` field without anyone opting in.
#[derive(Debug, Clone)]
pub struct Obs(Arc<dyn Recorder>);

impl Default for Obs {
    fn default() -> Self {
        Obs::null()
    }
}

impl Obs {
    /// The disabled handle (a shared static — no allocation).
    pub fn null() -> Obs {
        Obs(null_arc())
    }

    /// An enabled in-memory recorder on the wall clock.
    pub fn memory() -> Obs {
        Obs(Arc::new(MemoryRecorder::wall()))
    }

    /// An enabled in-memory recorder on the deterministic logical
    /// clock — span durations become call counts, reproducible across
    /// runs and machines.
    pub fn manual() -> Obs {
        Obs(Arc::new(MemoryRecorder::manual()))
    }

    /// Wraps a custom recorder.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Obs {
        Obs(recorder)
    }

    /// Whether recording is enabled (see [`Recorder::is_enabled`]).
    pub fn enabled(&self) -> bool {
        self.0.is_enabled()
    }

    /// Increments a counter by one.
    pub fn incr(&self, name: &'static str) {
        self.0.add(name, 1);
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        self.0.add(name, delta);
    }

    /// Records a gauge sample.
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.0.gauge(name, value);
    }

    /// Records a histogram observation.
    pub fn observe(&self, name: &'static str, value: f64) {
        self.0.observe(name, value);
    }

    /// Opens a timed span; the span is recorded when the guard drops.
    /// On a disabled handle the guard is inert and the clock is never
    /// read.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if self.enabled() {
            SpanGuard {
                obs: Some(self.clone()),
                name,
                start_ns: self.0.now_ns(),
            }
        } else {
            SpanGuard {
                obs: None,
                name,
                start_ns: 0,
            }
        }
    }

    /// Folds a finished shard's frame into this recorder (callers keep
    /// shard order — see [`MetricsFrame::absorb`]).
    pub fn absorb(&self, frame: &MetricsFrame) {
        self.0.absorb(frame);
    }

    /// Snapshots everything recorded so far.
    pub fn snapshot(&self) -> MetricsFrame {
        self.0.snapshot()
    }

    /// A fresh sibling recorder for a worker to record into privately;
    /// forking a disabled handle yields a disabled handle.
    pub fn fork(&self) -> Obs {
        Obs(self.0.fork())
    }
}

/// Guard returned by [`Obs::span`]; records the elapsed time between
/// construction and drop under the span's name.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Option<Obs>,
    name: &'static str,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(obs) = &self.obs {
            let elapsed = obs.0.now_ns().saturating_sub(self.start_ns);
            obs.0.span_ns(self.name, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_records_nothing_and_forks_null() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        obs.incr("a");
        obs.gauge("b", 1.0);
        obs.observe("c", 2.0);
        drop(obs.span("d"));
        assert!(obs.snapshot().is_empty());
        let fork = obs.fork();
        assert!(!fork.enabled());
        fork.incr("a");
        assert!(fork.snapshot().is_empty());
    }

    #[test]
    fn memory_records_everything() {
        let obs = Obs::memory();
        assert!(obs.enabled());
        obs.incr("req");
        obs.add("req", 2);
        obs.gauge("v", -0.5);
        obs.observe("w", 1.5);
        {
            let _s = obs.span("phase");
        }
        let f = obs.snapshot();
        assert_eq!(f.counter("req"), 3);
        assert_eq!(f.gauges["v"].last, -0.5);
        assert_eq!(f.histograms["w"].count, 1);
        assert_eq!(f.spans["phase"].count, 1);
    }

    #[test]
    fn manual_clock_makes_spans_reproducible() {
        let run = || {
            let obs = Obs::manual();
            for _ in 0..3 {
                let _outer = obs.span("outer");
                let _inner = obs.span("inner");
            }
            obs.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "logical clock must be run-invariant");
        assert!(a.spans["outer"].total_ns > 0, "ticks advance");
    }

    #[test]
    fn fork_and_absorb_mirror_shard_merge() {
        let parent = Obs::memory();
        let frames: Vec<MetricsFrame> = (0..4)
            .map(|i| {
                let shard = parent.fork();
                assert!(shard.enabled());
                shard.add("traces", 10 + i);
                shard.gauge("v_min", -(i as f64));
                shard.snapshot()
            })
            .collect();
        for f in &frames {
            parent.absorb(f);
        }
        let merged = parent.snapshot();
        assert_eq!(merged.counter("traces"), 46);
        assert_eq!(merged.gauges["v_min"].min, -3.0);
        assert_eq!(merged.gauges["v_min"].last, -3.0, "shard order fixes last");
    }

    #[test]
    fn concurrent_counts_from_many_threads_all_land() {
        let obs = Obs::memory();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let obs = obs.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        obs.incr("hits");
                    }
                });
            }
        });
        assert_eq!(obs.snapshot().counter("hits"), 8000);
    }

    #[test]
    fn default_obs_is_disabled() {
        assert!(!Obs::default().enabled());
    }
}
