//! Discrete-time second-order low-pass filter.

use serde::{Deserialize, Serialize};

/// An underdamped second-order system
/// `y'' + 2ζωₙ y' + ωₙ² y = ωₙ² u`,
/// integrated with semi-implicit Euler.
///
/// With ζ < 1 the step response overshoots — the source of the PDN's
/// characteristic droop-then-ring shape. Stability of the explicit
/// integration requires `ωₙ·dt ≪ 1`; with the default 5 MHz natural
/// frequency and 3.33 ns steps, `ωₙ·dt ≈ 0.1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecondOrderFilter {
    /// Natural (angular) frequency, rad/s.
    pub omega_n: f64,
    /// Damping ratio (0 < ζ < 1 for the underdamped regime).
    pub zeta: f64,
    y: f64,
    y_dot: f64,
}

impl SecondOrderFilter {
    /// Creates a filter at rest with the given natural frequency (Hz) and
    /// damping ratio.
    pub fn new(f_natural_hz: f64, zeta: f64) -> Self {
        SecondOrderFilter {
            omega_n: 2.0 * std::f64::consts::PI * f_natural_hz,
            zeta,
            y: 0.0,
            y_dot: 0.0,
        }
    }

    /// Advances the filter by `dt` seconds with input `u`; returns the
    /// new output.
    #[inline]
    pub fn step(&mut self, u: f64, dt: f64) -> f64 {
        let acc = self.omega_n * self.omega_n * (u - self.y)
            - 2.0 * self.zeta * self.omega_n * self.y_dot;
        self.y_dot += dt * acc;
        self.y += dt * self.y_dot;
        // Flush-to-zero: once settled, the state decays into denormal
        // territory where x86 FP ops run ~100× slower — a real-time trap
        // for a filter stepped hundreds of millions of times.
        if self.y_dot.abs() < 1e-18 {
            self.y_dot = 0.0;
        }
        if self.y.abs() < 1e-18 {
            self.y = 0.0;
        }
        self.y
    }

    /// Current output without advancing time.
    pub fn output(&self) -> f64 {
        self.y
    }

    /// Resets the state to rest.
    pub fn reset(&mut self) {
        self.y = 0.0;
        self.y_dot = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 3.33e-9;

    #[test]
    fn settles_to_step_input() {
        let mut f = SecondOrderFilter::new(5e6, 0.3);
        let mut y = 0.0;
        for _ in 0..300_000 {
            y = f.step(1.0, DT);
        }
        assert!((y - 1.0).abs() < 1e-3, "settled at {y}");
    }

    #[test]
    fn underdamped_overshoots() {
        let mut f = SecondOrderFilter::new(5e6, 0.3);
        let mut peak: f64 = 0.0;
        for _ in 0..10_000 {
            peak = peak.max(f.step(1.0, DT));
        }
        assert!(peak > 1.2, "peak = {peak}");
        // Analytic overshoot for ζ=0.3 is exp(-πζ/√(1-ζ²)) ≈ 0.37.
        assert!((peak - 1.37).abs() < 0.05, "peak = {peak}");
    }

    #[test]
    fn overdamped_does_not_overshoot() {
        let mut f = SecondOrderFilter::new(5e6, 1.5);
        let mut peak: f64 = 0.0;
        for _ in 0..300_000 {
            peak = peak.max(f.step(1.0, DT));
        }
        assert!(peak <= 1.0 + 1e-6, "peak = {peak}");
    }

    #[test]
    fn bounded_for_bounded_input() {
        let mut f = SecondOrderFilter::new(5e6, 0.2);
        let mut max_abs: f64 = 0.0;
        for i in 0..100_000 {
            let u = if i % 2 == 0 { 1.0 } else { -1.0 };
            max_abs = max_abs.max(f.step(u, DT).abs());
        }
        assert!(max_abs < 10.0, "unstable: {max_abs}");
    }

    #[test]
    fn reset_restores_rest() {
        let mut f = SecondOrderFilter::new(5e6, 0.3);
        f.step(1.0, DT);
        f.step(1.0, DT);
        f.reset();
        assert_eq!(f.output(), 0.0);
    }
}
