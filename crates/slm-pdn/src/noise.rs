//! Deterministic pseudo-randomness for the whole simulation stack.
//!
//! Every stochastic element of the reproduction — supply noise, register
//! jitter, leakage noise, plaintext generation — draws from this module
//! so that a single seed reproduces an entire experiment bit-for-bit.
//! The generator is xoshiro256++ (Blackman & Vigna), small and fast
//! enough for the hot sampling loops (hundreds of millions of draws per
//! figure).

use serde::{Deserialize, Serialize};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller pair.
    spare_normal: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a seed (expanded via splitmix64, per the
    /// xoshiro authors' recommendation).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent stream for a named subcomponent.
    ///
    /// Used to hand each sensor/noise source its own generator so the
    /// order in which components are stepped cannot perturb results.
    pub fn fork(&self, tag: u64) -> Rng64 {
        let mut sm = self.s[0] ^ self.s[2] ^ tag.wrapping_mul(0xa076_1d64_78bd_642f);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        // Lemire-style rejection-free approximation is fine here; modulo
        // bias is negligible for the small n this simulator uses.
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal draw (Box–Muller with cached spare).
    #[inline]
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * k);
                return u * k;
            }
        }
    }

    /// Normal draw with the given standard deviation.
    #[inline]
    pub fn normal_scaled(&mut self, sigma: f64) -> f64 {
        if sigma == 0.0 {
            0.0
        } else {
            self.normal() * sigma
        }
    }

    /// Fills `buf` with random bytes (for plaintext generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn forks_are_independent_streams() {
        let root = Rng64::new(1);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let xs: Vec<u64> = (0..8).map(|_| f1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| f2.next_u64()).collect();
        assert_ne!(xs, ys);
        // Same tag reproduces the same stream.
        let mut f1b = root.fork(1);
        assert_eq!(xs[0], f1b.next_u64());
    }

    #[test]
    fn uniform_range_and_mean() {
        let mut r = Rng64::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::new(4);
        let n = 200_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.normal();
            s1 += z;
            s2 += z * z;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn below_bounds() {
        let mut r = Rng64::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let k = r.below(10);
            assert!(k < 10);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn zero_sigma_normal_is_zero() {
        let mut r = Rng64::new(7);
        assert_eq!(r.normal_scaled(0.0), 0.0);
    }

    #[test]
    fn fill_bytes_varies() {
        let mut r = Rng64::new(8);
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        r.fill_bytes(&mut a);
        r.fill_bytes(&mut b);
        assert_ne!(a, b);
        assert_ne!(a, [0u8; 16]);
    }
}
