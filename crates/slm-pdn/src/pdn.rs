//! Single- and multi-region PDN models.

use crate::filter::SecondOrderFilter;
use crate::noise::Rng64;
use serde::{Deserialize, Serialize};

/// Electrical parameters of a PDN region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PdnConfig {
    /// Nominal supply voltage, volts.
    pub v_nominal: f64,
    /// Bulk supply resistance, ohms: the slow (resonant) droop component
    /// settles to `r_eff · I`.
    pub r_eff: f64,
    /// Wideband (local) supply impedance, ohms: an instantaneous
    /// `r_fast · I` drop that passes cycle-rate current variation. This
    /// is the path through which the victim's per-cycle Hamming activity
    /// reaches on-die sensors; without it the package resonance would
    /// low-pass the side channel away.
    pub r_fast: f64,
    /// Natural frequency of the die/package resonance, Hz.
    pub f_natural_hz: f64,
    /// Damping ratio (< 1: underdamped, overshoots on load release).
    pub zeta: f64,
    /// Standard deviation of wideband supply noise, volts.
    pub noise_sigma_v: f64,
    /// Seed for the noise stream.
    pub seed: u64,
}

impl Default for PdnConfig {
    fn default() -> Self {
        PdnConfig {
            v_nominal: 1.0,
            r_eff: 0.008,
            r_fast: 0.012,
            f_natural_hz: 5.0e6,
            zeta: 0.3,
            noise_sigma_v: 0.4e-3,
            seed: 0x9d4_1234,
        }
    }
}

/// Always-on droop telemetry: voltage extrema and settling, tracked
/// per step at negligible cost (two compares and a branch against the
/// full filter/noise step).
///
/// "Settled" means the observed voltage is within a band of nominal
/// wide enough to swallow the supply noise (`max(4σ, 1 mV)`);
/// `settled_streak` counts the consecutive trailing settled steps, so
/// `settled_streak × dt` is the time the rail has currently been
/// quiet — the settle-time readout the observability layer exports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PdnTelemetry {
    /// Lowest voltage observed (deepest droop).
    pub v_min: f64,
    /// Highest voltage observed (worst overshoot).
    pub v_max: f64,
    /// Steps simulated.
    pub steps: u64,
    /// Consecutive trailing steps within the settle band of nominal.
    pub settled_streak: u64,
}

impl PdnTelemetry {
    fn new(v_nominal: f64) -> Self {
        PdnTelemetry {
            v_min: v_nominal,
            v_max: v_nominal,
            steps: 0,
            settled_streak: 0,
        }
    }

    /// The settle band for a config: wide enough that pure supply
    /// noise does not reset the streak.
    fn band(config: &PdnConfig) -> f64 {
        (4.0 * config.noise_sigma_v).max(1e-3)
    }

    #[inline]
    fn update(&mut self, v: f64, v_nominal: f64, band: f64) {
        self.v_min = self.v_min.min(v);
        self.v_max = self.v_max.max(v);
        self.steps += 1;
        if (v - v_nominal).abs() <= band {
            self.settled_streak += 1;
        } else {
            self.settled_streak = 0;
        }
    }
}

/// One shared supply: total current in, observed voltage out.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Pdn {
    config: PdnConfig,
    filter: SecondOrderFilter,
    rng: Rng64,
    last_v: f64,
    telemetry: PdnTelemetry,
    settle_band: f64,
}

impl Pdn {
    /// Creates a PDN at nominal voltage.
    pub fn new(config: PdnConfig) -> Self {
        Pdn {
            filter: SecondOrderFilter::new(config.f_natural_hz, config.zeta),
            rng: Rng64::new(config.seed),
            last_v: config.v_nominal,
            telemetry: PdnTelemetry::new(config.v_nominal),
            settle_band: PdnTelemetry::band(&config),
            config,
        }
    }

    /// The configuration this PDN was built with.
    pub fn config(&self) -> &PdnConfig {
        &self.config
    }

    /// Advances the PDN by `dt` seconds while `current_a` amps are drawn,
    /// returning the observed supply voltage.
    #[inline]
    pub fn step(&mut self, current_a: f64, dt: f64) -> f64 {
        let target_droop = self.config.r_eff * current_a;
        let droop = self.filter.step(target_droop, dt);
        self.last_v = self.config.v_nominal - droop - self.config.r_fast * current_a
            + self.rng.normal_scaled(self.config.noise_sigma_v);
        self.telemetry
            .update(self.last_v, self.config.v_nominal, self.settle_band);
        self.last_v
    }

    /// The most recently computed voltage.
    pub fn voltage(&self) -> f64 {
        self.last_v
    }

    /// Droop extrema and settling accounting since construction (or
    /// the last [`Pdn::reset`]).
    pub fn telemetry(&self) -> PdnTelemetry {
        self.telemetry
    }

    /// Resets the dynamic state and telemetry (not the noise stream
    /// position).
    pub fn reset(&mut self) {
        self.filter.reset();
        self.last_v = self.config.v_nominal;
        self.telemetry = PdnTelemetry::new(self.config.v_nominal);
    }
}

/// Several PDN regions with cross-coupling.
///
/// Each region has its own second-order response to the current drawn
/// *in that region*; the voltage observed at region `r` superimposes
/// every region's droop weighted by `coupling[r][s]`. Diagonal entries
/// are 1; off-diagonal entries below 1 model electrical distance between
/// tenant placements (Glamočanin et al. observed exactly this
/// sensitivity-vs-distance effect on cloud FPGAs).
#[derive(Debug, Clone)]
pub struct MultiRegionPdn {
    config: PdnConfig,
    filters: Vec<SecondOrderFilter>,
    coupling: Vec<Vec<f64>>,
    rng: Rng64,
    voltages: Vec<f64>,
    droop_scratch: Vec<f64>,
    /// Extra per-region current sources (active-fence noise injectors
    /// and similar countermeasures), added to the caller's currents on
    /// every step. All zero by default, which leaves `step` bit-exact.
    injected: Vec<f64>,
    telemetry: PdnTelemetry,
    /// Deepest droop seen by each region — the fault-injection-relevant
    /// extremum (the victim rail's minimum decides whether derated
    /// arrival times violate the clock period). Tracked per step at the
    /// cost of one compare per region.
    region_v_min: Vec<f64>,
    settle_band: f64,
}

impl MultiRegionPdn {
    /// Creates `regions` coupled regions with the given coupling matrix
    /// (`coupling[r][s]` = effect of region `s`'s droop on region `r`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `regions × regions`.
    pub fn new(config: PdnConfig, regions: usize, coupling: Vec<Vec<f64>>) -> Self {
        assert_eq!(coupling.len(), regions, "coupling rows");
        for row in &coupling {
            assert_eq!(row.len(), regions, "coupling columns");
        }
        MultiRegionPdn {
            filters: vec![SecondOrderFilter::new(config.f_natural_hz, config.zeta); regions],
            coupling,
            rng: Rng64::new(config.seed),
            voltages: vec![config.v_nominal; regions],
            droop_scratch: vec![0.0; regions],
            injected: vec![0.0; regions],
            telemetry: PdnTelemetry::new(config.v_nominal),
            region_v_min: vec![config.v_nominal; regions],
            settle_band: PdnTelemetry::band(&config),
            config,
        }
    }

    /// Uniformly coupled regions (all off-diagonal entries `k`).
    pub fn uniform(config: PdnConfig, regions: usize, k: f64) -> Self {
        let coupling = (0..regions)
            .map(|r| (0..regions).map(|s| if r == s { 1.0 } else { k }).collect())
            .collect();
        Self::new(config, regions, coupling)
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.filters.len()
    }

    /// Sets the extra current source of one region, amps. The injection
    /// is added to the caller's current on every subsequent [`step`]
    /// until changed — the hook active-fence noise injectors drive.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    ///
    /// [`step`]: MultiRegionPdn::step
    pub fn set_injected(&mut self, region: usize, amps: f64) {
        self.injected[region] = amps;
    }

    /// The extra current currently injected into one region, amps.
    pub fn injected(&self, region: usize) -> f64 {
        self.injected[region]
    }

    /// Advances all regions by `dt` with per-region currents (plus any
    /// injected extra sources); returns the observed per-region
    /// voltages.
    ///
    /// # Panics
    ///
    /// Panics if `currents_a.len()` differs from the region count.
    pub fn step(&mut self, currents_a: &[f64], dt: f64) -> &[f64] {
        assert_eq!(currents_a.len(), self.filters.len());
        for (((d, f), &i), &inj) in self
            .droop_scratch
            .iter_mut()
            .zip(&mut self.filters)
            .zip(currents_a)
            .zip(&self.injected)
        {
            let i = i + inj;
            *d = f.step(self.config.r_eff * i, dt) + self.config.r_fast * i;
        }
        for (r, v) in self.voltages.iter_mut().enumerate() {
            let mut total = 0.0;
            for (s, &d) in self.droop_scratch.iter().enumerate() {
                total += self.coupling[r][s] * d;
            }
            *v = self.config.v_nominal - total + self.rng.normal_scaled(self.config.noise_sigma_v);
            let vmin = &mut self.region_v_min[r];
            *vmin = vmin.min(*v);
        }
        // Telemetry watches region 0 — the sensed (attacker-visible)
        // rail in the fabric's layout.
        self.telemetry
            .update(self.voltages[0], self.config.v_nominal, self.settle_band);
        &self.voltages
    }

    /// The most recent voltage of one region.
    pub fn voltage(&self, region: usize) -> f64 {
        self.voltages[region]
    }

    /// The deepest droop observed at one region since construction.
    ///
    /// Region 0's value matches the [`MultiRegionPdn::telemetry`]
    /// extremum; the other regions give the victim-rail ground truth a
    /// fault-injection experiment needs (how far the aggressor actually
    /// pushed the rail the victim's logic runs from).
    pub fn min_voltage(&self, region: usize) -> f64 {
        self.region_v_min[region]
    }

    /// Droop extrema and settling accounting of region 0 since
    /// construction.
    pub fn telemetry(&self) -> PdnTelemetry {
        self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: f64 = 3.33e-9;

    fn quiet(mut c: PdnConfig) -> PdnConfig {
        c.noise_sigma_v = 0.0;
        c
    }

    #[test]
    fn steady_state_ir_drop() {
        let cfg = quiet(PdnConfig::default());
        let mut pdn = Pdn::new(cfg);
        let mut v = 0.0;
        for _ in 0..400_000 {
            v = pdn.step(3.0, DT);
        }
        let expect = cfg.v_nominal - (cfg.r_eff + cfg.r_fast) * 3.0;
        assert!((v - expect).abs() < 1e-4, "v = {v}, expect {expect}");
    }

    #[test]
    fn droop_then_overshoot() {
        let mut pdn = Pdn::new(quiet(PdnConfig::default()));
        let mut vmin: f64 = 2.0;
        for _ in 0..3_000 {
            vmin = vmin.min(pdn.step(4.0, DT));
        }
        assert!(vmin < 1.0 - 0.04, "droop too small: {vmin}");
        let mut vmax: f64 = 0.0;
        for _ in 0..3_000 {
            vmax = vmax.max(pdn.step(0.0, DT));
        }
        assert!(vmax > 1.0 + 0.01, "no overshoot: {vmax}");
    }

    #[test]
    fn noise_present_when_configured() {
        let mut pdn = Pdn::new(PdnConfig {
            noise_sigma_v: 5e-3,
            ..PdnConfig::default()
        });
        let vs: Vec<f64> = (0..100).map(|_| pdn.step(0.0, DT)).collect();
        let mean = vs.iter().sum::<f64>() / vs.len() as f64;
        let var = vs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vs.len() as f64;
        assert!(var > 0.0);
        assert!(var.sqrt() < 20e-3);
    }

    #[test]
    fn reset_restores_nominal() {
        let mut pdn = Pdn::new(quiet(PdnConfig::default()));
        for _ in 0..1000 {
            pdn.step(5.0, DT);
        }
        pdn.reset();
        assert_eq!(pdn.voltage(), 1.0);
    }

    #[test]
    fn coupled_region_sees_attenuated_droop() {
        let cfg = quiet(PdnConfig::default());
        let mut net = MultiRegionPdn::uniform(cfg, 2, 0.5);
        let mut v = [0.0, 0.0];
        for _ in 0..400_000 {
            let vs = net.step(&[4.0, 0.0], DT);
            v = [vs[0], vs[1]];
        }
        let droop0 = cfg.v_nominal - v[0];
        let droop1 = cfg.v_nominal - v[1];
        assert!(droop0 > 0.0);
        assert!(
            (droop1 / droop0 - 0.5).abs() < 0.02,
            "coupling ratio = {}",
            droop1 / droop0
        );
    }

    #[test]
    #[should_panic(expected = "coupling rows")]
    fn bad_coupling_shape_panics() {
        let _ = MultiRegionPdn::new(PdnConfig::default(), 2, vec![vec![1.0, 0.5]]);
    }

    #[test]
    fn telemetry_tracks_droop_and_settling() {
        let cfg = quiet(PdnConfig::default());
        let mut pdn = Pdn::new(cfg);
        for _ in 0..3_000 {
            pdn.step(4.0, DT);
        }
        let loaded = pdn.telemetry();
        assert!(loaded.v_min < 1.0 - 0.04, "droop recorded: {loaded:?}");
        assert_eq!(loaded.steps, 3_000);
        assert_eq!(loaded.settled_streak, 0, "rail is loaded, not settled");
        // Release the load: the rail rings, then settles; the streak
        // counts only the quiet tail.
        for _ in 0..400_000 {
            pdn.step(0.0, DT);
        }
        let settled = pdn.telemetry();
        assert!(settled.v_max > 1.0 + 0.01, "overshoot recorded");
        assert!(settled.settled_streak > 0, "rail settles: {settled:?}");
        assert!(settled.settled_streak < settled.steps);
        pdn.reset();
        assert_eq!(pdn.telemetry(), PdnTelemetry::new(cfg.v_nominal));
    }

    #[test]
    fn multi_region_telemetry_watches_region_zero() {
        let cfg = quiet(PdnConfig::default());
        let mut net = MultiRegionPdn::uniform(cfg, 2, 0.5);
        for _ in 0..3_000 {
            net.step(&[4.0, 0.0], DT);
        }
        let t = net.telemetry();
        assert_eq!(t.steps, 3_000);
        assert!(
            (cfg.v_nominal - t.v_min) > 0.04,
            "region-0 droop recorded: {t:?}"
        );
    }

    #[test]
    fn per_region_min_voltage_tracks_each_rail() {
        let cfg = quiet(PdnConfig::default());
        let mut net = MultiRegionPdn::uniform(cfg, 2, 0.25);
        assert_eq!(net.min_voltage(0), cfg.v_nominal);
        assert_eq!(net.min_voltage(1), cfg.v_nominal);
        for _ in 0..3_000 {
            net.step(&[4.0, 0.0], DT);
        }
        // Region 0 carries the load; region 1 sees it only through the
        // 0.25 coupling, so its extremum is much shallower.
        let droop0 = cfg.v_nominal - net.min_voltage(0);
        let droop1 = cfg.v_nominal - net.min_voltage(1);
        assert!(droop0 > 0.04, "loaded rail droop: {droop0}");
        assert!(droop1 < droop0 / 2.0, "coupled rail: {droop1} vs {droop0}");
        // Region 0's extremum agrees with the legacy telemetry.
        assert_eq!(net.min_voltage(0), net.telemetry().v_min);
    }

    #[test]
    fn injected_current_adds_to_region_droop() {
        let cfg = quiet(PdnConfig::default());
        let mut plain = MultiRegionPdn::uniform(cfg, 2, 0.5);
        let mut fenced = MultiRegionPdn::uniform(cfg, 2, 0.5);
        fenced.set_injected(1, 2.0);
        assert_eq!(fenced.injected(1), 2.0);
        assert_eq!(fenced.injected(0), 0.0);
        let mut v_plain = [0.0; 2];
        let mut v_fenced = [0.0; 2];
        for _ in 0..400_000 {
            let a = plain.step(&[1.0, 1.0], DT);
            v_plain = [a[0], a[1]];
            let b = fenced.step(&[1.0, 1.0], DT);
            v_fenced = [b[0], b[1]];
        }
        // The injector deepens the droop in its own region and, through
        // the coupling, in the neighbour.
        assert!(v_fenced[1] < v_plain[1] - 0.02);
        assert!(v_fenced[0] < v_plain[0] - 0.01);
        // Clearing the injection restores the plain steady state.
        fenced.set_injected(1, 0.0);
        for _ in 0..400_000 {
            let a = plain.step(&[1.0, 1.0], DT);
            v_plain = [a[0], a[1]];
            let b = fenced.step(&[1.0, 1.0], DT);
            v_fenced = [b[0], b[1]];
        }
        assert!((v_fenced[0] - v_plain[0]).abs() < 1e-6);
    }

    #[test]
    fn zero_injection_is_bit_exact() {
        // A constructed-but-untouched injection vector must not perturb
        // the simulation in the last bit: defended-off configs stay
        // byte-identical to the pre-defense substrate.
        let cfg = PdnConfig::default();
        let mut a = MultiRegionPdn::uniform(cfg, 2, 0.5);
        let mut b = MultiRegionPdn::uniform(cfg, 2, 0.5);
        b.set_injected(0, 0.0);
        for i in 0..1_000 {
            let cur = [(i % 5) as f64, (i % 3) as f64];
            assert_eq!(a.step(&cur, DT), b.step(&cur, DT));
        }
    }

    #[test]
    fn determinism() {
        let cfg = PdnConfig::default();
        let mut a = Pdn::new(cfg);
        let mut b = Pdn::new(cfg);
        for i in 0..1000 {
            let cur = (i % 7) as f64;
            assert_eq!(a.step(cur, DT), b.step(cur, DT));
        }
    }
}
