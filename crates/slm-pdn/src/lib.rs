//! Power-distribution-network (PDN) simulation substrate.
//!
//! Multi-tenant FPGA power analysis works because all tenants share one
//! PDN: current transients in the victim region produce supply-voltage
//! fluctuations visible in the attacker region. A real PDN is a complex
//! RLC mesh; its dominant behaviour at the frequencies that matter here
//! (die + package resonance, single-digit MHz) is a resistive IR drop
//! shaped by an underdamped second-order response — a droop when current
//! steps up, an overshoot when it steps off. That is exactly the waveform
//! the paper's Fig. 6 shows when 8000 ring oscillators switch on and off.
//!
//! This crate provides:
//!
//! * [`SecondOrderFilter`] — the discrete-time underdamped core,
//! * [`Pdn`] — a single-region supply: current in, voltage out, with
//!   wideband Gaussian supply noise,
//! * [`MultiRegionPdn`] — per-region filters with a coupling matrix, for
//!   attacker/victim placement studies,
//! * [`noise`] — a small, fast, deterministic RNG (xoshiro256++) with a
//!   Box–Muller Gaussian, used by every stochastic component of the
//!   workspace so whole experiments are reproducible from one seed.
//!
//! # Example
//!
//! ```
//! use slm_pdn::{Pdn, PdnConfig};
//!
//! let mut pdn = Pdn::new(PdnConfig::default());
//! let dt = 3.33e-9; // one 300 MHz cycle
//! // Draw 2 A for a while: the supply droops below nominal.
//! let mut v = 1.0;
//! for _ in 0..2000 {
//!     v = pdn.step(2.0, dt);
//! }
//! assert!(v < 0.99);
//! // Release the load: the underdamped PDN overshoots above nominal.
//! let mut vmax: f64 = 0.0;
//! for _ in 0..2000 {
//!     vmax = vmax.max(pdn.step(0.0, dt));
//! }
//! assert!(vmax > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod filter;
pub mod noise;
mod pdn;

pub use filter::SecondOrderFilter;
pub use pdn::{MultiRegionPdn, Pdn, PdnConfig, PdnTelemetry};
