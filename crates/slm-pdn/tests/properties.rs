//! Property-based tests for the PDN substrate.

use proptest::prelude::*;
use slm_pdn::noise::Rng64;
use slm_pdn::{MultiRegionPdn, Pdn, PdnConfig, SecondOrderFilter};

const DT: f64 = 3.33e-9;

fn quiet(seed: u64) -> PdnConfig {
    PdnConfig {
        noise_sigma_v: 0.0,
        seed,
        ..PdnConfig::default()
    }
}

proptest! {
    /// Bounded input ⇒ bounded output, for any underdamped-to-critically
    /// damped configuration (integration stability).
    #[test]
    fn filter_stability(zeta in 0.05f64..1.5, f_mhz in 0.5f64..20.0, seed in any::<u64>()) {
        let mut f = SecondOrderFilter::new(f_mhz * 1e6, zeta);
        let mut rng = Rng64::new(seed);
        let mut max_abs: f64 = 0.0;
        for _ in 0..50_000 {
            let u = rng.uniform_in(-1.0, 1.0);
            max_abs = max_abs.max(f.step(u, DT).abs());
        }
        prop_assert!(max_abs.is_finite());
        prop_assert!(max_abs < 50.0, "unstable: {max_abs}");
    }

    /// Steady-state voltage equals nominal minus total IR drop, for any
    /// constant load.
    #[test]
    fn steady_state_ir_drop(current in 0.0f64..8.0, seed in any::<u64>()) {
        let cfg = quiet(seed);
        let mut pdn = Pdn::new(cfg);
        let mut v = 0.0;
        for _ in 0..400_000 {
            v = pdn.step(current, DT);
        }
        let expect = cfg.v_nominal - (cfg.r_eff + cfg.r_fast) * current;
        prop_assert!((v - expect).abs() < 2e-4, "v = {v}, expect {expect}");
    }

    /// More load ⇒ lower settled voltage (monotonicity).
    #[test]
    fn monotone_in_load(i1 in 0.0f64..4.0, delta in 0.1f64..4.0) {
        let settle = |i: f64| {
            let mut pdn = Pdn::new(quiet(1));
            let mut v = 0.0;
            for _ in 0..300_000 {
                v = pdn.step(i, DT);
            }
            v
        };
        prop_assert!(settle(i1 + delta) < settle(i1));
    }

    /// Region symmetry: swapping the two regions' currents swaps their
    /// voltages (with symmetric coupling and no noise).
    #[test]
    fn multi_region_symmetry(ia in 0.0f64..3.0, ib in 0.0f64..3.0, k in 0.0f64..1.0) {
        let cfg = quiet(7);
        let mut p1 = MultiRegionPdn::uniform(cfg, 2, k);
        let mut p2 = MultiRegionPdn::uniform(cfg, 2, k);
        let (mut va, mut vb) = (0.0, 0.0);
        let (mut wa, mut wb) = (0.0, 0.0);
        for _ in 0..200_000 {
            let v = p1.step(&[ia, ib], DT);
            va = v[0];
            vb = v[1];
            let w = p2.step(&[ib, ia], DT);
            wa = w[0];
            wb = w[1];
        }
        prop_assert!((va - wb).abs() < 1e-9, "{va} vs {wb}");
        prop_assert!((vb - wa).abs() < 1e-9, "{vb} vs {wa}");
    }

    /// Coupling attenuates the neighbour's droop proportionally.
    #[test]
    fn coupling_scales_cross_droop(k in 0.1f64..0.9) {
        let cfg = quiet(3);
        let mut pdn = MultiRegionPdn::uniform(cfg, 2, k);
        let mut v = [0.0, 0.0];
        for _ in 0..400_000 {
            let out = pdn.step(&[2.0, 0.0], DT);
            v = [out[0], out[1]];
        }
        let own = cfg.v_nominal - v[0];
        let cross = cfg.v_nominal - v[1];
        prop_assert!((cross / own - k).abs() < 0.02, "ratio {}", cross / own);
    }
}
