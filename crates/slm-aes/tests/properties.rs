//! Property-based tests for the AES victim model.

use proptest::prelude::*;
use slm_aes::{soft, Aes32Rtl, LeakageModel};
use slm_pdn::noise::Rng64;

proptest! {
    #[test]
    fn encrypt_decrypt_roundtrip(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let ct = soft::encrypt(&key, &pt);
        prop_assert_eq!(soft::decrypt(&key, &ct), pt);
    }

    #[test]
    fn round_states_end_in_ciphertext(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let states = soft::encrypt_round_states(&key, &pt);
        prop_assert_eq!(states[soft::ROUNDS], soft::encrypt(&key, &pt));
    }

    /// The relation the last-round CPA hypothesis inverts:
    /// `state9[j] = INV_SBOX[ct[dest(j)] ^ k10[dest(j)]]`.
    #[test]
    fn last_round_hypothesis_relation(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
        let states = soft::encrypt_round_states(&key, &pt);
        let k10 = soft::key_expansion(&key)[10];
        let ct = states[10];
        for (j, &pre) in states[9].iter().enumerate() {
            let jd = soft::shift_rows_dest(j);
            prop_assert_eq!(pre, soft::INV_SBOX[(ct[jd] ^ k10[jd]) as usize]);
        }
    }

    #[test]
    fn rtl_matches_soft(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>(), seed in any::<u64>()) {
        let rtl = Aes32Rtl::new(key);
        let mut rng = Rng64::new(seed);
        let (ct, trace) = rtl.encrypt_with_power(pt, &LeakageModel::default(), &mut rng);
        prop_assert_eq!(ct, soft::encrypt(&key, &pt));
        prop_assert_eq!(trace.len(), Aes32Rtl::CYCLES_PER_BLOCK);
    }

    #[test]
    fn shift_rows_dest_is_permutation(_x in 0u8..1) {
        let mut seen = [false; 16];
        for j in 0..16 {
            let d = soft::shift_rows_dest(j);
            prop_assert!(!seen[d]);
            seen[d] = true;
        }
    }
}
