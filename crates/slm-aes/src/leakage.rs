//! Power-leakage model of the AES datapath.

use serde::{Deserialize, Serialize};

/// Per-cycle supply-current model for the 32-bit AES datapath.
///
/// `I(cycle) = idle + k_hd·HD(reg_old, reg_new) + k_hw·HW(operand)
///            + N(0, sigma)`
///
/// * The Hamming-distance (HD) term models the state-register update —
///   the classic CMOS switching term.
/// * The Hamming-weight (HW) term models data-dependent activity in the
///   combinational S-box/MixColumns network (LUT cascades glitch more
///   when more operand bits are set against the reset-phase zero vector).
///   This value-dependent component is what the paper's "single bit mask
///   model before the final SBox" hypothesis couples to; pure XOR
///   distance would be invisible to a value model.
/// * `sigma` lumps algorithmic noise from the rest of the design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageModel {
    /// Static + clock-tree current, amps.
    pub idle_a: f64,
    /// Current per register bit flipped, amps.
    pub k_hd_a: f64,
    /// Current per set operand bit, amps.
    pub k_hw_a: f64,
    /// Gaussian algorithmic-noise standard deviation, amps.
    pub sigma_a: f64,
}

impl Default for LeakageModel {
    fn default() -> Self {
        LeakageModel {
            idle_a: 0.10,
            k_hd_a: 0.02,
            k_hw_a: 0.02,
            sigma_a: 0.02,
        }
    }
}

impl LeakageModel {
    /// A noise-free variant (useful in unit tests).
    pub fn noiseless() -> Self {
        LeakageModel {
            sigma_a: 0.0,
            ..Self::default()
        }
    }

    /// Current for one datapath cycle, given the register transition and
    /// the combinational operand, plus a noise draw.
    #[inline]
    pub fn cycle_current(&self, reg_old: u32, reg_new: u32, operand: u32, noise: f64) -> f64 {
        self.idle_a
            + self.k_hd_a * f64::from((reg_old ^ reg_new).count_ones())
            + self.k_hw_a * f64::from(operand.count_ones())
            + noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_when_nothing_switches() {
        let m = LeakageModel::noiseless();
        assert!((m.cycle_current(0, 0, 0, 0.0) - m.idle_a).abs() < 1e-12);
    }

    #[test]
    fn hd_and_hw_terms_add() {
        let m = LeakageModel::noiseless();
        let i = m.cycle_current(0x0000_000f, 0x0000_00f0, 0x0000_0003, 0.0);
        assert!((i - (m.idle_a + 8.0 * m.k_hd_a + 2.0 * m.k_hw_a)).abs() < 1e-12);
    }

    #[test]
    fn noise_passthrough() {
        let m = LeakageModel::noiseless();
        let base = m.cycle_current(0, 0, 0, 0.0);
        assert!((m.cycle_current(0, 0, 0, 0.01) - base - 0.01).abs() < 1e-12);
    }
}
