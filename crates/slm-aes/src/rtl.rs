//! Cycle-accurate 32-bit-datapath AES-128 hardware model.

use crate::leakage::LeakageModel;
use crate::soft;
use slm_pdn::noise::Rng64;

/// The paper's AES victim: a 100 MHz AES-128 core with a 32-bit datapath
/// (four parallel S-boxes), so each round takes four cycles — one state
/// column per cycle — after a one-cycle initial-AddRoundKey load.
///
/// [`Aes32Rtl::encrypt_with_power`] returns the ciphertext together with
/// the per-cycle supply current of the block, which the fabric simulator
/// feeds into the shared PDN.
#[derive(Debug, Clone)]
pub struct Aes32Rtl {
    key: [u8; 16],
    round_keys: [[u8; 16]; soft::ROUNDS + 1],
}

impl Aes32Rtl {
    /// Active cycles per encrypted block: 1 load + 10 rounds × 4 columns.
    pub const CYCLES_PER_BLOCK: usize = 1 + soft::ROUNDS * 4;

    /// Creates the core with a fixed secret key (set at configuration
    /// time, like a key loaded into the victim bitstream).
    pub fn new(key: [u8; 16]) -> Self {
        Aes32Rtl {
            key,
            round_keys: soft::key_expansion(&key),
        }
    }

    /// The secret key (test/evaluation access — a real victim would not
    /// expose this; the attack's success is judged against it).
    pub fn key(&self) -> &[u8; 16] {
        &self.key
    }

    /// The expanded round keys.
    pub fn round_keys(&self) -> &[[u8; 16]; soft::ROUNDS + 1] {
        &self.round_keys
    }

    /// The cycle index (0-based within the block) at which the final
    /// round processes the column containing pre-SubBytes byte `j` —
    /// i.e. where the last-round leakage of `state9[j]` appears.
    pub fn last_round_cycle_for_byte(j: usize) -> usize {
        assert!(j < 16);
        1 + (soft::ROUNDS - 1) * 4 + j / 4
    }

    /// Encrypts one block on a *masked* datapath: every state column is
    /// XOR-blinded with a fresh random 32-bit mask each cycle before it
    /// touches the leaky register and operand paths, and unblinded
    /// downstream (the standard first-order Boolean-masking model, with
    /// per-cycle remasking so Hamming *distances* do not cancel the
    /// mask). The ciphertext is unchanged; the per-cycle current no
    /// longer depends on the real state at first order, which defeats
    /// the paper's CPA — the "masking" countermeasure its related work
    /// cites (Chari et al.; Krautter et al.).
    pub fn encrypt_with_power_masked(
        &self,
        plaintext: [u8; 16],
        model: &LeakageModel,
        rng: &mut Rng64,
    ) -> ([u8; 16], Vec<f64>) {
        let states = soft::encrypt_round_states(&self.key, &plaintext);
        let mut trace = Vec::with_capacity(Self::CYCLES_PER_BLOCK);
        let col = |s: &[u8; 16], c: usize| -> u32 {
            u32::from_le_bytes([s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]])
        };
        let mut mask = rng.next_u64() as u32;
        let loaded = col(&states[0], 3) ^ mask;
        trace.push(model.cycle_current(0, loaded, loaded, rng.normal_scaled(model.sigma_a)));
        for r in 1..=soft::ROUNDS {
            for c in 0..4 {
                let new_mask = rng.next_u64() as u32;
                let old = col(&states[r - 1], c) ^ mask;
                let new = col(&states[r], c) ^ new_mask;
                trace.push(model.cycle_current(old, new, old, rng.normal_scaled(model.sigma_a)));
                mask = new_mask;
            }
        }
        debug_assert_eq!(trace.len(), Self::CYCLES_PER_BLOCK);
        (states[soft::ROUNDS], trace)
    }

    /// Encrypts one block, returning the ciphertext and the per-cycle
    /// supply current ([`Self::CYCLES_PER_BLOCK`] entries).
    pub fn encrypt_with_power(
        &self,
        plaintext: [u8; 16],
        model: &LeakageModel,
        rng: &mut Rng64,
    ) -> ([u8; 16], Vec<f64>) {
        let states = soft::encrypt_round_states(&self.key, &plaintext);
        let mut trace = Vec::with_capacity(Self::CYCLES_PER_BLOCK);

        let col = |s: &[u8; 16], c: usize| -> u32 {
            u32::from_le_bytes([s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]])
        };
        let pt_col = |c: usize| -> u32 {
            u32::from_le_bytes([
                plaintext[4 * c],
                plaintext[4 * c + 1],
                plaintext[4 * c + 2],
                plaintext[4 * c + 3],
            ])
        };

        // Cycle 0: load plaintext ⊕ k0 into the state register. The
        // register previously held zeros (cleared between blocks, as the
        // BRAM-captured design does); the datapath operand is the raw
        // plaintext word stream (model: last column loaded).
        let loaded = col(&states[0], 3);
        trace.push(model.cycle_current(0, loaded, pt_col(3), rng.normal_scaled(model.sigma_a)));

        // Rounds 1..=10, one column per cycle. During round r, column c
        // of the state register transitions from states[r-1] to
        // states[r]; the combinational operand is the column of the
        // round input being transformed this cycle.
        for r in 1..=soft::ROUNDS {
            for c in 0..4 {
                let old = col(&states[r - 1], c);
                let new = col(&states[r], c);
                trace.push(model.cycle_current(old, new, old, rng.normal_scaled(model.sigma_a)));
            }
        }
        debug_assert_eq!(trace.len(), Self::CYCLES_PER_BLOCK);
        (states[soft::ROUNDS], trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    #[test]
    fn ciphertext_matches_reference() {
        let rtl = Aes32Rtl::new(KEY);
        let mut rng = Rng64::new(9);
        for i in 0..16u8 {
            let pt = [i; 16];
            let (ct, _) = rtl.encrypt_with_power(pt, &LeakageModel::default(), &mut rng);
            assert_eq!(ct, soft::encrypt(&KEY, &pt));
        }
    }

    #[test]
    fn trace_length_fixed() {
        let rtl = Aes32Rtl::new(KEY);
        let mut rng = Rng64::new(1);
        let (_, trace) = rtl.encrypt_with_power([7; 16], &LeakageModel::default(), &mut rng);
        assert_eq!(trace.len(), 41);
        assert_eq!(trace.len(), Aes32Rtl::CYCLES_PER_BLOCK);
    }

    #[test]
    fn currents_positive_and_data_dependent() {
        let rtl = Aes32Rtl::new(KEY);
        let mut rng = Rng64::new(1);
        let m = LeakageModel::noiseless();
        let (_, t1) = rtl.encrypt_with_power([0x00; 16], &m, &mut rng);
        let (_, t2) = rtl.encrypt_with_power([0xa5; 16], &m, &mut rng);
        assert!(t1.iter().all(|&i| i > 0.0));
        assert_ne!(t1, t2, "different plaintexts must draw different power");
    }

    #[test]
    fn last_round_cycle_mapping() {
        // byte 3 is in column 0 → first cycle of round 10 = 1 + 36 = 37
        assert_eq!(Aes32Rtl::last_round_cycle_for_byte(3), 37);
        assert_eq!(Aes32Rtl::last_round_cycle_for_byte(15), 40);
        assert_eq!(Aes32Rtl::last_round_cycle_for_byte(0), 37);
    }

    #[test]
    fn last_round_current_tracks_state9_weight() {
        // With only the HW term enabled, the cycle for byte j's column
        // must vary with HW(states[9] column) across plaintexts.
        let rtl = Aes32Rtl::new(KEY);
        let m = LeakageModel {
            idle_a: 0.0,
            k_hd_a: 0.0,
            k_hw_a: 1.0,
            sigma_a: 0.0,
        };
        let mut rng = Rng64::new(2);
        for i in 0..8u8 {
            let pt = [i.wrapping_mul(37); 16];
            let states = soft::encrypt_round_states(&KEY, &pt);
            let (_, trace) = rtl.encrypt_with_power(pt, &m, &mut rng);
            let cyc = Aes32Rtl::last_round_cycle_for_byte(3);
            let col0 = u32::from_le_bytes([states[9][0], states[9][1], states[9][2], states[9][3]]);
            assert!(
                (trace[cyc] - f64::from(col0.count_ones())).abs() < 1e-9,
                "cycle current must equal HW of state9 column 0"
            );
        }
    }

    #[test]
    fn masked_ciphertext_unchanged() {
        let rtl = Aes32Rtl::new(KEY);
        let mut rng = Rng64::new(4);
        for i in 0..8u8 {
            let pt = [i.wrapping_mul(11); 16];
            let (ct, trace) = rtl.encrypt_with_power_masked(pt, &LeakageModel::default(), &mut rng);
            assert_eq!(ct, soft::encrypt(&KEY, &pt));
            assert_eq!(trace.len(), Aes32Rtl::CYCLES_PER_BLOCK);
        }
    }

    #[test]
    fn masking_removes_first_order_state_dependence() {
        // With masking, the last-round cycle current must not correlate
        // with the real state's Hamming weight across plaintexts.
        let rtl = Aes32Rtl::new(KEY);
        let m = LeakageModel {
            idle_a: 0.0,
            k_hd_a: 0.0,
            k_hw_a: 1.0,
            sigma_a: 0.0,
        };
        let mut rng = Rng64::new(5);
        let cyc = Aes32Rtl::last_round_cycle_for_byte(3);
        let n = 4000;
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let states = soft::encrypt_round_states(&KEY, &pt);
            let hw_true = f64::from(
                u32::from_le_bytes([states[9][0], states[9][1], states[9][2], states[9][3]])
                    .count_ones(),
            );
            let (_, trace) = rtl.encrypt_with_power_masked(pt, &m, &mut rng);
            let x = hw_true;
            let y = trace[cyc];
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let nf = n as f64;
        let r = (nf * sxy - sx * sy) / ((nf * sxx - sx * sx).sqrt() * (nf * syy - sy * sy).sqrt());
        assert!(
            r.abs() < 0.05,
            "masked current must not track the true state: r = {r}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let rtl = Aes32Rtl::new(KEY);
        let m = LeakageModel::default();
        let mut r1 = Rng64::new(5);
        let mut r2 = Rng64::new(5);
        let (c1, t1) = rtl.encrypt_with_power([9; 16], &m, &mut r1);
        let (c2, t2) = rtl.encrypt_with_power([9; 16], &m, &mut r2);
        assert_eq!(c1, c2);
        assert_eq!(t1, t2);
    }
}
