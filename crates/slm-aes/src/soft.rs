//! Software reference AES-128 (FIPS-197).
//!
//! Byte-oriented and branch-free on secrets in the table-lookup sense
//! only; this is a *reference model* for a hardware victim, not a
//! side-channel-hardened software implementation.

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse AES S-box (used by the last-round CPA hypothesis).
pub const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Number of rounds for AES-128.
pub const ROUNDS: usize = 10;

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

fn mul(a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    let mut x = a;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= x;
        }
        x = xtime(x);
        b >>= 1;
    }
    acc
}

/// GF(2⁸) multiplication in the AES field (x⁸ + x⁴ + x³ + x + 1).
///
/// Public so differential fault analysis can enumerate the MixColumns
/// images of a candidate fault value (the 9th-round diagonal model
/// propagates a single-byte fault through one column as `{2ε, 3ε, ε}`).
pub fn gf_mul(a: u8, b: u8) -> u8 {
    mul(a, b)
}

/// Expands a 128-bit key into the 11 round keys.
pub fn key_expansion(key: &[u8; 16]) -> [[u8; 16]; ROUNDS + 1] {
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
    }
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= rcon;
            rcon = xtime(rcon);
        }
        for k in 0..4 {
            w[i][k] = w[i - 4][k] ^ t[k];
        }
    }
    let mut rk = [[0u8; 16]; ROUNDS + 1];
    for (r, round_key) in rk.iter_mut().enumerate() {
        for c in 0..4 {
            round_key[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
    }
    rk
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = INV_SBOX[*s as usize];
    }
}

/// Byte index of the state (column-major: byte `i` is row `i % 4`,
/// column `i / 4`) after ShiftRows moves it.
fn shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for c in 0..4 {
        for r in 0..4 {
            state[4 * c + r] = old[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for c in 0..4 {
        for r in 0..4 {
            state[4 * ((c + r) % 4) + r] = old[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = mul(col[0], 2) ^ mul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ mul(col[1], 2) ^ mul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ mul(col[2], 2) ^ mul(col[3], 3);
        state[4 * c + 3] = mul(col[0], 3) ^ col[1] ^ col[2] ^ mul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = mul(col[0], 14) ^ mul(col[1], 11) ^ mul(col[2], 13) ^ mul(col[3], 9);
        state[4 * c + 1] = mul(col[0], 9) ^ mul(col[1], 14) ^ mul(col[2], 11) ^ mul(col[3], 13);
        state[4 * c + 2] = mul(col[0], 13) ^ mul(col[1], 9) ^ mul(col[2], 14) ^ mul(col[3], 11);
        state[4 * c + 3] = mul(col[0], 11) ^ mul(col[1], 13) ^ mul(col[2], 9) ^ mul(col[3], 14);
    }
}

/// Encrypts one block.
pub fn encrypt(key: &[u8; 16], plaintext: &[u8; 16]) -> [u8; 16] {
    let rk = key_expansion(key);
    let mut state = *plaintext;
    add_round_key(&mut state, &rk[0]);
    for round_key in rk.iter().take(ROUNDS).skip(1) {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, round_key);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rk[ROUNDS]);
    state
}

/// Decrypts one block.
pub fn decrypt(key: &[u8; 16], ciphertext: &[u8; 16]) -> [u8; 16] {
    let rk = key_expansion(key);
    let mut state = *ciphertext;
    add_round_key(&mut state, &rk[ROUNDS]);
    inv_shift_rows(&mut state);
    inv_sub_bytes(&mut state);
    for round_key in rk.iter().take(ROUNDS).skip(1).rev() {
        add_round_key(&mut state, round_key);
        inv_mix_columns(&mut state);
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
    }
    add_round_key(&mut state, &rk[0]);
    state
}

/// The state at every round boundary: `states[0]` is the plaintext after
/// the initial AddRoundKey; `states[r]` (1 ≤ r ≤ 10) is the state after
/// round `r`. `states[10]` is the ciphertext.
///
/// The hardware model consumes this to derive per-cycle register
/// transitions; the CPA hypothesis targets bits of `states[9]` (the
/// value "before the final SBox computation").
pub fn encrypt_round_states(key: &[u8; 16], plaintext: &[u8; 16]) -> [[u8; 16]; ROUNDS + 1] {
    let rk = key_expansion(key);
    let mut out = [[0u8; 16]; ROUNDS + 1];
    let mut state = *plaintext;
    add_round_key(&mut state, &rk[0]);
    out[0] = state;
    for r in 1..ROUNDS {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, &rk[r]);
        out[r] = state;
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rk[ROUNDS]);
    out[ROUNDS] = state;
    out
}

/// Encrypts one block with XOR fault masks applied to round-boundary
/// states: each `(round, mask)` entry XORs `mask` into the state right
/// after round `round`'s AddRoundKey (round 0 = the initial key
/// addition, round 10 = the ciphertext register itself).
///
/// This is the software model of a register-capture timing fault: a
/// supply droop stretches the combinational cone past the clock period,
/// so the round register latches stale bits — equivalent to XORing a
/// difference into the captured state. With an empty fault list the
/// result is bit-identical to [`encrypt`].
pub fn encrypt_with_state_faults(
    key: &[u8; 16],
    plaintext: &[u8; 16],
    faults: &[(usize, [u8; 16])],
) -> [u8; 16] {
    fn apply(state: &mut [u8; 16], faults: &[(usize, [u8; 16])], round: usize) {
        for (r, mask) in faults {
            if *r == round {
                for (s, m) in state.iter_mut().zip(mask) {
                    *s ^= m;
                }
            }
        }
    }
    let rk = key_expansion(key);
    let mut state = *plaintext;
    add_round_key(&mut state, &rk[0]);
    apply(&mut state, faults, 0);
    for (r, round_key) in rk.iter().enumerate().take(ROUNDS).skip(1) {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, round_key);
        apply(&mut state, faults, r);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rk[ROUNDS]);
    apply(&mut state, faults, ROUNDS);
    state
}

/// Encrypts one block with a single-byte fault `delta` XORed into state
/// byte `byte` immediately *before* MixColumns of `round` (1 ≤ round ≤ 9)
/// — the textbook injection point of diagonal differential fault
/// analysis: MixColumns spreads the fault over one column, ShiftRows of
/// the following rounds over a diagonal of the ciphertext.
///
/// # Panics
///
/// Panics if `round` is outside `1..=9` or `byte` ≥ 16.
pub fn encrypt_with_premix_fault(
    key: &[u8; 16],
    plaintext: &[u8; 16],
    round: usize,
    byte: usize,
    delta: u8,
) -> [u8; 16] {
    assert!(
        (1..ROUNDS).contains(&round),
        "MixColumns runs in rounds 1..=9"
    );
    assert!(byte < 16);
    let rk = key_expansion(key);
    let mut state = *plaintext;
    add_round_key(&mut state, &rk[0]);
    for (r, round_key) in rk.iter().enumerate().take(ROUNDS).skip(1) {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        if r == round {
            state[byte] ^= delta;
        }
        mix_columns(&mut state);
        add_round_key(&mut state, round_key);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rk[ROUNDS]);
    state
}

/// Recovers the original 128-bit cipher key from the last round key by
/// running the key schedule backwards.
///
/// This is the final step of the paper's attack: CPA on the last round
/// recovers `k10` byte by byte, and the schedule is invertible, so the
/// master key follows.
///
/// ```
/// use slm_aes::soft::{key_expansion, invert_key_schedule};
/// let key = [0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c];
/// let k10 = key_expansion(&key)[10];
/// assert_eq!(invert_key_schedule(&k10), key);
/// ```
pub fn invert_key_schedule(k10: &[u8; 16]) -> [u8; 16] {
    // Words of round key r are w[4r..4r+4]; invert
    //   w[i] = w[i-4] ^ t(w[i-1])
    // as w[i-4] = w[i] ^ t(w[i-1]) from round 10 down to 0.
    let mut w = [[0u8; 4]; 44];
    for c in 0..4 {
        w[40 + c] = [k10[4 * c], k10[4 * c + 1], k10[4 * c + 2], k10[4 * c + 3]];
    }
    // rcon for i = 4, 8, ..., 40 is xtime^(i/4 - 1)(1); precompute all.
    let mut rcons = [0u8; 11];
    rcons[1] = 1;
    for r in 2..11 {
        rcons[r] = xtime(rcons[r - 1]);
    }
    for i in (4..44).rev() {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= rcons[i / 4];
        }
        for k in 0..4 {
            w[i - 4][k] = w[i][k] ^ t[k];
        }
    }
    let mut key = [0u8; 16];
    for c in 0..4 {
        key[4 * c..4 * c + 4].copy_from_slice(&w[c]);
    }
    key
}

/// Where ShiftRows sends state byte `i` in the final round: the byte at
/// position `i` before ShiftRows lands at `shift_rows_dest(i)` in the
/// ciphertext.
pub fn shift_rows_dest(i: usize) -> usize {
    let r = i % 4;
    let c = i / 4;
    // ShiftRows reads from column (c + r) % 4; so a byte in column c, row
    // r is *written to* column (c - r) mod 4.
    4 * ((c + 4 - r) % 4) + r
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIPS_KEY: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f,
    ];
    const FIPS_PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee,
        0xff,
    ];
    const FIPS_CT: [u8; 16] = [
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5,
        0x5a,
    ];

    #[test]
    fn fips197_appendix_c_vector() {
        assert_eq!(encrypt(&FIPS_KEY, &FIPS_PT), FIPS_CT);
    }

    #[test]
    fn rfc3602_style_vector() {
        // Well-known test vector: AES-128("2b7e151628aed2a6abf7158809cf4f3c",
        // "6bc1bee22e409f96e93d7e117393172a") = 3ad77bb40d7a3660a89ecaf32466ef97
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let ct = [
            0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
            0xef, 0x97,
        ];
        assert_eq!(encrypt(&key, &pt), ct);
    }

    #[test]
    fn decrypt_roundtrips() {
        assert_eq!(decrypt(&FIPS_KEY, &FIPS_CT), FIPS_PT);
    }

    #[test]
    fn sbox_involution_pair() {
        for i in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[i as usize] as usize], i);
        }
    }

    #[test]
    fn round_states_consistent_with_encrypt() {
        let states = encrypt_round_states(&FIPS_KEY, &FIPS_PT);
        assert_eq!(states[ROUNDS], FIPS_CT);
    }

    #[test]
    fn key_expansion_fips_appendix_a() {
        // FIPS-197 Appendix A.1: last round key for key 2b7e1516...
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let rk = key_expansion(&key);
        assert_eq!(
            rk[10],
            [
                0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
                0x0c, 0xa6
            ]
        );
    }

    #[test]
    fn last_round_relation() {
        // ct[j'] = SBOX[state9[j]] ^ k10[j'] where j' = shift_rows_dest(j):
        // the relation the CPA hypothesis inverts.
        let states = encrypt_round_states(&FIPS_KEY, &FIPS_PT);
        let rk = key_expansion(&FIPS_KEY);
        for j in 0..16 {
            let jd = shift_rows_dest(j);
            assert_eq!(
                states[10][jd],
                SBOX[states[9][j] as usize] ^ rk[10][jd],
                "byte {j} → {jd}"
            );
        }
    }

    #[test]
    fn shift_rows_dest_row0_fixed() {
        for c in 0..4 {
            assert_eq!(shift_rows_dest(4 * c), 4 * c);
        }
        // row 1 moves one column back
        assert_eq!(shift_rows_dest(1), 13);
    }

    #[test]
    fn gf_mul_spot_checks() {
        assert_eq!(mul(0x57, 0x02), 0xae);
        assert_eq!(mul(0x57, 0x13), 0xfe); // FIPS-197 §4.2.1 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe); // public wrapper agrees
    }

    #[test]
    fn empty_fault_list_is_plain_encrypt() {
        assert_eq!(encrypt_with_state_faults(&FIPS_KEY, &FIPS_PT, &[]), FIPS_CT);
        let zero = [(9usize, [0u8; 16])];
        assert_eq!(
            encrypt_with_state_faults(&FIPS_KEY, &FIPS_PT, &zero),
            FIPS_CT
        );
    }

    #[test]
    fn round9_state_fault_changes_exactly_the_shifted_byte() {
        // A single-byte fault in state9 byte j passes only through the
        // final SubBytes + ShiftRows, so exactly ct[shift_rows_dest(j)]
        // differs — the relation single-byte DFA inverts.
        for j in [0usize, 5, 10, 15] {
            let mut mask = [0u8; 16];
            mask[j] = 0x01;
            let faulty = encrypt_with_state_faults(&FIPS_KEY, &FIPS_PT, &[(9, mask)]);
            let diff_positions: Vec<usize> = (0..16).filter(|&i| faulty[i] != FIPS_CT[i]).collect();
            assert_eq!(diff_positions, vec![shift_rows_dest(j)], "byte {j}");
        }
    }

    #[test]
    fn round10_fault_hits_ciphertext_directly() {
        let mut mask = [0u8; 16];
        mask[3] = 0x80;
        let faulty = encrypt_with_state_faults(&FIPS_KEY, &FIPS_PT, &[(10, mask)]);
        let mut expect = FIPS_CT;
        expect[3] ^= 0x80;
        assert_eq!(faulty, expect);
    }

    #[test]
    fn early_round_fault_avalanches() {
        // A round-5 fault diffuses through the remaining MixColumns
        // layers: every ciphertext byte should differ.
        let mut mask = [0u8; 16];
        mask[0] = 0x01;
        let faulty = encrypt_with_state_faults(&FIPS_KEY, &FIPS_PT, &[(5, mask)]);
        assert!((0..16).all(|i| faulty[i] != FIPS_CT[i]));
    }

    #[test]
    fn premix_fault_spreads_over_one_column_of_state9() {
        // ε before MixColumns of round 9, at state byte 4c+r, produces
        // state9 column-c diffs {M[i][r]·ε}; through the final round
        // those land on a ciphertext diagonal with exactly 4 diff bytes.
        let states = encrypt_round_states(&FIPS_KEY, &FIPS_PT);
        let (byte, delta) = (6usize, 0x21u8); // column 1, row 2
        let faulty = encrypt_with_premix_fault(&FIPS_KEY, &FIPS_PT, 9, byte, delta);
        let diff_positions: Vec<usize> = (0..16).filter(|&i| faulty[i] != FIPS_CT[i]).collect();
        assert_eq!(diff_positions.len(), 4);
        // Each diff byte's state9 difference is a MixColumns coefficient
        // image of delta.
        let rk = key_expansion(&FIPS_KEY);
        let allowed = [gf_mul(delta, 1), gf_mul(delta, 2), gf_mul(delta, 3)];
        for &jd in &diff_positions {
            // invert the final round at position jd
            let j = (0..16).find(|&j| shift_rows_dest(j) == jd).unwrap();
            let s9 = INV_SBOX[(FIPS_CT[jd] ^ rk[10][jd]) as usize];
            let s9f = INV_SBOX[(faulty[jd] ^ rk[10][jd]) as usize];
            assert_eq!(s9, states[9][j]);
            assert!(allowed.contains(&(s9 ^ s9f)), "diff {:02x}", s9 ^ s9f);
        }
    }
}
