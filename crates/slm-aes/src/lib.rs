//! AES-128 victim model: software reference cipher, a cycle-accurate
//! 32-bit-datapath hardware model, and its power-leakage model.
//!
//! The paper's victim is an AES module "synthesized and running at
//! 100 MHz \[with\] a 32-bit datapath so that four SBoxes are evaluated in
//! parallel" (Section IV). This crate reproduces that victim:
//!
//! * [`soft`] — byte-exact AES-128 encryption/decryption and key
//!   schedule, validated against FIPS-197 vectors. Also exports
//!   [`soft::SBOX`]/[`soft::INV_SBOX`], which the CPA attack in
//!   `slm-cpa` uses for its key hypotheses.
//! * [`Aes32Rtl`] — the hardware model: one AddRoundKey load cycle, then
//!   four cycles per round (one 32-bit column per cycle), 41 active
//!   cycles per block at 100 MHz.
//! * [`LeakageModel`] — per-cycle supply current: a Hamming-distance term
//!   for the state-register update, a Hamming-weight term for the
//!   combinational activity of the datapath operand, plus Gaussian
//!   algorithmic noise. The weight term is what makes the paper's
//!   "single bit before the final SBox" hypothesis correlate (see
//!   DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use slm_aes::{soft, Aes32Rtl, LeakageModel};
//! use slm_pdn::noise::Rng64;
//!
//! let key = [0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
//!            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c];
//! let rtl = Aes32Rtl::new(key);
//! let mut rng = Rng64::new(1);
//! let (ct, trace) = rtl.encrypt_with_power(
//!     [0u8; 16], &LeakageModel::default(), &mut rng);
//! assert_eq!(ct, soft::encrypt(&key, &[0u8; 16]));
//! assert_eq!(trace.len(), Aes32Rtl::CYCLES_PER_BLOCK);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod leakage;
mod rtl;
pub mod soft;

pub use leakage::LeakageModel;
pub use rtl::Aes32Rtl;
