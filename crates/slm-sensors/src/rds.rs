//! Routing-delay sensor (RDS) model.
//!
//! Spielmann, Glamočanin and Stojilović ("RDS: FPGA Routing Delay
//! Sensors for Effective Remote Power Analysis Attacks", TCHES 2023 —
//! reference \[15\] of the reproduced paper) build the sensing delay line
//! out of *FPGA interconnect* instead of logic primitives: the tapped
//! elements are routing segments threaded through switch boxes, so the
//! netlist contains no buffer chain at all — route-throughs are
//! configuration, not cells. Structural bitstream checking therefore
//! has even less to look at than for a TDC; only timing-aware checks
//! can see it.
//!
//! Electrically the RDS behaves like a fine-pitch TDC: routing-segment
//! delays are smaller and more uniform than LUT delays, giving better
//! voltage resolution per tap. This model reuses the thermometer
//! mathematics of [`crate::TdcSensor`] with routing-grade parameters,
//! and exists so the sensor taxonomy of the paper's related work is
//! complete and comparable within one framework.

use crate::tdc::{TdcConfig, TdcSensor};
use slm_timing::VoltageDelayLaw;

/// A routing-delay sensor: a TDC whose delay elements are interconnect
/// segments.
///
/// # Example
///
/// ```
/// use slm_sensors::RdsSensor;
/// let mut rds = RdsSensor::paper_150mhz(1);
/// let idle = rds.sample(1.0);
/// let droop = rds.sample(0.98);
/// assert!(droop < idle);
/// ```
#[derive(Debug, Clone)]
pub struct RdsSensor {
    inner: TdcSensor,
}

impl RdsSensor {
    /// Routing-grade configuration at the 150 MS/s sampling rate: finer
    /// tap pitch (single switch-box hops ≈ 12 ps) and lower per-tap
    /// jitter than the LUT-based TDC, calibrated to the same idle
    /// mid-scale.
    pub fn paper_150mhz(seed: u64) -> Self {
        let window_ps = 1e6 / 150.0;
        let tap_ps = 12.0;
        let idle_target = 31.0;
        RdsSensor {
            inner: TdcSensor::new(TdcConfig {
                stages: 64,
                tap_ps,
                coarse_ps: window_ps - idle_target * tap_ps,
                window_ps,
                jitter_ps: 1.8,
                law: VoltageDelayLaw::default(),
                seed,
            }),
        }
    }

    /// The underlying (TDC-equivalent) configuration.
    pub fn config(&self) -> &TdcConfig {
        self.inner.config()
    }

    /// Samples the thermometer depth at supply voltage `v`.
    pub fn sample(&mut self, v: f64) -> u32 {
        self.inner.sample(v)
    }

    /// Noise-free expected depth at `v`.
    pub fn expected_depth(&self, v: f64) -> f64 {
        self.inner.expected_depth(v)
    }

    /// Voltage gain: taps of depth change per volt of droop around the
    /// operating point — the figure of merit where the RDS beats the
    /// LUT TDC.
    pub fn gain_taps_per_volt(&self, v: f64) -> f64 {
        let dv = 1e-4;
        (self.expected_depth(v + dv) - self.expected_depth(v - dv)).abs() / (2.0 * dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tdc::TdcConfig;

    #[test]
    fn rds_tracks_voltage() {
        let mut rds = RdsSensor::paper_150mhz(1);
        let idle = rds.expected_depth(1.0);
        assert!((28.0..=34.0).contains(&idle), "idle depth = {idle}");
        assert!(rds.sample(0.97) < rds.sample(1.02));
    }

    #[test]
    fn rds_outresolves_the_lut_tdc() {
        // Finer taps → higher gain per volt than the TDC at the same
        // operating point.
        let rds = RdsSensor::paper_150mhz(2);
        let tdc = crate::TdcSensor::new(TdcConfig::paper_150mhz(2));
        let v = 0.995;
        let g_rds = rds.gain_taps_per_volt(v);
        let g_tdc = {
            let dv = 1e-4;
            (tdc.expected_depth(v + dv) - tdc.expected_depth(v - dv)).abs() / (2.0 * dv)
        };
        assert!(
            g_rds > 1.5 * g_tdc,
            "RDS gain {g_rds:.0} vs TDC gain {g_tdc:.0} taps/V"
        );
    }

    #[test]
    fn rds_has_no_netlist_footprint() {
        // The structural point: an RDS is interconnect configuration.
        // There is nothing to hand to the checker — the closest netlist
        // materialization is an *empty* logic netlist, which is trivially
        // clean. (A TDC materializes as a tapped buffer chain and is
        // flagged; see slm-checker.)
        let empty =
            slm_netlist::Netlist::from_parts("rds_logic_view", vec![], vec![], vec![], vec![])
                .unwrap();
        assert_eq!(empty.len(), 0, "route-throughs contribute no cells");
    }
}
