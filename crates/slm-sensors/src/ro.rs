//! Ring-oscillator models: the RO array power virus and the classic
//! RO-counter sensor.

use serde::{Deserialize, Serialize};
use slm_pdn::noise::Rng64;
use slm_timing::VoltageDelayLaw;

/// An array of enableable ring oscillators used as a controlled
/// current load — the paper's "8000 ROs" fluctuation generator.
///
/// Each enabled RO toggles continuously and draws a roughly constant
/// dynamic current. The experiments gate the array with a slow square
/// wave: gradually enabled, suddenly disabled (Section V-A), producing
/// the droop/overshoot pairs of Figs. 5, 6 and 14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoArray {
    /// Total oscillators placed.
    pub count: usize,
    /// Dynamic current per enabled oscillator, amps.
    pub current_per_ro_a: f64,
    enabled: usize,
}

impl RoArray {
    /// The paper's array: 8000 ROs. Per-RO current is chosen so the full
    /// array droops the default PDN by ~60 mV — deep enough to sweep the
    /// TDC from its idle ~30 down toward the single digits and to sweep
    /// the capture point across a few tens of benign endpoints, the
    /// regime Figs. 5–8 show.
    pub fn paper_8000() -> Self {
        RoArray {
            count: 8000,
            current_per_ro_a: 0.3e-3,
            enabled: 0,
        }
    }

    /// Creates an array with all oscillators disabled.
    pub fn new(count: usize, current_per_ro_a: f64) -> Self {
        RoArray {
            count,
            current_per_ro_a,
            enabled: 0,
        }
    }

    /// Enables exactly `n` oscillators (clamped to the array size).
    pub fn set_enabled(&mut self, n: usize) {
        self.enabled = n.min(self.count);
    }

    /// Enables a fraction of the array (0.0..=1.0).
    pub fn set_enabled_fraction(&mut self, frac: f64) {
        let n = (self.count as f64 * frac.clamp(0.0, 1.0)).round() as usize;
        self.set_enabled(n);
    }

    /// Number of currently enabled oscillators.
    pub fn enabled(&self) -> usize {
        self.enabled
    }

    /// Instantaneous current drawn by the array, amps.
    pub fn current_a(&self) -> f64 {
        self.enabled as f64 * self.current_per_ro_a
    }
}

/// The classic RO-counter sensor (Fig. 1 left): count oscillations in a
/// fixed window; the count tracks voltage because RO frequency falls
/// with gate delay.
///
/// Included for completeness of the sensor taxonomy; the paper uses ROs
/// only as a load generator, and `slm-checker` flags this structure as
/// malicious (it needs a combinational loop).
#[derive(Debug, Clone)]
pub struct RoSensor {
    /// Oscillation frequency at nominal voltage, Hz.
    pub f0_hz: f64,
    /// Voltage→delay law.
    pub law: VoltageDelayLaw,
    rng: Rng64,
    phase: f64,
}

impl RoSensor {
    /// Creates a sensor with the given nominal frequency.
    pub fn new(f0_hz: f64, law: VoltageDelayLaw, seed: u64) -> Self {
        RoSensor {
            f0_hz,
            law,
            rng: Rng64::new(seed),
            phase: 0.0,
        }
    }

    /// Counts oscillations over a window of `window_s` seconds at
    /// voltage `v`, carrying fractional phase across windows.
    pub fn count(&mut self, v: f64, window_s: f64) -> u32 {
        let f = self.f0_hz / self.law.scale(v);
        // ±0.2 % cycle-to-cycle jitter
        let jitter = 1.0 + self.rng.normal_scaled(0.002);
        self.phase += f * window_s * jitter;
        let whole = self.phase.floor();
        self.phase -= whole;
        whole as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_enable_clamps() {
        let mut a = RoArray::new(100, 1e-3);
        a.set_enabled(250);
        assert_eq!(a.enabled(), 100);
        assert!((a.current_a() - 0.1).abs() < 1e-12);
        a.set_enabled_fraction(0.5);
        assert_eq!(a.enabled(), 50);
        a.set_enabled_fraction(-1.0);
        assert_eq!(a.enabled(), 0);
    }

    #[test]
    fn paper_array_full_load() {
        let mut a = RoArray::paper_8000();
        a.set_enabled_fraction(1.0);
        assert!((a.current_a() - 2.4).abs() < 1e-9);
    }

    #[test]
    fn ro_sensor_counts_track_voltage() {
        let law = VoltageDelayLaw::default();
        let mut s_hi = RoSensor::new(300e6, law, 1);
        let mut s_lo = RoSensor::new(300e6, law, 1);
        let window = 1e-5;
        let hi = s_hi.count(1.0, window);
        let lo = s_lo.count(0.9, window);
        assert!(hi > lo, "count must fall under droop: {hi} vs {lo}");
        // nominal: ~3000 counts
        assert!((2800..3200).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn phase_carries_between_windows() {
        let law = VoltageDelayLaw::default();
        let mut s = RoSensor::new(1e6, law, 2);
        // window of 0.6 cycles: first count 0, second count 1
        let c1 = s.count(1.0, 0.6e-6);
        let c2 = s.count(1.0, 0.6e-6);
        assert_eq!(c1 + c2, 1, "got {c1} then {c2}");
    }
}
