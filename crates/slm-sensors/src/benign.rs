//! The benign-logic sensor: the paper's core contribution.

use serde::{Deserialize, Serialize};
use slm_pdn::noise::Rng64;
use slm_timing::{VoltageDelayLaw, Waveform};

/// Operating point of a misused benign circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenignSensorConfig {
    /// Overclocked frequency the circuit runs at, MHz (the paper uses
    /// 300 MHz for circuits synthesized at 50 MHz).
    pub clock_mhz: f64,
    /// Voltage→delay law of the fabric.
    pub law: VoltageDelayLaw,
    /// Static per-endpoint capture-time spread (clock skew plus
    /// endpoint-to-register routing), RMS ps.
    pub skew_sigma_ps: f64,
    /// Per-sample capture jitter, RMS ps.
    pub jitter_sigma_ps: f64,
    /// RMS amplitude of the slow common-mode capture-time drift
    /// (temperature and flicker noise wandering the operating point), ps.
    pub drift_sigma_ps: f64,
    /// Correlation time of the drift process, seconds.
    pub drift_tau_s: f64,
    /// Seconds between consecutive samples (for the drift update);
    /// the fabric samples every 2nd 300 MHz tick.
    pub sample_interval_s: f64,
    /// Seed for skew assignment and jitter.
    pub seed: u64,
}

impl BenignSensorConfig {
    /// The paper's operating point: 300 MHz capture clock.
    pub fn overclocked_300mhz(seed: u64) -> Self {
        BenignSensorConfig {
            clock_mhz: 300.0,
            law: VoltageDelayLaw::default(),
            skew_sigma_ps: 60.0,
            jitter_sigma_ps: 60.0,
            drift_sigma_ps: 35.0,
            drift_tau_s: 5e-6,
            sample_interval_s: 2.0 / 300.0e6,
            seed,
        }
    }
}

impl Default for BenignSensorConfig {
    fn default() -> Self {
        Self::overclocked_300mhz(0xbe9)
    }
}

/// One captured measure-cycle result: the values latched from every path
/// endpoint of the benign circuit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SensorSample {
    /// Captured endpoint bits, packed LSB-first into 64-bit words.
    pub bits: Vec<u64>,
    /// Number of valid endpoint bits.
    pub len: usize,
}

impl SensorSample {
    /// Value of endpoint `i`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "endpoint {i} out of range {}", self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Hamming weight over all endpoints.
    pub fn hamming_weight(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming weight over a subset of endpoints (the post-processing
    /// step that restricts to *bits of interest*).
    pub fn hamming_weight_of(&self, endpoints: &[usize]) -> u32 {
        endpoints.iter().map(|&i| u32::from(self.bit(i))).sum()
    }

    /// XOR distance to another sample (which endpoints toggled).
    pub fn toggled_since(&self, other: &SensorSample) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Expands into booleans.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.bit(i)).collect()
    }
}

/// A benign circuit misused as a voltage sensor.
///
/// Construction: run `slm_timing::simulate_transition` once with the
/// chosen reset/measure stimulus pair to obtain the endpoint
/// [`Waveform`]s, then sample per capture edge. At supply voltage `v`
/// all delays scale by `law.scale(v)`; equivalently the capture edge
/// moves to `T / scale(v)` on the nominal waveform, which is how
/// [`BenignSensor::sample`] evaluates each endpoint in O(log t)
/// without re-simulating the netlist.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct BenignSensor {
    waves: Vec<Waveform>,
    skew_fs: Vec<f64>,
    period_fs: f64,
    config: BenignSensorConfig,
    rng: Rng64,
    /// Ornstein–Uhlenbeck state of the common-mode drift, fs.
    drift_fs: f64,
    drift_rho: f64,
}

impl BenignSensor {
    /// Creates a sensor from endpoint waveforms (one per observed path
    /// endpoint) and an operating point.
    pub fn new(waves: Vec<Waveform>, config: BenignSensorConfig) -> Self {
        let mut rng = Rng64::new(config.seed);
        let skew_fs = (0..waves.len())
            .map(|_| rng.normal_scaled(config.skew_sigma_ps * 1000.0))
            .collect();
        let period_fs = 1000.0 / config.clock_mhz * 1e6;
        let drift_rho = if config.drift_tau_s > 0.0 {
            (-config.sample_interval_s / config.drift_tau_s).exp()
        } else {
            0.0
        };
        BenignSensor {
            waves,
            skew_fs,
            period_fs,
            config,
            rng,
            drift_fs: 0.0,
            drift_rho,
        }
    }

    /// Advances the slow common-mode drift by one sample interval and
    /// returns its current value in femtoseconds.
    fn step_drift(&mut self) -> f64 {
        if self.config.drift_sigma_ps == 0.0 {
            return 0.0;
        }
        let sigma = self.config.drift_sigma_ps * 1000.0;
        let innov = sigma * (1.0 - self.drift_rho * self.drift_rho).sqrt();
        self.drift_fs = self.drift_rho * self.drift_fs + self.rng.normal_scaled(innov);
        self.drift_fs
    }

    /// Number of observed endpoints.
    pub fn len(&self) -> usize {
        self.waves.len()
    }

    /// Whether the sensor observes no endpoints.
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }

    /// The configuration.
    pub fn config(&self) -> &BenignSensorConfig {
        &self.config
    }

    /// The endpoint values in the settled reset state.
    pub fn reset_values(&self) -> SensorSample {
        let mut bits = vec![0u64; self.waves.len().div_ceil(64)];
        for (i, w) in self.waves.iter().enumerate() {
            if w.initial {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        SensorSample {
            bits,
            len: self.waves.len(),
        }
    }

    /// Captures all endpoints at the measure edge under supply voltage
    /// `v`.
    pub fn sample(&mut self, v: f64) -> SensorSample {
        let scale = self.config.law.scale(v);
        let t0 = self.period_fs / scale + self.step_drift();
        let jitter_band_fs = 4.5 * self.config.jitter_sigma_ps * 1000.0;
        let mut bits = vec![0u64; self.waves.len().div_ceil(64)];
        for (i, w) in self.waves.iter().enumerate() {
            let t_nominal = t0 + self.skew_fs[i] / scale;
            let value = if w.transitions.is_empty() {
                w.initial
            } else {
                // Draw per-sample jitter only when a transition is close
                // enough to matter; far from any edge the captured value
                // is deterministic and the draw would be wasted.
                let t_int = t_nominal.max(0.0) as u64;
                let k = w
                    .transitions
                    .partition_point(|&(t, _)| (t as f64) < t_nominal);
                let near = {
                    let before = if k > 0 {
                        t_nominal - w.transitions[k - 1].0 as f64
                    } else {
                        f64::INFINITY
                    };
                    let after = if k < w.transitions.len() {
                        w.transitions[k].0 as f64 - t_nominal
                    } else {
                        f64::INFINITY
                    };
                    before.min(after) <= jitter_band_fs
                };
                if near && self.config.jitter_sigma_ps > 0.0 {
                    let t_jit =
                        t_nominal + self.rng.normal_scaled(self.config.jitter_sigma_ps * 1000.0);
                    w.sampled_at(t_jit.max(0.0) as u64)
                } else {
                    w.sampled_at(t_int)
                }
            };
            if value {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        SensorSample {
            bits,
            len: self.waves.len(),
        }
    }

    /// Captures only the listed endpoints (in the given order) — the
    /// cheap path when the attacker has already reduced to *bits of
    /// interest* and does not need the full endpoint vector.
    pub fn sample_endpoints(&mut self, v: f64, endpoints: &[usize]) -> SensorSample {
        let scale = self.config.law.scale(v);
        let t0 = self.period_fs / scale + self.step_drift();
        let jitter_band_fs = 4.5 * self.config.jitter_sigma_ps * 1000.0;
        let mut bits = vec![0u64; endpoints.len().div_ceil(64)];
        for (slot, &i) in endpoints.iter().enumerate() {
            let w = &self.waves[i];
            let t_nominal = t0 + self.skew_fs[i] / scale;
            let value = if w.transitions.is_empty() {
                w.initial
            } else {
                let k = w
                    .transitions
                    .partition_point(|&(t, _)| (t as f64) < t_nominal);
                let before = if k > 0 {
                    t_nominal - w.transitions[k - 1].0 as f64
                } else {
                    f64::INFINITY
                };
                let after = if k < w.transitions.len() {
                    w.transitions[k].0 as f64 - t_nominal
                } else {
                    f64::INFINITY
                };
                if before.min(after) <= jitter_band_fs && self.config.jitter_sigma_ps > 0.0 {
                    let t_jit =
                        t_nominal + self.rng.normal_scaled(self.config.jitter_sigma_ps * 1000.0);
                    w.sampled_at(t_jit.max(0.0) as u64)
                } else {
                    w.sampled_at(t_nominal.max(0.0) as u64)
                }
            };
            if value {
                bits[slot / 64] |= 1 << (slot % 64);
            }
        }
        SensorSample {
            bits,
            len: endpoints.len(),
        }
    }

    /// Settled (t → ∞) value of every endpoint under the measure
    /// stimulus. An attacker knows these from functionally simulating
    /// their own circuit; they give each endpoint's droop polarity — a
    /// captured value equal to `!final` means the capture edge beat the
    /// endpoint's last transition (slow/droop side), so aligning bits as
    /// `captured XOR final` makes every endpoint count droops positively.
    pub fn final_values(&self) -> Vec<bool> {
        self.waves.iter().map(Waveform::final_value).collect()
    }

    /// Noise-free captured value of a single endpoint at voltage `v`.
    pub fn expected_bit(&self, endpoint: usize, v: f64) -> bool {
        let scale = self.config.law.scale(v);
        let t = (self.period_fs + self.skew_fs[endpoint]) / scale;
        self.waves[endpoint].sampled_at(t.max(0.0) as u64)
    }

    /// Endpoints whose captured value differs between two voltages —
    /// a cheap predictor of which bits a given droop makes sensitive.
    pub fn endpoints_sensitive_between(&self, v_low: f64, v_high: f64) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.expected_bit(i, v_low) != self.expected_bit(i, v_high))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_netlist::generators::ripple_carry_adder;
    use slm_netlist::words;
    use slm_timing::{simulate_transition, DelayModel};

    fn adder_waves(n: usize) -> Vec<Waveform> {
        let nl = ripple_carry_adder(n).unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&nl, 20.0, 0.9)
            .unwrap();
        let mut reset = words::to_bits(0, n);
        reset.extend(words::to_bits(0, n));
        let mut measure = words::to_bits((1u128 << n) - 1, n);
        measure.extend(words::to_bits(1, n));
        simulate_transition(&ann, &reset, &measure)
            .unwrap()
            .into_output_waves()
    }

    fn quiet_config() -> BenignSensorConfig {
        BenignSensorConfig {
            skew_sigma_ps: 0.0,
            jitter_sigma_ps: 0.0,
            ..BenignSensorConfig::overclocked_300mhz(1)
        }
    }

    #[test]
    fn droop_freezes_carry_propagation() {
        let mut s = BenignSensor::new(adder_waves(64), quiet_config());
        // At 300 MHz, only the first ~3.3 ns of the 18 ns carry chain
        // completes: low sum bits read 0 (carry arrived), high bits stay 1.
        let idle = s.sample(1.0);
        let hw_idle = idle.hamming_weight();
        let droop = s.sample(0.94);
        let hw_droop = droop.hamming_weight();
        // Slower gates → carry reaches fewer stages → more bits still 1.
        assert!(
            hw_droop > hw_idle,
            "droop HW {hw_droop} !> idle HW {hw_idle}"
        );
        let over = s.sample(1.05);
        assert!(over.hamming_weight() < hw_idle);
    }

    #[test]
    fn sensitive_endpoints_form_contiguous_band() {
        let s = BenignSensor::new(adder_waves(64), quiet_config());
        let sens = s.endpoints_sensitive_between(0.95, 1.02);
        assert!(!sens.is_empty(), "some endpoints must be sensitive");
        assert!(
            sens.len() < 40,
            "not every endpoint should be sensitive: {}",
            sens.len()
        );
        // Carry-chain arrivals are ordered, so the sensitive band is a
        // run of consecutive sum-bit indices.
        for w in sens.windows(2) {
            assert!(w[1] - w[0] <= 2, "band has a large gap: {sens:?}");
        }
    }

    #[test]
    fn reset_values_match_initial() {
        let waves = adder_waves(16);
        let initials: Vec<bool> = waves.iter().map(|w| w.initial).collect();
        let s = BenignSensor::new(waves, quiet_config());
        assert_eq!(s.reset_values().to_bools(), initials);
    }

    #[test]
    fn jitter_only_near_threshold() {
        let mut cfg = quiet_config();
        cfg.jitter_sigma_ps = 8.0;
        let mut s = BenignSensor::new(adder_waves(64), cfg);
        // Sample many times at constant voltage: bits far from the
        // threshold must be rock-solid, some near-threshold bit may flip.
        let first = s.sample(1.0);
        let mut toggle_histogram = vec![0u32; first.len];
        for _ in 0..200 {
            let next = s.sample(1.0);
            for (i, count) in toggle_histogram.iter_mut().enumerate() {
                if next.bit(i) != first.bit(i) {
                    *count += 1;
                }
            }
        }
        let flipping: Vec<usize> = toggle_histogram
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        assert!(
            flipping.len() <= 6,
            "only near-threshold endpoints may dither: {flipping:?}"
        );
    }

    #[test]
    fn sample_len_and_packing() {
        let mut s = BenignSensor::new(adder_waves(64), quiet_config());
        let smp = s.sample(1.0);
        assert_eq!(smp.len, 65); // 64 sums + carry out
        assert_eq!(smp.bits.len(), 2);
        let bools = smp.to_bools();
        assert_eq!(bools.len(), 65);
        assert_eq!(
            bools.iter().filter(|&&b| b).count() as u32,
            smp.hamming_weight()
        );
    }

    #[test]
    fn sample_endpoints_matches_full_sample_when_quiet() {
        let mut s = BenignSensor::new(adder_waves(32), quiet_config());
        let full = s.sample(0.98);
        let subset: Vec<usize> = vec![0, 5, 17, 31, 32];
        let sub = s.sample_endpoints(0.98, &subset);
        for (slot, &i) in subset.iter().enumerate() {
            assert_eq!(sub.bit(slot), full.bit(i), "endpoint {i}");
        }
        assert_eq!(sub.len, subset.len());
    }

    #[test]
    fn hamming_weight_of_subset() {
        let mut s = BenignSensor::new(adder_waves(32), quiet_config());
        let smp = s.sample(1.0);
        let all: Vec<usize> = (0..smp.len).collect();
        assert_eq!(smp.hamming_weight_of(&all), smp.hamming_weight());
        assert_eq!(smp.hamming_weight_of(&[]), 0);
    }

    #[test]
    fn toggled_since_counts_xor() {
        let a = SensorSample {
            bits: vec![0b1010],
            len: 4,
        };
        let b = SensorSample {
            bits: vec![0b0110],
            len: 4,
        };
        assert_eq!(a.toggled_since(&b), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let a = SensorSample {
            bits: vec![0],
            len: 4,
        };
        let _ = a.bit(4);
    }
}
