//! Time-to-Digital Converter sensor model.

use serde::{Deserialize, Serialize};
use slm_pdn::noise::Rng64;
use slm_timing::VoltageDelayLaw;

/// Geometry and calibration of a TDC sensor.
///
/// A TDC launches the clock itself into a coarse delay (carry chains or
/// LUTs) followed by a tapped fine delay line; registers after each tap
/// capture how far the edge travelled within the sampling window. The
/// observable is a thermometer code whose depth rises when gates are
/// fast (high voltage) and falls when they are slow (droop) — the red
/// curve of the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdcConfig {
    /// Number of observable taps (paper-style TDCs use 64).
    pub stages: usize,
    /// Fine tap pitch at nominal voltage, ps.
    pub tap_ps: f64,
    /// Calibrated coarse ("initial") delay at nominal voltage, ps.
    pub coarse_ps: f64,
    /// Sampling window, ps (one period of the sampling clock).
    pub window_ps: f64,
    /// RMS sampling jitter, ps.
    pub jitter_ps: f64,
    /// Voltage→delay law shared with the rest of the fabric.
    pub law: VoltageDelayLaw,
    /// Noise seed.
    pub seed: u64,
}

impl TdcConfig {
    /// The paper's configuration: 64 taps sampled at 150 MHz, calibrated
    /// so the idle output sits near tap 31 — matching Fig. 6, where the
    /// idle TDC reads ≈ 30 and "bit 32 \[is\] close to the idle value".
    pub fn paper_150mhz(seed: u64) -> Self {
        let window_ps = 1e6 / 150.0; // 6666.7 ps
        let tap_ps = 25.0;
        let idle_target = 31.0;
        TdcConfig {
            stages: 64,
            tap_ps,
            coarse_ps: window_ps - idle_target * tap_ps,
            window_ps,
            jitter_ps: 3.0,
            law: VoltageDelayLaw::default(),
            seed,
        }
    }
}

impl Default for TdcConfig {
    fn default() -> Self {
        Self::paper_150mhz(0x7dc)
    }
}

/// A TDC sensor instance with its private jitter stream.
#[derive(Debug, Clone)]
pub struct TdcSensor {
    config: TdcConfig,
    rng: Rng64,
}

impl TdcSensor {
    /// Creates the sensor.
    pub fn new(config: TdcConfig) -> Self {
        TdcSensor {
            rng: Rng64::new(config.seed),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TdcConfig {
        &self.config
    }

    /// Samples the thermometer depth (0..=stages) at supply voltage `v`.
    pub fn sample(&mut self, v: f64) -> u32 {
        let s = self.config.law.scale(v);
        let remaining = self.config.window_ps - self.config.coarse_ps * s
            + self.rng.normal_scaled(self.config.jitter_ps);
        let depth = (remaining / (self.config.tap_ps * s)).floor();
        depth.clamp(0.0, self.config.stages as f64) as u32
    }

    /// Samples and expands into per-tap thermometer bits, LSB = tap 0.
    pub fn sample_bits(&mut self, v: f64) -> u64 {
        let depth = self.sample(v);
        if depth >= 64 {
            u64::MAX
        } else {
            (1u64 << depth) - 1
        }
    }

    /// Expected (noise-free) depth at voltage `v`.
    pub fn expected_depth(&self, v: f64) -> f64 {
        let s = self.config.law.scale(v);
        ((self.config.window_ps - self.config.coarse_ps * s) / (self.config.tap_ps * s))
            .clamp(0.0, self.config.stages as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> TdcSensor {
        let mut c = TdcConfig::paper_150mhz(1);
        c.jitter_ps = 0.0;
        TdcSensor::new(c)
    }

    #[test]
    fn idle_depth_near_31() {
        let mut t = quiet();
        let d = t.sample(1.0);
        assert!((30..=32).contains(&d), "idle depth = {d}");
    }

    #[test]
    fn droop_lowers_depth_overshoot_raises() {
        let mut t = quiet();
        let idle = t.sample(1.0);
        let droop = t.sample(0.95);
        let over = t.sample(1.04);
        assert!(droop < idle, "droop {droop} !< idle {idle}");
        assert!(over > idle, "overshoot {over} !> idle {idle}");
    }

    #[test]
    fn paper_magnitude_deep_droop_reads_near_10() {
        // Fig. 6: the 8000-RO droop takes the TDC from ~30 to ~10. In the
        // calibrated model that corresponds to a droop of roughly 22 mV.
        let t = quiet();
        let d = t.expected_depth(0.975);
        assert!((8.0..=22.0).contains(&d), "deep-droop depth = {d}");
    }

    #[test]
    fn saturates_at_bounds() {
        let mut t = quiet();
        assert_eq!(t.sample(0.5), 0);
        assert_eq!(t.sample(1.6), 64);
        assert_eq!(t.sample_bits(1.6), u64::MAX);
        assert_eq!(t.sample_bits(0.5), 0);
    }

    #[test]
    fn thermometer_bits_contiguous() {
        let mut t = TdcSensor::new(TdcConfig::paper_150mhz(3));
        for _ in 0..200 {
            let bits = t.sample_bits(0.99);
            // thermometer: bits+1 must be a power of two
            assert_eq!(bits & bits.wrapping_add(1), 0, "bits = {bits:#x}");
        }
    }

    #[test]
    fn jitter_varies_samples() {
        let mut t = TdcSensor::new(TdcConfig::paper_150mhz(4));
        let samples: Vec<u32> = (0..100).map(|_| t.sample(1.0)).collect();
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        assert!(max > min, "jitter should dither the reading");
        assert!(max - min < 8, "jitter too violent: {min}..{max}");
    }
}
