//! On-chip voltage sensors for multi-tenant FPGA power analysis.
//!
//! Three sensor families from the paper:
//!
//! * [`TdcSensor`] — the established delay-line Time-to-Digital
//!   Converter (Fig. 1 right): a calibrated coarse delay plus a tapped
//!   buffer line whose thermometer depth tracks supply voltage. The
//!   baseline the benign sensors are compared against.
//! * [`RdsSensor`] — the routing-delay sensor of the paper's related
//!   work \[15\]: interconnect-based, with no netlist footprint at all,
//! * [`RoArray`] / [`RoSensor`] — ring oscillators, used by the paper in
//!   two roles: an 8000-RO array as a *controlled voltage-fluctuation
//!   generator* (a power virus), and — for completeness — the classic
//!   RO-counter sensor of Fig. 1 (left).
//! * [`BenignSensor`] — the paper's contribution: any overclocked benign
//!   circuit, alternating a reset/measure stimulus pair; each primary
//!   output is a path endpoint whose captured value depends on whether
//!   its (voltage-scaled) arrival beats the capture edge.
//!
//! # Example: a benign ALU as a sensor
//!
//! ```
//! use slm_netlist::generators::ripple_carry_adder;
//! use slm_netlist::words;
//! use slm_timing::{simulate_transition, DelayModel};
//! use slm_sensors::{BenignSensor, BenignSensorConfig};
//!
//! let nl = ripple_carry_adder(64).unwrap();
//! let ann = DelayModel::default().annotate_for_period(&nl, 20.0, 0.9).unwrap();
//! // reset: 0+0, measure: (2^64-1)+1 — the paper's carry-chain stimulus
//! let mut reset = words::to_bits(0, 64); reset.extend(words::to_bits(0, 64));
//! let mut measure = words::to_bits(u64::MAX as u128, 64);
//! measure.extend(words::to_bits(1, 64));
//! let waves = simulate_transition(&ann, &reset, &measure).unwrap()
//!     .into_output_waves();
//! let mut sensor = BenignSensor::new(waves, BenignSensorConfig::overclocked_300mhz(7));
//! let idle = sensor.sample(1.00);
//! let droop = sensor.sample(0.93);
//! // A droop slows the carry chain, so fewer endpoints settle.
//! assert_ne!(idle.bits, droop.bits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benign;
mod rds;
mod ro;
mod tdc;

pub use benign::{BenignSensor, BenignSensorConfig, SensorSample};
pub use rds::RdsSensor;
pub use ro::{RoArray, RoSensor};
pub use tdc::{TdcConfig, TdcSensor};
