//! Property-based tests for the sensor models.

use proptest::prelude::*;
use slm_netlist::generators::ripple_carry_adder;
use slm_netlist::words;
use slm_sensors::{BenignSensor, BenignSensorConfig, RoArray, TdcConfig, TdcSensor};
use slm_timing::{simulate_transition, DelayModel};

fn adder_sensor(jitter_ps: f64, seed: u64) -> BenignSensor {
    let n = 32;
    let nl = ripple_carry_adder(n).unwrap();
    let ann = DelayModel::default()
        .annotate_for_period(&nl, 5.2, 1.0)
        .unwrap();
    let mut reset = words::to_bits(0, n);
    reset.extend(words::to_bits(0, n));
    let mut measure = vec![true; n];
    measure.extend(words::to_bits(1, n));
    let waves = simulate_transition(&ann, &reset, &measure)
        .unwrap()
        .into_output_waves();
    BenignSensor::new(
        waves,
        BenignSensorConfig {
            jitter_sigma_ps: jitter_ps,
            drift_sigma_ps: 0.0,
            skew_sigma_ps: 0.0,
            ..BenignSensorConfig::overclocked_300mhz(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TDC depth is monotone non-increasing as voltage falls.
    #[test]
    fn tdc_monotone_in_voltage(seed in any::<u64>()) {
        let mut cfg = TdcConfig::paper_150mhz(seed);
        cfg.jitter_ps = 0.0;
        let tdc = TdcSensor::new(cfg);
        let mut prev = u32::MAX;
        let mut v = 1.10;
        while v > 0.90 {
            let mut t = tdc.clone();
            let d = t.sample(v);
            prop_assert!(d <= prev, "depth rose as voltage fell at v={v}");
            prev = d;
            v -= 0.005;
        }
    }

    /// Noise-free benign captures are deterministic functions of voltage.
    #[test]
    fn benign_sensor_deterministic_without_noise(seed in any::<u64>(), dv in 0u32..60) {
        let v = 0.97 + f64::from(dv) * 0.001;
        let mut s1 = adder_sensor(0.0, seed);
        let mut s2 = adder_sensor(0.0, seed);
        prop_assert_eq!(s1.sample(v), s2.sample(v));
    }

    /// The aligned Hamming weight of the carry-chain sensor is monotone
    /// in voltage when noise-free: lower volts → fewer carries land →
    /// more residual 1s.
    #[test]
    fn benign_hw_monotone_without_noise(seed in any::<u64>()) {
        let mut sensor = adder_sensor(0.0, seed);
        let mut prev = 0;
        let mut v = 1.05;
        while v > 0.92 {
            let hw = sensor.sample(v).hamming_weight();
            prop_assert!(hw >= prev, "HW fell as voltage fell at v={v}");
            prev = hw;
            v -= 0.002;
        }
    }

    /// Subset sampling agrees with full sampling bit-for-bit when quiet.
    #[test]
    fn subset_sampling_consistent(seed in any::<u64>(), v_mils in 940u32..1050) {
        let v = f64::from(v_mils) / 1000.0;
        let mut s = adder_sensor(0.0, seed);
        let full = s.sample(v);
        let idx: Vec<usize> = (0..full.len).step_by(3).collect();
        let sub = s.sample_endpoints(v, &idx);
        for (slot, &i) in idx.iter().enumerate() {
            prop_assert_eq!(sub.bit(slot), full.bit(i));
        }
    }

    /// RO array current is linear in the enabled count.
    #[test]
    fn ro_array_linear(count in 1usize..10_000, frac in 0.0f64..1.0) {
        let mut a = RoArray::new(count, 0.25e-3);
        a.set_enabled_fraction(frac);
        let expect = a.enabled() as f64 * 0.25e-3;
        prop_assert!((a.current_a() - expect).abs() < 1e-12);
        prop_assert!(a.enabled() <= count);
    }

    /// Sample packing: hamming_weight equals the popcount of the packed
    /// words for arbitrary endpoints.
    #[test]
    fn sample_packing_consistent(v_mils in 940u32..1050, seed in any::<u64>()) {
        let mut s = adder_sensor(20.0, seed);
        let smp = s.sample(f64::from(v_mils) / 1000.0);
        let popcount: u32 = smp.bits.iter().map(|w| w.count_ones()).sum();
        prop_assert_eq!(popcount, smp.hamming_weight());
        let bools = smp.to_bools();
        prop_assert_eq!(bools.len(), smp.len);
        prop_assert_eq!(
            bools.iter().filter(|&&b| b).count() as u32,
            smp.hamming_weight()
        );
    }
}
