//! Property-based tests for the CPA toolbox.

use proptest::prelude::*;
use slm_aes::soft;
use slm_cpa::{
    measurements_to_disclosure, rank_progress, CpaAttack, LastRoundModel, MultiByteCpa,
    ProgressPoint, TraceBatch, WelchTTest,
};
use slm_pdn::noise::Rng64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CPA recovers a planted key from synthetic single-bit leakage for
    /// any key, target byte and bit.
    #[test]
    fn cpa_recovers_any_planted_key(key in any::<[u8; 16]>(),
                                    ct_byte in 0usize..16,
                                    bit in 0u8..8,
                                    seed in any::<u64>()) {
        let k10 = soft::key_expansion(&key)[10];
        let model = LastRoundModel { ct_byte, bit };
        let mut attack = CpaAttack::new(model, 1);
        let mut rng = Rng64::new(seed);
        for _ in 0..4000 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            let h = f64::from(u8::from(model.hypothesis(&ct, k10[ct_byte])));
            attack.add_trace(&ct, &[h + rng.normal_scaled(1.0)]);
        }
        let (best, peak) = attack.best_candidate();
        prop_assert_eq!(best, k10[ct_byte]);
        prop_assert!(peak > 0.2, "peak = {peak}");
    }

    /// Correlations are invariant under affine transforms of the traces
    /// (CPA normalizes means and scales).
    #[test]
    fn cpa_affine_invariant(scale in 0.5f64..20.0, offset in -100.0f64..100.0,
                            seed in any::<u64>()) {
        let key = [3u8; 16];
        let k10 = soft::key_expansion(&key)[10];
        let model = LastRoundModel::paper_target();
        let mut a1 = CpaAttack::new(model, 1);
        let mut a2 = CpaAttack::new(model, 1);
        let mut rng = Rng64::new(seed);
        for _ in 0..800 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            let h = f64::from(u8::from(model.hypothesis(&ct, k10[3])));
            let x = h + rng.normal_scaled(1.0);
            a1.add_trace(&ct, &[x]);
            a2.add_trace(&ct, &[x * scale + offset]);
        }
        let c1 = a1.correlations();
        let c2 = a2.correlations();
        for k in 0..256 {
            prop_assert!((c1[k][0] - c2[k][0]).abs() < 1e-9,
                "candidate {k}: {} vs {}", c1[k][0], c2[k][0]);
        }
    }

    /// |r| is always within [0, 1].
    #[test]
    fn correlation_bounded(seed in any::<u64>(), n in 10u32..300) {
        let model = LastRoundModel::paper_target();
        let mut attack = CpaAttack::new(model, 2);
        let mut rng = Rng64::new(seed);
        for _ in 0..n {
            let mut ct = [0u8; 16];
            rng.fill_bytes(&mut ct);
            attack.add_trace(&ct, &[rng.normal(), rng.uniform()]);
        }
        for row in attack.correlations() {
            for r in row {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
            }
        }
    }

    /// MTD is consistent with rank_progress: at and after the MTD
    /// checkpoint, the correct key has rank 0.
    #[test]
    fn mtd_consistent_with_ranks(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let key = 42u8;
        let progress: Vec<ProgressPoint> = (1..=10)
            .map(|i| {
                let mut peak_corr: Vec<f64> = (0..256).map(|_| rng.uniform() * 0.1).collect();
                if i > 5 {
                    peak_corr[key as usize] = 0.5; // stabilizes from checkpoint 6
                }
                ProgressPoint {
                    traces: i * 100,
                    peak_corr,
                }
            })
            .collect();
        let mtd = measurements_to_disclosure(&progress, key);
        let ranks = rank_progress(&progress, key);
        if let Some(at) = mtd {
            for &(traces, rank) in &ranks {
                if traces >= at {
                    prop_assert_eq!(rank, 0, "rank nonzero after MTD at trace {}", traces);
                }
            }
        }
    }

    /// The multi-byte attack agrees with sixteen independent single-byte
    /// attacks.
    #[test]
    fn multibyte_matches_single(seed in any::<u64>()) {
        let key = [9u8; 16];
        let k10 = soft::key_expansion(&key)[10];
        let mut multi = MultiByteCpa::new(0, 1);
        let mut single: Vec<CpaAttack> = (0..16)
            .map(|b| CpaAttack::new(LastRoundModel { ct_byte: b, bit: 0 }, 1))
            .collect();
        let mut rng = Rng64::new(seed);
        for _ in 0..300 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            let x = rng.normal();
            multi.add_trace(&ct, &[x]);
            for s in &mut single {
                s.add_trace(&ct, &[x]);
            }
        }
        for (b, s) in single.iter().enumerate() {
            prop_assert_eq!(multi.byte_attack(b).best_candidate(), s.best_candidate());
        }
        let _ = k10;
    }

    /// Welch t of identical populations stays small; a planted shift is
    /// detected.
    #[test]
    fn welch_t_detects_shift(shift in 0.3f64..2.0, seed in any::<u64>()) {
        let mut t = WelchTTest::new(1);
        let mut rng = Rng64::new(seed);
        for _ in 0..4000 {
            t.add(false, &[rng.normal()]);
            t.add(true, &[rng.normal() + shift]);
        }
        prop_assert!(t.max_abs_t() > 4.5, "t = {}", t.max_abs_t());
    }

    /// A sharded campaign merged from parallel partials is bit-identical
    /// (`==`) to the serial shard-by-shard run, for any shard size,
    /// trace budget and worker count. Shards are the unit of
    /// determinism: each shard's records depend only on
    /// `mix_seed(master, shard.index)`, so the worker count can never
    /// leak into the result.
    #[test]
    fn sharded_campaign_matches_serial(master in any::<u64>(),
                                       total in 1u64..600,
                                       shard_size in 1u64..200,
                                       workers in 1usize..9) {
        let model = LastRoundModel::paper_target();
        let plan = slm_par::ShardPlan::new(total, shard_size);
        let shards = plan.shards();
        let capture = |shard: &slm_par::ShardSpec| {
            let mut part = CpaAttack::new(model, 2);
            let mut rng = Rng64::new(slm_par::mix_seed(master, shard.index as u64));
            for _ in 0..shard.traces {
                let mut ct = [0u8; 16];
                rng.fill_bytes(&mut ct);
                // dyadic samples: every partial sum is exact in f64
                let x = [
                    (rng.next_u64() % 64) as f64 / 8.0,
                    (rng.next_u64() % 64) as f64 / 8.0,
                ];
                part.add_trace(&ct, &x);
            }
            part
        };

        // serial reference: shards captured and absorbed in index order
        let mut serial = CpaAttack::new(model, 2);
        for shard in &shards {
            serial.merge(&capture(shard));
        }

        // parallel run: capture on `workers` threads, merge in shard order
        let partials = slm_par::par_map(workers, &shards, capture);
        let mut merged = CpaAttack::new(model, 2);
        for part in &partials {
            merged.merge(part);
        }

        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.correlations(), serial.correlations());
        prop_assert_eq!(merged.traces(), total);
    }

    /// Merge is commutative and associative on the accumulator state.
    /// Sample values are dyadic rationals (multiples of 1/8, bounded),
    /// so every f64 sum is exact and the algebra holds bit-identically —
    /// not merely to within rounding.
    #[test]
    fn merge_is_commutative_and_associative(seed in any::<u64>(),
                                            na in 1usize..120,
                                            nb in 1usize..120,
                                            nc in 1usize..120) {
        let model = LastRoundModel::paper_target();
        let mut rng = Rng64::new(seed);
        let mut fill = |n: usize| {
            let mut a = CpaAttack::new(model, 2);
            for _ in 0..n {
                let mut ct = [0u8; 16];
                rng.fill_bytes(&mut ct);
                let x = [
                    (rng.next_u64() % 64) as f64 / 8.0,
                    (rng.next_u64() % 64) as f64 / 8.0,
                ];
                a.add_trace(&ct, &x);
            }
            a
        };
        let (a, b, c) = (fill(na), fill(nb), fill(nc));

        // commutativity: a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // identity: merging an empty accumulator is a no-op
        let mut with_empty = a.clone();
        with_empty.merge(&CpaAttack::new(model, 2));
        prop_assert_eq!(&with_empty, &a);
    }

    /// The blocked SoA batch path absorbs traces bit-identically to the
    /// scalar one-at-a-time path. Samples are dyadic rationals
    /// (multiples of 1/8, bounded), so every accumulator sum is exact
    /// in f64 and the comparison is `==` on the full accumulator state,
    /// matching PR 3's merge-algebra tests. Batch boundaries are drawn
    /// at arbitrary positions to exercise partial batches, singleton
    /// batches and empty flushes.
    #[test]
    fn soa_batch_matches_scalar_absorption(seed in any::<u64>(),
                                           total in 1usize..400,
                                           batch_size in 1usize..70,
                                           points in 1usize..4) {
        let model = LastRoundModel::paper_target();
        let mut scalar = CpaAttack::new(model, points);
        let mut batched = CpaAttack::new(model, points);
        let mut multi_scalar = MultiByteCpa::new(0, points);
        let mut multi_batched = MultiByteCpa::new(0, points);
        let mut rng = Rng64::new(seed);
        let mut batch = TraceBatch::with_capacity(points, batch_size);
        for t in 0..total {
            let mut ct = [0u8; 16];
            rng.fill_bytes(&mut ct);
            let x: Vec<f64> = (0..points)
                .map(|_| (rng.next_u64() % 64) as f64 / 8.0)
                .collect();
            scalar.add_trace(&ct, &x);
            multi_scalar.add_trace(&ct, &x);
            batch.push(ct, &x);
            if batch.len() == batch_size || t + 1 == total {
                batched.add_batch(&batch).unwrap();
                multi_batched.add_batch(&batch).unwrap();
                batch.clear();
            }
        }
        prop_assert_eq!(&batched, &scalar);
        prop_assert_eq!(batched.correlations(), scalar.correlations());
        prop_assert_eq!(batched.traces(), total as u64);
        prop_assert_eq!(&multi_batched, &multi_scalar);
    }

    /// The sixteen-byte accumulator merges exactly like its per-byte
    /// parts, and the parallel candidate evaluation agrees with the
    /// serial one at any worker count.
    #[test]
    fn multibyte_merge_and_parallel_eval(seed in any::<u64>(), workers in 1usize..9) {
        let mut rng = Rng64::new(seed);
        let mut fill = |n: usize| {
            let mut m = MultiByteCpa::new(0, 1);
            for _ in 0..n {
                let mut ct = [0u8; 16];
                rng.fill_bytes(&mut ct);
                m.add_trace(&ct, &[(rng.next_u64() % 64) as f64 / 8.0]);
            }
            m
        };
        let (a, b) = (fill(150), fill(170));
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.traces(), 320);
        prop_assert_eq!(merged.best_candidates_par(workers), merged.best_candidates());
        prop_assert_eq!(
            merged.recovered_round_key_par(workers),
            merged.recovered_round_key()
        );
    }
}
