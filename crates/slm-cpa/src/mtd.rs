//! Measurements-to-disclosure: how many traces until the correct key
//! leads and keeps leading.

use serde::{Deserialize, Serialize};

/// One checkpoint of an attack's progress: the peak |r| of every
/// candidate after `traces` traces. This is one x-position of the
/// paper's "correlation progress over 500k traces" plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressPoint {
    /// Traces absorbed at this checkpoint.
    pub traces: u64,
    /// Peak |r| per key candidate.
    pub peak_corr: Vec<f64>,
}

impl ProgressPoint {
    /// Whether `key` strictly leads every other candidate.
    pub fn key_leads(&self, key: u8) -> bool {
        let target = self.peak_corr[key as usize];
        self.peak_corr
            .iter()
            .enumerate()
            .all(|(k, &p)| k == key as usize || p < target)
    }

    /// Margin between the correct key's correlation and the best wrong
    /// candidate (negative when the key does not lead).
    pub fn margin(&self, key: u8) -> f64 {
        let target = self.peak_corr[key as usize];
        let best_other = self
            .peak_corr
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != key as usize)
            .map(|(_, &p)| p)
            .fold(f64::NEG_INFINITY, f64::max);
        target - best_other
    }
}

/// Rank of the correct key at every checkpoint — the "guessing entropy"
/// trajectory (rank 0 = disclosed). Complements
/// [`measurements_to_disclosure`] with how *close* an unconverged attack
/// got.
pub fn rank_progress(progress: &[ProgressPoint], key: u8) -> Vec<(u64, usize)> {
    progress
        .iter()
        .map(|p| {
            let target = p.peak_corr[key as usize];
            let rank = p.peak_corr.iter().filter(|&&c| c > target).count();
            (p.traces, rank)
        })
        .collect()
}

/// The first checkpoint from which the correct key leads at every later
/// checkpoint — the number the paper reports as "revealed after about
/// N traces". `None` if the key never stabilizes in the lead.
pub fn measurements_to_disclosure(progress: &[ProgressPoint], key: u8) -> Option<u64> {
    let first_stable = progress
        .iter()
        .rposition(|p| !p.key_leads(key))
        .map_or(0, |i| i + 1);
    progress.get(first_stable).map(|p| p.traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(traces: u64, correct: f64, other: f64) -> ProgressPoint {
        let mut peak_corr = vec![other; 256];
        peak_corr[42] = correct;
        ProgressPoint { traces, peak_corr }
    }

    #[test]
    fn disclosure_after_stabilization() {
        let progress = vec![
            point(100, 0.1, 0.2), // not leading
            point(200, 0.3, 0.2), // leads
            point(300, 0.1, 0.2), // lost the lead again
            point(400, 0.4, 0.2), // leads for good
            point(500, 0.5, 0.2),
        ];
        assert_eq!(measurements_to_disclosure(&progress, 42), Some(400));
    }

    #[test]
    fn immediate_disclosure() {
        let progress = vec![point(100, 0.9, 0.1), point(200, 0.9, 0.1)];
        assert_eq!(measurements_to_disclosure(&progress, 42), Some(100));
    }

    #[test]
    fn never_disclosed() {
        let progress = vec![point(100, 0.1, 0.2), point(200, 0.1, 0.3)];
        assert_eq!(measurements_to_disclosure(&progress, 42), None);
    }

    #[test]
    fn margin_signs() {
        assert!(point(1, 0.5, 0.2).margin(42) > 0.0);
        assert!(point(1, 0.1, 0.2).margin(42) < 0.0);
        assert!(point(1, 0.5, 0.2).key_leads(42));
        assert!(!point(1, 0.1, 0.2).key_leads(42));
    }

    #[test]
    fn rank_trajectory() {
        let progress = vec![
            point(100, 0.1, 0.2), // everyone else higher → rank 255
            point(200, 0.3, 0.2), // leads → rank 0
        ];
        let ranks = rank_progress(&progress, 42);
        assert_eq!(ranks, vec![(100, 255), (200, 0)]);
    }

    #[test]
    fn tie_does_not_count_as_leading() {
        let p = point(1, 0.2, 0.2);
        assert!(!p.key_leads(42));
    }
}
