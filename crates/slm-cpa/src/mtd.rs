//! Measurements-to-disclosure: how many traces until the correct key
//! leads and keeps leading.

use serde::{Deserialize, Serialize};

/// One checkpoint of an attack's progress: the peak |r| of every
/// candidate after `traces` traces. This is one x-position of the
/// paper's "correlation progress over 500k traces" plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressPoint {
    /// Traces absorbed at this checkpoint.
    pub traces: u64,
    /// Peak |r| per key candidate.
    pub peak_corr: Vec<f64>,
}

impl ProgressPoint {
    /// Whether `key` strictly leads every other candidate.
    ///
    /// A checkpoint with no candidates (empty `peak_corr`, e.g. a
    /// deserialized partial) or one too short to contain `key` never
    /// reports a lead — the attack cannot have disclosed a candidate it
    /// never scored.
    pub fn key_leads(&self, key: u8) -> bool {
        let Some(&target) = self.peak_corr.get(key as usize) else {
            return false;
        };
        self.peak_corr
            .iter()
            .enumerate()
            .all(|(k, &p)| k == key as usize || p < target)
    }

    /// Margin between the correct key's correlation and the best wrong
    /// candidate (negative when the key does not lead).
    ///
    /// Returns [`f64::NEG_INFINITY`] when `peak_corr` does not contain
    /// `key` — an unscored candidate trails every scored one.
    pub fn margin(&self, key: u8) -> f64 {
        let Some(&target) = self.peak_corr.get(key as usize) else {
            return f64::NEG_INFINITY;
        };
        let best_other = self
            .peak_corr
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != key as usize)
            .map(|(_, &p)| p)
            .fold(f64::NEG_INFINITY, f64::max);
        target - best_other
    }
}

/// Rank of the correct key at every checkpoint — the "guessing entropy"
/// trajectory (rank 0 = disclosed). Complements
/// [`measurements_to_disclosure`] with how *close* an unconverged attack
/// got.
pub fn rank_progress(progress: &[ProgressPoint], key: u8) -> Vec<(u64, usize)> {
    progress
        .iter()
        .map(|p| {
            let target = p.peak_corr[key as usize];
            let rank = p.peak_corr.iter().filter(|&&c| c > target).count();
            (p.traces, rank)
        })
        .collect()
}

/// The first checkpoint from which the correct key leads at every later
/// checkpoint — the number the paper reports as "revealed after about
/// N traces". `None` if the key never stabilizes in the lead.
pub fn measurements_to_disclosure(progress: &[ProgressPoint], key: u8) -> Option<u64> {
    let first_stable = progress
        .iter()
        .rposition(|p| !p.key_leads(key))
        .map_or(0, |i| i + 1);
    progress.get(first_stable).map(|p| p.traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(traces: u64, correct: f64, other: f64) -> ProgressPoint {
        let mut peak_corr = vec![other; 256];
        peak_corr[42] = correct;
        ProgressPoint { traces, peak_corr }
    }

    #[test]
    fn disclosure_after_stabilization() {
        let progress = vec![
            point(100, 0.1, 0.2), // not leading
            point(200, 0.3, 0.2), // leads
            point(300, 0.1, 0.2), // lost the lead again
            point(400, 0.4, 0.2), // leads for good
            point(500, 0.5, 0.2),
        ];
        assert_eq!(measurements_to_disclosure(&progress, 42), Some(400));
    }

    #[test]
    fn immediate_disclosure() {
        let progress = vec![point(100, 0.9, 0.1), point(200, 0.9, 0.1)];
        assert_eq!(measurements_to_disclosure(&progress, 42), Some(100));
    }

    #[test]
    fn never_disclosed() {
        let progress = vec![point(100, 0.1, 0.2), point(200, 0.1, 0.3)];
        assert_eq!(measurements_to_disclosure(&progress, 42), None);
    }

    #[test]
    fn margin_signs() {
        assert!(point(1, 0.5, 0.2).margin(42) > 0.0);
        assert!(point(1, 0.1, 0.2).margin(42) < 0.0);
        assert!(point(1, 0.5, 0.2).key_leads(42));
        assert!(!point(1, 0.1, 0.2).key_leads(42));
    }

    #[test]
    fn rank_trajectory() {
        let progress = vec![
            point(100, 0.1, 0.2), // everyone else higher → rank 255
            point(200, 0.3, 0.2), // leads → rank 0
        ];
        let ranks = rank_progress(&progress, 42);
        assert_eq!(ranks, vec![(100, 255), (200, 0)]);
    }

    #[test]
    fn tie_does_not_count_as_leading() {
        let p = point(1, 0.2, 0.2);
        assert!(!p.key_leads(42));
    }

    #[test]
    fn empty_checkpoint_never_leads() {
        let p = ProgressPoint {
            traces: 10,
            peak_corr: Vec::new(),
        };
        assert!(!p.key_leads(0));
        assert!(!p.key_leads(255));
        assert_eq!(p.margin(0), f64::NEG_INFINITY);
        // An all-empty progress curve never discloses.
        assert_eq!(measurements_to_disclosure(&[p], 42), None);
    }

    #[test]
    fn out_of_range_key_index_is_guarded() {
        // A truncated candidate list (e.g. a partial store restore)
        // must not panic when asked about a candidate it never scored.
        let p = ProgressPoint {
            traces: 5,
            peak_corr: vec![0.4, 0.2, 0.1],
        };
        assert!(!p.key_leads(200));
        assert_eq!(p.margin(200), f64::NEG_INFINITY);
        // In-range indices still behave normally on the short vector.
        assert!(p.key_leads(0));
        assert!(p.margin(0) > 0.0);
    }
}
