//! Trace-file storage.
//!
//! The paper's host script "transmit\[s\], receiv\[es\] and stor\[es\] traces
//! and tuples of plaintexts and ciphertexts. In addition to the raw
//! data, a separate file with traces only containing relevant bits for
//! the CPA is stored." This module is that storage layer: a compact,
//! self-describing binary format for post-processed trace campaigns,
//! written/read through any `std::io` stream so campaigns can be
//! captured once and re-analyzed offline.
//!
//! Trace-file format (all little-endian):
//!
//! ```text
//! magic "SLMT" | version u16 | points u16 | count u64
//! count × ( ciphertext [u8; 16] | points × f32 )
//! fletcher-64 checksum over everything above
//! ```
//!
//! The module also serializes [`CpaCheckpoint`]s —
//! [`write_checkpoint`] / [`read_checkpoint`] — so a long capture
//! campaign can persist its streaming accumulator and resume after a
//! crash without replaying every trace:
//!
//! ```text
//! magic "SLMC" | version u16 | points u16 | ct_byte u8 | bit u8 | traces u64
//! 256 × u64 bin_count | (256 × points) × f64 bin_sum | points × f64 sum_sq
//! fletcher-64 checksum over everything above
//! ```

use crate::attack::CpaCheckpoint;
use crate::LastRoundModel;
use std::io::{self, Read, Write};

/// Current trace-file format version.
pub const TRACE_FILE_VERSION: u16 = 1;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"SLMT";

const CHECKPOINT_MAGIC: [u8; 4] = *b"SLMC";

/// One stored trace: the ciphertext and its post-processed points.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Ciphertext returned with the capture.
    pub ciphertext: [u8; 16],
    /// Post-processed trace points (stored as `f32`).
    pub points: Vec<f32>,
}

/// Streaming checksum (Fletcher-64 over 32-bit words, byte-padded).
#[derive(Debug, Clone, Default)]
struct Fletcher64 {
    a: u64,
    b: u64,
    pending: [u8; 4],
    pending_len: usize,
}

impl Fletcher64 {
    fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.pending[self.pending_len] = byte;
            self.pending_len += 1;
            if self.pending_len == 4 {
                let w = u32::from_le_bytes(self.pending) as u64;
                self.a = (self.a + w) % 0xffff_ffff;
                self.b = (self.b + self.a) % 0xffff_ffff;
                self.pending_len = 0;
            }
        }
    }

    fn finish(mut self) -> u64 {
        if self.pending_len > 0 {
            for i in self.pending_len..4 {
                self.pending[i] = 0;
            }
            let w = u32::from_le_bytes(self.pending) as u64;
            self.a = (self.a + w) % 0xffff_ffff;
            self.b = (self.b + self.a) % 0xffff_ffff;
        }
        (self.b << 32) | self.a
    }
}

/// Writes a trace campaign.
///
/// Records must all have the same point count; the writer validates and
/// maintains the checksum. Call [`TraceWriter::finish`] to seal the
/// stream.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    points: u16,
    count: u64,
    sum: Fletcher64,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a new trace file with `points` points per trace.
    ///
    /// The header is written with a zero count placeholder strategy:
    /// because streams may not be seekable, the count is written at
    /// `finish` time into the trailer instead, and readers take the
    /// count from the trailer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn new(mut sink: W, points: u16) -> io::Result<Self> {
        let mut sum = Fletcher64::default();
        let mut header = Vec::with_capacity(8);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&TRACE_FILE_VERSION.to_le_bytes());
        header.extend_from_slice(&points.to_le_bytes());
        sink.write_all(&header)?;
        sum.update(&header);
        Ok(TraceWriter {
            sink,
            points,
            count: 0,
            sum,
            finished: false,
        })
    }

    /// Appends one trace.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the point count differs from the header;
    /// otherwise propagates I/O errors.
    pub fn write_trace(&mut self, ct: &[u8; 16], points: &[f64]) -> io::Result<()> {
        if points.len() != usize::from(self.points) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "expected {} points per trace, got {}",
                    self.points,
                    points.len()
                ),
            ));
        }
        let mut buf = Vec::with_capacity(16 + 4 * points.len());
        buf.extend_from_slice(ct);
        for &p in points {
            buf.extend_from_slice(&(p as f32).to_le_bytes());
        }
        self.sink.write_all(&buf)?;
        self.sum.update(&buf);
        self.count += 1;
        Ok(())
    }

    /// Number of traces written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Writes the trailer (count + checksum) and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        let count_bytes = self.count.to_le_bytes();
        self.sink.write_all(&count_bytes)?;
        self.sum.update(&count_bytes);
        let digest = std::mem::take(&mut self.sum).finish();
        self.sink.write_all(&digest.to_le_bytes())?;
        self.finished = true;
        Ok(self.sink)
    }
}

/// Reads a trace campaign written by [`TraceWriter`], validating the
/// checksum.
///
/// # Errors
///
/// `InvalidData` on bad magic, version, truncation, or checksum
/// mismatch.
pub fn read_traces<R: Read>(mut source: R) -> io::Result<Vec<TraceRecord>> {
    let mut data = Vec::new();
    source.read_to_end(&mut data)?;
    if data.len() < 8 + 8 + 8 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated file"));
    }
    if data[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != TRACE_FILE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let points = usize::from(u16::from_le_bytes([data[6], data[7]]));
    let body_end = data.len() - 8;
    // verify checksum over everything except the final digest
    let mut sum = Fletcher64::default();
    sum.update(&data[..body_end]);
    let expect = u64::from_le_bytes(data[body_end..].try_into().expect("8 bytes"));
    if sum.finish() != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checksum mismatch",
        ));
    }
    let count_off = body_end - 8;
    let count = u64::from_le_bytes(data[count_off..body_end].try_into().expect("8 bytes"));
    let record_len = 16 + 4 * points;
    let expected_len = 8 + count as usize * record_len;
    if count_off != expected_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("length mismatch: {count} records of {record_len} bytes"),
        ));
    }
    let mut out = Vec::with_capacity(count as usize);
    let mut off = 8;
    for _ in 0..count {
        let mut ciphertext = [0u8; 16];
        ciphertext.copy_from_slice(&data[off..off + 16]);
        off += 16;
        let mut pts = Vec::with_capacity(points);
        for _ in 0..points {
            pts.push(f32::from_le_bytes(
                data[off..off + 4].try_into().expect("4 bytes"),
            ));
            off += 4;
        }
        out.push(TraceRecord {
            ciphertext,
            points: pts,
        });
    }
    Ok(out)
}

/// Serializes a [`CpaCheckpoint`] with a Fletcher-64 integrity seal.
///
/// # Errors
///
/// `InvalidInput` if the point count exceeds the format's `u16` field;
/// otherwise propagates I/O errors.
pub fn write_checkpoint<W: Write>(mut sink: W, cp: &CpaCheckpoint) -> io::Result<()> {
    if cp.points > usize::from(u16::MAX) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{} points exceed the format limit", cp.points),
        ));
    }
    let mut buf = Vec::with_capacity(16 + 256 * 8 + (256 * cp.points + cp.points) * 8);
    buf.extend_from_slice(&CHECKPOINT_MAGIC);
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(cp.points as u16).to_le_bytes());
    buf.push(cp.model.ct_byte as u8);
    buf.push(cp.model.bit);
    buf.extend_from_slice(&cp.traces.to_le_bytes());
    for &c in &cp.bin_count {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    for &s in &cp.bin_sum {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    for &q in &cp.sum_sq {
        buf.extend_from_slice(&q.to_le_bytes());
    }
    let mut sum = Fletcher64::default();
    sum.update(&buf);
    buf.extend_from_slice(&sum.finish().to_le_bytes());
    sink.write_all(&buf)
}

/// Reads a checkpoint written by [`write_checkpoint`], validating the
/// integrity seal and the accumulator geometry.
///
/// # Errors
///
/// `InvalidData` on bad magic, version, truncation, checksum mismatch,
/// or a geometry that does not describe a valid accumulator.
pub fn read_checkpoint<R: Read>(mut source: R) -> io::Result<CpaCheckpoint> {
    let bad = |detail: &str| io::Error::new(io::ErrorKind::InvalidData, detail.to_string());
    let mut data = Vec::new();
    source.read_to_end(&mut data)?;
    if data.len() < 18 + 256 * 8 + 8 {
        return Err(bad("truncated checkpoint"));
    }
    if data[..4] != CHECKPOINT_MAGIC {
        return Err(bad("bad checkpoint magic"));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != CHECKPOINT_VERSION {
        return Err(bad(&format!("unsupported checkpoint version {version}")));
    }
    let body_end = data.len() - 8;
    let mut sum = Fletcher64::default();
    sum.update(&data[..body_end]);
    let expect = u64::from_le_bytes(data[body_end..].try_into().expect("8 bytes"));
    if sum.finish() != expect {
        return Err(bad("checkpoint checksum mismatch"));
    }
    let points = usize::from(u16::from_le_bytes([data[6], data[7]]));
    let model = LastRoundModel {
        ct_byte: usize::from(data[8]),
        bit: data[9],
    };
    let traces = u64::from_le_bytes(data[10..18].try_into().expect("8 bytes"));
    let expected_len = 18 + 256 * 8 + (256 * points + points) * 8 + 8;
    if data.len() != expected_len {
        return Err(bad(&format!(
            "checkpoint length {} != expected {expected_len} for {points} points",
            data.len()
        )));
    }
    let mut off = 18;
    let mut bin_count = Vec::with_capacity(256);
    for _ in 0..256 {
        bin_count.push(u64::from_le_bytes(
            data[off..off + 8].try_into().expect("8 bytes"),
        ));
        off += 8;
    }
    let read_f64s = |off: &mut usize, n: usize| -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_le_bytes(
                data[*off..*off + 8].try_into().expect("8 bytes"),
            ));
            *off += 8;
        }
        out
    };
    let bin_sum = read_f64s(&mut off, 256 * points);
    let sum_sq = read_f64s(&mut off, points);
    Ok(CpaCheckpoint {
        model,
        points,
        bin_count,
        bin_sum,
        sum_sq,
        traces,
    })
}

/// Replays a stored campaign into a [`crate::CpaAttack`] — the offline
/// re-analysis path.
pub fn replay_into(records: &[TraceRecord], attack: &mut crate::CpaAttack) {
    let mut buf = Vec::new();
    for r in records {
        buf.clear();
        buf.extend(r.points.iter().map(|&p| f64::from(p)));
        attack.add_trace(&r.ciphertext, &buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaAttack, LastRoundModel};
    use slm_aes::soft;
    use slm_pdn::noise::Rng64;

    fn sample_records(n: usize, points: usize, seed: u64) -> Vec<TraceRecord> {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| {
                let mut ciphertext = [0u8; 16];
                rng.fill_bytes(&mut ciphertext);
                TraceRecord {
                    ciphertext,
                    points: (0..points).map(|_| rng.normal() as f32).collect(),
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let records = sample_records(100, 7, 1);
        let mut w = TraceWriter::new(Vec::new(), 7).unwrap();
        for r in &records {
            let pts: Vec<f64> = r.points.iter().map(|&p| f64::from(p)).collect();
            w.write_trace(&r.ciphertext, &pts).unwrap();
        }
        assert_eq!(w.count(), 100);
        let bytes = w.finish().unwrap();
        let back = read_traces(&bytes[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_campaign_roundtrips() {
        let w = TraceWriter::new(Vec::new(), 3).unwrap();
        let bytes = w.finish().unwrap();
        assert!(read_traces(&bytes[..]).unwrap().is_empty());
    }

    #[test]
    fn wrong_point_count_rejected_at_write() {
        let mut w = TraceWriter::new(Vec::new(), 4).unwrap();
        let err = w.write_trace(&[0; 16], &[1.0]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn corruption_detected() {
        let mut w = TraceWriter::new(Vec::new(), 2).unwrap();
        w.write_trace(&[7; 16], &[1.0, 2.0]).unwrap();
        let mut bytes = w.finish().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let err = read_traces(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let w = TraceWriter::new(Vec::new(), 1).unwrap();
        let bytes = w.finish().unwrap();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(read_traces(&bad[..]).is_err());
        let mut badv = bytes;
        badv[4] = 99;
        assert!(read_traces(&badv[..]).is_err());
    }

    #[test]
    fn checkpoint_roundtrips_through_bytes() {
        let key = [3u8; 16];
        let model = LastRoundModel::paper_target();
        let mut rng = Rng64::new(21);
        let mut attack = CpaAttack::new(model, 3);
        for _ in 0..500 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            attack.add_trace(&ct, &[rng.normal(), rng.normal(), rng.normal()]);
        }
        let cp = attack.checkpoint();
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &cp).unwrap();
        let back = read_checkpoint(&bytes[..]).unwrap();
        assert_eq!(back, cp);
        let resumed = CpaAttack::resume(back).unwrap();
        assert_eq!(resumed, attack);
        assert_eq!(resumed.correlations(), attack.correlations());
    }

    #[test]
    fn checkpoint_corruption_detected() {
        let attack = CpaAttack::new(LastRoundModel::paper_target(), 2);
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &attack.checkpoint()).unwrap();
        for pos in [0usize, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                read_checkpoint(&bad[..]).is_err(),
                "corruption at byte {pos} undetected"
            );
        }
        assert!(read_checkpoint(&bytes[..bytes.len() - 3]).is_err());
        assert!(read_checkpoint(&b"SLMC"[..]).is_err());
    }

    #[test]
    fn replay_reproduces_online_attack() {
        // An attack over stored traces must equal the streaming attack.
        let key = [5u8; 16];
        let k10 = soft::key_expansion(&key)[10];
        let model = LastRoundModel::paper_target();
        let mut rng = Rng64::new(9);
        let mut online = CpaAttack::new(model, 1);
        let mut w = TraceWriter::new(Vec::new(), 1).unwrap();
        for _ in 0..1500 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            let h = f64::from(u8::from(model.hypothesis(&ct, k10[3])));
            let x = h + rng.normal_scaled(1.0);
            online.add_trace(&ct, &[x]);
            // store the f32-rounded value the file will carry, so both
            // attacks see identical data
            w.write_trace(&ct, &[f64::from(x as f32)]).unwrap();
        }
        let bytes = w.finish().unwrap();
        let records = read_traces(&bytes[..]).unwrap();
        let mut offline = CpaAttack::new(model, 1);
        replay_into(&records, &mut offline);
        assert_eq!(offline.traces(), online.traces());
        assert_eq!(offline.best_candidate().0, k10[3]);
    }
}
