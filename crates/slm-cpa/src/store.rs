//! Trace-file storage.
//!
//! The paper's host script "transmit\[s\], receiv\[es\] and stor\[es\] traces
//! and tuples of plaintexts and ciphertexts. In addition to the raw
//! data, a separate file with traces only containing relevant bits for
//! the CPA is stored." This module is that storage layer: a compact,
//! self-describing binary format for post-processed trace campaigns,
//! written/read through any `std::io` stream so campaigns can be
//! captured once and re-analyzed offline.
//!
//! Trace-file format (all little-endian):
//!
//! ```text
//! magic "SLMT" | version u16 | points u16 | count u64
//! count × ( ciphertext [u8; 16] | points × f32 )
//! fletcher-64 checksum over everything above
//! ```
//!
//! The module also serializes [`CpaCheckpoint`]s —
//! [`write_checkpoint`] / [`read_checkpoint`] — so a long capture
//! campaign can persist its streaming accumulator and resume after a
//! crash without replaying every trace, and provides the durable layer
//! under the streaming campaign engine: [`StreamCheckpoint`] (the full
//! campaign state at a window boundary) and [`CheckpointLedger`] (an
//! atomic, generation-numbered on-disk store with graceful fallback).
//!
//! # On-disk layouts
//!
//! All integers and floats are little-endian. Every format ends with a
//! Fletcher-64 integrity seal computed over everything before it.
//!
//! **Accumulator checkpoint** (`"SLMC"`, version [`CHECKPOINT_VERSION`]):
//!
//! ```text
//! offset  size            field
//! 0       4               magic "SLMC"
//! 4       2               version (u16)
//! 6       2               points per trace (u16)
//! 8       1               model ct_byte (u8)
//! 9      1                model bit (u8)
//! 10      8               traces absorbed (u64)
//! 18      256×8           bin_count (u64 per ciphertext-byte value)
//! +       256×points×8    bin_sum (f64, bin-major)
//! +       points×8        sum_sq (f64)
//! +       8               fletcher-64 seal
//! ```
//!
//! **Streaming campaign checkpoint** (`"SLMS"`, version
//! [`STREAM_CHECKPOINT_VERSION`]): everything a streaming campaign
//! needs to resume — exact-once window accounting plus per-slot
//! progress curves and nested accumulator checkpoints:
//!
//! ```text
//! offset  size   field
//! 0       4      magic "SLMS"
//! 4       2      version (u16)
//! 6       8      campaign fingerprint (u64; resume refuses a mismatch)
//! 14      8      windows committed (u64)
//! 22      8      traces committed (u64)
//! 30      2      accumulator slots (u16)
//! 32      …      per slot: progress curve
//!                  u32 point count, then per point:
//!                  u64 traces | u16 candidates | candidates × f64 peak |r|
//! +       …      per slot: u64 nested length | nested "SLMC" checkpoint
//! +       8      fletcher-64 seal
//! ```
//!
//! A reader that encounters a *newer* version than it supports reports
//! an incompatibility (never corruption, never a silent partial load):
//! the version field is validated before the seal so the error names
//! the format mismatch rather than a checksum failure.
//!
//! # The generation ledger
//!
//! [`CheckpointLedger`] stores successive checkpoint payloads as
//! `gen-<n>.slmc` files in one directory. A commit is atomic:
//! write-to-temp, `sync_all`, rename into place — a process killed at
//! any point leaves either the previous generation set intact or the
//! new generation fully present (a stale `.tmp` from a mid-commit
//! crash is swept on open and ignored by readers). Loading walks
//! generations newest-first and falls back past torn or corrupt files
//! to the newest generation that parses, reporting what it skipped so
//! callers can count recoveries — a corrupt *latest* checkpoint
//! degrades the campaign by at most one commit interval, never to a
//! silently wrong state.

use crate::attack::CpaCheckpoint;
use crate::mtd::ProgressPoint;
use crate::LastRoundModel;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Current trace-file format version.
pub const TRACE_FILE_VERSION: u16 = 1;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Current streaming-campaign checkpoint format version.
pub const STREAM_CHECKPOINT_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"SLMT";

const CHECKPOINT_MAGIC: [u8; 4] = *b"SLMC";

const STREAM_MAGIC: [u8; 4] = *b"SLMS";

/// Builds the section-and-offset diagnostic every reader in this
/// module uses: errors name the failing section and the byte offset
/// where the problem was found, so a corrupt multi-megabyte checkpoint
/// is debuggable without a hex dump.
fn section_err(section: &str, offset: usize, detail: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("checkpoint section `{section}` at byte {offset}: {detail}"),
    )
}

/// One stored trace: the ciphertext and its post-processed points.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Ciphertext returned with the capture.
    pub ciphertext: [u8; 16],
    /// Post-processed trace points (stored as `f32`).
    pub points: Vec<f32>,
}

/// Streaming checksum (Fletcher-64 over 32-bit words, byte-padded).
#[derive(Debug, Clone, Default)]
struct Fletcher64 {
    a: u64,
    b: u64,
    pending: [u8; 4],
    pending_len: usize,
}

impl Fletcher64 {
    fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.pending[self.pending_len] = byte;
            self.pending_len += 1;
            if self.pending_len == 4 {
                let w = u32::from_le_bytes(self.pending) as u64;
                self.a = (self.a + w) % 0xffff_ffff;
                self.b = (self.b + self.a) % 0xffff_ffff;
                self.pending_len = 0;
            }
        }
    }

    fn finish(mut self) -> u64 {
        if self.pending_len > 0 {
            for i in self.pending_len..4 {
                self.pending[i] = 0;
            }
            let w = u32::from_le_bytes(self.pending) as u64;
            self.a = (self.a + w) % 0xffff_ffff;
            self.b = (self.b + self.a) % 0xffff_ffff;
        }
        (self.b << 32) | self.a
    }
}

/// Writes a trace campaign.
///
/// Records must all have the same point count; the writer validates and
/// maintains the checksum. Call [`TraceWriter::finish`] to seal the
/// stream.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    points: u16,
    count: u64,
    sum: Fletcher64,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a new trace file with `points` points per trace.
    ///
    /// The header is written with a zero count placeholder strategy:
    /// because streams may not be seekable, the count is written at
    /// `finish` time into the trailer instead, and readers take the
    /// count from the trailer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn new(mut sink: W, points: u16) -> io::Result<Self> {
        let mut sum = Fletcher64::default();
        let mut header = Vec::with_capacity(8);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&TRACE_FILE_VERSION.to_le_bytes());
        header.extend_from_slice(&points.to_le_bytes());
        sink.write_all(&header)?;
        sum.update(&header);
        Ok(TraceWriter {
            sink,
            points,
            count: 0,
            sum,
            finished: false,
        })
    }

    /// Appends one trace.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the point count differs from the header;
    /// otherwise propagates I/O errors.
    pub fn write_trace(&mut self, ct: &[u8; 16], points: &[f64]) -> io::Result<()> {
        if points.len() != usize::from(self.points) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "expected {} points per trace, got {}",
                    self.points,
                    points.len()
                ),
            ));
        }
        let mut buf = Vec::with_capacity(16 + 4 * points.len());
        buf.extend_from_slice(ct);
        for &p in points {
            buf.extend_from_slice(&(p as f32).to_le_bytes());
        }
        self.sink.write_all(&buf)?;
        self.sum.update(&buf);
        self.count += 1;
        Ok(())
    }

    /// Number of traces written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Writes the trailer (count + checksum) and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        let count_bytes = self.count.to_le_bytes();
        self.sink.write_all(&count_bytes)?;
        self.sum.update(&count_bytes);
        let digest = std::mem::take(&mut self.sum).finish();
        self.sink.write_all(&digest.to_le_bytes())?;
        self.finished = true;
        Ok(self.sink)
    }
}

/// Reads a trace campaign written by [`TraceWriter`], validating the
/// checksum.
///
/// # Errors
///
/// `InvalidData` on bad magic, version, truncation, or checksum
/// mismatch.
pub fn read_traces<R: Read>(mut source: R) -> io::Result<Vec<TraceRecord>> {
    let mut data = Vec::new();
    source.read_to_end(&mut data)?;
    if data.len() < 8 + 8 + 8 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated file"));
    }
    if data[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != TRACE_FILE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let points = usize::from(u16::from_le_bytes([data[6], data[7]]));
    let body_end = data.len() - 8;
    // verify checksum over everything except the final digest
    let mut sum = Fletcher64::default();
    sum.update(&data[..body_end]);
    let expect = u64::from_le_bytes(data[body_end..].try_into().expect("8 bytes"));
    if sum.finish() != expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checksum mismatch",
        ));
    }
    let count_off = body_end - 8;
    let count = u64::from_le_bytes(data[count_off..body_end].try_into().expect("8 bytes"));
    let record_len = 16 + 4 * points;
    let expected_len = 8 + count as usize * record_len;
    if count_off != expected_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("length mismatch: {count} records of {record_len} bytes"),
        ));
    }
    let mut out = Vec::with_capacity(count as usize);
    let mut off = 8;
    for _ in 0..count {
        let mut ciphertext = [0u8; 16];
        ciphertext.copy_from_slice(&data[off..off + 16]);
        off += 16;
        let mut pts = Vec::with_capacity(points);
        for _ in 0..points {
            pts.push(f32::from_le_bytes(
                data[off..off + 4].try_into().expect("4 bytes"),
            ));
            off += 4;
        }
        out.push(TraceRecord {
            ciphertext,
            points: pts,
        });
    }
    Ok(out)
}

/// Serializes a [`CpaCheckpoint`] with a Fletcher-64 integrity seal.
///
/// # Errors
///
/// `InvalidInput` if the point count exceeds the format's `u16` field;
/// otherwise propagates I/O errors.
pub fn write_checkpoint<W: Write>(mut sink: W, cp: &CpaCheckpoint) -> io::Result<()> {
    if cp.points > usize::from(u16::MAX) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{} points exceed the format limit", cp.points),
        ));
    }
    let mut buf = Vec::with_capacity(16 + 256 * 8 + (256 * cp.points + cp.points) * 8);
    buf.extend_from_slice(&CHECKPOINT_MAGIC);
    buf.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(cp.points as u16).to_le_bytes());
    buf.push(cp.model.ct_byte as u8);
    buf.push(cp.model.bit);
    buf.extend_from_slice(&cp.traces.to_le_bytes());
    for &c in &cp.bin_count {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    for &s in &cp.bin_sum {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    for &q in &cp.sum_sq {
        buf.extend_from_slice(&q.to_le_bytes());
    }
    let mut sum = Fletcher64::default();
    sum.update(&buf);
    buf.extend_from_slice(&sum.finish().to_le_bytes());
    sink.write_all(&buf)
}

/// Reads a checkpoint written by [`write_checkpoint`], validating the
/// integrity seal and the accumulator geometry.
///
/// The version field is checked *before* the integrity seal, so a
/// checkpoint written by a newer build fails with a version
/// incompatibility, not a misleading checksum error.
///
/// # Errors
///
/// `InvalidData` on bad magic, version, truncation, checksum mismatch,
/// or a geometry that does not describe a valid accumulator. The error
/// message names the failing section and byte offset.
pub fn read_checkpoint<R: Read>(mut source: R) -> io::Result<CpaCheckpoint> {
    let mut data = Vec::new();
    source.read_to_end(&mut data)?;
    parse_checkpoint(&data)
}

/// [`read_checkpoint`] over an in-memory byte slice (the nested-payload
/// path of [`read_stream_checkpoint`]).
fn parse_checkpoint(data: &[u8]) -> io::Result<CpaCheckpoint> {
    let len = data.len();
    if len < 18 {
        return Err(section_err(
            "header",
            len,
            format!("file is {len} bytes, the fixed header needs 18"),
        ));
    }
    if data[..4] != CHECKPOINT_MAGIC {
        return Err(section_err(
            "magic",
            0,
            format!("got {:02x?}, expected \"SLMC\"", &data[..4]),
        ));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != CHECKPOINT_VERSION {
        return Err(section_err(
            "version",
            4,
            format!(
                "checkpoint version {version} is not supported (this build reads \
                 version {CHECKPOINT_VERSION}); refusing to guess at the layout"
            ),
        ));
    }
    let points = usize::from(u16::from_le_bytes([data[6], data[7]]));
    let traces = u64::from_le_bytes(data[10..18].try_into().expect("8 bytes"));
    // Section table for the variable-size body.
    let bin_count_off = 18;
    let bin_sum_off = bin_count_off + 256 * 8;
    let sum_sq_off = bin_sum_off + 256 * points * 8;
    let seal_off = sum_sq_off + points * 8;
    let expected_len = seal_off + 8;
    if len != expected_len {
        let (section, start) = if len < bin_sum_off {
            ("bin_count", bin_count_off)
        } else if len < sum_sq_off {
            ("bin_sum", bin_sum_off)
        } else if len < seal_off {
            ("sum_sq", sum_sq_off)
        } else {
            ("seal", seal_off)
        };
        return Err(section_err(
            section,
            start,
            format!(
                "file is {len} bytes, format needs {expected_len} for {points} points \
                 (section `{section}` spans bytes {start}..)"
            ),
        ));
    }
    let mut sum = Fletcher64::default();
    sum.update(&data[..seal_off]);
    let got = sum.finish();
    let expect = u64::from_le_bytes(data[seal_off..].try_into().expect("8 bytes"));
    if got != expect {
        return Err(section_err(
            "seal",
            seal_off,
            format!("checksum mismatch: stored {expect:#018x}, computed {got:#018x}"),
        ));
    }
    let model = LastRoundModel {
        ct_byte: usize::from(data[8]),
        bit: data[9],
    };
    if model.ct_byte >= 16 || model.bit >= 8 {
        return Err(section_err(
            "model",
            8,
            format!("ct_byte {} / bit {} out of range", model.ct_byte, model.bit),
        ));
    }
    let mut off = 18;
    let mut bin_count = Vec::with_capacity(256);
    for _ in 0..256 {
        bin_count.push(u64::from_le_bytes(
            data[off..off + 8].try_into().expect("8 bytes"),
        ));
        off += 8;
    }
    let read_f64s = |off: &mut usize, n: usize| -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f64::from_le_bytes(
                data[*off..*off + 8].try_into().expect("8 bytes"),
            ));
            *off += 8;
        }
        out
    };
    let bin_sum = read_f64s(&mut off, 256 * points);
    let sum_sq = read_f64s(&mut off, points);
    Ok(CpaCheckpoint {
        model,
        points,
        bin_count,
        bin_sum,
        sum_sq,
        traces,
    })
}

/// Durable state of a streaming campaign at a committed window
/// boundary: exact-once window accounting, the per-slot progress
/// curves evaluated so far, and one nested [`CpaCheckpoint`] per
/// accumulator slot.
///
/// The `fingerprint` binds the checkpoint to the campaign parameters
/// that determine the capture stream (circuit, sensor source, seed,
/// window size, commit cadence); a resume under different parameters
/// must be refused rather than silently merged.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheckpoint {
    /// Campaign-parameter fingerprint (see the streaming engine).
    pub fingerprint: u64,
    /// Windows fully captured, folded and committed.
    pub windows: u64,
    /// Traces those windows contributed.
    pub traces: u64,
    /// One accumulator checkpoint per attack slot.
    pub slots: Vec<CpaCheckpoint>,
    /// Per-slot progress curves (one point per commit).
    pub progress: Vec<Vec<ProgressPoint>>,
}

impl StreamCheckpoint {
    /// Internal consistency: every slot accumulator must have absorbed
    /// exactly the committed trace count, and the progress table must
    /// have one curve per slot.
    fn validate(&self) -> io::Result<()> {
        if self.slots.is_empty() {
            return Err(section_err("slots", 30, "zero accumulator slots"));
        }
        if self.progress.len() != self.slots.len() {
            return Err(section_err(
                "progress",
                32,
                format!(
                    "{} progress curves for {} slots",
                    self.progress.len(),
                    self.slots.len()
                ),
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.traces != self.traces {
                return Err(section_err(
                    "accumulators",
                    32,
                    format!(
                        "slot {i} absorbed {} traces, ledger says {} committed",
                        slot.traces, self.traces
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Serializes a [`StreamCheckpoint`] with a Fletcher-64 integrity seal
/// (layout in the module docs).
///
/// # Errors
///
/// `InvalidInput` when a field exceeds its format width (slot count,
/// per-point candidate count, progress length); otherwise propagates
/// I/O errors.
pub fn write_stream_checkpoint<W: Write>(mut sink: W, cp: &StreamCheckpoint) -> io::Result<()> {
    let invalid = |detail: String| io::Error::new(io::ErrorKind::InvalidInput, detail);
    if cp.slots.len() > usize::from(u16::MAX) {
        return Err(invalid(format!(
            "{} slots exceed the format limit",
            cp.slots.len()
        )));
    }
    if cp.progress.len() != cp.slots.len() {
        return Err(invalid(format!(
            "{} progress curves for {} slots",
            cp.progress.len(),
            cp.slots.len()
        )));
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(&STREAM_MAGIC);
    buf.extend_from_slice(&STREAM_CHECKPOINT_VERSION.to_le_bytes());
    buf.extend_from_slice(&cp.fingerprint.to_le_bytes());
    buf.extend_from_slice(&cp.windows.to_le_bytes());
    buf.extend_from_slice(&cp.traces.to_le_bytes());
    buf.extend_from_slice(&(cp.slots.len() as u16).to_le_bytes());
    for curve in &cp.progress {
        let count = u32::try_from(curve.len()).map_err(|_| {
            invalid(format!(
                "{} progress points exceed the format limit",
                curve.len()
            ))
        })?;
        buf.extend_from_slice(&count.to_le_bytes());
        for point in curve {
            if point.peak_corr.len() > usize::from(u16::MAX) {
                return Err(invalid(format!(
                    "{} candidates exceed the format limit",
                    point.peak_corr.len()
                )));
            }
            buf.extend_from_slice(&point.traces.to_le_bytes());
            buf.extend_from_slice(&(point.peak_corr.len() as u16).to_le_bytes());
            for &r in &point.peak_corr {
                buf.extend_from_slice(&r.to_le_bytes());
            }
        }
    }
    for slot in &cp.slots {
        let mut nested = Vec::new();
        write_checkpoint(&mut nested, slot)?;
        buf.extend_from_slice(&(nested.len() as u64).to_le_bytes());
        buf.extend_from_slice(&nested);
    }
    let mut sum = Fletcher64::default();
    sum.update(&buf);
    buf.extend_from_slice(&sum.finish().to_le_bytes());
    sink.write_all(&buf)
}

/// Reads a [`StreamCheckpoint`] written by [`write_stream_checkpoint`],
/// validating the outer seal, every nested accumulator seal, and the
/// cross-slot accounting.
///
/// # Errors
///
/// `InvalidData` on any structural problem; messages name the failing
/// section and byte offset. A newer `version` is reported as an
/// incompatibility before the seal is checked.
pub fn read_stream_checkpoint<R: Read>(mut source: R) -> io::Result<StreamCheckpoint> {
    let mut data = Vec::new();
    source.read_to_end(&mut data)?;
    let len = data.len();
    if len < 32 + 8 {
        return Err(section_err(
            "header",
            len,
            format!("file is {len} bytes, the fixed header plus seal needs 40"),
        ));
    }
    if data[..4] != STREAM_MAGIC {
        return Err(section_err(
            "magic",
            0,
            format!("got {:02x?}, expected \"SLMS\"", &data[..4]),
        ));
    }
    let version = u16::from_le_bytes([data[4], data[5]]);
    if version != STREAM_CHECKPOINT_VERSION {
        return Err(section_err(
            "version",
            4,
            format!(
                "stream checkpoint version {version} is not supported (this build \
                 reads version {STREAM_CHECKPOINT_VERSION}); refusing to guess at the layout"
            ),
        ));
    }
    let seal_off = len - 8;
    let mut sum = Fletcher64::default();
    sum.update(&data[..seal_off]);
    let got = sum.finish();
    let expect = u64::from_le_bytes(data[seal_off..].try_into().expect("8 bytes"));
    if got != expect {
        return Err(section_err(
            "seal",
            seal_off,
            format!("checksum mismatch: stored {expect:#018x}, computed {got:#018x}"),
        ));
    }
    // Cursor-based reads over the sealed body.
    let body = &data[..seal_off];
    let take = |off: &mut usize, n: usize, section: &str| -> io::Result<&[u8]> {
        let end = off
            .checked_add(n)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| {
                section_err(
                    section,
                    *off,
                    format!(
                        "needs {n} bytes, only {} remain before the seal",
                        body.len() - *off
                    ),
                )
            })?;
        let slice = &body[*off..end];
        *off = end;
        Ok(slice)
    };
    let mut off = 6;
    let fingerprint = u64::from_le_bytes(take(&mut off, 8, "fingerprint")?.try_into().unwrap());
    let windows = u64::from_le_bytes(take(&mut off, 8, "windows")?.try_into().unwrap());
    let traces = u64::from_le_bytes(take(&mut off, 8, "traces")?.try_into().unwrap());
    let slots = usize::from(u16::from_le_bytes(
        take(&mut off, 2, "slots")?.try_into().unwrap(),
    ));
    let mut progress = Vec::with_capacity(slots);
    for slot in 0..slots {
        let section = "progress";
        let count = u32::from_le_bytes(take(&mut off, 4, section)?.try_into().unwrap()) as usize;
        // Cheap bound before allocating: each point needs ≥ 10 bytes.
        if count > (body.len() - off) / 10 + 1 {
            return Err(section_err(
                section,
                off - 4,
                format!("slot {slot} claims {count} progress points, file cannot hold them"),
            ));
        }
        let mut curve = Vec::with_capacity(count);
        for _ in 0..count {
            let point_traces = u64::from_le_bytes(take(&mut off, 8, section)?.try_into().unwrap());
            let cands = usize::from(u16::from_le_bytes(
                take(&mut off, 2, section)?.try_into().unwrap(),
            ));
            let raw = take(&mut off, cands * 8, section)?;
            let peak_corr = raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            curve.push(ProgressPoint {
                traces: point_traces,
                peak_corr,
            });
        }
        progress.push(curve);
    }
    let mut slot_cps = Vec::with_capacity(slots);
    for slot in 0..slots {
        let section = "accumulators";
        let nested_len =
            u64::from_le_bytes(take(&mut off, 8, section)?.try_into().unwrap()) as usize;
        let start = off;
        let nested = take(&mut off, nested_len, section)?;
        let cp = parse_checkpoint(nested)
            .map_err(|e| section_err(section, start, format!("nested slot {slot}: {e}")))?;
        slot_cps.push(cp);
    }
    if off != body.len() {
        return Err(section_err(
            "trailer",
            off,
            format!(
                "{} unexpected trailing bytes before the seal",
                body.len() - off
            ),
        ));
    }
    let cp = StreamCheckpoint {
        fingerprint,
        windows,
        traces,
        slots: slot_cps,
        progress,
    };
    cp.validate()?;
    Ok(cp)
}

/// Newest loadable generation recovered from a [`CheckpointLedger`],
/// with the newer generations that had to be skipped to reach it.
#[derive(Debug)]
pub struct LedgerRecovery<T> {
    /// The generation number that loaded.
    pub generation: u64,
    /// Its parsed payload.
    pub state: T,
    /// Newer generations that failed to load, newest first, with the
    /// reason each was skipped. Non-empty means the campaign degraded
    /// gracefully to an older commit.
    pub skipped: Vec<(u64, String)>,
}

/// Generations kept on disk after a commit. More than one so that a
/// torn or corrupted newest generation still leaves good fallbacks.
const LEDGER_KEEP: usize = 4;

/// An atomic, generation-numbered checkpoint store in one directory.
///
/// Payloads are opaque bytes (the streaming engine stores sealed
/// [`StreamCheckpoint`]s). Durability and recovery semantics are
/// described in the module docs.
#[derive(Debug, Clone)]
pub struct CheckpointLedger {
    dir: PathBuf,
}

impl CheckpointLedger {
    /// Opens (creating if needed) the ledger directory and sweeps any
    /// stale `.tmp` files left by a crash mid-commit.
    ///
    /// # Errors
    ///
    /// Propagates directory creation / listing failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = std::fs::remove_file(&path);
            }
        }
        Ok(CheckpointLedger { dir })
    }

    /// The ledger directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of generation `generation`.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:016}.slmc"))
    }

    /// Generation numbers currently on disk, ascending.
    ///
    /// # Errors
    ///
    /// Propagates directory listing failures.
    pub fn generations(&self) -> io::Result<Vec<u64>> {
        let mut gens = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(num) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".slmc"))
            {
                if let Ok(g) = num.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Commits a payload as the next generation: write-to-temp,
    /// `sync_all`, atomic rename, then prune all but the newest
    /// [`LEDGER_KEEP`] generations. Returns the new generation number.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on failure before the rename the
    /// previous generation set is untouched.
    pub fn commit(&self, payload: &[u8]) -> io::Result<u64> {
        let next = self.generations()?.last().map_or(1, |g| g + 1);
        let tmp = self.dir.join(format!("gen-{next:016}.tmp"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(payload)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, self.generation_path(next))?;
        let gens = self.generations()?;
        if gens.len() > LEDGER_KEEP {
            for &g in &gens[..gens.len() - LEDGER_KEEP] {
                let _ = std::fs::remove_file(self.generation_path(g));
            }
        }
        Ok(next)
    }

    /// Loads the newest generation whose payload `parse` accepts,
    /// skipping (and reporting) newer torn or corrupt generations.
    ///
    /// Returns `Ok(None)` only for a genuinely empty ledger. If
    /// generations exist but none load, that is an error — restarting a
    /// campaign from scratch because every checkpoint was unreadable
    /// must be an explicit operator decision, never a silent default.
    ///
    /// # Errors
    ///
    /// Propagates directory listing failures; `InvalidData` when all
    /// present generations fail to parse.
    pub fn load_latest<T>(
        &self,
        parse: impl Fn(&[u8]) -> io::Result<T>,
    ) -> io::Result<Option<LedgerRecovery<T>>> {
        let gens = self.generations()?;
        let mut skipped = Vec::new();
        for &g in gens.iter().rev() {
            match std::fs::read(self.generation_path(g)).and_then(|bytes| parse(&bytes)) {
                Ok(state) => {
                    return Ok(Some(LedgerRecovery {
                        generation: g,
                        state,
                        skipped,
                    }))
                }
                Err(e) => skipped.push((g, e.to_string())),
            }
        }
        if skipped.is_empty() {
            Ok(None)
        } else {
            let detail: Vec<String> = skipped
                .iter()
                .map(|(g, e)| format!("gen {g}: {e}"))
                .collect();
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "no loadable checkpoint generation in {} ({})",
                    self.dir.display(),
                    detail.join("; ")
                ),
            ))
        }
    }
}

/// Replays a stored campaign into a [`crate::CpaAttack`] — the offline
/// re-analysis path.
pub fn replay_into(records: &[TraceRecord], attack: &mut crate::CpaAttack) {
    let mut buf = Vec::new();
    for r in records {
        buf.clear();
        buf.extend(r.points.iter().map(|&p| f64::from(p)));
        attack.add_trace(&r.ciphertext, &buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpaAttack, LastRoundModel};
    use proptest::prelude::*;
    use slm_aes::soft;
    use slm_pdn::noise::Rng64;

    fn sample_records(n: usize, points: usize, seed: u64) -> Vec<TraceRecord> {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| {
                let mut ciphertext = [0u8; 16];
                rng.fill_bytes(&mut ciphertext);
                TraceRecord {
                    ciphertext,
                    points: (0..points).map(|_| rng.normal() as f32).collect(),
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let records = sample_records(100, 7, 1);
        let mut w = TraceWriter::new(Vec::new(), 7).unwrap();
        for r in &records {
            let pts: Vec<f64> = r.points.iter().map(|&p| f64::from(p)).collect();
            w.write_trace(&r.ciphertext, &pts).unwrap();
        }
        assert_eq!(w.count(), 100);
        let bytes = w.finish().unwrap();
        let back = read_traces(&bytes[..]).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn empty_campaign_roundtrips() {
        let w = TraceWriter::new(Vec::new(), 3).unwrap();
        let bytes = w.finish().unwrap();
        assert!(read_traces(&bytes[..]).unwrap().is_empty());
    }

    #[test]
    fn wrong_point_count_rejected_at_write() {
        let mut w = TraceWriter::new(Vec::new(), 4).unwrap();
        let err = w.write_trace(&[0; 16], &[1.0]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn corruption_detected() {
        let mut w = TraceWriter::new(Vec::new(), 2).unwrap();
        w.write_trace(&[7; 16], &[1.0, 2.0]).unwrap();
        let mut bytes = w.finish().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let err = read_traces(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let w = TraceWriter::new(Vec::new(), 1).unwrap();
        let bytes = w.finish().unwrap();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(read_traces(&bad[..]).is_err());
        let mut badv = bytes;
        badv[4] = 99;
        assert!(read_traces(&badv[..]).is_err());
    }

    #[test]
    fn checkpoint_roundtrips_through_bytes() {
        let key = [3u8; 16];
        let model = LastRoundModel::paper_target();
        let mut rng = Rng64::new(21);
        let mut attack = CpaAttack::new(model, 3);
        for _ in 0..500 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            attack.add_trace(&ct, &[rng.normal(), rng.normal(), rng.normal()]);
        }
        let cp = attack.checkpoint();
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &cp).unwrap();
        let back = read_checkpoint(&bytes[..]).unwrap();
        assert_eq!(back, cp);
        let resumed = CpaAttack::resume(back).unwrap();
        assert_eq!(resumed, attack);
        assert_eq!(resumed.correlations(), attack.correlations());
    }

    #[test]
    fn checkpoint_corruption_detected() {
        let attack = CpaAttack::new(LastRoundModel::paper_target(), 2);
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &attack.checkpoint()).unwrap();
        for pos in [0usize, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                read_checkpoint(&bad[..]).is_err(),
                "corruption at byte {pos} undetected"
            );
        }
        assert!(read_checkpoint(&bytes[..bytes.len() - 3]).is_err());
        assert!(read_checkpoint(&b"SLMC"[..]).is_err());
    }

    /// Recomputes the trailing Fletcher-64 seal after a deliberate
    /// header edit, so tests can prove which check fires first.
    fn reseal(bytes: &mut [u8]) {
        let body = bytes.len() - 8;
        let mut sum = Fletcher64::default();
        sum.update(&bytes[..body]);
        let digest = sum.finish().to_le_bytes();
        bytes[body..].copy_from_slice(&digest);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slm-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_stream_checkpoint(points: usize) -> StreamCheckpoint {
        let key = [9u8; 16];
        let model = LastRoundModel::paper_target();
        let mut rng = Rng64::new(5);
        let mut attack = CpaAttack::new(model, points);
        for _ in 0..300 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            let samples: Vec<f64> = (0..points).map(|_| rng.normal()).collect();
            attack.add_trace(&ct, &samples);
        }
        let progress = vec![vec![
            crate::ProgressPoint {
                traces: 150,
                peak_corr: (0..256).map(|k| k as f64 / 256.0).collect(),
            },
            crate::ProgressPoint {
                traces: 300,
                peak_corr: (0..256).map(|k| k as f64 / 512.0).collect(),
            },
        ]];
        StreamCheckpoint {
            fingerprint: 0xfeed_f00d,
            windows: 2,
            traces: 300,
            slots: vec![attack.checkpoint()],
            progress,
        }
    }

    #[test]
    fn checkpoint_errors_name_section_and_offset() {
        let attack = CpaAttack::new(LastRoundModel::paper_target(), 2);
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &attack.checkpoint()).unwrap();

        let err = read_checkpoint(&bytes[..10]).unwrap_err().to_string();
        assert!(err.contains("header") && err.contains("byte 10"), "{err}");

        let mut bad = bytes.clone();
        bad[0] = b'X';
        let err = read_checkpoint(&bad[..]).unwrap_err().to_string();
        assert!(err.contains("magic") && err.contains("byte 0"), "{err}");

        // Truncation inside a named section reports that section.
        let err = read_checkpoint(&bytes[..20]).unwrap_err().to_string();
        assert!(err.contains("bin_count"), "{err}");
        let err = read_checkpoint(&bytes[..bytes.len() - 9])
            .unwrap_err()
            .to_string();
        assert!(err.contains("seal") || err.contains("sum_sq"), "{err}");

        // A flipped payload byte reports the seal with both digests.
        let mut bad = bytes.clone();
        bad[100] ^= 0x10;
        let err = read_checkpoint(&bad[..]).unwrap_err().to_string();
        assert!(err.contains("seal") && err.contains("stored"), "{err}");
    }

    #[test]
    fn future_checkpoint_version_rejected_with_clear_error() {
        // A checkpoint stamped by a newer build must fail as a version
        // incompatibility — even with a perfectly valid seal — so the
        // operator learns to upgrade rather than chasing "corruption".
        let attack = CpaAttack::new(LastRoundModel::paper_target(), 2);
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &attack.checkpoint()).unwrap();
        bytes[4..6].copy_from_slice(&(CHECKPOINT_VERSION + 1).to_le_bytes());
        reseal(&mut bytes);
        let err = read_checkpoint(&bytes[..]).unwrap_err().to_string();
        assert!(
            err.contains("version") && err.contains("not supported"),
            "{err}"
        );
        assert!(
            !err.contains("checksum"),
            "must not misreport as corruption: {err}"
        );

        // Same contract for the streaming format.
        let mut bytes = Vec::new();
        write_stream_checkpoint(&mut bytes, &sample_stream_checkpoint(2)).unwrap();
        bytes[4..6].copy_from_slice(&(STREAM_CHECKPOINT_VERSION + 1).to_le_bytes());
        reseal(&mut bytes);
        let err = read_stream_checkpoint(&bytes[..]).unwrap_err().to_string();
        assert!(
            err.contains("version") && err.contains("not supported"),
            "{err}"
        );
    }

    #[test]
    fn stream_checkpoint_roundtrips() {
        let cp = sample_stream_checkpoint(3);
        let mut bytes = Vec::new();
        write_stream_checkpoint(&mut bytes, &cp).unwrap();
        let back = read_stream_checkpoint(&bytes[..]).unwrap();
        assert_eq!(back, cp);
        // The nested accumulator resumes to a live attack.
        let resumed = CpaAttack::resume(back.slots[0].clone()).unwrap();
        assert_eq!(resumed.traces(), 300);
    }

    #[test]
    fn stream_checkpoint_rejects_inconsistent_accounting() {
        let mut cp = sample_stream_checkpoint(2);
        cp.traces = 299; // slot accumulator says 300
        let mut bytes = Vec::new();
        write_stream_checkpoint(&mut bytes, &cp).unwrap();
        let err = read_stream_checkpoint(&bytes[..]).unwrap_err().to_string();
        assert!(err.contains("accumulators") && err.contains("299"), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any single-byte flip of a valid checkpoint must fail to
        /// load, and any truncation must fail to load — resuming from
        /// silently wrong state is the one unacceptable outcome.
        #[test]
        fn checkpoint_any_corruption_detected(pos in any::<u32>(), bit in 0u8..8, cut in any::<u32>()) {
            static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
            let bytes = BYTES.get_or_init(|| {
                let attack = CpaAttack::new(LastRoundModel::paper_target(), 3);
                let mut b = Vec::new();
                write_checkpoint(&mut b, &attack.checkpoint()).unwrap();
                b
            });
            let pos = pos as usize % bytes.len();
            let mut flipped = bytes.clone();
            flipped[pos] ^= 1 << bit;
            prop_assert!(
                read_checkpoint(&flipped[..]).is_err(),
                "flip of bit {bit} at byte {pos} loaded"
            );
            let cut = cut as usize % bytes.len();
            prop_assert!(
                read_checkpoint(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes loaded"
            );
        }

        /// The streaming checkpoint format upholds the same contract.
        #[test]
        fn stream_checkpoint_any_corruption_detected(pos in any::<u32>(), bit in 0u8..8, cut in any::<u32>()) {
            static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
            let bytes = BYTES.get_or_init(|| {
                let mut b = Vec::new();
                write_stream_checkpoint(&mut b, &sample_stream_checkpoint(2)).unwrap();
                b
            });
            let pos = pos as usize % bytes.len();
            let mut flipped = bytes.clone();
            flipped[pos] ^= 1 << bit;
            prop_assert!(
                read_stream_checkpoint(&flipped[..]).is_err(),
                "flip of bit {bit} at byte {pos} loaded"
            );
            let cut = cut as usize % bytes.len();
            prop_assert!(
                read_stream_checkpoint(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes loaded"
            );
        }
    }

    #[test]
    fn checkpoint_every_truncation_rejected_exhaustively() {
        // Short checkpoints allow brute force over *every* truncation
        // length, complementing the sampled property above.
        let attack = CpaAttack::new(LastRoundModel::paper_target(), 1);
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &attack.checkpoint()).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                read_checkpoint(&bytes[..cut]).is_err(),
                "truncation to {cut} of {} bytes loaded",
                bytes.len()
            );
        }
    }

    #[test]
    fn ledger_commit_load_roundtrip_and_prune() {
        let dir = scratch_dir("roundtrip");
        let ledger = CheckpointLedger::open(&dir).unwrap();
        assert!(ledger.load_latest(|b| Ok(b.to_vec())).unwrap().is_none());
        for i in 1u64..=7 {
            let gen = ledger.commit(&i.to_le_bytes()).unwrap();
            assert_eq!(gen, i);
        }
        // Pruned to the newest LEDGER_KEEP generations.
        assert_eq!(ledger.generations().unwrap(), vec![4, 5, 6, 7]);
        let rec = ledger.load_latest(|b| Ok(b.to_vec())).unwrap().unwrap();
        assert_eq!(rec.generation, 7);
        assert_eq!(rec.state, 7u64.to_le_bytes().to_vec());
        assert!(rec.skipped.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_falls_back_past_torn_and_corrupt_generations() {
        let dir = scratch_dir("fallback");
        let ledger = CheckpointLedger::open(&dir).unwrap();
        for i in 1u64..=3 {
            ledger.commit(format!("payload-{i}").as_bytes()).unwrap();
        }
        // Tear the newest generation and corrupt the next.
        std::fs::write(ledger.generation_path(3), b"pay").unwrap();
        std::fs::write(ledger.generation_path(2), b"garbage-XX").unwrap();
        let parse = |b: &[u8]| -> io::Result<String> {
            let s = String::from_utf8_lossy(b);
            if s.starts_with("payload-") {
                Ok(s.into_owned())
            } else {
                Err(io::Error::new(io::ErrorKind::InvalidData, "not a payload"))
            }
        };
        let rec = ledger.load_latest(parse).unwrap().unwrap();
        assert_eq!(rec.generation, 1);
        assert_eq!(rec.state, "payload-1");
        assert_eq!(rec.skipped.len(), 2);
        assert_eq!(rec.skipped[0].0, 3);
        assert_eq!(rec.skipped[1].0, 2);

        // All generations corrupt: an explicit error, never a silent
        // fresh start.
        std::fs::write(ledger.generation_path(1), b"garbage-YY").unwrap();
        let err = ledger.load_latest(parse).unwrap_err().to_string();
        assert!(err.contains("no loadable checkpoint generation"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_sweeps_stale_tmp_files_and_ignores_them() {
        let dir = scratch_dir("tmp-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        // A crash mid-commit leaves a half-written temp file behind.
        std::fs::write(dir.join("gen-0000000000000009.tmp"), b"half").unwrap();
        let ledger = CheckpointLedger::open(&dir).unwrap();
        assert!(ledger.generations().unwrap().is_empty());
        assert!(!dir.join("gen-0000000000000009.tmp").exists());
        // A fresh commit is unaffected by the swept temp file.
        assert_eq!(ledger.commit(b"x").unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_reproduces_online_attack() {
        // An attack over stored traces must equal the streaming attack.
        let key = [5u8; 16];
        let k10 = soft::key_expansion(&key)[10];
        let model = LastRoundModel::paper_target();
        let mut rng = Rng64::new(9);
        let mut online = CpaAttack::new(model, 1);
        let mut w = TraceWriter::new(Vec::new(), 1).unwrap();
        for _ in 0..1500 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            let h = f64::from(u8::from(model.hypothesis(&ct, k10[3])));
            let x = h + rng.normal_scaled(1.0);
            online.add_trace(&ct, &[x]);
            // store the f32-rounded value the file will carry, so both
            // attacks see identical data
            w.write_trace(&ct, &[f64::from(x as f32)]).unwrap();
        }
        let bytes = w.finish().unwrap();
        let records = read_traces(&bytes[..]).unwrap();
        let mut offline = CpaAttack::new(model, 1);
        replay_into(&records, &mut offline);
        assert_eq!(offline.traces(), online.traces());
        assert_eq!(offline.best_candidate().0, k10[3]);
    }
}
