//! Differential fault analysis (DFA) on the AES last-round key.
//!
//! The fault-injection path ends here: the aggressor's supply droop
//! makes the victim's round-9 register latch a corrupted state, the
//! fabric returns the faulty ciphertext, and this module turns
//! (correct, faulty) ciphertext pairs into last-round key bytes.
//!
//! For a fault that flips state-9 byte `j` by `δ9`, the ciphertext
//! differs only at `jd = shift_rows_dest(j)`:
//!
//! ```text
//! ct [jd] = SBOX[s9[j]]      ^ k10[jd]
//! ct'[jd] = SBOX[s9[j] ^ δ9] ^ k10[jd]
//! ```
//!
//! A candidate key byte `k` is *feasible* for the pair iff
//! `INV_SBOX[ct[jd]^k] ^ INV_SBOX[ct'[jd]^k]` lands in the fault
//! model's admissible difference set. The true key byte is feasible for
//! every genuinely round-9-faulted pair; a wrong key survives each pair
//! only with probability `|D|/255` (`D` = admissible set), so counting
//! feasibility *votes* and taking the per-byte argmax converges even
//! when some accepted pairs are avalanche contamination.
//!
//! Voting (rather than strict set intersection) is deliberate: the
//! fabric's aggressor occasionally trips an early round, and a single
//! such pair would knock the true key out of an intersection forever.
//! Pairs whose ciphertexts differ in more than
//! [`DfaAttack::max_diff_bytes`] positions are discarded outright —
//! an early-round avalanche flips all 16 bytes with probability
//! ≈ (255/256)¹⁶ ≈ 0.94, while a round-9 fault touches at most the
//! 4–12 positions its violating cycles cover.
//!
//! All accumulator state is integer counts plus an exactly-mergeable
//! severity track, so shard partials merge associatively — the same
//! contract the CPA accumulators honour.

use serde::{Deserialize, Serialize};
use slm_aes::soft;

use crate::error::CpaError;

/// Which state-9 differences a fault may have produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DfaModel {
    /// The fault hits the round-9 *register* directly (our
    /// voltage-derated capture cone): each faulted byte flips at most
    /// `max_fault_bits` of its bits, so `δ9` is any byte of Hamming
    /// weight 1..=`max_fault_bits`.
    SingleByte {
        /// Largest admissible Hamming weight of a per-byte difference.
        max_fault_bits: u8,
    },
    /// The fault hits a byte *before* round 9's MixColumns (the
    /// classic Piret–Quisquater diagonal model): a pre-mix flip `ε`
    /// reaches state 9 multiplied by a MixColumns coefficient, so
    /// `δ9 ∈ {1·ε, 2·ε, 3·ε}` over GF(2⁸) with HW(ε) ≤
    /// `max_fault_bits`. The admissible set is ~3× wider, so each
    /// pair narrows the candidate set less and recovery needs more
    /// pairs.
    DiagonalRound9 {
        /// Largest admissible Hamming weight of the pre-mix flip.
        max_fault_bits: u8,
    },
}

impl DfaModel {
    /// The admissible difference set as a 256-entry membership table
    /// (`δ = 0` is never admissible — that would be no fault at all).
    fn feasible_table(&self) -> Vec<bool> {
        let mut table = vec![false; 256];
        match *self {
            DfaModel::SingleByte { max_fault_bits } => {
                for (d, entry) in table.iter_mut().enumerate().skip(1) {
                    *entry = (d as u8).count_ones() <= u32::from(max_fault_bits);
                }
            }
            DfaModel::DiagonalRound9 { max_fault_bits } => {
                for eps in 1..=255u8 {
                    if eps.count_ones() > u32::from(max_fault_bits) {
                        continue;
                    }
                    for m in [1u8, 2, 3] {
                        table[soft::gf_mul(m, eps) as usize] = true;
                    }
                }
            }
        }
        table
    }

    /// Number of admissible differences — the per-pair survival
    /// probability of a wrong key is `set_size() / 255`.
    pub fn set_size(&self) -> usize {
        self.feasible_table().iter().filter(|&&f| f).count()
    }
}

/// What [`DfaAttack::add_pair`] did with a ciphertext pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairOutcome {
    /// The ciphertexts were identical — no fault landed.
    Unfaulted,
    /// Too many differing bytes: almost certainly an early-round
    /// avalanche, rejected before it can pollute the votes.
    Discarded,
    /// Counted; carries the number of differing ciphertext bytes.
    Accepted(usize),
}

/// Streaming DFA key-recovery accumulator.
///
/// Feed it (correct, faulty) ciphertext pairs — typically the golden
/// software ciphertext next to the fabric's faulted output — and read
/// back per-byte candidate sets, the recovered last-round key, and the
/// inverted master key. Mergeable across campaign shards via
/// [`DfaAttack::try_merge`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfaAttack {
    model: DfaModel,
    max_diff_bytes: usize,
    /// 256 entries; rebuilt from `model` on deserialize? No — carried,
    /// it is tiny and keeps the struct self-contained.
    feasible: Vec<bool>,
    /// `votes[jd * 256 + k]`: pairs for which key candidate `k` at
    /// ciphertext position `jd` produced an admissible difference.
    votes: Vec<u32>,
    /// Accepted difference equations per ciphertext byte (how many
    /// pairs actually voted on that position).
    equations: Vec<u32>,
    pairs_accepted: u64,
    pairs_unfaulted: u64,
    pairs_discarded: u64,
    /// Sum of caller-supplied severity weights over accepted pairs
    /// (e.g. droop depth in volts). Dyadic-rational weights make this
    /// exactly associative under merge, like the CPA bins.
    severity_sum: f64,
    /// Largest severity weight seen on an accepted pair.
    severity_max: f64,
}

/// Minimum votes before a byte counts as recovered.
const MIN_VOTES: u32 = 4;
/// Required lead of the best candidate over the runner-up.
const MIN_MARGIN: u32 = 2;

impl DfaAttack {
    /// A fresh accumulator for `model`, discarding pairs that differ
    /// in more than 12 ciphertext bytes (an avalanche signature; a
    /// round-9-only fault covers at most 3 columns in practice).
    pub fn new(model: DfaModel) -> Self {
        Self::with_max_diff_bytes(model, 12)
    }

    /// [`DfaAttack::new`] with an explicit avalanche-filter threshold.
    ///
    /// # Panics
    ///
    /// Panics if `max_diff_bytes` is 0 or greater than 16.
    pub fn with_max_diff_bytes(model: DfaModel, max_diff_bytes: usize) -> Self {
        assert!(
            (1..=16).contains(&max_diff_bytes),
            "avalanche filter must keep 1..=16 byte diffs"
        );
        DfaAttack {
            model,
            max_diff_bytes,
            feasible: model.feasible_table(),
            votes: vec![0; 16 * 256],
            equations: vec![0; 16],
            pairs_accepted: 0,
            pairs_unfaulted: 0,
            pairs_discarded: 0,
            severity_sum: 0.0,
            severity_max: 0.0,
        }
    }

    /// The configured fault model.
    pub fn model(&self) -> DfaModel {
        self.model
    }

    /// The avalanche-filter threshold (pairs with more differing bytes
    /// are discarded).
    pub fn max_diff_bytes(&self) -> usize {
        self.max_diff_bytes
    }

    /// Absorbs one (correct, faulty) ciphertext pair with severity
    /// weight 0 — see [`DfaAttack::add_pair_weighted`].
    pub fn add_pair(&mut self, correct: &[u8; 16], faulty: &[u8; 16]) -> PairOutcome {
        self.add_pair_weighted(correct, faulty, 0.0)
    }

    /// Absorbs one pair, crediting `weight` (e.g. the capture's droop
    /// depth in volts) to the severity track if the pair is accepted.
    pub fn add_pair_weighted(
        &mut self,
        correct: &[u8; 16],
        faulty: &[u8; 16],
        weight: f64,
    ) -> PairOutcome {
        let diffs: Vec<usize> = (0..16).filter(|&i| correct[i] != faulty[i]).collect();
        if diffs.is_empty() {
            self.pairs_unfaulted += 1;
            return PairOutcome::Unfaulted;
        }
        if diffs.len() > self.max_diff_bytes {
            self.pairs_discarded += 1;
            return PairOutcome::Discarded;
        }
        for &jd in &diffs {
            self.equations[jd] += 1;
            for k in 0..256usize {
                let d9 = soft::INV_SBOX[(correct[jd] ^ k as u8) as usize]
                    ^ soft::INV_SBOX[(faulty[jd] ^ k as u8) as usize];
                if self.feasible[d9 as usize] {
                    self.votes[jd * 256 + k] += 1;
                }
            }
        }
        self.pairs_accepted += 1;
        self.severity_sum += weight;
        self.severity_max = self.severity_max.max(weight);
        PairOutcome::Accepted(diffs.len())
    }

    /// Accepted / unfaulted / discarded pair counts, in that order.
    pub fn pair_counts(&self) -> (u64, u64, u64) {
        (
            self.pairs_accepted,
            self.pairs_unfaulted,
            self.pairs_discarded,
        )
    }

    /// Difference equations absorbed for ciphertext byte `jd`.
    ///
    /// # Panics
    ///
    /// Panics if `jd >= 16`.
    pub fn equations(&self, jd: usize) -> u32 {
        self.equations[jd]
    }

    /// Sum and max of severity weights over accepted pairs.
    pub fn severity(&self) -> (f64, f64) {
        (self.severity_sum, self.severity_max)
    }

    /// Vote counts of the best and runner-up candidates for byte `jd`.
    pub fn margin(&self, jd: usize) -> (u32, u32) {
        let lane = &self.votes[jd * 256..(jd + 1) * 256];
        let mut best = 0u32;
        let mut second = 0u32;
        for &v in lane {
            if v >= best {
                second = best;
                best = v;
            } else if v > second {
                second = v;
            }
        }
        (best, second)
    }

    /// All candidates for last-round key byte `jd` tied at the maximum
    /// vote count. Empty while no votes have been cast on that byte.
    ///
    /// # Panics
    ///
    /// Panics if `jd >= 16`.
    pub fn candidates(&self, jd: usize) -> Vec<u8> {
        assert!(jd < 16);
        let lane = &self.votes[jd * 256..(jd + 1) * 256];
        let best = lane.iter().copied().max().unwrap_or(0);
        if best == 0 {
            return Vec::new();
        }
        (0..256)
            .filter(|&k| lane[k] == best)
            .map(|k| k as u8)
            .collect()
    }

    /// Last-round key byte `jd` if it is unambiguous: a unique argmax
    /// with at least 4 votes and a lead of at least 2 over the
    /// runner-up. `None` otherwise.
    pub fn recovered_byte(&self, jd: usize) -> Option<u8> {
        let (best, second) = self.margin(jd);
        if best < MIN_VOTES || best < second + MIN_MARGIN {
            return None;
        }
        let cands = self.candidates(jd);
        match cands.as_slice() {
            [unique] => Some(*unique),
            _ => None,
        }
    }

    /// The full last-round key, if all 16 bytes are unambiguous.
    pub fn recovered_round_key(&self) -> Option<[u8; 16]> {
        let mut k10 = [0u8; 16];
        for (jd, slot) in k10.iter_mut().enumerate() {
            *slot = self.recovered_byte(jd)?;
        }
        Some(k10)
    }

    /// The AES-128 master key, by running the key schedule backwards
    /// from a fully recovered last-round key.
    pub fn recovered_master_key(&self) -> Option<[u8; 16]> {
        self.recovered_round_key()
            .map(|k10| soft::invert_key_schedule(&k10))
    }

    /// Number of last-round bytes currently unambiguous.
    pub fn recovered_bytes(&self) -> usize {
        (0..16)
            .filter(|&jd| self.recovered_byte(jd).is_some())
            .count()
    }

    /// Folds another accumulator into this one, as if its pairs had
    /// been absorbed here. Votes and pair counts are integer sums and
    /// the severity track is (sum, max), so merging shard partials in
    /// shard order reproduces the serial run bit for bit — the same
    /// determinism contract as [`crate::CpaAttack::try_merge`].
    ///
    /// # Errors
    ///
    /// [`CpaError::IncompatibleMerge`] when the fault models or
    /// avalanche filters differ; this accumulator is unchanged.
    pub fn try_merge(&mut self, other: &DfaAttack) -> Result<(), CpaError> {
        if self.model != other.model || self.max_diff_bytes != other.max_diff_bytes {
            return Err(CpaError::IncompatibleMerge {
                detail: format!(
                    "dfa {:?}/≤{} vs {:?}/≤{}",
                    self.model, self.max_diff_bytes, other.model, other.max_diff_bytes
                ),
            });
        }
        for (a, b) in self.votes.iter_mut().zip(&other.votes) {
            *a += b;
        }
        for (a, b) in self.equations.iter_mut().zip(&other.equations) {
            *a += b;
        }
        self.pairs_accepted += other.pairs_accepted;
        self.pairs_unfaulted += other.pairs_unfaulted;
        self.pairs_discarded += other.pairs_discarded;
        self.severity_sum += other.severity_sum;
        self.severity_max = self.severity_max.max(other.severity_max);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_pdn::noise::Rng64;

    const KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];

    fn random_pt(rng: &mut Rng64) -> [u8; 16] {
        let mut pt = [0u8; 16];
        rng.fill_bytes(&mut pt);
        pt
    }

    /// A synthetic campaign injecting known single-byte state-9 faults.
    fn single_byte_pairs(rng: &mut Rng64, n: usize, max_bits: u32) -> Vec<([u8; 16], [u8; 16])> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let pt = random_pt(rng);
            let correct = soft::encrypt(&KEY, &pt);
            let j = (rng.next_u64() % 16) as usize;
            let mut delta = 0u8;
            while delta == 0 || u32::from(delta).count_ones() > max_bits {
                delta = (rng.next_u64() & 0xff) as u8;
            }
            let mut mask = [0u8; 16];
            mask[j] = delta;
            let faulty = soft::encrypt_with_state_faults(&KEY, &pt, &[(9, mask)]);
            out.push((correct, faulty));
        }
        out
    }

    #[test]
    fn single_byte_model_recovers_exact_round_key() {
        let mut rng = Rng64::new(0x0df4_0001);
        let mut dfa = DfaAttack::new(DfaModel::SingleByte { max_fault_bits: 2 });
        for (c, f) in single_byte_pairs(&mut rng, 400, 2) {
            let outcome = dfa.add_pair(&c, &f);
            assert!(matches!(outcome, PairOutcome::Accepted(1)));
        }
        let k10 = soft::key_expansion(&KEY)[soft::ROUNDS];
        assert_eq!(dfa.recovered_round_key(), Some(k10));
        assert_eq!(dfa.recovered_master_key(), Some(KEY));
        assert_eq!(dfa.recovered_bytes(), 16);
        // Every pair produced exactly one equation.
        let total: u32 = (0..16).map(|jd| dfa.equations(jd)).sum();
        assert_eq!(u64::from(total), dfa.pair_counts().0);
    }

    #[test]
    fn recovery_survives_avalanche_contamination() {
        // 1 in 4 pairs is an early-round avalanche. Most are discarded
        // by the diff-count filter; the few that slip through add only
        // uniform noise votes, and argmax still converges.
        let mut rng = Rng64::new(0x0df4_0002);
        let mut dfa = DfaAttack::new(DfaModel::SingleByte { max_fault_bits: 2 });
        for (i, (c, f)) in single_byte_pairs(&mut rng, 480, 2).into_iter().enumerate() {
            if i % 4 == 0 {
                let pt = random_pt(&mut rng);
                let correct = soft::encrypt(&KEY, &pt);
                let mut mask = [0u8; 16];
                mask[3] = 0x40;
                let faulty = soft::encrypt_with_state_faults(&KEY, &pt, &[(5, mask)]);
                dfa.add_pair(&correct, &faulty);
            } else {
                dfa.add_pair(&c, &f);
            }
        }
        let (_, _, discarded) = dfa.pair_counts();
        assert!(discarded > 80, "avalanche filter idle: {discarded}");
        let k10 = soft::key_expansion(&KEY)[soft::ROUNDS];
        assert_eq!(dfa.recovered_round_key(), Some(k10));
    }

    #[test]
    fn diagonal_model_narrows_candidates_as_pairs_arrive() {
        // Pre-mix faults: flip one bit before round 9's MixColumns and
        // analyse under the diagonal model. Each pair leaves the true
        // key among the candidates; ambiguity shrinks monotonically in
        // expectation and ends well below the 3·|ε| starting set.
        let mut rng = Rng64::new(0x0df4_0003);
        let model = DfaModel::DiagonalRound9 { max_fault_bits: 1 };
        let mut dfa = DfaAttack::new(model);
        let k10 = soft::key_expansion(&KEY)[soft::ROUNDS];
        let target_byte = 0usize; // pre-mix faults on byte 0 reach column 0
        let watch = soft::shift_rows_dest(target_byte);
        let mut sizes = Vec::new();
        for round_trip in 0..10 {
            let pt = random_pt(&mut rng);
            let correct = soft::encrypt(&KEY, &pt);
            let eps = 1u8 << (round_trip % 8);
            let faulty = soft::encrypt_with_premix_fault(&KEY, &pt, 9, target_byte, eps);
            let outcome = dfa.add_pair(&correct, &faulty);
            // One pre-mix fault spreads over the whole column: 4 bytes.
            assert!(matches!(outcome, PairOutcome::Accepted(4)));
            let cands = dfa.candidates(watch);
            assert!(
                cands.contains(&k10[watch]),
                "true key fell out of the candidate set"
            );
            sizes.push(cands.len());
        }
        // First pair: every key whose implied δ9 is in the admissible
        // set survives — a sizeable fraction of 256. Ten pairs later
        // the ambiguity is tiny.
        assert!(sizes[0] > 8, "first pair over-narrowed: {sizes:?}");
        assert!(
            *sizes.last().unwrap() <= 4,
            "diagonal model failed to narrow: {sizes:?}"
        );
        assert!(sizes.last().unwrap() <= &sizes[0]);
        // The single-byte model would mis-rank these column faults:
        // its admissible set is a strict subset, so votes are sparser.
        assert!(model.set_size() > DfaModel::SingleByte { max_fault_bits: 1 }.set_size());
    }

    #[test]
    fn unfaulted_and_avalanche_pairs_are_filtered() {
        let mut dfa = DfaAttack::new(DfaModel::SingleByte { max_fault_bits: 2 });
        let ct = [0x5a; 16];
        assert_eq!(dfa.add_pair(&ct, &ct), PairOutcome::Unfaulted);
        let mut all_diff = ct;
        for b in &mut all_diff {
            *b ^= 0xff;
        }
        assert_eq!(dfa.add_pair(&ct, &all_diff), PairOutcome::Discarded);
        assert_eq!(dfa.pair_counts(), (0, 1, 1));
        assert_eq!(dfa.recovered_bytes(), 0);
        assert!(dfa.candidates(0).is_empty());
    }

    #[test]
    fn merge_requires_matching_model_and_filter() {
        let mut a = DfaAttack::new(DfaModel::SingleByte { max_fault_bits: 2 });
        let b = DfaAttack::new(DfaModel::SingleByte { max_fault_bits: 3 });
        let c = DfaAttack::new(DfaModel::DiagonalRound9 { max_fault_bits: 2 });
        let d = DfaAttack::with_max_diff_bytes(DfaModel::SingleByte { max_fault_bits: 2 }, 4);
        assert!(a.try_merge(&b).is_err());
        assert!(a.try_merge(&c).is_err());
        assert!(a.try_merge(&d).is_err());
        let e = DfaAttack::new(DfaModel::SingleByte { max_fault_bits: 2 });
        assert!(a.try_merge(&e).is_ok());
    }

    #[test]
    fn merged_shards_equal_serial_run() {
        let mut rng = Rng64::new(0x0df4_0004);
        let pairs = single_byte_pairs(&mut rng, 120, 2);
        let model = DfaModel::SingleByte { max_fault_bits: 2 };
        let mut serial = DfaAttack::new(model);
        for (c, f) in &pairs {
            serial.add_pair_weighted(c, f, 0.125);
        }
        let mut merged = DfaAttack::new(model);
        for chunk in pairs.chunks(37) {
            let mut shard = DfaAttack::new(model);
            for (c, f) in chunk {
                shard.add_pair_weighted(c, f, 0.125);
            }
            merged.try_merge(&shard).unwrap();
        }
        assert_eq!(serial, merged);
    }
}
