//! Raw-sample → scalar-trace post-processing.

use serde::{Deserialize, Serialize};
use slm_sensors::SensorSample;

/// How a raw multi-bit sensor capture is reduced to one trace point.
///
/// The paper evaluates three reductions: the Hamming weight of the
/// sensitive *bits of interest* (Figs. 6, 10, 17), a single selected
/// endpoint (Figs. 12, 13, 18), and — for the TDC — the thermometer
/// depth itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PostProcessor {
    /// Hamming weight over all endpoints.
    HammingWeightAll,
    /// Hamming weight over the listed endpoints only.
    HammingWeightOf(Vec<usize>),
    /// Polarity-aligned Hamming weight: slot `i` is inverted before
    /// summing when `invert[i]` is true. Used when a circuit's
    /// endpoints respond to a droop with mixed polarities (some read 1,
    /// some read 0): aligning each bit by its settled value makes every
    /// endpoint count a droop positively, so the sum stays coherent.
    /// `invert.len()` must equal the sample length.
    HammingWeightAligned(Vec<bool>),
    /// The value of one endpoint (0.0 or 1.0).
    SingleBit(usize),
}

impl PostProcessor {
    /// Reduces one capture to a scalar.
    pub fn reduce(&self, sample: &SensorSample) -> f64 {
        match self {
            PostProcessor::HammingWeightAll => f64::from(sample.hamming_weight()),
            PostProcessor::HammingWeightOf(bits) => f64::from(sample.hamming_weight_of(bits)),
            PostProcessor::HammingWeightAligned(invert) => {
                assert_eq!(invert.len(), sample.len, "invert mask length");
                (0..sample.len)
                    .map(|i| f64::from(u8::from(sample.bit(i) ^ invert[i])))
                    .sum()
            }
            PostProcessor::SingleBit(i) => f64::from(u8::from(sample.bit(*i))),
        }
    }

    /// Reduces a whole capture sequence to a scalar trace.
    pub fn reduce_all(&self, samples: &[SensorSample]) -> Vec<f64> {
        samples.iter().map(|s| self.reduce(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(words: Vec<u64>, len: usize) -> SensorSample {
        SensorSample { bits: words, len }
    }

    #[test]
    fn reductions() {
        let s = sample(vec![0b1011], 4);
        assert_eq!(PostProcessor::HammingWeightAll.reduce(&s), 3.0);
        assert_eq!(PostProcessor::HammingWeightOf(vec![0, 2]).reduce(&s), 1.0);
        assert_eq!(PostProcessor::SingleBit(1).reduce(&s), 1.0);
        assert_eq!(PostProcessor::SingleBit(2).reduce(&s), 0.0);
    }

    #[test]
    fn aligned_hw() {
        let s = sample(vec![0b1011], 4);
        // bits LSB-first are 1,1,0,1; inverting slots 0 and 3 gives
        // 0,1,0,0 → weight 1
        let p = PostProcessor::HammingWeightAligned(vec![true, false, false, true]);
        assert_eq!(p.reduce(&s), 1.0);
        // all-false mask equals plain HW
        let p0 = PostProcessor::HammingWeightAligned(vec![false; 4]);
        assert_eq!(p0.reduce(&s), 3.0);
    }

    #[test]
    #[should_panic(expected = "invert mask length")]
    fn aligned_hw_mask_length_checked() {
        let s = sample(vec![0b1011], 4);
        let p = PostProcessor::HammingWeightAligned(vec![false; 3]);
        let _ = p.reduce(&s);
    }

    #[test]
    fn reduce_all_maps() {
        let seq = vec![sample(vec![0b01], 2), sample(vec![0b11], 2)];
        assert_eq!(
            PostProcessor::HammingWeightAll.reduce_all(&seq),
            vec![1.0, 2.0]
        );
    }
}
