//! Full-key CPA: sixteen last-round attacks over one trace stream.
//!
//! The paper demonstrates recovery of one key byte; a real adversary
//! reuses the same captured traces to attack all sixteen bytes of the
//! last round key in parallel (each byte's hypothesis depends on a
//! different ciphertext byte) and then inverts the key schedule to
//! obtain the master key. This module completes that chain.

use crate::attack::{CpaAttack, LastRoundModel, TraceBatch};
use crate::error::CpaError;
use serde::{Deserialize, Serialize};
use slm_aes::soft;

/// Sixteen parallel last-round single-bit CPA attacks sharing one
/// trace stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiByteCpa {
    attacks: Vec<CpaAttack>,
}

impl MultiByteCpa {
    /// Creates attacks on every key byte, predicting `bit` of the
    /// pre-SubBytes state, over `points` trace points.
    pub fn new(bit: u8, points: usize) -> Self {
        MultiByteCpa {
            attacks: (0..16)
                .map(|ct_byte| CpaAttack::new(LastRoundModel { ct_byte, bit }, points))
                .collect(),
        }
    }

    /// Traces absorbed so far.
    pub fn traces(&self) -> u64 {
        self.attacks[0].traces()
    }

    /// Absorbs one trace into all sixteen attacks.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the configured point
    /// count.
    pub fn add_trace(&mut self, ct: &[u8; 16], samples: &[f64]) {
        for attack in &mut self.attacks {
            attack.add_trace(ct, samples);
        }
    }

    /// Absorbs one trace into all sixteen attacks, rejecting a
    /// malformed one instead of panicking (see
    /// [`CpaAttack::try_add_trace`]).
    ///
    /// # Errors
    ///
    /// [`CpaError::PointCountMismatch`] when the sample count is
    /// wrong; no attack absorbs the trace.
    pub fn try_add_trace(&mut self, ct: &[u8; 16], samples: &[f64]) -> Result<(), CpaError> {
        if samples.len() != self.attacks[0].points() {
            return Err(CpaError::PointCountMismatch {
                expected: self.attacks[0].points(),
                got: samples.len(),
            });
        }
        self.add_trace(ct, samples);
        Ok(())
    }

    /// Absorbs a staged batch into all sixteen attacks, bit-identically
    /// to feeding the batch's traces one at a time in batch order (see
    /// [`CpaAttack::add_batch`] for the order-preservation argument).
    /// Each byte-attack derives its own bin grouping from the batch's
    /// stored ciphertexts.
    ///
    /// # Errors
    ///
    /// [`CpaError::PointCountMismatch`] when the batch's point count is
    /// wrong; no attack absorbs any trace.
    pub fn add_batch(&mut self, batch: &TraceBatch) -> Result<(), CpaError> {
        if batch.points() != self.attacks[0].points() {
            return Err(CpaError::PointCountMismatch {
                expected: self.attacks[0].points(),
                got: batch.points(),
            });
        }
        for attack in &mut self.attacks {
            attack.add_batch(batch)?;
        }
        Ok(())
    }

    /// Folds another sixteen-byte accumulator into this one, byte by
    /// byte (see [`CpaAttack::try_merge`] for the merge algebra and
    /// determinism contract).
    ///
    /// # Errors
    ///
    /// [`CpaError::IncompatibleMerge`] when any per-byte pair is
    /// incompatible; bytes already merged before the mismatch was
    /// detected are **not** rolled back, so treat an error as fatal
    /// for this accumulator.
    pub fn try_merge(&mut self, other: &MultiByteCpa) -> Result<(), CpaError> {
        if self.attacks[0].points() != other.attacks[0].points() {
            return Err(CpaError::IncompatibleMerge {
                detail: format!(
                    "{} points vs {} points",
                    self.attacks[0].points(),
                    other.attacks[0].points()
                ),
            });
        }
        for (a, b) in self.attacks.iter_mut().zip(&other.attacks) {
            a.try_merge(b)?;
        }
        Ok(())
    }

    /// [`MultiByteCpa::try_merge`] for accumulators known to be
    /// compatible.
    ///
    /// # Panics
    ///
    /// Panics if the point counts or per-byte models differ.
    pub fn merge(&mut self, other: &MultiByteCpa) {
        self.try_merge(other)
            .expect("merged accumulators must share geometry");
    }

    /// The leading candidate and its peak |r| for each key byte.
    pub fn best_candidates(&self) -> [(u8, f64); 16] {
        let mut out = [(0u8, 0.0f64); 16];
        for (b, attack) in self.attacks.iter().enumerate() {
            out[b] = attack.best_candidate();
        }
        out
    }

    /// [`MultiByteCpa::best_candidates`] with the 16 × 256-candidate
    /// correlation evaluation spread across `workers` threads (0 =
    /// machine parallelism). Each byte's evaluation is computed
    /// exactly as the serial path would, so the result is
    /// bit-identical at any worker count.
    pub fn best_candidates_par(&self, workers: usize) -> [(u8, f64); 16] {
        let peaks = slm_par::par_map(workers, &self.attacks, CpaAttack::peak_correlations);
        let mut out = [(0u8, 0.0f64); 16];
        for (b, peak) in peaks.iter().enumerate() {
            let mut best = 0usize;
            for k in 1..256 {
                if peak[k] > peak[best] {
                    best = k;
                }
            }
            out[b] = (best as u8, peak[best]);
        }
        out
    }

    /// [`MultiByteCpa::recovered_round_key`] evaluated across
    /// `workers` threads.
    pub fn recovered_round_key_par(&self, workers: usize) -> [u8; 16] {
        let mut k10 = [0u8; 16];
        for (b, (k, _)) in self.best_candidates_par(workers).iter().enumerate() {
            k10[b] = *k;
        }
        k10
    }

    /// The recovered last round key (leading candidate per byte).
    pub fn recovered_round_key(&self) -> [u8; 16] {
        let mut k10 = [0u8; 16];
        for (b, (k, _)) in self.best_candidates().iter().enumerate() {
            k10[b] = *k;
        }
        k10
    }

    /// The recovered master key, from inverting the key schedule on the
    /// recovered round key.
    pub fn recovered_master_key(&self) -> [u8; 16] {
        soft::invert_key_schedule(&self.recovered_round_key())
    }

    /// How many bytes of the true last round key currently lead.
    pub fn correct_bytes(&self, true_k10: &[u8; 16]) -> usize {
        self.recovered_round_key()
            .iter()
            .zip(true_k10)
            .filter(|(a, b)| a == b)
            .count()
    }

    /// Per-byte rank of the true key byte (0 = leading).
    pub fn ranks(&self, true_k10: &[u8; 16]) -> [usize; 16] {
        let mut out = [0usize; 16];
        for (b, attack) in self.attacks.iter().enumerate() {
            out[b] = attack.rank_of(true_k10[b]);
        }
        out
    }

    /// Access to the per-byte attacks.
    pub fn byte_attack(&self, ct_byte: usize) -> &CpaAttack {
        &self.attacks[ct_byte]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_pdn::noise::Rng64;

    #[test]
    fn recovers_all_bytes_from_synthetic_leakage() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let k10 = soft::key_expansion(&key)[10];
        let mut multi = MultiByteCpa::new(0, 1);
        let mut rng = Rng64::new(42);
        for _ in 0..6_000 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            // leakage: sum over all bytes of the pre-SubBytes bit + noise
            let mut leak = 0.0;
            for b in 0..16 {
                leak += f64::from(soft::INV_SBOX[(ct[b] ^ k10[b]) as usize] & 1);
            }
            multi.add_trace(&ct, &[leak + rng.normal_scaled(2.0)]);
        }
        assert_eq!(multi.recovered_round_key(), k10);
        assert_eq!(multi.recovered_master_key(), key);
        assert_eq!(multi.correct_bytes(&k10), 16);
        assert_eq!(multi.ranks(&k10), [0; 16]);
        assert_eq!(multi.traces(), 6_000);
    }

    #[test]
    fn partial_recovery_counts() {
        let k10 = [7u8; 16];
        let multi = MultiByteCpa::new(0, 1);
        // untrained attacks lead with candidate 0 everywhere
        let correct = multi.correct_bytes(&k10);
        assert_eq!(correct, 0);
        let all_zero = multi.correct_bytes(&[0u8; 16]);
        assert_eq!(all_zero, 16);
    }
}
