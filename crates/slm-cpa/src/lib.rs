//! Host-side side-channel analysis: the "python script on the
//! workstation" half of the paper's setup, in Rust.
//!
//! Pipeline, mirroring Section IV/V of the paper:
//!
//! 1. capture raw sensor samples per encryption ([`slm_sensors`] types),
//! 2. find the *bits of interest* — endpoints that toggle under voltage
//!    fluctuations — and rank them by variance ([`BitActivity`],
//!    Figs. 7, 8, 15, 16),
//! 3. post-process each capture into scalar trace points
//!    ([`PostProcessor`]: Hamming weight of selected bits, or a single
//!    endpoint),
//! 4. run correlation power analysis against the last-round single-bit
//!    hypothesis ([`CpaAttack`], Figs. 9–13, 17, 18) and measure the
//!    traces-to-disclosure ([`measurements_to_disclosure`]).
//!
//! # Example: CPA on synthetic leakage
//!
//! ```
//! use slm_cpa::{CpaAttack, LastRoundModel};
//! use slm_aes::soft;
//! use slm_pdn::noise::Rng64;
//!
//! let key = [7u8; 16];
//! let k10 = soft::key_expansion(&key)[10];
//! let model = LastRoundModel { ct_byte: 3, bit: 0 };
//! let mut attack = CpaAttack::new(model, 1);
//! let mut rng = Rng64::new(1);
//! for _ in 0..2000 {
//!     let mut pt = [0u8; 16];
//!     rng.fill_bytes(&mut pt);
//!     let ct = soft::encrypt(&key, &pt);
//!     // leakage = hypothesis bit + noise
//!     let h = f64::from(u8::from(model.hypothesis(&ct, k10[3])));
//!     attack.add_trace(&ct, &[h + rng.normal_scaled(2.0)]);
//! }
//! let (best, _) = attack.best_candidate();
//! assert_eq!(best, k10[3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod bits;
pub mod dfa;
mod error;
mod mtd;
mod multibyte;
mod postprocess;
pub mod store;
mod tvla;

pub use attack::{leader_margin, CpaAttack, CpaCheckpoint, LastRoundModel, TraceBatch};
pub use bits::{common_mode_polarity, BitActivity, BitCensus};
pub use dfa::{DfaAttack, DfaModel, PairOutcome};
pub use error::CpaError;
pub use mtd::{measurements_to_disclosure, rank_progress, ProgressPoint};
pub use multibyte::MultiByteCpa;
pub use postprocess::PostProcessor;
pub use tvla::{WelchTTest, TVLA_THRESHOLD};
