//! Typed errors for the accumulator layer.

/// A trace or accumulator whose shape disagrees with the attack it was
/// offered to.
///
/// Campaign code paths use [`crate::CpaAttack::try_add_trace`] so a
/// malformed frame that slips past transport validation is quarantined
/// by the caller instead of aborting the process mid-campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpaError {
    /// A trace arrived with the wrong number of points.
    PointCountMismatch {
        /// Points the attack was configured for.
        expected: usize,
        /// Points the offending trace carried.
        got: usize,
    },
    /// Two accumulators with different geometry or hypothesis models
    /// cannot be merged.
    IncompatibleMerge {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl std::fmt::Display for CpaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpaError::PointCountMismatch { expected, got } => {
                write!(
                    f,
                    "trace point count mismatch: expected {expected}, got {got}"
                )
            }
            CpaError::IncompatibleMerge { detail } => {
                write!(f, "incompatible accumulator merge: {detail}")
            }
        }
    }
}

impl std::error::Error for CpaError {}
