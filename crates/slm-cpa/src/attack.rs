//! Correlation power analysis against the AES last round.

use crate::error::CpaError;
use serde::{Deserialize, Serialize};
use slm_aes::soft::INV_SBOX;

/// The paper's hypothesis: "textbook CPA using a single bit mask model
/// before the final SBox computation".
///
/// For a key-byte candidate `k`, the predicted leakage of a trace with
/// ciphertext `ct` is bit `bit` of `INV_SBOX[ct[ct_byte] ^ k]` — one bit
/// of the state entering the final SubBytes. A correct candidate
/// partitions traces into two populations whose mean power differs;
/// wrong candidates shuffle the partition and decorrelate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LastRoundModel {
    /// Which ciphertext byte (and thus which last-round-key byte) is
    /// attacked. The paper attacks the 4th byte (index 3).
    pub ct_byte: usize,
    /// Which bit of the pre-SubBytes value is predicted (paper: bit 0).
    pub bit: u8,
}

impl LastRoundModel {
    /// The paper's target: 1st bit of the 4th byte of the last round key.
    pub fn paper_target() -> Self {
        LastRoundModel { ct_byte: 3, bit: 0 }
    }

    /// Predicted leakage bit for candidate `k` on ciphertext `ct`.
    #[inline]
    pub fn hypothesis(&self, ct: &[u8; 16], k: u8) -> bool {
        (INV_SBOX[(ct[self.ct_byte] ^ k) as usize] >> self.bit) & 1 == 1
    }

    /// The value→hypothesis lookup table: entry `v` is the predicted
    /// bit for a trace whose attacked ciphertext byte XOR candidate is
    /// `v`. Candidate `k` maps bin `c` to `table[c ^ k]`, so one table
    /// serves all 256 candidates of a correlation evaluation.
    pub fn hypothesis_table(&self) -> [bool; 256] {
        let mut table = [false; 256];
        for (v, slot) in table.iter_mut().enumerate() {
            *slot = (INV_SBOX[v] >> self.bit) & 1 == 1;
        }
        table
    }
}

/// Streaming binned CPA.
///
/// Traces are binned by the attacked ciphertext-byte value (256 bins),
/// which makes adding a trace O(points) and evaluating all 256
/// candidates O(256² · points) — independent of the trace count, so
/// correlation-progress curves over 500 k traces are cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpaAttack {
    model: LastRoundModel,
    points: usize,
    /// Per ct-byte-value trace count (256 entries).
    bin_count: Vec<u64>,
    /// Per ct-byte-value, per point: sum of trace values.
    bin_sum: Vec<f64>, // 256 × points
    /// Per point: sum of squares over all traces.
    sum_sq: Vec<f64>,
    traces: u64,
}

impl CpaAttack {
    /// Creates an attack on `points` trace points per encryption.
    pub fn new(model: LastRoundModel, points: usize) -> Self {
        CpaAttack {
            model,
            points,
            bin_count: vec![0; 256],
            bin_sum: vec![0.0; 256 * points],
            sum_sq: vec![0.0; points],
            traces: 0,
        }
    }

    /// The hypothesis model under attack.
    pub fn model(&self) -> &LastRoundModel {
        &self.model
    }

    /// Number of points per trace.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Number of traces absorbed so far.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Absorbs one trace.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the configured point count.
    #[inline]
    pub fn add_trace(&mut self, ct: &[u8; 16], samples: &[f64]) {
        assert_eq!(samples.len(), self.points, "trace point count mismatch");
        self.add_trace_unchecked(ct, samples);
    }

    /// Absorbs one trace, rejecting a malformed one instead of
    /// panicking.
    ///
    /// Campaign code paths feed the accumulator from a transport; a
    /// frame that passes CRC and geometry validation can still carry
    /// the wrong number of points. This variant lets the caller
    /// quarantine such a record and keep the campaign alive.
    ///
    /// # Errors
    ///
    /// [`CpaError::PointCountMismatch`] when `samples.len()` differs
    /// from the configured point count; the accumulator is unchanged.
    #[inline]
    pub fn try_add_trace(&mut self, ct: &[u8; 16], samples: &[f64]) -> Result<(), CpaError> {
        if samples.len() != self.points {
            return Err(CpaError::PointCountMismatch {
                expected: self.points,
                got: samples.len(),
            });
        }
        self.add_trace_unchecked(ct, samples);
        Ok(())
    }

    #[inline]
    fn add_trace_unchecked(&mut self, ct: &[u8; 16], samples: &[f64]) {
        let c = ct[self.model.ct_byte] as usize;
        self.bin_count[c] += 1;
        let row = &mut self.bin_sum[c * self.points..(c + 1) * self.points];
        for ((r, q), &x) in row.iter_mut().zip(&mut self.sum_sq).zip(samples) {
            *r += x;
            *q += x * x;
        }
        self.traces += 1;
    }

    /// Absorbs a staged batch of traces, bit-identically to absorbing
    /// them one at a time in batch order.
    ///
    /// The batched layout turns the per-trace scattered update into two
    /// dense passes: one trace-major sweep for the sums of squares, and
    /// one bin-grouped sweep for the per-bin point sums (a counting
    /// sort keyed on the attacked ciphertext byte). Each accumulator
    /// cell is only ever touched by one group, and within a group the
    /// traces keep their batch order — so every cell sees the exact
    /// f64 addition sequence of the sequential path, and the result is
    /// bitwise equal (pinned by the `batch_add_matches_sequential`
    /// property test). The dense inner loops run over contiguous
    /// structure-of-arrays rows, which is what lets them autovectorize.
    ///
    /// # Errors
    ///
    /// [`CpaError::PointCountMismatch`] when the batch's point count
    /// differs from the attack's; the accumulator is unchanged.
    pub fn add_batch(&mut self, batch: &TraceBatch) -> Result<(), CpaError> {
        if batch.points != self.points {
            return Err(CpaError::PointCountMismatch {
                expected: self.points,
                got: batch.points,
            });
        }
        let k = batch.len();
        // Pass 1: sums of squares, trace-major. Per point-cell the
        // addition order is batch order — same as sequential.
        for t in 0..k {
            let row = batch.samples_of(t);
            for (q, &x) in self.sum_sq.iter_mut().zip(row) {
                *q += x * x;
            }
        }
        // Pass 2: counting-sort trace indices by bin (stable: batch
        // order within a bin), then accumulate each bin's row densely.
        let mut count = [0u32; 256];
        for ct in &batch.cts {
            count[ct[self.model.ct_byte] as usize] += 1;
        }
        let mut start = [0u32; 256];
        let mut acc = 0u32;
        for (s, &c) in start.iter_mut().zip(&count) {
            *s = acc;
            acc += c;
        }
        let mut order = vec![0u32; k];
        let mut cursor = start;
        for (t, ct) in batch.cts.iter().enumerate() {
            let c = ct[self.model.ct_byte] as usize;
            order[cursor[c] as usize] = t as u32;
            cursor[c] += 1;
        }
        for c in 0..256usize {
            if count[c] == 0 {
                continue;
            }
            self.bin_count[c] += u64::from(count[c]);
            let row = &mut self.bin_sum[c * self.points..(c + 1) * self.points];
            let lo = start[c] as usize;
            let hi = lo + count[c] as usize;
            for &t in &order[lo..hi] {
                for (r, &x) in row.iter_mut().zip(batch.samples_of(t as usize)) {
                    *r += x;
                }
            }
        }
        self.traces += k as u64;
        Ok(())
    }

    /// [`CpaAttack::add_batch`] with observability: counts the absorbed
    /// traces under `cpa.accumulator_traces`, matching what the
    /// per-trace recorded path would have counted.
    ///
    /// # Errors
    ///
    /// [`CpaError::PointCountMismatch`] as for [`CpaAttack::add_batch`].
    pub fn add_batch_recorded(
        &mut self,
        batch: &TraceBatch,
        obs: &slm_obs::Obs,
    ) -> Result<(), CpaError> {
        self.add_batch(batch)?;
        obs.add("cpa.accumulator_traces", batch.len() as u64);
        Ok(())
    }

    /// Folds another accumulator into this one, as if its traces had
    /// been absorbed here.
    ///
    /// Every field of the binned representation — bin counts, per-bin
    /// point sums, sums of squares, trace count — is additive, so a
    /// campaign can capture shards on independent workers and merge
    /// the partials afterwards. Merging shard partials *in shard
    /// order* reproduces the sequential shard-by-shard run bit for
    /// bit, which is the parallel campaign determinism contract.
    ///
    /// # Errors
    ///
    /// [`CpaError::IncompatibleMerge`] when the hypothesis models or
    /// point counts differ; this accumulator is unchanged.
    pub fn try_merge(&mut self, other: &CpaAttack) -> Result<(), CpaError> {
        if self.model != other.model || self.points != other.points {
            return Err(CpaError::IncompatibleMerge {
                detail: format!(
                    "model {:?}/{} points vs {:?}/{} points",
                    self.model, self.points, other.model, other.points
                ),
            });
        }
        for (a, b) in self.bin_count.iter_mut().zip(&other.bin_count) {
            *a += b;
        }
        for (a, b) in self.bin_sum.iter_mut().zip(&other.bin_sum) {
            *a += b;
        }
        for (a, b) in self.sum_sq.iter_mut().zip(&other.sum_sq) {
            *a += b;
        }
        self.traces += other.traces;
        Ok(())
    }

    /// [`CpaAttack::try_merge`] for accumulators known to be
    /// compatible.
    ///
    /// # Panics
    ///
    /// Panics if the hypothesis models or point counts differ.
    pub fn merge(&mut self, other: &CpaAttack) {
        self.try_merge(other)
            .expect("merged accumulators must share model and geometry");
    }

    /// [`CpaAttack::add_trace`] with observability: counts the
    /// absorption under `cpa.accumulator_traces`. The accumulator
    /// itself cannot hold the handle (it is `Serialize`/`PartialEq`
    /// checkpoint state), so recorded call sites pass it in.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the configured point count.
    #[inline]
    pub fn add_trace_recorded(&mut self, ct: &[u8; 16], samples: &[f64], obs: &slm_obs::Obs) {
        self.add_trace(ct, samples);
        obs.incr("cpa.accumulator_traces");
    }

    /// [`CpaAttack::merge`] with observability: counts the merge under
    /// `cpa.merge_events` and the traces it brought in under
    /// `cpa.traces_merged`.
    ///
    /// # Panics
    ///
    /// Panics if the hypothesis models or point counts differ.
    pub fn merge_recorded(&mut self, other: &CpaAttack, obs: &slm_obs::Obs) {
        self.merge(other);
        obs.incr("cpa.merge_events");
        obs.add("cpa.traces_merged", other.traces);
    }

    /// Per-point sum of trace values over all bins.
    fn total_sum(&self) -> Vec<f64> {
        let mut total = vec![0.0; self.points];
        for c in 0..256 {
            let row = &self.bin_sum[c * self.points..(c + 1) * self.points];
            for (acc, &x) in total.iter_mut().zip(row) {
                *acc += x;
            }
        }
        total
    }

    /// Correlation rows for a contiguous range of key candidates. One
    /// scratch buffer serves the whole range, and the bin→hypothesis
    /// mapping comes from the model's 256-entry lookup table instead
    /// of a per-bin S-box evaluation. The per-point trace-variance
    /// factor `√(n·Σx² − (Σx)²)` does not depend on the candidate, so
    /// it is computed once for the whole range — the same f64 values
    /// every candidate's inner loop used to recompute, hence
    /// bit-identical output.
    fn correlations_for(&self, candidates: std::ops::Range<usize>) -> Vec<Vec<f64>> {
        let n = self.traces as f64;
        let total_sum = self.total_sum();
        let denom_x: Vec<f64> = (0..self.points)
            .map(|p| (n * self.sum_sq[p] - total_sum[p] * total_sum[p]).sqrt())
            .collect();
        let hyp = self.model.hypothesis_table();
        let mut s1 = vec![0.0; self.points];
        let mut out = Vec::with_capacity(candidates.len());
        for k in candidates {
            // Candidate k sends bin c to hypothesis hyp[c ^ k]: fold bins.
            let mut n1 = 0u64;
            s1.fill(0.0);
            for c in 0..256usize {
                if self.bin_count[c] == 0 {
                    continue;
                }
                if hyp[c ^ k] {
                    n1 += self.bin_count[c];
                    let row = &self.bin_sum[c * self.points..(c + 1) * self.points];
                    for (acc, &x) in s1.iter_mut().zip(row) {
                        *acc += x;
                    }
                }
            }
            let n1f = n1 as f64;
            let denom_h = (n1f * (n - n1f)).sqrt();
            let mut row = Vec::with_capacity(self.points);
            for p in 0..self.points {
                let denom = denom_h * denom_x[p];
                row.push(if denom > 0.0 {
                    (n * s1[p] - n1f * total_sum[p]) / denom
                } else {
                    0.0
                });
            }
            out.push(row);
        }
        out
    }

    /// Pearson correlation of every key candidate at every point:
    /// `result[k][p]`.
    pub fn correlations(&self) -> Vec<Vec<f64>> {
        self.correlations_for(0..256)
    }

    /// [`CpaAttack::correlations`] evaluated across `workers` threads
    /// (0 = machine parallelism). Candidates are split into contiguous
    /// blocks, each computed exactly as the serial evaluation would,
    /// so the result is bit-identical at any worker count.
    pub fn correlations_par(&self, workers: usize) -> Vec<Vec<f64>> {
        if slm_par::resolve_workers(workers) <= 1 {
            return self.correlations();
        }
        const BLOCK: usize = 32;
        slm_par::par_map_indexed(workers, 256 / BLOCK, |b| {
            self.correlations_for(b * BLOCK..(b + 1) * BLOCK)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Max |r| over points for every candidate.
    pub fn peak_correlations(&self) -> [f64; 256] {
        Self::peaks_of(&self.correlations())
    }

    /// [`CpaAttack::peak_correlations`] evaluated across `workers`
    /// threads; bit-identical to the serial evaluation.
    pub fn peak_correlations_par(&self, workers: usize) -> [f64; 256] {
        Self::peaks_of(&self.correlations_par(workers))
    }

    fn peaks_of(corrs: &[Vec<f64>]) -> [f64; 256] {
        let mut out = [0.0f64; 256];
        for (k, row) in corrs.iter().enumerate() {
            out[k] = row.iter().fold(0.0f64, |m, r| m.max(r.abs()));
        }
        out
    }

    /// The candidate with the highest peak |r| and that correlation.
    pub fn best_candidate(&self) -> (u8, f64) {
        let peaks = self.peak_correlations();
        let mut best = 0usize;
        for k in 1..256 {
            if peaks[k] > peaks[best] {
                best = k;
            }
        }
        (best as u8, peaks[best])
    }

    /// Ranking position of `key` (0 = leading candidate).
    pub fn rank_of(&self, key: u8) -> usize {
        let peaks = self.peak_correlations();
        let target = peaks[key as usize];
        peaks.iter().filter(|&&p| p > target).count()
    }

    /// Snapshots the full accumulator state.
    ///
    /// The checkpoint is everything: resuming from it and absorbing the
    /// remaining traces yields bit-identical correlations to an
    /// uninterrupted run, which is what lets a multi-hour campaign
    /// survive a host crash. Serialize with
    /// [`crate::store::write_checkpoint`].
    pub fn checkpoint(&self) -> CpaCheckpoint {
        CpaCheckpoint {
            model: self.model,
            points: self.points,
            bin_count: self.bin_count.clone(),
            bin_sum: self.bin_sum.clone(),
            sum_sq: self.sum_sq.clone(),
            traces: self.traces,
        }
    }

    /// Rebuilds an attack from a checkpoint.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the checkpoint's internal geometry is
    /// inconsistent (vector lengths must match `points`).
    pub fn resume(cp: CpaCheckpoint) -> std::io::Result<Self> {
        let bad = |detail: String| std::io::Error::new(std::io::ErrorKind::InvalidData, detail);
        if cp.model.ct_byte >= 16 || cp.model.bit >= 8 {
            return Err(bad(format!(
                "invalid model: ct_byte {} bit {}",
                cp.model.ct_byte, cp.model.bit
            )));
        }
        if cp.bin_count.len() != 256 {
            return Err(bad(format!("{} bins, expected 256", cp.bin_count.len())));
        }
        if cp.bin_sum.len() != 256 * cp.points || cp.sum_sq.len() != cp.points {
            return Err(bad(format!(
                "accumulator geometry {}/{} inconsistent with {} points",
                cp.bin_sum.len(),
                cp.sum_sq.len(),
                cp.points
            )));
        }
        if cp.bin_count.iter().sum::<u64>() != cp.traces {
            return Err(bad(format!(
                "bin counts sum to {}, trace count says {}",
                cp.bin_count.iter().sum::<u64>(),
                cp.traces
            )));
        }
        Ok(CpaAttack {
            model: cp.model,
            points: cp.points,
            bin_count: cp.bin_count,
            bin_sum: cp.bin_sum,
            sum_sq: cp.sum_sq,
            traces: cp.traces,
        })
    }
}

/// A structure-of-arrays staging buffer of captured traces awaiting
/// batched absorption into one or more [`CpaAttack`] accumulators.
///
/// Sample values are stored flat (`len × points`, row-major), so a
/// batch absorb streams contiguous memory instead of chasing one
/// heap-allocated sample vector per trace. One staged batch can feed
/// all 16 byte-attacks of a `MultiByteCpa` — each derives its own bin
/// grouping from the stored ciphertexts.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBatch {
    points: usize,
    cts: Vec<[u8; 16]>,
    samples: Vec<f64>,
}

impl TraceBatch {
    /// An empty batch for traces of `points` samples each.
    pub fn new(points: usize) -> Self {
        Self::with_capacity(points, 0)
    }

    /// An empty batch with room for `traces` traces.
    pub fn with_capacity(points: usize, traces: usize) -> Self {
        TraceBatch {
            points,
            cts: Vec::with_capacity(traces),
            samples: Vec::with_capacity(traces * points),
        }
    }

    /// Stages one trace.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len()` differs from the batch's point count.
    pub fn push(&mut self, ct: [u8; 16], samples: &[f64]) {
        assert_eq!(samples.len(), self.points, "trace point count mismatch");
        self.cts.push(ct);
        self.samples.extend_from_slice(samples);
    }

    /// Number of staged traces.
    pub fn len(&self) -> usize {
        self.cts.len()
    }

    /// Whether the batch holds no traces.
    pub fn is_empty(&self) -> bool {
        self.cts.is_empty()
    }

    /// Points per trace.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Ciphertext of staged trace `t`.
    pub fn ct_of(&self, t: usize) -> &[u8; 16] {
        &self.cts[t]
    }

    /// Sample row of staged trace `t`.
    pub fn samples_of(&self, t: usize) -> &[f64] {
        &self.samples[t * self.points..(t + 1) * self.points]
    }

    /// Empties the batch, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.cts.clear();
        self.samples.clear();
    }
}

/// A complete snapshot of a [`CpaAttack`] accumulator, detached from
/// the attack so it can cross a serialization boundary
/// ([`crate::store::write_checkpoint`] / [`crate::store::read_checkpoint`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpaCheckpoint {
    /// The hypothesis model under attack.
    pub model: LastRoundModel,
    /// Points per trace.
    pub points: usize,
    /// Per ct-byte-value trace count (256 entries).
    pub bin_count: Vec<u64>,
    /// Per ct-byte-value, per point: sum of trace values (256 × points).
    pub bin_sum: Vec<f64>,
    /// Per point: sum of squares over all traces.
    pub sum_sq: Vec<f64>,
    /// Traces absorbed.
    pub traces: u64,
}

/// Separation between the leading and runner-up values of a peak-|r|
/// surface — the attacker-visible measure of how decisively an attack
/// has converged (and the per-checkpoint margin the observability
/// layer tracks over a campaign).
pub fn leader_margin(peaks: &[f64]) -> f64 {
    let mut best = 0.0f64;
    let mut second = 0.0f64;
    for &p in peaks {
        if p > best {
            second = best;
            best = p;
        } else if p > second {
            second = p;
        }
    }
    best - second
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_aes::soft;
    use slm_pdn::noise::Rng64;

    fn run_attack(noise_sigma: f64, traces: usize, seed: u64) -> (CpaAttack, u8) {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let k10 = soft::key_expansion(&key)[10];
        let model = LastRoundModel::paper_target();
        let mut attack = CpaAttack::new(model, 2);
        let mut rng = Rng64::new(seed);
        for _ in 0..traces {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let ct = soft::encrypt(&key, &pt);
            let h = f64::from(u8::from(model.hypothesis(&ct, k10[model.ct_byte])));
            // point 0: pure noise; point 1: leaky
            attack.add_trace(
                &ct,
                &[rng.normal_scaled(1.0), h + rng.normal_scaled(noise_sigma)],
            );
        }
        (attack, k10[3])
    }

    #[test]
    fn leader_margin_separates_best_from_runner_up() {
        assert_eq!(leader_margin(&[]), 0.0);
        assert_eq!(leader_margin(&[0.5]), 0.5);
        let margin = leader_margin(&[0.1, 0.8, 0.3, 0.6]);
        assert!((margin - 0.2).abs() < 1e-12);
    }

    #[test]
    fn recorded_helpers_count_traces_and_merges() {
        let obs = slm_obs::Obs::memory();
        let (mut a, _) = run_attack(0.5, 50, 11);
        let (b, _) = run_attack(0.5, 50, 12);
        let ct = [0u8; 16];
        a.add_trace_recorded(&ct, &[0.0, 0.0], &obs);
        a.merge_recorded(&b, &obs);
        let frame = obs.snapshot();
        assert_eq!(frame.counter("cpa.accumulator_traces"), 1);
        assert_eq!(frame.counter("cpa.merge_events"), 1);
        assert_eq!(frame.counter("cpa.traces_merged"), 50);
    }

    #[test]
    fn recovers_key_with_moderate_noise() {
        let (attack, k) = run_attack(1.5, 3000, 11);
        let (best, peak) = attack.best_candidate();
        assert_eq!(best, k);
        assert!(peak > 0.1, "peak = {peak}");
        assert_eq!(attack.rank_of(k), 0);
    }

    #[test]
    fn fails_with_too_few_traces_in_heavy_noise() {
        let (attack, k) = run_attack(60.0, 200, 12);
        // With SNR ~1/60 and 200 traces the correct key should not be
        // reliably distinguished.
        assert!(attack.rank_of(k) > 0, "attack should not have converged");
    }

    #[test]
    fn correlation_lands_on_leaky_point() {
        let (attack, k) = run_attack(0.5, 5000, 13);
        let corr = &attack.correlations()[k as usize];
        assert!(
            corr[1].abs() > corr[0].abs() + 0.1,
            "point 1 carries the leak: {corr:?}"
        );
    }

    #[test]
    fn correlation_magnitude_matches_theory() {
        // leak = h + noise(σ): point-biserial r = 0.5/sqrt(0.25 + σ²)
        let sigma = 1.0f64;
        let (attack, k) = run_attack(sigma, 40_000, 14);
        let expect = 0.5 / (0.25 + sigma * sigma).sqrt();
        let got = attack.correlations()[k as usize][1];
        assert!(
            (got - expect).abs() < 0.03,
            "r = {got}, expected ≈ {expect}"
        );
    }

    #[test]
    fn empty_attack_is_neutral() {
        let attack = CpaAttack::new(LastRoundModel::paper_target(), 3);
        assert_eq!(attack.traces(), 0);
        let peaks = attack.peak_correlations();
        assert!(peaks.iter().all(|&p| p == 0.0));
    }

    #[test]
    #[should_panic(expected = "point count mismatch")]
    fn wrong_point_count_panics() {
        let mut attack = CpaAttack::new(LastRoundModel::paper_target(), 2);
        attack.add_trace(&[0; 16], &[1.0]);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        // Interrupting a campaign mid-stream and resuming from the
        // checkpoint must reproduce the uninterrupted accumulator
        // exactly — same correlations, same ranking, bit for bit.
        let key = [0x51u8; 16];
        let model = LastRoundModel::paper_target();
        let mut rng = Rng64::new(77);
        let records: Vec<([u8; 16], [f64; 2])> = (0..1200)
            .map(|_| {
                let mut pt = [0u8; 16];
                rng.fill_bytes(&mut pt);
                let ct = soft::encrypt(&key, &pt);
                let x = [rng.normal(), rng.normal()];
                (ct, x)
            })
            .collect();

        let mut unbroken = CpaAttack::new(model, 2);
        for (ct, x) in &records {
            unbroken.add_trace(ct, x);
        }

        let mut first_half = CpaAttack::new(model, 2);
        for (ct, x) in &records[..600] {
            first_half.add_trace(ct, x);
        }
        let cp = first_half.checkpoint();
        drop(first_half); // the "crash"
        let mut resumed = CpaAttack::resume(cp).unwrap();
        for (ct, x) in &records[600..] {
            resumed.add_trace(ct, x);
        }

        assert_eq!(resumed, unbroken);
        assert_eq!(resumed.correlations(), unbroken.correlations());
    }

    #[test]
    fn resume_rejects_inconsistent_checkpoints() {
        let attack = CpaAttack::new(LastRoundModel::paper_target(), 2);
        let good = attack.checkpoint();
        assert!(CpaAttack::resume(good.clone()).is_ok());

        let mut bad = good.clone();
        bad.bin_sum.pop();
        assert!(CpaAttack::resume(bad).is_err());

        let mut bad = good.clone();
        bad.traces = 5; // bins say 0
        assert!(CpaAttack::resume(bad).is_err());

        let mut bad = good.clone();
        bad.bin_count.truncate(8);
        assert!(CpaAttack::resume(bad).is_err());

        let mut bad = good;
        bad.model.ct_byte = 99;
        assert!(CpaAttack::resume(bad).is_err());
    }

    #[test]
    fn try_add_trace_rejects_and_leaves_state_untouched() {
        let mut attack = CpaAttack::new(LastRoundModel::paper_target(), 2);
        attack.add_trace(&[1; 16], &[0.5, 0.25]);
        let before = attack.clone();
        let err = attack.try_add_trace(&[1; 16], &[1.0]).unwrap_err();
        assert_eq!(
            err,
            crate::CpaError::PointCountMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(attack, before, "rejected trace must not perturb state");
        attack.try_add_trace(&[1; 16], &[0.5, 0.25]).unwrap();
        assert_eq!(attack.traces(), 2);
    }

    #[test]
    fn merge_equals_sequential_absorption() {
        // Dyadic sample values keep every f64 sum exact, so the merged
        // partials must equal the single-accumulator run bit for bit.
        let model = LastRoundModel::paper_target();
        let key = [0x3fu8; 16];
        let mut rng = Rng64::new(21);
        let records: Vec<([u8; 16], [f64; 2])> = (0..900)
            .map(|_| {
                let mut pt = [0u8; 16];
                rng.fill_bytes(&mut pt);
                let ct = soft::encrypt(&key, &pt);
                let x = [
                    (rng.next_u64() % 64) as f64 / 8.0,
                    (rng.next_u64() % 64) as f64 / 8.0,
                ];
                (ct, x)
            })
            .collect();
        let mut whole = CpaAttack::new(model, 2);
        for (ct, x) in &records {
            whole.add_trace(ct, x);
        }
        let mut merged = CpaAttack::new(model, 2);
        for chunk in records.chunks(250) {
            let mut part = CpaAttack::new(model, 2);
            for (ct, x) in chunk {
                part.add_trace(ct, x);
            }
            merged.merge(&part);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.correlations(), whole.correlations());
    }

    #[test]
    fn batch_add_matches_sequential_bitwise() {
        // Order preservation makes the batched path exact for ANY f64
        // samples, not just dyadic ones: use full-precision noise.
        let key = [0x5au8; 16];
        let model = LastRoundModel::paper_target();
        let mut rng = Rng64::new(31);
        let mut serial = CpaAttack::new(model, 3);
        let mut batched = CpaAttack::new(model, 3);
        let mut batch = TraceBatch::with_capacity(3, 64);
        for round in 0..5 {
            batch.clear();
            for _ in 0..(13 + round * 7) {
                let mut pt = [0u8; 16];
                rng.fill_bytes(&mut pt);
                let ct = soft::encrypt(&key, &pt);
                let x = [rng.normal(), rng.normal(), rng.normal()];
                serial.add_trace(&ct, &x);
                batch.push(ct, &x);
            }
            batched.add_batch(&batch).unwrap();
            assert_eq!(batched, serial, "diverged after round {round}");
        }
        assert_eq!(batched.correlations(), serial.correlations());
    }

    #[test]
    fn batch_rejects_wrong_point_count_and_empty_is_noop() {
        let mut attack = CpaAttack::new(LastRoundModel::paper_target(), 2);
        let bad = TraceBatch::new(3);
        assert!(matches!(
            attack.add_batch(&bad),
            Err(crate::CpaError::PointCountMismatch {
                expected: 2,
                got: 3
            })
        ));
        let before = attack.clone();
        attack.add_batch(&TraceBatch::new(2)).unwrap();
        assert_eq!(attack, before);
        let obs = slm_obs::Obs::memory();
        let mut batch = TraceBatch::new(2);
        batch.push([7; 16], &[1.0, 2.0]);
        attack.add_batch_recorded(&batch, &obs).unwrap();
        assert_eq!(obs.snapshot().counter("cpa.accumulator_traces"), 1);
        assert_eq!(attack.traces(), 1);
        assert_eq!(batch.ct_of(0), &[7; 16]);
        assert_eq!(batch.samples_of(0), &[1.0, 2.0]);
        assert!(!batch.is_empty());
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn merge_rejects_incompatible_accumulators() {
        let mut a = CpaAttack::new(LastRoundModel::paper_target(), 2);
        let b = CpaAttack::new(LastRoundModel::paper_target(), 3);
        assert!(a.try_merge(&b).is_err());
        let c = CpaAttack::new(LastRoundModel { ct_byte: 5, bit: 1 }, 2);
        assert!(a.try_merge(&c).is_err());
        let d = CpaAttack::new(LastRoundModel::paper_target(), 2);
        assert!(a.try_merge(&d).is_ok());
    }

    #[test]
    fn parallel_correlations_are_bit_identical() {
        let (attack, _) = run_attack(1.0, 2_000, 17);
        let serial = attack.correlations();
        for workers in [1, 2, 3, 8] {
            assert_eq!(attack.correlations_par(workers), serial);
            assert_eq!(
                attack.peak_correlations_par(workers),
                attack.peak_correlations()
            );
        }
    }

    #[test]
    fn hypothesis_table_matches_hypothesis() {
        let model = LastRoundModel { ct_byte: 2, bit: 5 };
        let table = model.hypothesis_table();
        for c in 0..=255u8 {
            for k in [0u8, 1, 77, 255] {
                let mut ct = [0u8; 16];
                ct[2] = c;
                assert_eq!(table[(c ^ k) as usize], model.hypothesis(&ct, k));
            }
        }
    }

    #[test]
    fn hypothesis_inverts_last_round() {
        // hypothesis(ct, k10[b]) equals the pre-SubBytes state bit.
        let key = [9u8; 16];
        let k10 = soft::key_expansion(&key)[10];
        let model = LastRoundModel { ct_byte: 5, bit: 2 };
        let mut rng = Rng64::new(3);
        for _ in 0..32 {
            let mut pt = [0u8; 16];
            rng.fill_bytes(&mut pt);
            let states = soft::encrypt_round_states(&key, &pt);
            let ct = states[10];
            // find the pre-SubBytes byte that lands at ct position 5
            let j = (0..16)
                .find(|&j| soft::shift_rows_dest(j) == model.ct_byte)
                .unwrap();
            let state_bit = (states[9][j] >> model.bit) & 1 == 1;
            assert_eq!(model.hypothesis(&ct, k10[model.ct_byte]), state_bit);
        }
    }
}
