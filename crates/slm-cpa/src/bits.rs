//! Sensitive-bit discovery and ranking.

use serde::{Deserialize, Serialize};
use slm_sensors::SensorSample;

/// Streaming per-endpoint activity statistics over a run of sensor
/// samples: toggle counts, means and variances.
///
/// This is the paper's post-processing step that "select\[s\] all bits of
/// the ALU that fluctuate" (Fig. 7) and ranks them by variance (Fig. 8):
/// "Bits with a higher variance toggle more often and therefore carry
/// more information about the activity on the FPGA."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitActivity {
    len: usize,
    samples: u64,
    ones: Vec<u64>,
    toggles: Vec<u64>,
    last: Option<Vec<u64>>,
}

impl BitActivity {
    /// Creates an accumulator for sensors with `len` endpoints.
    pub fn new(len: usize) -> Self {
        BitActivity {
            len,
            samples: 0,
            ones: vec![0; len],
            toggles: vec![0; len],
            last: None,
        }
    }

    /// Number of endpoints tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether any endpoint is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of samples absorbed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Absorbs one sensor sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample length differs from the accumulator's.
    pub fn add(&mut self, sample: &SensorSample) {
        assert_eq!(sample.len, self.len, "sample length mismatch");
        for i in 0..self.len {
            if sample.bit(i) {
                self.ones[i] += 1;
            }
        }
        if let Some(last) = &self.last {
            for (i, w) in sample.bits.iter().enumerate() {
                let mut diff = w ^ last[i];
                while diff != 0 {
                    let b = diff.trailing_zeros() as usize;
                    let idx = i * 64 + b;
                    if idx < self.len {
                        self.toggles[idx] += 1;
                    }
                    diff &= diff - 1;
                }
            }
        }
        self.last = Some(sample.bits.clone());
        self.samples += 1;
    }

    /// Times endpoint `i` changed value between consecutive samples.
    pub fn toggle_count(&self, i: usize) -> u64 {
        self.toggles[i]
    }

    /// Fraction of samples where endpoint `i` read 1.
    pub fn mean(&self, i: usize) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.ones[i] as f64 / self.samples as f64
        }
    }

    /// Variance of the (Bernoulli) endpoint value: `p(1-p)`.
    pub fn variance(&self, i: usize) -> f64 {
        let p = self.mean(i);
        p * (1.0 - p)
    }

    /// All per-endpoint variances.
    pub fn variances(&self) -> Vec<f64> {
        (0..self.len).map(|i| self.variance(i)).collect()
    }

    /// Endpoints that toggled at least once — the *sensitive bits*.
    pub fn sensitive_bits(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.toggles[i] > 0).collect()
    }

    /// Endpoints sorted by variance, highest first.
    pub fn by_variance(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len).collect();
        idx.sort_by(|&a, &b| {
            self.variance(b)
                .partial_cmp(&self.variance(a))
                .expect("variances are finite")
                .then(a.cmp(&b))
        });
        idx
    }

    /// The single highest-variance endpoint (the paper's "bit 21" /
    /// "bit 28" selection rule), or `None` if nothing toggles.
    pub fn best_endpoint(&self) -> Option<usize> {
        let best = *self.by_variance().first()?;
        (self.variance(best) > 0.0).then_some(best)
    }
}

/// Estimates each endpoint's response polarity from recorded samples:
/// the sign of its covariance with the common-mode fluctuation (the
/// plain Hamming weight over `endpoints`). Endpoints that read 1 when
/// the supply droops correlate positively with whichever polarity group
/// dominates; returning `true` for the minority group lets a
/// [`crate::PostProcessor::HammingWeightAligned`] reduction sum all
/// endpoints coherently.
///
/// This is pure trace post-processing — exactly the kind of offline
/// analysis the paper's host scripts perform — and needs no knowledge
/// of the circuit's internals.
pub fn common_mode_polarity(samples: &[SensorSample], endpoints: &[usize]) -> Vec<bool> {
    let k = endpoints.len();
    if samples.is_empty() || k == 0 {
        return vec![false; k];
    }
    let n = samples.len() as f64;
    // means
    let mut mean = vec![0.0f64; k];
    let mut hmean = 0.0f64;
    for s in samples {
        for (slot, &e) in endpoints.iter().enumerate() {
            mean[slot] += f64::from(u8::from(s.bit(e)));
        }
        hmean += f64::from(s.hamming_weight_of(endpoints));
    }
    for m in &mut mean {
        *m /= n;
    }
    hmean /= n;
    // covariance of each bit with the common mode
    let mut cov = vec![0.0f64; k];
    for s in samples {
        let h = f64::from(s.hamming_weight_of(endpoints)) - hmean;
        for (slot, &e) in endpoints.iter().enumerate() {
            cov[slot] += (f64::from(u8::from(s.bit(e))) - mean[slot]) * h;
        }
    }
    cov.into_iter().map(|c| c < 0.0).collect()
}

/// Comparison of the bit sets affected by two different activity
/// sources — the content of the paper's Figs. 7 and 15 (RO-sensitive
/// vs AES-sensitive endpoint census).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitCensus {
    /// Endpoints sensitive to the first source (the RO array).
    pub source_a: Vec<usize>,
    /// Endpoints sensitive to the second source (the AES module).
    pub source_b: Vec<usize>,
    /// Total endpoint count.
    pub total: usize,
}

impl BitCensus {
    /// Builds the census from two activity accumulators over the same
    /// sensor.
    ///
    /// # Panics
    ///
    /// Panics if the accumulators track different endpoint counts.
    pub fn compare(a: &BitActivity, b: &BitActivity) -> Self {
        assert_eq!(a.len(), b.len());
        BitCensus {
            source_a: a.sensitive_bits(),
            source_b: b.sensitive_bits(),
            total: a.len(),
        }
    }

    /// Endpoints sensitive to both sources.
    pub fn intersection(&self) -> Vec<usize> {
        self.source_b
            .iter()
            .copied()
            .filter(|i| self.source_a.binary_search(i).is_ok())
            .collect()
    }

    /// Endpoints affected by source B that source A does not affect.
    pub fn b_only(&self) -> Vec<usize> {
        self.source_b
            .iter()
            .copied()
            .filter(|i| self.source_a.binary_search(i).is_err())
            .collect()
    }

    /// Endpoints unaffected by either source.
    pub fn unaffected(&self) -> usize {
        let union: std::collections::BTreeSet<usize> = self
            .source_a
            .iter()
            .chain(self.source_b.iter())
            .copied()
            .collect();
        self.total - union.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bits: &[bool]) -> SensorSample {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        SensorSample {
            bits: words,
            len: bits.len(),
        }
    }

    #[test]
    fn toggles_and_variance() {
        let mut act = BitActivity::new(3);
        act.add(&sample(&[false, true, false]));
        act.add(&sample(&[false, false, false]));
        act.add(&sample(&[false, true, false]));
        act.add(&sample(&[false, false, true]));
        assert_eq!(act.samples(), 4);
        assert_eq!(act.toggle_count(0), 0);
        assert_eq!(act.toggle_count(1), 3);
        assert_eq!(act.toggle_count(2), 1);
        assert_eq!(act.sensitive_bits(), vec![1, 2]);
        assert!((act.mean(1) - 0.5).abs() < 1e-12);
        assert!((act.variance(1) - 0.25).abs() < 1e-12);
        assert!(act.variance(1) > act.variance(2));
        assert_eq!(act.best_endpoint(), Some(1));
        assert_eq!(act.by_variance()[0], 1);
    }

    #[test]
    fn constant_bits_have_zero_variance() {
        let mut act = BitActivity::new(2);
        for _ in 0..10 {
            act.add(&sample(&[true, false]));
        }
        assert_eq!(act.variance(0), 0.0);
        assert_eq!(act.best_endpoint(), None);
        assert!(act.sensitive_bits().is_empty());
    }

    #[test]
    fn polarity_from_common_mode() {
        // Two groups driven by a hidden common mode: bits 0,1 follow it,
        // bit 2 opposes it, bit 3 is constant.
        let mut samples = Vec::new();
        for t in 0..200 {
            let cm = (t / 3) % 2 == 0;
            samples.push(sample(&[cm, cm, !cm, true]));
        }
        let pol = common_mode_polarity(&samples, &[0, 1, 2, 3]);
        assert_eq!(pol[0], pol[1], "aligned bits share polarity");
        assert_ne!(pol[0], pol[2], "opposed bit must be inverted");
        // majority group (0,1) should be the non-inverted one
        assert!(!pol[0]);
        assert!(pol[2]);
    }

    #[test]
    fn polarity_empty_inputs() {
        assert!(common_mode_polarity(&[], &[0, 1]).iter().all(|&b| !b));
        let s = vec![sample(&[true, false])];
        assert!(common_mode_polarity(&s, &[]).is_empty());
    }

    #[test]
    fn census_set_algebra() {
        let mut ro = BitActivity::new(6);
        let mut aes = BitActivity::new(6);
        // RO toggles bits 0,1,2,3; AES toggles bits 2,3,4.
        ro.add(&sample(&[false; 6]));
        ro.add(&sample(&[true, true, true, true, false, false]));
        aes.add(&sample(&[false; 6]));
        aes.add(&sample(&[false, false, true, true, true, false]));
        let census = BitCensus::compare(&ro, &aes);
        assert_eq!(census.source_a, vec![0, 1, 2, 3]);
        assert_eq!(census.source_b, vec![2, 3, 4]);
        assert_eq!(census.intersection(), vec![2, 3]);
        assert_eq!(census.b_only(), vec![4]);
        assert_eq!(census.unaffected(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let mut act = BitActivity::new(4);
        act.add(&sample(&[true; 5]));
    }
}
