//! Test-vector leakage assessment (TVLA): Welch's t-test between a
//! fixed-plaintext and a random-plaintext trace population.
//!
//! CPA (the paper's evaluation) answers "can this sensor recover the
//! key"; TVLA answers the weaker but assumption-free question "does the
//! sensor see *any* data-dependent leakage". It is the standard first
//! screen in side-channel evaluations and a natural extension of the
//! paper's methodology: if the benign sensor passes |t| > 4.5, the
//! channel exists regardless of the attack model.

use serde::{Deserialize, Serialize};

/// The conventional TVLA significance threshold.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Streaming Welch's t-test over two trace classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WelchTTest {
    points: usize,
    n: [u64; 2],
    mean: Vec<f64>, // 2 × points
    m2: Vec<f64>,   // 2 × points
}

impl WelchTTest {
    /// Creates a t-test over `points` trace points.
    pub fn new(points: usize) -> Self {
        WelchTTest {
            points,
            n: [0, 0],
            mean: vec![0.0; 2 * points],
            m2: vec![0.0; 2 * points],
        }
    }

    /// Number of points per trace.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Traces absorbed in class `fixed` (true) / `random` (false).
    pub fn count(&self, fixed: bool) -> u64 {
        self.n[usize::from(fixed)]
    }

    /// Absorbs one trace into a class (Welford update).
    ///
    /// # Panics
    ///
    /// Panics if `trace.len()` differs from the configured point count.
    pub fn add(&mut self, fixed: bool, trace: &[f64]) {
        assert_eq!(trace.len(), self.points, "trace point count mismatch");
        let c = usize::from(fixed);
        self.n[c] += 1;
        let n = self.n[c] as f64;
        let base = c * self.points;
        for (p, &x) in trace.iter().enumerate() {
            let delta = x - self.mean[base + p];
            self.mean[base + p] += delta / n;
            self.m2[base + p] += delta * (x - self.mean[base + p]);
        }
    }

    /// Welch's t statistic per point (0.0 where undefined).
    pub fn t_values(&self) -> Vec<f64> {
        let (n0, n1) = (self.n[0] as f64, self.n[1] as f64);
        if self.n[0] < 2 || self.n[1] < 2 {
            return vec![0.0; self.points];
        }
        (0..self.points)
            .map(|p| {
                let var0 = self.m2[p] / (n0 - 1.0);
                let var1 = self.m2[self.points + p] / (n1 - 1.0);
                let denom = (var0 / n0 + var1 / n1).sqrt();
                if denom > 0.0 {
                    (self.mean[self.points + p] - self.mean[p]) / denom
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// The largest |t| over all points.
    pub fn max_abs_t(&self) -> f64 {
        self.t_values().iter().fold(0.0, |m, t| m.max(t.abs()))
    }

    /// Whether any point exceeds the TVLA threshold.
    pub fn leaks(&self) -> bool {
        self.max_abs_t() > TVLA_THRESHOLD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_pdn::noise::Rng64;

    #[test]
    fn distinguishes_shifted_means() {
        let mut t = WelchTTest::new(2);
        let mut rng = Rng64::new(1);
        for _ in 0..2000 {
            // point 0 identical, point 1 shifted by 0.5σ in the fixed class
            t.add(false, &[rng.normal(), rng.normal()]);
            t.add(true, &[rng.normal(), rng.normal() + 0.5]);
        }
        let tv = t.t_values();
        assert!(tv[0].abs() < 4.0, "null point t = {}", tv[0]);
        assert!(tv[1] > TVLA_THRESHOLD, "leaky point t = {}", tv[1]);
        assert!(t.leaks());
    }

    #[test]
    fn null_distribution_stays_below_threshold() {
        let mut t = WelchTTest::new(4);
        let mut rng = Rng64::new(2);
        for _ in 0..5000 {
            let x: Vec<f64> = (0..4).map(|_| rng.normal()).collect();
            t.add(rng.chance(0.5), &x);
        }
        assert!(!t.leaks(), "max |t| = {}", t.max_abs_t());
    }

    #[test]
    fn undefined_with_tiny_classes() {
        let mut t = WelchTTest::new(1);
        t.add(true, &[1.0]);
        assert_eq!(t.t_values(), vec![0.0]);
        assert_eq!(t.count(true), 1);
        assert_eq!(t.count(false), 0);
    }

    #[test]
    fn t_scales_with_sample_count() {
        let gen = |n: usize| {
            let mut t = WelchTTest::new(1);
            let mut rng = Rng64::new(3);
            for _ in 0..n {
                t.add(false, &[rng.normal()]);
                t.add(true, &[rng.normal() + 0.2]);
            }
            t.max_abs_t()
        };
        let t_small = gen(500);
        let t_big = gen(8000);
        assert!(
            t_big > 2.0 * t_small,
            "t must grow ~√n: {t_small} vs {t_big}"
        );
    }

    #[test]
    #[should_panic(expected = "point count mismatch")]
    fn wrong_width_panics() {
        let mut t = WelchTTest::new(2);
        t.add(true, &[1.0]);
    }
}
