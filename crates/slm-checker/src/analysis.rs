//! Shared analysis context: everything more than one pass needs is
//! computed once per scan.

use slm_netlist::graph::{collapsed_drivers, combinational_loops, FanoutIndex};
use slm_netlist::{GateKind, NetId, Netlist};
use std::sync::OnceLock;

/// Precomputed per-netlist facts handed to every pass.
///
/// Building the context is O(nets + edges); passes then share the
/// fanout index (the fix for the old per-chain-step gate rescans), the
/// complete SCC loop list, and the buffer-collapsed driver map. Facts
/// only some pipelines need (logic depth) are computed lazily, at most
/// once, behind a [`OnceLock`] — safe to race from a parallel pass
/// level.
pub struct Analysis<'a> {
    nl: &'a Netlist,
    fanout: FanoutIndex,
    is_output: Vec<bool>,
    collapsed: Vec<NetId>,
    loops: Vec<Vec<NetId>>,
    levels: OnceLock<Option<Vec<usize>>>,
}

impl<'a> Analysis<'a> {
    /// Builds the context for `nl`.
    pub fn new(nl: &'a Netlist) -> Self {
        let mut is_output = vec![false; nl.len()];
        for &(_, o) in nl.outputs() {
            is_output[o.index()] = true;
        }
        Analysis {
            fanout: FanoutIndex::build(nl),
            is_output,
            collapsed: collapsed_drivers(nl),
            loops: combinational_loops(nl),
            levels: OnceLock::new(),
            nl,
        }
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// The shared fanout adjacency index.
    pub fn fanout(&self) -> &FanoutIndex {
        &self.fanout
    }

    /// Whether `id` is a primary output.
    pub fn is_output(&self, id: NetId) -> bool {
        self.is_output[id.index()]
    }

    /// The nearest non-buffer driver of every net.
    pub fn collapsed(&self) -> &[NetId] {
        &self.collapsed
    }

    /// All combinational feedback loops (complete SCC membership),
    /// ordered by smallest member net.
    pub fn loops(&self) -> &[Vec<NetId>] {
        &self.loops
    }

    /// Logic depth per net (inputs/constants at 0, every gate one more
    /// than its deepest fanin), or `None` for a cyclic netlist.
    ///
    /// Computed at most once per scan; shared by the SCOAP and semantic
    /// passes.
    pub fn levels(&self) -> Option<&[usize]> {
        self.levels
            .get_or_init(|| {
                let order = self.nl.topological_order().ok()?;
                let mut level = vec![0usize; self.nl.len()];
                for &v in order {
                    let g = self.nl.gate(v);
                    if !matches!(
                        g.kind,
                        GateKind::Input | GateKind::Const0 | GateKind::Const1
                    ) {
                        level[v.index()] =
                            1 + g.fanin.iter().map(|f| level[f.index()]).max().unwrap_or(0);
                    }
                }
                Some(level)
            })
            .as_deref()
    }
}
