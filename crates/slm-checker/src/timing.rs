//! The strict timing check.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, CheckReport, Finding, Severity};
use crate::pass::Pass;
use crate::passes::SccLoopPass;
use slm_timing::AnnotatedDelays;

/// The strict timing pass: flags a design whose requested clock beats
/// its STA fmax. Needs the delay annotation and the tenant's clock
/// request — information a structural bitstream scan does not have,
/// which is exactly the gap the paper exploits.
///
/// On a cyclic netlist (where STA is undefined) the verdict is routed
/// through the SCC oscillation pass, so the report carries the loop
/// witness nets and sizes instead of a bare "timing undefined".
pub fn check_timing(ann: &AnnotatedDelays, requested_mhz: f64) -> CheckReport {
    let nl = ann.netlist();
    let mut report = CheckReport::for_netlist(nl);
    match ann.sta() {
        Ok(sta) => {
            if !sta.meets_timing(requested_mhz) {
                let path = sta.critical_path(nl);
                let nets: Vec<_> = path.iter().map(|seg| seg.net).collect();
                let mut finding = Finding::new(
                    CheckKind::TimingOverclock,
                    Severity::Reject,
                    "timing",
                    format!(
                        "requested {requested_mhz:.1} MHz exceeds fmax {:.1} MHz \
                         (critical path: {} nets, {:.0} ps)",
                        sta.fmax_mhz(),
                        nets.len(),
                        sta.critical_ps(),
                    ),
                )
                .with_span(span_of(nl, &nets));
                finding.witness = nets.last().copied();
                report.findings.push(finding);
            }
        }
        Err(_) => {
            let cx = Analysis::new(nl);
            SccLoopPass.run(&cx, &CheckerConfig::default(), &mut report.findings);
        }
    }
    report
}
