//! The strict timing check.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use crate::diag::{span_of, CheckKind, CheckReport, Finding, Severity};
use crate::pass::{Pass, Prior};
use crate::passes::SccLoopPass;
use slm_netlist::{GateKind, NetId, Netlist};
use slm_timing::AnnotatedDelays;

/// Maximum number of gate-kind hops spelled out in the critical-path
/// witness text (the full net list is in the span regardless).
const MAX_CHAIN_TEXT: usize = 12;

/// Renders the critical path as a gate-kind chain, e.g.
/// `INPUT→XOR→AND→OR→…→XOR`, so a timing rejection is debuggable
/// straight from the JSON report.
fn gate_chain(nl: &Netlist, nets: &[NetId]) -> String {
    let label = |id: NetId| match nl.gate(id).kind {
        GateKind::Input => "INPUT",
        GateKind::And => "AND",
        GateKind::Nand => "NAND",
        GateKind::Or => "OR",
        GateKind::Nor => "NOR",
        GateKind::Xor => "XOR",
        GateKind::Xnor => "XNOR",
        GateKind::Not => "NOT",
        GateKind::Buf => "BUF",
        GateKind::Const0 => "CONST0",
        GateKind::Const1 => "CONST1",
    };
    if nets.len() <= MAX_CHAIN_TEXT {
        nets.iter()
            .map(|&id| label(id))
            .collect::<Vec<_>>()
            .join("\u{2192}")
    } else {
        let head: Vec<&str> = nets[..MAX_CHAIN_TEXT - 2]
            .iter()
            .map(|&id| label(id))
            .collect();
        format!(
            "{}\u{2192}\u{2026}\u{2192}{}",
            head.join("\u{2192}"),
            label(*nets.last().expect("nonempty path")),
        )
    }
}

/// The strict timing pass: flags a design whose requested clock beats
/// its STA fmax. Needs the delay annotation and the tenant's clock
/// request — information a structural bitstream scan does not have,
/// which is exactly the gap the paper exploits.
///
/// An overclock rejection carries the critical path twice: as a
/// machine-readable span (like every structural pass) and as a
/// human-readable gate chain in the detail text.
///
/// On a cyclic netlist (where STA is undefined) the verdict is routed
/// through the SCC oscillation pass, so the report carries the loop
/// witness nets and sizes instead of a bare "timing undefined".
pub fn check_timing(ann: &AnnotatedDelays, requested_mhz: f64) -> CheckReport {
    let nl = ann.netlist();
    let mut report = CheckReport::for_netlist(nl);
    match ann.sta() {
        Ok(sta) => {
            if !sta.meets_timing(requested_mhz) {
                let path = sta.critical_path(nl);
                let nets: Vec<_> = path.iter().map(|seg| seg.net).collect();
                let mut finding = Finding::new(
                    CheckKind::TimingOverclock,
                    Severity::Reject,
                    "timing",
                    format!(
                        "requested {requested_mhz:.1} MHz exceeds fmax {:.1} MHz \
                         (critical path: {} nets, {:.0} ps, gate chain {})",
                        sta.fmax_mhz(),
                        nets.len(),
                        sta.critical_ps(),
                        gate_chain(nl, &nets),
                    ),
                )
                .with_span(span_of(nl, &nets));
                finding.witness = nets.last().copied();
                report.findings.push(finding);
            }
        }
        Err(_) => {
            let cx = Analysis::new(nl);
            SccLoopPass.run(
                &cx,
                &CheckerConfig::default(),
                &Prior::empty(),
                &mut report.findings,
            );
        }
    }
    report
}
