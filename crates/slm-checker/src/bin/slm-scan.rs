//! `slm-scan`: scan tenant netlists with the structural pass framework
//! and emit a JSON report.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match slm_checker::cli::run(&args) {
        Ok((out, code)) => {
            println!("{out}");
            std::process::exit(code);
        }
        Err(err) => {
            eprintln!("slm-scan: {err}");
            std::process::exit(2);
        }
    }
}
