//! `slm-scan`: scan tenant netlists with the structural + semantic
//! pass framework and emit a JSON report.
//!
//! Exit codes: 0 clean, 1 warnings, 2 rejected (or matrix violation),
//! 3 usage/I-O/parse error — see `slm-scan --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match slm_checker::cli::run(&args) {
        Ok((out, code)) => {
            println!("{out}");
            std::process::exit(code);
        }
        Err(err) => {
            eprintln!("slm-scan: {err}");
            std::process::exit(3);
        }
    }
}
