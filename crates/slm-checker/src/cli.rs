//! The `slm-scan` command-line scanner.
//!
//! Thin, dependency-free argument handling around the pass framework;
//! the binary in `src/bin/slm-scan.rs` is a three-line wrapper so the
//! whole CLI stays unit-testable.

use crate::config::CheckerConfig;
use crate::diag::CheckReport;
use crate::pass::PassManager;
use crate::timing::check_timing;
use serde::Serialize;
use slm_netlist::generators::zoo;
use slm_netlist::Netlist;
use slm_timing::DelayModel;

const USAGE: &str = "\
slm-scan: structural static analysis of tenant netlists

USAGE:
    slm-scan --zoo [--assert-matrix]
    slm-scan --generator NAME
    slm-scan --bench FILE
    slm-scan --list-passes

OPTIONS:
    --zoo              scan every design in the generator zoo
    --assert-matrix    with --zoo: exit nonzero unless every malicious
                       design is flagged and every benign design is clean
    --generator NAME   scan one zoo design by name
    --bench FILE       scan an ISCAS-85 .bench netlist
    --clock-mhz F      additionally run the strict timing check at F MHz
    --jobs N           scan designs on N threads (0 = all cores; default 0)
    --metrics FILE     write a JSON metrics report of the scan to FILE
                       (per-pass wall time, findings by severity)
    --compact          emit compact JSON instead of pretty-printed
    --list-passes      print the structural pass pipeline and exit";

/// One scanned design in the JSON output.
#[derive(Debug, Serialize)]
struct ScanEntry {
    name: String,
    /// `Some` for zoo designs (malicious-by-construction or benign);
    /// `None` for external `.bench` input.
    malicious: Option<bool>,
    clean: bool,
    report: CheckReport,
}

/// Detection-matrix verdict (only with `--zoo --assert-matrix`).
#[derive(Debug, Serialize)]
struct MatrixVerdict {
    holds: bool,
    violations: Vec<String>,
}

/// Top-level JSON envelope emitted by `slm-scan`.
#[derive(Debug, Serialize)]
struct ScanOutput {
    tool: String,
    version: String,
    passes: Vec<String>,
    reports: Vec<ScanEntry>,
    matrix: Option<MatrixVerdict>,
}

#[derive(Debug, Default)]
struct Options {
    zoo: bool,
    assert_matrix: bool,
    generator: Option<String>,
    bench: Option<String>,
    clock_mhz: Option<f64>,
    jobs: usize,
    metrics: Option<String>,
    compact: bool,
    list_passes: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--zoo" => opts.zoo = true,
            "--assert-matrix" => opts.assert_matrix = true,
            "--compact" => opts.compact = true,
            "--list-passes" => opts.list_passes = true,
            "--generator" => {
                opts.generator = Some(it.next().ok_or("--generator needs a design name")?.clone());
            }
            "--bench" => {
                opts.bench = Some(it.next().ok_or("--bench needs a file path")?.clone());
            }
            "--clock-mhz" => {
                let raw = it.next().ok_or("--clock-mhz needs a frequency")?;
                let mhz: f64 = raw
                    .parse()
                    .map_err(|_| format!("--clock-mhz: not a number: {raw}"))?;
                if !(mhz.is_finite() && mhz > 0.0) {
                    return Err(format!("--clock-mhz: must be positive, got {raw}"));
                }
                opts.clock_mhz = Some(mhz);
            }
            "--jobs" => {
                let raw = it.next().ok_or("--jobs needs a thread count")?;
                opts.jobs = raw
                    .parse()
                    .map_err(|_| format!("--jobs: not a count: {raw}"))?;
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a file path")?.clone());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n\n{USAGE}")),
        }
    }
    let modes = usize::from(opts.zoo)
        + usize::from(opts.generator.is_some())
        + usize::from(opts.bench.is_some());
    if !opts.list_passes && modes != 1 {
        return Err(format!(
            "exactly one of --zoo, --generator, --bench is required\n\n{USAGE}"
        ));
    }
    if opts.assert_matrix && !opts.zoo {
        return Err("--assert-matrix requires --zoo".to_string());
    }
    Ok(opts)
}

fn scan_one(
    pm: &PassManager,
    config: &CheckerConfig,
    nl: &Netlist,
    malicious: Option<bool>,
    clock_mhz: Option<f64>,
    obs: &slm_obs::Obs,
) -> ScanEntry {
    obs.incr("scan.designs");
    let mut report = pm.run_recorded(nl, config, obs);
    if let Some(mhz) = clock_mhz {
        let ann = DelayModel::default().annotate(nl);
        report.findings.extend(check_timing(&ann, mhz).findings);
    }
    ScanEntry {
        name: nl.name().to_owned(),
        malicious,
        clean: report.is_clean(),
        report,
    }
}

/// Runs the scanner. Returns the text to print on stdout and the
/// process exit code; `Err` is a usage/IO error (exit code 2).
pub fn run(args: &[String]) -> Result<(String, i32), String> {
    let opts = parse_args(args)?;
    let pm = PassManager::structural();
    if opts.list_passes {
        let listing: Vec<String> = pm
            .passes()
            .map(|p| format!("{:<20} {}", p.name(), p.description()))
            .collect();
        return Ok((listing.join("\n"), 0));
    }
    let config = CheckerConfig::default();
    // Metrics stay a NullRecorder unless --metrics asked for them, so
    // the plain scan path records nothing and pays (almost) nothing.
    let obs = if opts.metrics.is_some() {
        slm_obs::Obs::memory()
    } else {
        slm_obs::Obs::null()
    };
    let mut reports = Vec::new();
    if opts.zoo {
        // Designs are independent scans; fan them out over the worker
        // pool. par_map preserves input order, so the report sequence
        // (and thus the JSON and exit code) is identical at any job
        // count. Each scan records into a forked recorder; the frames
        // are folded back in input order, keeping the metrics report
        // job-count invariant too.
        let entries = zoo();
        let scanned = slm_par::par_map(opts.jobs, &entries, |entry| {
            let scan_obs = obs.fork();
            let report = scan_one(
                &pm,
                &config,
                &entry.netlist,
                Some(entry.malicious),
                opts.clock_mhz,
                &scan_obs,
            );
            (report, scan_obs.snapshot())
        });
        reports = scanned
            .into_iter()
            .map(|(report, frame)| {
                obs.absorb(&frame);
                report
            })
            .collect();
    } else if let Some(name) = &opts.generator {
        let entry = zoo()
            .into_iter()
            .find(|e| e.name == name.as_str())
            .ok_or_else(|| {
                let known: Vec<&str> = zoo().iter().map(|e| e.name).collect();
                format!("unknown generator '{name}'; known: {}", known.join(", "))
            })?;
        reports.push(scan_one(
            &pm,
            &config,
            &entry.netlist,
            Some(entry.malicious),
            opts.clock_mhz,
            &obs,
        ));
    } else if let Some(path) = &opts.bench {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let nl = slm_netlist::bench::parse(&src, path).map_err(|e| format!("{path}: {e}"))?;
        reports.push(scan_one(&pm, &config, &nl, None, opts.clock_mhz, &obs));
    }
    // Exit semantics: plain scans fail on any dirty report; matrix
    // assertion fails on any deviation from the expected verdicts.
    let matrix = if opts.assert_matrix {
        let mut violations = Vec::new();
        for entry in &reports {
            match entry.malicious {
                Some(true) if entry.clean => {
                    violations.push(format!("{}: malicious but passed every pass", entry.name));
                }
                Some(false) if !entry.clean => {
                    violations.push(format!("{}: benign but flagged", entry.name));
                }
                _ => {}
            }
        }
        Some(MatrixVerdict {
            holds: violations.is_empty(),
            violations,
        })
    } else {
        None
    };
    let code = match &matrix {
        Some(m) => i32::from(!m.holds),
        None => i32::from(reports.iter().any(|r| !r.clean)),
    };
    let output = ScanOutput {
        tool: "slm-scan".to_string(),
        version: env!("CARGO_PKG_VERSION").to_string(),
        passes: pm.pass_names().iter().map(|s| s.to_string()).collect(),
        reports,
        matrix,
    };
    let text = if opts.compact {
        serde_json::to_string(&output)
    } else {
        serde_json::to_string_pretty(&output)
    }
    .expect("scan output serialization is infallible");
    if let Some(path) = &opts.metrics {
        let report = slm_obs::MetricsReport::new("slm-scan", obs.snapshot());
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok((text, code))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn zoo_matrix_holds_at_default_thresholds() {
        let (out, code) = run(&argv(&["--zoo", "--assert-matrix"])).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"holds\": true"));
    }

    #[test]
    fn single_generator_scan_flags_the_ro() {
        let (out, code) = run(&argv(&["--generator", "ring_oscillator"])).unwrap();
        assert_eq!(code, 1);
        assert!(out.contains("combinational-loop") || out.contains("CombinationalLoop"));
    }

    #[test]
    fn benign_generator_scan_is_clean_and_exit_zero() {
        let (_, code) = run(&argv(&["--generator", "alu192"])).unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(run(&argv(&[])).is_err());
        assert!(run(&argv(&["--generator"])).is_err());
        assert!(run(&argv(&["--assert-matrix"])).is_err());
        assert!(run(&argv(&["--bogus"])).is_err());
        assert!(run(&argv(&["--zoo", "--clock-mhz", "nope"])).is_err());
        assert!(run(&argv(&["--generator", "no_such_design"])).is_err());
        assert!(run(&argv(&["--zoo", "--jobs", "many"])).is_err());
        assert!(run(&argv(&["--zoo", "--metrics"])).is_err());
    }

    #[test]
    fn metrics_flag_writes_a_scan_report() {
        let dir = std::env::temp_dir().join("slm_scan_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let path_str = path.to_str().unwrap().to_string();
        let (_, code) = run(&argv(&["--zoo", "--metrics", &path_str])).unwrap();
        assert_eq!(code, 1, "the zoo contains malicious designs");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"label\": \"slm-scan\""), "{json}");
        assert!(json.contains("scan.designs"));
        assert!(json.contains("checker.findings.reject"));
        // per-pass spans are keyed by pass name
        assert!(json.contains("\"comb-loop\""), "{json}");
    }

    #[test]
    fn parallel_zoo_scan_matches_serial() {
        // The full JSON output — report order, findings, verdicts, exit
        // code — must not depend on the job count.
        let (serial, code1) = run(&argv(&["--zoo", "--assert-matrix", "--jobs", "1"])).unwrap();
        let (wide, code4) = run(&argv(&["--zoo", "--assert-matrix", "--jobs", "4"])).unwrap();
        assert_eq!(serial, wide);
        assert_eq!(code1, code4);
    }

    #[test]
    fn run_many_matches_run_in_a_loop() {
        let pm = PassManager::structural();
        let config = CheckerConfig::default();
        let entries = zoo();
        let netlists: Vec<&Netlist> = entries.iter().map(|e| &e.netlist).collect();
        let serial: Vec<_> = netlists.iter().map(|nl| pm.run(nl, &config)).collect();
        for workers in [1, 3, 8] {
            let parallel = pm.run_many(&netlists, &config, workers);
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.iter().zip(&serial) {
                assert_eq!(a.netlist, b.netlist);
                assert_eq!(a.findings, b.findings);
            }
        }
    }

    #[test]
    fn list_passes_prints_the_pipeline() {
        let (out, code) = run(&argv(&["--list-passes"])).unwrap();
        assert_eq!(code, 0);
        for name in PassManager::structural().pass_names() {
            assert!(out.contains(name), "missing {name}");
        }
    }
}
