//! The `slm-scan` command-line scanner.
//!
//! Thin, dependency-free argument handling around the pass framework;
//! the binary in `src/bin/slm-scan.rs` is a three-line wrapper so the
//! whole CLI stays unit-testable.

use crate::cache::ScanCache;
use crate::config::CheckerConfig;
use crate::diag::{CheckReport, Severity};
use crate::pass::PassManager;
use crate::timing::check_timing;
use serde::Serialize;
use slm_netlist::generators::zoo;
use slm_netlist::Netlist;
use slm_timing::DelayModel;

const USAGE: &str = "\
slm-scan: structural + semantic static analysis of tenant netlists

USAGE:
    slm-scan --zoo [--assert-matrix]
    slm-scan --generator NAME
    slm-scan --bench FILE
    slm-scan --batch FILE
    slm-scan --list-passes

OPTIONS:
    --zoo              scan every design in the generator zoo
    --assert-matrix    with --zoo: exit 2 unless every malicious design
                       is flagged and every benign design is clean
    --generator NAME   scan one zoo design by name
    --bench FILE       scan an ISCAS-85 .bench netlist
    --batch FILE       scan every .bench path listed in FILE (one path
                       per line, blank lines and '#' comments skipped);
                       emits one JSONL verdict per input and exits with
                       the maximum exit code across inputs
    --declare-clock N  treat input pin N as a contract-declared clock
                       for the semantic clock-taint pass (repeatable)
    --structural-only  run only the structural passes (skip the
                       semantic clock-taint/activity/bandwidth suite)
    --cache-dir DIR    replay and populate the content-hash-keyed
                       per-pass scan cache stored in DIR
    --clock-mhz F      additionally run the strict timing check at F MHz
    --jobs N           scan designs on N threads (0 = all cores; default 0)
    --metrics FILE     write a JSON metrics report of the scan to FILE
                       (per-pass wall time, findings by severity)
    --compact          emit compact JSON instead of pretty-printed
    --list-passes      print the pass pipeline and its dependency
                       schedule, then exit

EXIT CODES:
    0   clean: no active finding above Info
    1   warnings: at least one active Warn, no Reject
    2   rejected: at least one active Reject, or the --assert-matrix
        verdict failed
    3   usage, I/O or parse error";

/// One scanned design in the JSON output.
#[derive(Debug, Serialize)]
struct ScanEntry {
    name: String,
    /// `Some` for zoo designs (malicious-by-construction or benign);
    /// `None` for external `.bench` input.
    malicious: Option<bool>,
    clean: bool,
    report: CheckReport,
}

/// Detection-matrix verdict (only with `--zoo --assert-matrix`).
#[derive(Debug, Serialize)]
struct MatrixVerdict {
    holds: bool,
    violations: Vec<String>,
}

/// Top-level JSON envelope emitted by `slm-scan`.
#[derive(Debug, Serialize)]
struct ScanOutput {
    tool: String,
    version: String,
    passes: Vec<String>,
    reports: Vec<ScanEntry>,
    matrix: Option<MatrixVerdict>,
}

/// One line of `--batch` JSONL output.
#[derive(Debug, Serialize)]
struct BatchVerdict {
    path: String,
    name: Option<String>,
    exit_code: i32,
    max_severity: Option<Severity>,
    findings: usize,
    error: Option<String>,
}

#[derive(Debug, Default)]
struct Options {
    zoo: bool,
    assert_matrix: bool,
    generator: Option<String>,
    bench: Option<String>,
    batch: Option<String>,
    declared_clocks: Vec<String>,
    structural_only: bool,
    cache_dir: Option<String>,
    clock_mhz: Option<f64>,
    jobs: usize,
    metrics: Option<String>,
    compact: bool,
    list_passes: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--zoo" => opts.zoo = true,
            "--assert-matrix" => opts.assert_matrix = true,
            "--structural-only" => opts.structural_only = true,
            "--compact" => opts.compact = true,
            "--list-passes" => opts.list_passes = true,
            "--generator" => {
                opts.generator = Some(it.next().ok_or("--generator needs a design name")?.clone());
            }
            "--bench" => {
                opts.bench = Some(it.next().ok_or("--bench needs a file path")?.clone());
            }
            "--batch" => {
                opts.batch = Some(it.next().ok_or("--batch needs a file path")?.clone());
            }
            "--declare-clock" => {
                opts.declared_clocks
                    .push(it.next().ok_or("--declare-clock needs a pin name")?.clone());
            }
            "--cache-dir" => {
                opts.cache_dir = Some(it.next().ok_or("--cache-dir needs a directory")?.clone());
            }
            "--clock-mhz" => {
                let raw = it.next().ok_or("--clock-mhz needs a frequency")?;
                let mhz: f64 = raw
                    .parse()
                    .map_err(|_| format!("--clock-mhz: not a number: {raw}"))?;
                if !(mhz.is_finite() && mhz > 0.0) {
                    return Err(format!("--clock-mhz: must be positive, got {raw}"));
                }
                opts.clock_mhz = Some(mhz);
            }
            "--jobs" => {
                let raw = it.next().ok_or("--jobs needs a thread count")?;
                opts.jobs = raw
                    .parse()
                    .map_err(|_| format!("--jobs: not a count: {raw}"))?;
            }
            "--metrics" => {
                opts.metrics = Some(it.next().ok_or("--metrics needs a file path")?.clone());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}\n\n{USAGE}")),
        }
    }
    let modes = usize::from(opts.zoo)
        + usize::from(opts.generator.is_some())
        + usize::from(opts.bench.is_some())
        + usize::from(opts.batch.is_some());
    if !opts.list_passes && modes != 1 {
        return Err(format!(
            "exactly one of --zoo, --generator, --bench, --batch is required\n\n{USAGE}"
        ));
    }
    if opts.assert_matrix && !opts.zoo {
        return Err("--assert-matrix requires --zoo".to_string());
    }
    Ok(opts)
}

/// The scan config for one design: the defaults plus every declared
/// clock pin (the zoo entry's contract declaration and any
/// `--declare-clock` flags).
fn config_for(declared: &[&str]) -> CheckerConfig {
    let mut config = CheckerConfig::default();
    for name in declared {
        config.taint.declared_clocks.push((*name).to_string());
    }
    config
}

/// Maps a report's strongest active finding to the process exit code.
fn severity_code(report: &CheckReport) -> i32 {
    match report.max_severity() {
        Some(Severity::Reject) => 2,
        Some(Severity::Warn) => 1,
        _ => 0,
    }
}

fn scan_one(
    pm: &PassManager,
    config: &CheckerConfig,
    nl: &Netlist,
    malicious: Option<bool>,
    clock_mhz: Option<f64>,
    cache: Option<&ScanCache>,
    obs: &slm_obs::Obs,
) -> ScanEntry {
    obs.incr("scan.designs");
    let mut report = pm.execute(nl, config, cache, 1, obs);
    if let Some(mhz) = clock_mhz {
        let ann = DelayModel::default().annotate(nl);
        report.findings.extend(check_timing(&ann, mhz).findings);
    }
    ScanEntry {
        name: nl.name().to_owned(),
        malicious,
        clean: report.is_clean(),
        report,
    }
}

/// Scans every `.bench` path listed in `list_path`, one JSONL verdict
/// per line; the returned code is the maximum across inputs.
fn run_batch(
    pm: &PassManager,
    opts: &Options,
    cache: Option<&ScanCache>,
    obs: &slm_obs::Obs,
) -> Result<(String, i32), String> {
    let list_path = opts.batch.as_deref().expect("batch mode");
    let listing = std::fs::read_to_string(list_path).map_err(|e| format!("{list_path}: {e}"))?;
    let paths: Vec<&str> = listing
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let declared: Vec<&str> = opts.declared_clocks.iter().map(String::as_str).collect();
    let config = config_for(&declared);
    // Inputs are independent; fan them out, keeping verdict order (and
    // metrics, absorbed in input order) identical at any job count.
    let scanned = slm_par::par_map(opts.jobs, &paths, |&path| {
        let scan_obs = obs.fork();
        let verdict = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|src| slm_netlist::bench::parse(&src, path).map_err(|e| e.to_string()))
        {
            Ok(nl) => {
                let entry = scan_one(pm, &config, &nl, None, opts.clock_mhz, cache, &scan_obs);
                BatchVerdict {
                    path: path.to_string(),
                    name: Some(entry.name),
                    exit_code: severity_code(&entry.report),
                    max_severity: entry.report.max_severity(),
                    findings: entry.report.active().count(),
                    error: None,
                }
            }
            Err(e) => BatchVerdict {
                path: path.to_string(),
                name: None,
                exit_code: 3,
                max_severity: None,
                findings: 0,
                error: Some(e),
            },
        };
        (verdict, scan_obs.snapshot())
    });
    let verdicts: Vec<BatchVerdict> = scanned
        .into_iter()
        .map(|(verdict, frame)| {
            obs.absorb(&frame);
            verdict
        })
        .collect();
    let code = verdicts.iter().map(|v| v.exit_code).max().unwrap_or(0);
    let text = verdicts
        .iter()
        .map(|v| serde_json::to_string(v).expect("verdict serialization is infallible"))
        .collect::<Vec<_>>()
        .join("\n");
    Ok((text, code))
}

/// Runs the scanner. Returns the text to print on stdout and the
/// process exit code; `Err` is a usage/IO/parse error (exit code 3).
pub fn run(args: &[String]) -> Result<(String, i32), String> {
    let opts = parse_args(args)?;
    let pm = if opts.structural_only {
        PassManager::structural()
    } else {
        PassManager::full()
    };
    if opts.list_passes {
        let mut listing: Vec<String> = pm
            .passes()
            .map(|p| {
                let deps = p.depends_on();
                let after = if deps.is_empty() {
                    String::new()
                } else {
                    format!("  [after: {}]", deps.join(", "))
                };
                format!("{:<22} {}{after}", p.name(), p.description())
            })
            .collect();
        let schedule: Vec<String> = pm
            .schedule()
            .iter()
            .enumerate()
            .map(|(i, level)| format!("level {i}: {}", level.join(", ")))
            .collect();
        listing.push(format!("\nschedule:\n{}", schedule.join("\n")));
        return Ok((listing.join("\n"), 0));
    }
    let cache = match &opts.cache_dir {
        Some(dir) => Some(ScanCache::with_dir(dir).map_err(|e| format!("{dir}: {e}"))?),
        None => None,
    };
    let cache = cache.as_ref();
    // Metrics stay a NullRecorder unless --metrics asked for them, so
    // the plain scan path records nothing and pays (almost) nothing.
    let obs = if opts.metrics.is_some() {
        slm_obs::Obs::memory()
    } else {
        slm_obs::Obs::null()
    };
    if opts.batch.is_some() {
        let (text, code) = run_batch(&pm, &opts, cache, &obs)?;
        if let Some(path) = &opts.metrics {
            let report = slm_obs::MetricsReport::new("slm-scan", obs.snapshot());
            std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        }
        return Ok((text, code));
    }
    let extra: Vec<&str> = opts.declared_clocks.iter().map(String::as_str).collect();
    let mut reports = Vec::new();
    if opts.zoo {
        // Designs are independent scans; fan them out over the worker
        // pool. par_map preserves input order, so the report sequence
        // (and thus the JSON and exit code) is identical at any job
        // count. Each scan records into a forked recorder; the frames
        // are folded back in input order, keeping the metrics report
        // job-count invariant too. Each entry's contract-declared
        // clocks (shell-known pin roles) seed its taint config.
        let entries = zoo();
        let scanned = slm_par::par_map(opts.jobs, &entries, |entry| {
            let scan_obs = obs.fork();
            let declared: Vec<&str> = entry
                .declared_clocks
                .iter()
                .copied()
                .chain(extra.iter().copied())
                .collect();
            let report = scan_one(
                &pm,
                &config_for(&declared),
                &entry.netlist,
                Some(entry.malicious),
                opts.clock_mhz,
                cache,
                &scan_obs,
            );
            (report, scan_obs.snapshot())
        });
        reports = scanned
            .into_iter()
            .map(|(report, frame)| {
                obs.absorb(&frame);
                report
            })
            .collect();
    } else if let Some(name) = &opts.generator {
        let entry = zoo()
            .into_iter()
            .find(|e| e.name == name.as_str())
            .ok_or_else(|| {
                let known: Vec<&str> = zoo().iter().map(|e| e.name).collect();
                format!("unknown generator '{name}'; known: {}", known.join(", "))
            })?;
        let declared: Vec<&str> = entry
            .declared_clocks
            .iter()
            .copied()
            .chain(extra.iter().copied())
            .collect();
        reports.push(scan_one(
            &pm,
            &config_for(&declared),
            &entry.netlist,
            Some(entry.malicious),
            opts.clock_mhz,
            cache,
            &obs,
        ));
    } else if let Some(path) = &opts.bench {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let nl = slm_netlist::bench::parse(&src, path).map_err(|e| format!("{path}: {e}"))?;
        reports.push(scan_one(
            &pm,
            &config_for(&extra),
            &nl,
            None,
            opts.clock_mhz,
            cache,
            &obs,
        ));
    }
    // Exit semantics: plain scans take the strongest verdict across
    // reports (0 clean / 1 Warn / 2 Reject); matrix assertion fails
    // with 2 on any deviation from the expected verdicts.
    let matrix = if opts.assert_matrix {
        let mut violations = Vec::new();
        for entry in &reports {
            match entry.malicious {
                Some(true) if entry.clean => {
                    violations.push(format!("{}: malicious but passed every pass", entry.name));
                }
                Some(false) if !entry.clean => {
                    violations.push(format!("{}: benign but flagged", entry.name));
                }
                _ => {}
            }
        }
        Some(MatrixVerdict {
            holds: violations.is_empty(),
            violations,
        })
    } else {
        None
    };
    let code = match &matrix {
        Some(m) => {
            if m.holds {
                0
            } else {
                2
            }
        }
        None => reports
            .iter()
            .map(|r| severity_code(&r.report))
            .max()
            .unwrap_or(0),
    };
    let output = ScanOutput {
        tool: "slm-scan".to_string(),
        version: env!("CARGO_PKG_VERSION").to_string(),
        passes: pm.pass_names().iter().map(|s| s.to_string()).collect(),
        reports,
        matrix,
    };
    let text = if opts.compact {
        serde_json::to_string(&output)
    } else {
        serde_json::to_string_pretty(&output)
    }
    .expect("scan output serialization is infallible");
    if let Some(path) = &opts.metrics {
        let report = slm_obs::MetricsReport::new("slm-scan", obs.snapshot());
        std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok((text, code))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slm_scan_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Eight sparsely tapped 12-deep buffer chains: deep enough and
    /// chain-shaped enough for a SCOAP `Warn`, but below every `Reject`
    /// threshold (taps too sparse for the signature matcher, endpoint
    /// glitch sum 8 × 0.5 < 8.0, no clock pins).
    fn warn_only_netlist() -> Netlist {
        let mut b = slm_netlist::NetlistBuilder::new("warnish");
        for c in 0..8 {
            let mut n = b.input(format!("d{c}"));
            for _ in 0..12 {
                n = b.buf(n);
            }
            b.output(format!("q{c}"), n);
        }
        b.finish().unwrap()
    }

    #[test]
    fn zoo_matrix_holds_at_default_thresholds() {
        let (out, code) = run(&argv(&["--zoo", "--assert-matrix"])).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("\"holds\": true"));
    }

    #[test]
    fn structural_only_matrix_misses_the_carry_sensor() {
        // The tentpole claim at CLI level: drop the semantic suite and
        // the declared-clock carry sensor sails through admission.
        let (out, code) = run(&argv(&["--zoo", "--assert-matrix", "--structural-only"])).unwrap();
        assert_eq!(code, 2, "{out}");
        assert!(
            out.contains("carry_sensor64: malicious but passed"),
            "{out}"
        );
    }

    #[test]
    fn single_generator_scan_flags_the_ro() {
        let (out, code) = run(&argv(&["--generator", "ring_oscillator"])).unwrap();
        assert_eq!(code, 2, "a Reject exits 2");
        assert!(out.contains("combinational-loop") || out.contains("CombinationalLoop"));
    }

    #[test]
    fn benign_generator_scan_is_clean_and_exit_zero() {
        let (_, code) = run(&argv(&["--generator", "alu192"])).unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn warn_only_scan_exits_one() {
        let dir = temp_dir("warn");
        let path = dir.join("warnish.bench");
        std::fs::write(&path, slm_netlist::bench::write(&warn_only_netlist())).unwrap();
        let (out, code) = run(&argv(&["--bench", path.to_str().unwrap()])).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(code, 1, "{out}");
        assert!(
            out.contains("sensor-like-endpoints") || out.contains("scoap"),
            "{out}"
        );
    }

    #[test]
    fn declared_clock_flag_feeds_the_taint_pass() {
        // carry_sensor's zoo entry declares "sense"; scanning the raw
        // netlist from .bench needs the flag to reach the same verdict.
        let nl = slm_netlist::generators::carry_sensor(64, 4).unwrap();
        let dir = temp_dir("declare");
        let path = dir.join("carry_sensor.bench");
        std::fs::write(&path, slm_netlist::bench::write(&nl)).unwrap();
        let p = path.to_str().unwrap();
        let (_, undeclared) = run(&argv(&["--bench", p])).unwrap();
        let (out, declared) = run(&argv(&["--bench", p, "--declare-clock", "sense"])).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(undeclared, 0, "without the contract clock it looks clean");
        assert_eq!(declared, 2, "{out}");
        assert!(out.contains("clock-taint"), "{out}");
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(run(&argv(&[])).is_err());
        assert!(run(&argv(&["--generator"])).is_err());
        assert!(run(&argv(&["--assert-matrix"])).is_err());
        assert!(run(&argv(&["--bogus"])).is_err());
        assert!(run(&argv(&["--zoo", "--clock-mhz", "nope"])).is_err());
        assert!(run(&argv(&["--generator", "no_such_design"])).is_err());
        assert!(run(&argv(&["--zoo", "--jobs", "many"])).is_err());
        assert!(run(&argv(&["--zoo", "--metrics"])).is_err());
        assert!(run(&argv(&["--declare-clock"])).is_err());
        assert!(run(&argv(&["--zoo", "--batch", "x"])).is_err(), "two modes");
        assert!(run(&argv(&["--bench", "/nonexistent/input.bench"])).is_err());
        let usage = run(&argv(&["--help"])).unwrap_err();
        assert!(usage.contains("EXIT CODES"), "{usage}");
        assert!(usage.contains("3   usage, I/O or parse error"), "{usage}");
    }

    #[test]
    fn batch_scan_emits_jsonl_and_max_code() {
        let dir = temp_dir("batch");
        let benign = dir.join("benign.bench");
        let reject = dir.join("reject.bench");
        std::fs::write(
            &benign,
            slm_netlist::bench::write(&slm_netlist::generators::c17()),
        )
        .unwrap();
        std::fs::write(
            &reject,
            slm_netlist::bench::write(&slm_netlist::generators::tapped_carry_chain(64).unwrap()),
        )
        .unwrap();
        let garbled = dir.join("garbled.bench");
        std::fs::write(&garbled, "INPUT(\nnot bench at all").unwrap();
        let list = dir.join("inputs.txt");
        std::fs::write(
            &list,
            format!(
                "# admission queue\n{}\n\n{}\n{}\n",
                benign.display(),
                reject.display(),
                garbled.display()
            ),
        )
        .unwrap();
        let (out, code) = run(&argv(&["--batch", list.to_str().unwrap()])).unwrap();
        assert_eq!(code, 3, "parse failure dominates: {out}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "one JSONL verdict per input: {out}");
        assert!(lines[0].contains("\"exit_code\":0"), "{}", lines[0]);
        assert!(lines[1].contains("\"exit_code\":2"), "{}", lines[1]);
        assert!(lines[2].contains("\"exit_code\":3"), "{}", lines[2]);
        assert!(lines[2].contains("\"error\":\""), "{}", lines[2]);

        // Without the garbled input the verdict is the scan maximum,
        // and the JSONL stream is job-count invariant.
        std::fs::write(
            &list,
            format!("{}\n{}\n", benign.display(), reject.display()),
        )
        .unwrap();
        let (serial, c1) = run(&argv(&["--batch", list.to_str().unwrap(), "--jobs", "1"])).unwrap();
        let (wide, c4) = run(&argv(&["--batch", list.to_str().unwrap(), "--jobs", "4"])).unwrap();
        assert_eq!(c1, 2);
        assert_eq!(c1, c4);
        assert_eq!(serial, wide);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_scan_is_job_count_invariant_at_1_2_4_8() {
        // A corpus wide enough that every job count actually splits it:
        // benign designs, two rejecting specimens, and one unparsable
        // file mixed through the middle of the list. The JSONL verdict
        // stream (input order, bit for bit) and the max exit code must
        // be identical at every parallelism level.
        let dir = temp_dir("jobsweep");
        let designs: Vec<(&str, String)> = vec![
            (
                "c17",
                slm_netlist::bench::write(&slm_netlist::generators::c17()),
            ),
            (
                "ro",
                slm_netlist::bench::write(&slm_netlist::generators::ring_oscillator(8).unwrap()),
            ),
            (
                "ksa",
                slm_netlist::bench::write(&slm_netlist::generators::kogge_stone_adder(16).unwrap()),
            ),
            (
                "tap",
                slm_netlist::bench::write(
                    &slm_netlist::generators::tapped_carry_chain(32).unwrap(),
                ),
            ),
            (
                "rca",
                slm_netlist::bench::write(
                    &slm_netlist::generators::ripple_carry_adder(24).unwrap(),
                ),
            ),
            ("garbled", "INPUT(\nnot bench at all".to_string()),
            (
                "mult",
                slm_netlist::bench::write(&slm_netlist::generators::array_multiplier(8).unwrap()),
            ),
        ];
        let mut list_body = String::new();
        for (name, body) in &designs {
            let path = dir.join(format!("{name}.bench"));
            std::fs::write(&path, body).unwrap();
            list_body.push_str(&format!("{}\n", path.display()));
        }
        let list = dir.join("inputs.txt");
        std::fs::write(&list, list_body).unwrap();

        let (reference, ref_code) =
            run(&argv(&["--batch", list.to_str().unwrap(), "--jobs", "1"])).unwrap();
        assert_eq!(ref_code, 3, "the garbled input dominates: {reference}");
        assert_eq!(reference.lines().count(), designs.len());
        for jobs in ["2", "4", "8"] {
            let (out, code) =
                run(&argv(&["--batch", list.to_str().unwrap(), "--jobs", jobs])).unwrap();
            assert_eq!(code, ref_code, "max exit code diverged at --jobs {jobs}");
            assert_eq!(out, reference, "JSONL stream diverged at --jobs {jobs}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_dir_round_trips_across_invocations() {
        let dir = temp_dir("cachedir");
        let cache_dir = dir.join("cache");
        let cd = cache_dir.to_str().unwrap().to_string();
        let (cold, code1) = run(&argv(&["--zoo", "--cache-dir", &cd])).unwrap();
        let (warm, code2) = run(&argv(&["--zoo", "--cache-dir", &cd])).unwrap();
        assert_eq!(code1, code2);
        assert_eq!(cold, warm, "replayed scan is bit-identical");
        assert!(
            std::fs::read_dir(&cache_dir).unwrap().count() > 0,
            "cache populated on disk"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_flag_writes_a_scan_report() {
        let dir = temp_dir("metrics");
        let path = dir.join("metrics.json");
        let path_str = path.to_str().unwrap().to_string();
        let (_, code) = run(&argv(&["--zoo", "--metrics", &path_str])).unwrap();
        assert_eq!(code, 2, "the zoo contains rejected designs");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(json.contains("\"label\": \"slm-scan\""), "{json}");
        assert!(json.contains("scan.designs"));
        assert!(json.contains("checker.findings.reject"));
        // per-pass spans are keyed by pass name, semantic ones included
        assert!(json.contains("\"comb-loop\""), "{json}");
        assert!(json.contains("\"clock-taint\""), "{json}");
    }

    #[test]
    fn parallel_zoo_scan_matches_serial() {
        // The full JSON output — report order, findings, verdicts, exit
        // code — must not depend on the job count.
        let (serial, code1) = run(&argv(&["--zoo", "--assert-matrix", "--jobs", "1"])).unwrap();
        let (wide, code4) = run(&argv(&["--zoo", "--assert-matrix", "--jobs", "4"])).unwrap();
        assert_eq!(serial, wide);
        assert_eq!(code1, code4);
    }

    #[test]
    fn run_many_matches_run_in_a_loop() {
        let pm = PassManager::full();
        let config = CheckerConfig::default();
        let entries = zoo();
        let netlists: Vec<&Netlist> = entries.iter().map(|e| &e.netlist).collect();
        let serial: Vec<_> = netlists.iter().map(|nl| pm.run(nl, &config)).collect();
        for workers in [1, 3, 8] {
            let parallel = pm.run_many(&netlists, &config, workers);
            assert_eq!(parallel.len(), serial.len());
            for (a, b) in parallel.iter().zip(&serial) {
                assert_eq!(a.netlist, b.netlist);
                assert_eq!(a.findings, b.findings);
            }
        }
    }

    #[test]
    fn list_passes_prints_the_pipeline() {
        let (out, code) = run(&argv(&["--list-passes"])).unwrap();
        assert_eq!(code, 0);
        for name in PassManager::full().pass_names() {
            assert!(out.contains(name), "missing {name}");
        }
        assert!(out.contains("[after: clock-taint]"), "{out}");
        assert!(out.contains("level 0:"), "{out}");
        assert!(out.contains("level 1:"), "{out}");
        let (structural, _) = run(&argv(&["--list-passes", "--structural-only"])).unwrap();
        assert!(!structural.contains("clock-taint"), "{structural}");
    }
}
