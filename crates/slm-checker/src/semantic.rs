//! Shared semantic dataflow facts: clock-taint propagation and static
//! switching-activity estimation.
//!
//! The structural passes reason about *topology* (loops, chains,
//! arrays, signatures); a sensor built from genuinely benign logic — an
//! adder whose carry-in is the fabric clock — has none of the known-bad
//! topology and sails through all of them. The facts computed here
//! reason about *dataflow* instead: where clock-rate toggling can reach
//! (a worklist fixpoint over a three-point taint lattice) and how much
//! switching it can cause there (transition densities in the style of
//! Najm's transition-density analysis, plus a worst-case glitch bound).
//! Three semantic passes consume them; the computations are pure
//! functions of the [`Analysis`] context and the checker config, so
//! results are deterministic regardless of pass scheduling.

use crate::analysis::Analysis;
use crate::config::CheckerConfig;
use slm_netlist::{GateKind, NetId};

/// The taint lattice: `Untainted < DataRate < ClockRate`.
///
/// A net is `ClockRate` when clock-derived toggling can reach it —
/// seeded at clock-fed inputs and at combinational-loop members (a
/// self-oscillator is its own clock). `DataRate` marks reachability
/// from ordinary inputs only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Taint {
    /// Driven by constants only.
    Untainted,
    /// Reachable from data inputs, not from any clock seed.
    DataRate,
    /// Reachable from a clock seed or oscillating loop.
    ClockRate,
}

/// Depth value meaning "not reached from a clock seed".
pub const DEPTH_UNREACHED: u32 = u32::MAX;

/// Result of the clock-taint fixpoint.
#[derive(Debug, Clone)]
pub struct TaintFacts {
    /// Per-net taint level, indexed by [`NetId::index`].
    pub taint: Vec<Taint>,
    /// Per-net minimum count of non-buffer gates on any clock path
    /// ([`DEPTH_UNREACHED`] when the net is not clock-tainted). Depth 0
    /// means the clock is merely forwarded through buffers.
    pub depth: Vec<u32>,
    /// The seed nets: clock-fed inputs and loop members.
    pub seeds: Vec<NetId>,
}

/// Strips a trailing `[index]` bus suffix and lowercases.
pub(crate) fn base_name(name: &str) -> String {
    let stem = match name.find('[') {
        Some(i) if name.ends_with(']') => &name[..i],
        _ => name,
    };
    stem.to_ascii_lowercase()
}

/// The clock seed nets: inputs whose base name matches
/// [`crate::ClockConfig::clock_names`], inputs the interface contract
/// declares clock-fed ([`crate::TaintConfig::declared_clocks`], exact
/// names), and every combinational-loop member.
pub fn clock_seeds(cx: &Analysis<'_>, config: &CheckerConfig) -> Vec<NetId> {
    let nl = cx.netlist();
    let mut seeds = Vec::new();
    for &input in nl.inputs() {
        let Some(name) = nl.net_name(input) else {
            continue;
        };
        if config.clock.clock_names.contains(&base_name(name))
            || config.taint.declared_clocks.iter().any(|d| d == name)
        {
            seeds.push(input);
        }
    }
    for lp in cx.loops() {
        seeds.extend(lp.iter().copied());
    }
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

/// Runs the taint worklist fixpoint.
///
/// Transfer function: a net's taint is the join (max) of its fanin
/// taints; clock depth is the minimum over clock-tainted fanins, plus
/// one for every non-buffer gate. The worklist handles cyclic netlists;
/// both components are monotone over finite chains, so the fixpoint
/// terminates.
pub fn compute_taint(cx: &Analysis<'_>, config: &CheckerConfig) -> TaintFacts {
    let nl = cx.netlist();
    let n = nl.len();
    let mut taint = vec![Taint::Untainted; n];
    let mut depth = vec![DEPTH_UNREACHED; n];
    let seeds = clock_seeds(cx, config);
    for &input in nl.inputs() {
        taint[input.index()] = Taint::DataRate;
    }
    for &s in &seeds {
        taint[s.index()] = Taint::ClockRate;
        depth[s.index()] = 0;
    }
    let mut work: Vec<NetId> = (0..n as u32).map(NetId).collect();
    let mut queued = vec![true; n];
    let mut head = 0;
    while head < work.len() {
        let v = work[head];
        head += 1;
        queued[v.index()] = false;
        let g = nl.gate(v);
        let is_seed = depth[v.index()] == 0 && taint[v.index()] == Taint::ClockRate;
        if g.kind == GateKind::Input || is_seed {
            continue; // seeds and inputs keep their seeded state
        }
        let mut t = Taint::Untainted;
        let mut d = DEPTH_UNREACHED;
        for &f in &g.fanin {
            t = t.max(taint[f.index()]);
            if taint[f.index()] == Taint::ClockRate {
                d = d.min(depth[f.index()]);
            }
        }
        if t == Taint::ClockRate && d != DEPTH_UNREACHED && g.kind != GateKind::Buf {
            d = d.saturating_add(1);
        }
        if t > taint[v.index()] || (t == taint[v.index()] && d < depth[v.index()]) {
            taint[v.index()] = t;
            depth[v.index()] = d;
            for &succ in cx.fanout().fanouts(v) {
                if !queued[succ.index()] {
                    queued[succ.index()] = true;
                    work.push(succ);
                }
            }
        }
    }
    TaintFacts {
        taint,
        depth,
        seeds,
    }
}

/// Saturation ceiling for the worst-case glitch bound — an XOR tree of
/// depth *k* doubles the bound per level, so it must saturate.
pub const GLITCH_CAP: f64 = 1e12;

/// Result of the static switching-activity estimation.
#[derive(Debug, Clone)]
pub struct ActivityFacts {
    /// Per-net static signal probability under the input-independence
    /// assumption.
    pub prob: Vec<f64>,
    /// Per-net transition density, transitions/cycle (Najm's Boolean-
    /// difference propagation).
    pub density: Vec<f64>,
    /// Per-net worst-case glitch bound: transitions/cycle with no
    /// masking — every fanin transition may propagate. The ratio
    /// `glitch / density` is the glitch-amplification bound of the
    /// reconvergent logic below the net.
    pub glitch: Vec<f64>,
    /// Per-net clock-attributable share of the glitch bound: only
    /// clock seeds inject density, data inputs are held still. Nonzero
    /// exactly where clock toggling can cause switching.
    pub clock_glitch: Vec<f64>,
}

/// Propagates signal probabilities, transition densities and glitch
/// bounds over a topological order. Returns `None` for cyclic netlists
/// (the loop pass already rejects those).
pub fn compute_activity(
    cx: &Analysis<'_>,
    config: &CheckerConfig,
    taint: &TaintFacts,
) -> Option<ActivityFacts> {
    let nl = cx.netlist();
    let order = nl.topological_order().ok()?;
    let n = nl.len();
    let mut prob = vec![0.0f64; n];
    let mut density = vec![0.0f64; n];
    let mut glitch = vec![0.0f64; n];
    let mut clock_glitch = vec![0.0f64; n];
    let is_clock_seed =
        |v: NetId| taint.taint[v.index()] == Taint::ClockRate && taint.depth[v.index()] == 0;
    for &v in order {
        let g = nl.gate(v);
        match g.kind {
            GateKind::Input => {
                prob[v.index()] = 0.5;
                if is_clock_seed(v) {
                    density[v.index()] = config.activity.clock_density;
                    clock_glitch[v.index()] = config.activity.clock_density;
                } else {
                    density[v.index()] = config.activity.input_density;
                }
                glitch[v.index()] = density[v.index()].max(config.activity.input_density);
            }
            GateKind::Const0 | GateKind::Const1 => {
                prob[v.index()] = if g.kind == GateKind::Const1 { 1.0 } else { 0.0 };
            }
            _ => {
                let ps: Vec<f64> = g.fanin.iter().map(|f| prob[f.index()]).collect();
                let (p, sens): (f64, Vec<f64>) = match g.kind {
                    GateKind::Buf => (ps[0], vec![1.0]),
                    GateKind::Not => (1.0 - ps[0], vec![1.0]),
                    GateKind::And | GateKind::Nand => {
                        let all: f64 = ps.iter().product();
                        let sens = ps
                            .iter()
                            .enumerate()
                            .map(|(i, _)| {
                                ps.iter()
                                    .enumerate()
                                    .filter(|&(j, _)| j != i)
                                    .map(|(_, &pj)| pj)
                                    .product()
                            })
                            .collect();
                        (
                            if g.kind == GateKind::And {
                                all
                            } else {
                                1.0 - all
                            },
                            sens,
                        )
                    }
                    GateKind::Or | GateKind::Nor => {
                        let none: f64 = ps.iter().map(|&p| 1.0 - p).product();
                        let sens = ps
                            .iter()
                            .enumerate()
                            .map(|(i, _)| {
                                ps.iter()
                                    .enumerate()
                                    .filter(|&(j, _)| j != i)
                                    .map(|(_, &pj)| 1.0 - pj)
                                    .product()
                            })
                            .collect();
                        (
                            if g.kind == GateKind::Or {
                                1.0 - none
                            } else {
                                none
                            },
                            sens,
                        )
                    }
                    GateKind::Xor | GateKind::Xnor => {
                        // Parity is sensitized to every fanin always.
                        let odd = ps
                            .iter()
                            .fold(0.0f64, |acc, &p| acc * (1.0 - p) + (1.0 - acc) * p);
                        (
                            if g.kind == GateKind::Xor {
                                odd
                            } else {
                                1.0 - odd
                            },
                            vec![1.0; ps.len()],
                        )
                    }
                    GateKind::Input | GateKind::Const0 | GateKind::Const1 => unreachable!(),
                };
                prob[v.index()] = p;
                let mut d = 0.0;
                let mut gl = 0.0;
                let mut cg = 0.0;
                for (i, &f) in g.fanin.iter().enumerate() {
                    d += sens[i] * density[f.index()];
                    gl += glitch[f.index()];
                    cg += clock_glitch[f.index()];
                }
                density[v.index()] = d.min(GLITCH_CAP);
                glitch[v.index()] = gl.min(GLITCH_CAP);
                clock_glitch[v.index()] = cg.min(GLITCH_CAP);
            }
        }
    }
    Some(ActivityFacts {
        prob,
        density,
        glitch,
        clock_glitch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_netlist::generators::{carry_sensor, clock_as_data, ring_oscillator, tdc_delay_line};
    use slm_netlist::NetlistBuilder;

    fn with_declared(clocks: &[&str]) -> CheckerConfig {
        CheckerConfig {
            taint: crate::TaintConfig {
                declared_clocks: clocks.iter().map(|s| s.to_string()).collect(),
                ..crate::TaintConfig::default()
            },
            ..CheckerConfig::default()
        }
    }

    #[test]
    fn taint_seeds_from_names_declarations_and_loops() {
        let clk = clock_as_data(4).unwrap();
        let cx = Analysis::new(&clk);
        let facts = compute_taint(&cx, &CheckerConfig::default());
        let clk_net = clk.find("clk").unwrap();
        assert_eq!(facts.taint[clk_net.index()], Taint::ClockRate);
        // every XOR output is clock-rate at depth 1
        for &(_, o) in clk.outputs() {
            assert_eq!(facts.taint[o.index()], Taint::ClockRate);
            assert_eq!(facts.depth[o.index()], 1);
        }

        // A declared clock taints under a benign-looking name.
        let sensor = carry_sensor(8, 2).unwrap();
        let cx = Analysis::new(&sensor);
        let silent = compute_taint(&cx, &CheckerConfig::default());
        let sense = sensor.find("sense").unwrap();
        assert_eq!(silent.taint[sense.index()], Taint::DataRate);
        let declared = compute_taint(&cx, &with_declared(&["sense"]));
        assert_eq!(declared.taint[sense.index()], Taint::ClockRate);
        assert!(sensor
            .outputs()
            .iter()
            .all(|&(_, o)| declared.taint[o.index()] == Taint::ClockRate));

        // Loop members are their own clock; the fixpoint handles cycles.
        let ro = ring_oscillator(4).unwrap();
        let cx = Analysis::new(&ro);
        let facts = compute_taint(&cx, &CheckerConfig::default());
        let osc = ro.outputs()[0].1;
        assert_eq!(facts.taint[osc.index()], Taint::ClockRate);
    }

    #[test]
    fn plain_tdc_has_no_clock_taint() {
        let tdc = tdc_delay_line(32).unwrap();
        let cx = Analysis::new(&tdc);
        let facts = compute_taint(&cx, &CheckerConfig::default());
        assert!(facts.seeds.is_empty());
        assert!(facts.taint.iter().all(|&t| t != Taint::ClockRate));
    }

    #[test]
    fn activity_propagates_densities_and_glitch_bounds() {
        // y = XOR(a, b): density adds, p stays 0.5.
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.xor2(a, c);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let cx = Analysis::new(&nl);
        let config = CheckerConfig::default();
        let taint = compute_taint(&cx, &config);
        let facts = compute_activity(&cx, &config, &taint).unwrap();
        assert!((facts.prob[y.index()] - 0.5).abs() < 1e-12);
        assert!((facts.density[y.index()] - 1.0).abs() < 1e-12);
        assert!((facts.glitch[y.index()] - 1.0).abs() < 1e-12);
        assert_eq!(facts.clock_glitch[y.index()], 0.0);

        // AND masks density (sensitization 0.5 per side) but the glitch
        // bound still adds.
        let mut b = NetlistBuilder::new("a");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.and2(a, c);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let cx = Analysis::new(&nl);
        let taint = compute_taint(&cx, &config);
        let facts = compute_activity(&cx, &config, &taint).unwrap();
        assert!((facts.density[y.index()] - 0.5).abs() < 1e-12);
        assert!((facts.glitch[y.index()] - 1.0).abs() < 1e-12);

        // Clock share flows only from the clock seed.
        let clk = clock_as_data(2).unwrap();
        let cx = Analysis::new(&clk);
        let taint = compute_taint(&cx, &config);
        let facts = compute_activity(&cx, &config, &taint).unwrap();
        for &(_, o) in clk.outputs() {
            assert!((facts.clock_glitch[o.index()] - config.activity.clock_density).abs() < 1e-12);
        }
    }

    #[test]
    fn cyclic_netlist_has_no_activity_estimate() {
        let ro = ring_oscillator(4).unwrap();
        let cx = Analysis::new(&ro);
        let config = CheckerConfig::default();
        let taint = compute_taint(&cx, &config);
        assert!(compute_activity(&cx, &config, &taint).is_none());
    }
}
