//! The pass abstraction and the manager that drives a scan.
//!
//! Passes declare data dependencies on other passes by name
//! ([`Pass::depends_on`]); the [`PassManager`] topologically groups
//! them into *levels* and can run the independent passes of a level in
//! parallel ([`PassManager::run_parallel`]) or replay per-pass results
//! from a content-addressed [`ScanCache`]
//! ([`PassManager::run_cached`]). Every execution mode concatenates
//! per-pass findings in registration order, so reports are bit-identical
//! across serial, parallel and cached runs — the property the scan
//! determinism proptests pin.

use crate::analysis::Analysis;
use crate::cache::ScanCache;
use crate::config::{apply_suppressions, CheckerConfig};
use crate::diag::{CheckReport, Finding};
use crate::passes;
use slm_netlist::Netlist;

/// One structural or semantic analysis over a netlist.
///
/// Passes are stateless: all tunables come from the [`CheckerConfig`]
/// section they own, and all shared graph facts from the [`Analysis`]
/// context, so a [`PassManager`] can run any subset in any order that
/// respects [`Pass::depends_on`]. The `Send + Sync` bound is what lets
/// one manager scan many designs concurrently
/// ([`PassManager::run_many`]) and fan independent passes of one scan
/// across threads ([`PassManager::run_parallel`]).
pub trait Pass: Send + Sync {
    /// Short stable identifier (used in findings, suppressions, cache
    /// keys and the detection matrix).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-passes` style output.
    fn description(&self) -> &'static str;

    /// Names of passes whose findings this pass consumes via [`Prior`].
    ///
    /// Dependencies bind to *earlier-registered* passes only; a name
    /// that is not registered (or registered later) resolves to an
    /// empty finding list. This keeps serial registration-order
    /// execution and level-parallel execution observably identical.
    fn depends_on(&self) -> &'static [&'static str] {
        &[]
    }

    /// Runs the analysis, appending findings. `prior` exposes the
    /// findings of the passes named in [`Pass::depends_on`].
    fn run(
        &self,
        cx: &Analysis<'_>,
        config: &CheckerConfig,
        prior: &Prior<'_>,
        findings: &mut Vec<Finding>,
    );
}

/// Read-only view of dependency passes' findings, handed to
/// [`Pass::run`].
///
/// Only the passes named in [`Pass::depends_on`] are visible — never
/// "whatever happened to run earlier" — which is what makes serial and
/// level-parallel scheduling produce identical reports.
pub struct Prior<'a> {
    entries: Vec<(&'static str, &'a [Finding])>,
}

impl<'a> Prior<'a> {
    /// A view with no dependencies (for running a pass standalone).
    pub fn empty() -> Prior<'static> {
        Prior {
            entries: Vec::new(),
        }
    }

    /// The findings of dependency `pass`, or an empty slice when the
    /// dependency is absent from the pipeline.
    pub fn findings_of(&self, pass: &str) -> &[Finding] {
        self.entries
            .iter()
            .find(|(name, _)| *name == pass)
            .map(|(_, f)| *f)
            .unwrap_or(&[])
    }
}

/// Runs an ordered set of passes over a netlist and assembles the
/// report.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// A manager with no passes; use [`PassManager::push`] to compose a
    /// custom pipeline.
    pub fn empty() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// The structural pipeline, in the order findings appear in
    /// reports: loops, delay lines, trivial arrays, clock misuse,
    /// SCOAP sensor-likeness, subgraph signatures, and the opt-in
    /// observation-density heuristic.
    pub fn structural() -> Self {
        let mut pm = PassManager::empty();
        pm.push(Box::new(passes::SccLoopPass));
        pm.push(Box::new(passes::DelayLinePass));
        pm.push(Box::new(passes::TrivialArrayPass));
        pm.push(Box::new(passes::ClockAsDataPass));
        pm.push(Box::new(passes::ScoapSensorPass));
        pm.push(Box::new(passes::SignaturePass));
        pm.push(Box::new(passes::ObservationDensityPass));
        pm
    }

    /// The semantic pipeline alone: clock-taint dataflow, the static
    /// switching-activity estimator, and observation bandwidth.
    ///
    /// Note the activity pass upgrades SCOAP findings only when the
    /// SCOAP pass is present (as in [`PassManager::full`]); standalone
    /// it still performs its own taps/glitch analysis.
    pub fn semantic() -> Self {
        let mut pm = PassManager::empty();
        pm.push(Box::new(passes::ClockTaintPass));
        pm.push(Box::new(passes::SwitchingActivityPass));
        pm.push(Box::new(passes::ObservationBandwidthPass));
        pm
    }

    /// The full admission pipeline: every structural pass followed by
    /// every semantic pass.
    pub fn full() -> Self {
        let mut pm = PassManager::structural();
        pm.push(Box::new(passes::ClockTaintPass));
        pm.push(Box::new(passes::SwitchingActivityPass));
        pm.push(Box::new(passes::ObservationBandwidthPass));
        pm
    }

    /// Appends a pass to the pipeline.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The registered passes.
    pub fn passes(&self) -> impl Iterator<Item = &dyn Pass> {
        self.passes.iter().map(Box::as_ref)
    }

    /// Groups pass indices into dependency levels: every pass sits one
    /// level below the deepest of its (earlier-registered) dependencies,
    /// and passes within a level are independent — the unit of
    /// intra-scan parallelism.
    fn levels(&self) -> Vec<Vec<usize>> {
        let n = self.passes.len();
        let mut level = vec![0usize; n];
        for i in 0..n {
            for dep in self.passes[i].depends_on() {
                if let Some(j) = self.passes[..i].iter().position(|p| p.name() == *dep) {
                    level[i] = level[i].max(level[j] + 1);
                }
            }
        }
        let depth = level.iter().copied().max().map_or(0, |d| d + 1);
        let mut groups = vec![Vec::new(); depth];
        for (i, &l) in level.iter().enumerate() {
            groups[l].push(i);
        }
        groups
    }

    /// The schedule as pass-name levels, for display and tests.
    pub fn schedule(&self) -> Vec<Vec<&'static str>> {
        self.levels()
            .iter()
            .map(|lvl| lvl.iter().map(|&i| self.passes[i].name()).collect())
            .collect()
    }

    /// Builds the [`Prior`] view for pass `i` from completed results.
    fn prior_for<'a>(&self, i: usize, results: &'a [Option<Vec<Finding>>]) -> Prior<'a> {
        let entries = self.passes[i]
            .depends_on()
            .iter()
            .filter_map(|dep| {
                let j = self.passes[..i].iter().position(|p| p.name() == *dep)?;
                let findings = results[j].as_deref()?;
                Some((*dep, findings))
            })
            .collect();
        Prior { entries }
    }

    /// The shared executor behind every run mode.
    ///
    /// `cache` replays per-pass findings keyed by netlist + config
    /// content hashes; when *every* pass hits, the report is assembled
    /// without even building the [`Analysis`]. `workers != 1` fans the
    /// independent passes of each dependency level over a `slm-par`
    /// pool. Findings are always concatenated in registration order and
    /// suppressed afterwards, so all modes emit bit-identical reports.
    pub(crate) fn execute(
        &self,
        nl: &Netlist,
        config: &CheckerConfig,
        cache: Option<&ScanCache>,
        workers: usize,
        obs: &slm_obs::Obs,
    ) -> CheckReport {
        let n = self.passes.len();
        let scan_key = cache.map(|c| c.scan_key(nl, config));
        let cached: Vec<Option<Vec<Finding>>> = match (cache, scan_key) {
            (Some(cache), Some(key)) => self
                .passes
                .iter()
                .map(|p| cache.get(key, p.name()))
                .collect(),
            _ => vec![None; n],
        };
        let mut report = CheckReport::for_netlist(nl);
        if n > 0 && cached.iter().all(Option::is_some) {
            // Full cache hit: no analysis, no pass runs.
            for findings in cached.into_iter().flatten() {
                report.findings.extend(findings);
            }
            self.finish(config, &mut report, obs);
            return report;
        }
        let cx = {
            let _span = obs.span("checker.analysis");
            Analysis::new(nl)
        };
        let mut results: Vec<Option<Vec<Finding>>> = cached;
        for level in self.levels() {
            let pending: Vec<usize> = level
                .iter()
                .copied()
                .filter(|&i| results[i].is_none())
                .collect();
            if pending.is_empty() {
                continue;
            }
            if workers == 1 || pending.len() == 1 {
                for &i in &pending {
                    let _span = obs.span(self.passes[i].name());
                    let prior = self.prior_for(i, &results);
                    let mut out = Vec::new();
                    self.passes[i].run(&cx, config, &prior, &mut out);
                    results[i] = Some(out);
                }
            } else {
                // Obs frames are forked per pass and absorbed in
                // registration order, keeping metrics worker-count
                // invariant.
                let ran = slm_par::par_map(workers, &pending, |&i| {
                    let pass_obs = obs.fork();
                    let mut out = Vec::new();
                    {
                        let _span = pass_obs.span(self.passes[i].name());
                        let prior = self.prior_for(i, &results);
                        self.passes[i].run(&cx, config, &prior, &mut out);
                    }
                    (out, pass_obs.snapshot())
                });
                for (&i, (out, frame)) in pending.iter().zip(ran) {
                    obs.absorb(&frame);
                    results[i] = Some(out);
                }
            }
            if let (Some(cache), Some(key)) = (cache, scan_key) {
                for &i in &pending {
                    cache.put(
                        key,
                        self.passes[i].name(),
                        results[i].as_ref().expect("just ran"),
                    );
                }
            }
        }
        for findings in results.into_iter().flatten() {
            report.findings.extend(findings);
        }
        self.finish(config, &mut report, obs);
        report
    }

    /// Applies suppressions and records severity counters.
    fn finish(&self, config: &CheckerConfig, report: &mut CheckReport, obs: &slm_obs::Obs) {
        apply_suppressions(config, &mut report.findings);
        if obs.enabled() {
            for f in report.active() {
                match f.severity {
                    crate::diag::Severity::Info => obs.incr("checker.findings.info"),
                    crate::diag::Severity::Warn => obs.incr("checker.findings.warn"),
                    crate::diag::Severity::Reject => obs.incr("checker.findings.reject"),
                }
            }
        }
    }

    /// Scans `nl`: builds the shared [`Analysis`] once, runs every
    /// pass in dependency order, then applies the suppression rules
    /// (which never hide a `Reject`).
    pub fn run(&self, nl: &Netlist, config: &CheckerConfig) -> CheckReport {
        self.run_recorded(nl, config, &slm_obs::Obs::null())
    }

    /// [`PassManager::run`] with an observability handle: records a
    /// wall-time span per pass (named after the pass) and counts
    /// post-suppression active findings by severity
    /// (`checker.findings.info` / `.warn` / `.reject`).
    pub fn run_recorded(
        &self,
        nl: &Netlist,
        config: &CheckerConfig,
        obs: &slm_obs::Obs,
    ) -> CheckReport {
        self.execute(nl, config, None, 1, obs)
    }

    /// Scans `nl` with the independent passes of each dependency level
    /// fanned over up to `workers` threads (0 = machine parallelism).
    ///
    /// The report is bit-identical to [`PassManager::run`].
    pub fn run_parallel(
        &self,
        nl: &Netlist,
        config: &CheckerConfig,
        workers: usize,
    ) -> CheckReport {
        self.execute(nl, config, None, workers, &slm_obs::Obs::null())
    }

    /// Scans `nl` replaying per-pass findings from `cache` where the
    /// netlist + config content hashes match, and populating the cache
    /// for the passes that had to run.
    ///
    /// A full hit skips analysis construction entirely; the report is
    /// bit-identical to [`PassManager::run`] either way.
    pub fn run_cached(
        &self,
        nl: &Netlist,
        config: &CheckerConfig,
        cache: &ScanCache,
    ) -> CheckReport {
        self.execute(nl, config, Some(cache), 1, &slm_obs::Obs::null())
    }

    /// Scans a batch of netlists on up to `workers` threads, sharing
    /// one scan cache across the batch. Reports come back in input
    /// order, bit-identical to calling [`PassManager::run`] per design.
    pub fn run_batch(
        &self,
        netlists: &[&Netlist],
        config: &CheckerConfig,
        cache: Option<&ScanCache>,
        workers: usize,
    ) -> Vec<CheckReport> {
        slm_par::par_map(workers, netlists, |nl| {
            self.execute(nl, config, cache, 1, &slm_obs::Obs::null())
        })
    }

    /// Scans many netlists on up to `workers` threads (0 = machine
    /// parallelism), returning one report per netlist in input order.
    ///
    /// Each design gets its own [`Analysis`] and report; passes are
    /// stateless, so the reports are identical to running
    /// [`PassManager::run`] in a loop — order-preserving and
    /// worker-count invariant.
    pub fn run_many(
        &self,
        netlists: &[&Netlist],
        config: &CheckerConfig,
        workers: usize,
    ) -> Vec<CheckReport> {
        slm_par::par_map(workers, netlists, |nl| self.run(nl, config))
    }

    /// [`PassManager::run_many`] with an observability handle. Every
    /// worker records into a fork of `obs`; the per-design frames are
    /// absorbed back in input order, so counters and span counts are
    /// worker-count invariant (only wall-clock durations vary).
    pub fn run_many_recorded(
        &self,
        netlists: &[&Netlist],
        config: &CheckerConfig,
        workers: usize,
        obs: &slm_obs::Obs,
    ) -> Vec<CheckReport> {
        let scanned = slm_par::par_map(workers, netlists, |nl| {
            let worker_obs = obs.fork();
            let report = self.run_recorded(nl, config, &worker_obs);
            (report, worker_obs.snapshot())
        });
        scanned
            .into_iter()
            .map(|(report, frame)| {
                obs.absorb(&frame);
                report
            })
            .collect()
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::full()
    }
}
