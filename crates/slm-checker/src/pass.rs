//! The pass abstraction and the manager that drives a scan.

use crate::analysis::Analysis;
use crate::config::{apply_suppressions, CheckerConfig};
use crate::diag::{CheckReport, Finding};
use crate::passes;
use slm_netlist::Netlist;

/// One structural analysis over a netlist.
///
/// Passes are stateless: all tunables come from the [`CheckerConfig`]
/// section they own, and all shared graph facts from the [`Analysis`]
/// context, so a [`PassManager`] can run any subset in any order. The
/// `Send + Sync` bound is what lets one manager scan many designs
/// concurrently ([`PassManager::run_many`]) — statelessness makes it
/// trivially satisfiable.
pub trait Pass: Send + Sync {
    /// Short stable identifier (used in findings, suppressions and the
    /// detection matrix).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-passes` style output.
    fn description(&self) -> &'static str;

    /// Runs the analysis, appending findings.
    fn run(&self, cx: &Analysis<'_>, config: &CheckerConfig, findings: &mut Vec<Finding>);
}

/// Runs an ordered set of passes over a netlist and assembles the
/// report.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// A manager with no passes; use [`PassManager::push`] to compose a
    /// custom pipeline.
    pub fn empty() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// The full structural pipeline, in the order findings appear in
    /// reports: loops, delay lines, trivial arrays, clock misuse,
    /// SCOAP sensor-likeness, subgraph signatures, and the opt-in
    /// observation-density heuristic.
    pub fn structural() -> Self {
        let mut pm = PassManager::empty();
        pm.push(Box::new(passes::SccLoopPass));
        pm.push(Box::new(passes::DelayLinePass));
        pm.push(Box::new(passes::TrivialArrayPass));
        pm.push(Box::new(passes::ClockAsDataPass));
        pm.push(Box::new(passes::ScoapSensorPass));
        pm.push(Box::new(passes::SignaturePass));
        pm.push(Box::new(passes::ObservationDensityPass));
        pm
    }

    /// Appends a pass to the pipeline.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The registered passes.
    pub fn passes(&self) -> impl Iterator<Item = &dyn Pass> {
        self.passes.iter().map(Box::as_ref)
    }

    /// Scans `nl`: builds the shared [`Analysis`] once, runs every
    /// pass, then applies the suppression rules (which never hide a
    /// `Reject`).
    pub fn run(&self, nl: &Netlist, config: &CheckerConfig) -> CheckReport {
        self.run_recorded(nl, config, &slm_obs::Obs::null())
    }

    /// [`PassManager::run`] with an observability handle: records a
    /// wall-time span per pass (named after the pass) and counts
    /// post-suppression active findings by severity
    /// (`checker.findings.info` / `.warn` / `.reject`).
    pub fn run_recorded(
        &self,
        nl: &Netlist,
        config: &CheckerConfig,
        obs: &slm_obs::Obs,
    ) -> CheckReport {
        let cx = {
            let _span = obs.span("checker.analysis");
            Analysis::new(nl)
        };
        let mut report = CheckReport::for_netlist(nl);
        for pass in &self.passes {
            let _span = obs.span(pass.name());
            pass.run(&cx, config, &mut report.findings);
        }
        apply_suppressions(config, &mut report.findings);
        if obs.enabled() {
            for f in report.active() {
                match f.severity {
                    crate::diag::Severity::Info => obs.incr("checker.findings.info"),
                    crate::diag::Severity::Warn => obs.incr("checker.findings.warn"),
                    crate::diag::Severity::Reject => obs.incr("checker.findings.reject"),
                }
            }
        }
        report
    }

    /// Scans many netlists on up to `workers` threads (0 = machine
    /// parallelism), returning one report per netlist in input order.
    ///
    /// Each design gets its own [`Analysis`] and report; passes are
    /// stateless, so the reports are identical to running
    /// [`PassManager::run`] in a loop — order-preserving and
    /// worker-count invariant.
    pub fn run_many(
        &self,
        netlists: &[&Netlist],
        config: &CheckerConfig,
        workers: usize,
    ) -> Vec<CheckReport> {
        slm_par::par_map(workers, netlists, |nl| self.run(nl, config))
    }

    /// [`PassManager::run_many`] with an observability handle. Every
    /// worker records into a fork of `obs`; the per-design frames are
    /// absorbed back in input order, so counters and span counts are
    /// worker-count invariant (only wall-clock durations vary).
    pub fn run_many_recorded(
        &self,
        netlists: &[&Netlist],
        config: &CheckerConfig,
        workers: usize,
        obs: &slm_obs::Obs,
    ) -> Vec<CheckReport> {
        let scanned = slm_par::par_map(workers, netlists, |nl| {
            let worker_obs = obs.fork();
            let report = self.run_recorded(nl, config, &worker_obs);
            (report, worker_obs.snapshot())
        });
        scanned
            .into_iter()
            .map(|(report, frame)| {
                obs.absorb(&frame);
                report
            })
            .collect()
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::structural()
    }
}
