//! Checker configuration: one section per pass, plus the suppression
//! (allowlist) rules.

use crate::diag::{CheckKind, Finding, Severity};
use serde::{Deserialize, Serialize};

/// Thresholds for the SCC oscillation pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopConfig {
    /// Maximum number of individual loop findings reported; a power
    /// virus with thousands of RO cells collapses into this many
    /// findings plus one summary line.
    pub max_reported: usize,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig { max_reported: 16 }
    }
}

/// Thresholds for the tapped delay-line pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayLineConfig {
    /// Minimum tapped buffer-chain length considered a delay-line sensor.
    pub min_stages: usize,
    /// Minimum fraction of chain stages that must be observed (tapped)
    /// for the chain to look like a sensor rather than pipelining.
    pub min_tap_fraction: f64,
}

impl Default for DelayLineConfig {
    fn default() -> Self {
        DelayLineConfig {
            min_stages: 16,
            min_tap_fraction: 0.5,
        }
    }
}

/// Thresholds for the trivial-array (power virus) pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Minimum count of identical trivial cells considered a power-virus
    /// array.
    pub min_cells: usize,
    /// Minimum fraction of the logic that must be trivial replicated
    /// cells for the pass to fire.
    pub min_trivial_fraction: f64,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig {
            min_cells: 1000,
            min_trivial_fraction: 0.9,
        }
    }
}

/// Thresholds for the opt-in observation-density heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationConfig {
    /// Enable the over-aggressive observation-density heuristic.
    pub enable: bool,
    /// Output-to-gate ratio above which the heuristic fires.
    pub density_threshold: f64,
    /// Minimum gate count before the heuristic applies.
    pub min_gates: usize,
}

impl Default for ObservationConfig {
    fn default() -> Self {
        ObservationConfig {
            enable: false,
            density_threshold: 0.12,
            min_gates: 64,
        }
    }
}

/// Configuration for the clock-as-data pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// Input base names treated as clocks (matched case-insensitively,
    /// with any trailing `[i]` bus index stripped).
    pub clock_names: Vec<String>,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            clock_names: vec!["clk".into(), "clock".into(), "ck".into()],
        }
    }
}

/// Thresholds for the SCOAP-style sensor-likeness pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoapConfig {
    /// Minimum logic depth of an endpoint before it can look sensor-like.
    pub min_depth: usize,
    /// Minimum depth-to-cone ratio: 1.0 is a pure chain, ordinary
    /// arithmetic sits far below.
    pub min_chain_ratio: f64,
    /// Minimum number of sensor-like endpoints before any finding is
    /// raised (protects single-output pipelines).
    pub min_endpoints: usize,
    /// Minimum fraction of all endpoints that must be sensor-like for
    /// the `Warn` finding (below it, an `Info` note is emitted).
    pub min_endpoint_fraction: f64,
}

impl Default for ScoapConfig {
    fn default() -> Self {
        ScoapConfig {
            min_depth: 12,
            min_chain_ratio: 0.8,
            min_endpoints: 8,
            min_endpoint_fraction: 0.5,
        }
    }
}

/// Thresholds for the subgraph-signature pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureConfig {
    /// Minimum number of non-buffer stages for a loop to match the
    /// ring-oscillator motif.
    pub min_ring_stages: usize,
    /// Minimum number of observed stages for the tapped delay-chain
    /// motif.
    pub min_chain_stages: usize,
    /// Maximum number of unobserved non-buffer gates between two
    /// consecutive observed stages of a tapped chain.
    pub max_unobserved_gap: usize,
    /// Maximum number of ring-motif findings reported individually.
    pub max_reported: usize,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig {
            min_ring_stages: 3,
            min_chain_stages: 16,
            max_unobserved_gap: 3,
            max_reported: 16,
        }
    }
}

/// Thresholds and seeds for the semantic clock-taint dataflow pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaintConfig {
    /// Input pins declared clock-fed by the tenant's interface contract
    /// (exact net names). In the admission deployment model the
    /// provider's shell owns clock routing, so these are known
    /// regardless of what the tenant names the pins — the seeds that
    /// make the pass immune to the rename trick that defeats the
    /// structural clock-as-data name screen. Clock-*named* inputs
    /// ([`ClockConfig::clock_names`]) are seeded too.
    pub declared_clocks: Vec<String>,
    /// Minimum number of clock-rate-tainted outputs (reached through
    /// real logic, see `min_logic_depth`) before the pass rejects —
    /// below it, wide observation fan-in is absent and only an `Info`
    /// note is recorded.
    pub min_observed: usize,
    /// Minimum non-buffer logic depth between a clock seed and a
    /// tainted output for the output to count as *converged through
    /// logic* (pure buffer forwarding of a clock is pin feed-through,
    /// not sensing).
    pub min_logic_depth: usize,
}

impl Default for TaintConfig {
    fn default() -> Self {
        TaintConfig {
            declared_clocks: Vec::new(),
            min_observed: 8,
            min_logic_depth: 1,
        }
    }
}

/// Parameters of the static switching-activity estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityConfig {
    /// Transition density assumed at data inputs, transitions/cycle.
    pub input_density: f64,
    /// Transition density assumed at clock-fed inputs (and
    /// self-oscillating loop nets), transitions/cycle; 2.0 = rise+fall.
    pub clock_density: f64,
    /// Per-output clock-attributable glitch bound at or above which the
    /// output counts as a clock-driven observation tap.
    pub tap_threshold: f64,
    /// Minimum number of clock-driven taps before the pass rejects.
    pub min_taps: usize,
    /// Summed worst-case glitch bound over a SCOAP sensor-like endpoint
    /// group at or above which the heuristic `Warn` is upgraded to a
    /// power-proxy `Reject`.
    pub scoap_upgrade_glitch: f64,
    /// Glitch amplification ratio (worst-case transitions / transition
    /// density) above which an informational reconvergence note is
    /// recorded.
    pub info_amplification: f64,
}

impl Default for ActivityConfig {
    fn default() -> Self {
        ActivityConfig {
            input_density: 0.5,
            clock_density: 2.0,
            tap_threshold: 1.0,
            min_taps: 8,
            scoap_upgrade_glitch: 8.0,
            info_amplification: 64.0,
        }
    }
}

/// Thresholds for the observation-bandwidth pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthConfig {
    /// Observable clock-rate bits/cycle at or above which the pass
    /// warns (the paper's TDC reads a thermometer code of this width
    /// every capture cycle).
    pub warn_bits_per_cycle: usize,
}

impl Default for BandwidthConfig {
    fn default() -> Self {
        BandwidthConfig {
            warn_bits_per_cycle: 8,
        }
    }
}

/// One allowlist rule. Every populated field must match for the rule to
/// apply; `None` fields match anything.
///
/// Suppressions apply to `Info` and `Warn` findings only: a `Reject` is
/// definitive structural evidence and is never hidden (enforced by the
/// pass manager and covered by a property test).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Suppression {
    /// Restrict to one finding category.
    pub kind: Option<CheckKind>,
    /// Restrict to findings raised by one pass (exact name).
    pub pass: Option<String>,
    /// Restrict to findings whose span mentions a net with this source
    /// name.
    pub net_name: Option<String>,
    /// Why the finding is acceptable — recorded on the suppressed
    /// finding.
    pub reason: String,
}

impl Suppression {
    /// Whether the rule matches `finding`. Severity is not consulted
    /// here; the pass manager refuses to suppress `Reject` regardless.
    pub fn matches(&self, finding: &Finding) -> bool {
        if let Some(kind) = self.kind {
            if finding.kind != kind {
                return false;
            }
        }
        if let Some(pass) = &self.pass {
            if finding.pass != *pass {
                return false;
            }
        }
        if let Some(net) = &self.net_name {
            let in_span = finding
                .span
                .iter()
                .any(|s| s.name.as_deref() == Some(net.as_str()));
            if !in_span {
                return false;
            }
        }
        true
    }
}

/// Tunable thresholds for all passes, one section per pass.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CheckerConfig {
    /// SCC oscillation pass.
    pub loops: LoopConfig,
    /// Tapped delay-line pass.
    pub delay_line: DelayLineConfig,
    /// Trivial-array (power virus) pass.
    pub array: ArrayConfig,
    /// Opt-in observation-density heuristic.
    pub observation: ObservationConfig,
    /// Clock-as-data pass.
    pub clock: ClockConfig,
    /// SCOAP-style sensor-likeness pass.
    pub scoap: ScoapConfig,
    /// Subgraph-signature pass.
    pub signature: SignatureConfig,
    /// Semantic clock-taint dataflow pass.
    pub taint: TaintConfig,
    /// Static switching-activity estimator.
    pub activity: ActivityConfig,
    /// Observation-bandwidth pass.
    pub bandwidth: BandwidthConfig,
    /// Allowlist rules applied after all passes run.
    pub suppressions: Vec<Suppression>,
}

/// Applies the suppression rules to a finding list. `Reject` findings
/// are never suppressed.
pub fn apply_suppressions(config: &CheckerConfig, findings: &mut [Finding]) {
    for finding in findings {
        if finding.severity >= Severity::Reject {
            continue;
        }
        if let Some(rule) = config
            .suppressions
            .iter()
            .find(|rule| rule.matches(finding))
        {
            finding.suppressed = Some(rule.reason.clone());
        }
    }
}
