//! The content-addressed per-pass scan cache.
//!
//! Admission-at-traffic means scanning the *same* tenant netlists over
//! and over — every resubmission, every config rollout, every nightly
//! re-audit. Pass results are pure functions of (netlist, config,
//! pass), so they are cached under an FNV-1a key over the netlist's
//! [`content hash`](slm_netlist::Netlist::content_hash), a hash of the
//! serialized [`CheckerConfig`], and the pass name — the same
//! fingerprint discipline the streaming checkpoint ledger uses. A warm
//! cache replays findings without building the analysis context at
//! all.
//!
//! Two tiers:
//!
//! * an in-memory map (always on), shared across threads behind a
//!   mutex so one cache serves a whole `--jobs N` batch;
//! * an optional on-disk tier with one file per (scan, pass) entry,
//!   written atomically (`.tmp` + rename) with a trailing checksum.
//!   The vendored `serde_json` has no parser, so entries use a small
//!   hand-rolled binary codec; any unreadable, truncated or corrupt
//!   file is treated as a miss, never an error.
//!
//! Cached findings are **pre-suppression**: suppression rules are part
//! of the config hash anyway, but applying them at replay keeps the
//! invariant that a `Reject` can never be hidden by a stale allowlist.

use crate::config::CheckerConfig;
use crate::diag::{CheckKind, Finding, Severity, SpanNet};
use slm_netlist::{NetId, Netlist};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;
const MAGIC: &[u8; 6] = b"SLMC1\n";

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_mix(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A shared, thread-safe cache of per-pass scan results.
pub struct ScanCache {
    mem: Mutex<HashMap<u64, Vec<Finding>>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScanCache {
    /// A purely in-memory cache.
    pub fn in_memory() -> Self {
        ScanCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cache backed by one file per entry under `dir` (created if
    /// missing), warm across processes.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ScanCache {
            mem: Mutex::new(HashMap::new()),
            dir: Some(dir),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Entries served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the pass.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The scan-level part of the cache key: FNV over the netlist
    /// content hash and the serialized checker config. Any observable
    /// change to either — one gate, one threshold, one suppression
    /// rule — yields a different key.
    pub fn scan_key(&self, nl: &Netlist, config: &CheckerConfig) -> u64 {
        let config_json =
            serde_json::to_string(config).expect("config serialization is infallible");
        let mut h = fnv_mix(FNV_OFFSET, &nl.content_hash().to_le_bytes());
        h = fnv_mix(h, config_json.as_bytes());
        h
    }

    /// The full entry key for one pass of one scan.
    fn entry_key(scan_key: u64, pass: &str) -> u64 {
        fnv_mix(
            fnv_mix(FNV_OFFSET, &scan_key.to_le_bytes()),
            pass.as_bytes(),
        )
    }

    /// Looks up the cached findings of `pass` for `scan_key`.
    pub fn get(&self, scan_key: u64, pass: &str) -> Option<Vec<Finding>> {
        let key = Self::entry_key(scan_key, pass);
        if let Some(found) = self.mem.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(found.clone());
        }
        if let Some(dir) = &self.dir {
            if let Some(found) = read_entry(&entry_path(dir, key)) {
                self.mem
                    .lock()
                    .expect("cache lock")
                    .insert(key, found.clone());
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(found);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores the (pre-suppression) findings of `pass` for `scan_key`.
    ///
    /// Disk-tier write failures are swallowed: the cache is advisory,
    /// and a scan must never fail because a cache volume is full.
    pub fn put(&self, scan_key: u64, pass: &str, findings: &[Finding]) {
        let key = Self::entry_key(scan_key, pass);
        self.mem
            .lock()
            .expect("cache lock")
            .insert(key, findings.to_vec());
        if let Some(dir) = &self.dir {
            let _ = write_entry(&entry_path(dir, key), findings);
        }
    }
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.slmc"))
}

// --- binary codec -------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode(findings: &[Finding]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(findings.len() as u32).to_le_bytes());
    for f in findings {
        // Kind and severity as their stable string labels, for
        // forward-compat across enum additions.
        put_str(&mut out, f.kind.as_str());
        put_str(&mut out, f.severity.as_str());
        put_str(&mut out, &f.pass);
        match f.witness {
            Some(w) => {
                out.push(1);
                out.extend_from_slice(&w.0.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(f.span.len() as u32).to_le_bytes());
        for s in &f.span {
            out.extend_from_slice(&s.net.0.to_le_bytes());
            match &s.name {
                Some(name) => {
                    out.push(1);
                    put_str(&mut out, name);
                }
                None => out.push(0),
            }
        }
        put_str(&mut out, &f.detail);
        match &f.suppressed {
            Some(reason) => {
                out.push(1);
                put_str(&mut out, reason);
            }
            None => out.push(0),
        }
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
}

fn kind_from_str(s: &str) -> Option<CheckKind> {
    let all = [
        CheckKind::CombinationalLoop,
        CheckKind::DelayLineSensor,
        CheckKind::ExcessiveFanoutArray,
        CheckKind::TimingOverclock,
        CheckKind::ObservationDensity,
        CheckKind::ClockAsData,
        CheckKind::SensorLikeEndpoints,
        CheckKind::KnownBadMotif,
        CheckKind::ClockTaint,
        CheckKind::SwitchingActivity,
        CheckKind::ObservationBandwidth,
    ];
    all.into_iter().find(|k| k.as_str() == s)
}

fn severity_from_str(s: &str) -> Option<Severity> {
    [Severity::Info, Severity::Warn, Severity::Reject]
        .into_iter()
        .find(|v| v.as_str() == s)
}

fn decode(bytes: &[u8]) -> Option<Vec<Finding>> {
    if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a(body) != checksum {
        return None;
    }
    let mut r = Reader {
        bytes: body,
        at: MAGIC.len(),
    };
    let count = r.u32()? as usize;
    // Each finding needs at least its three length-prefixed strings.
    if count > body.len() {
        return None;
    }
    let mut findings = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let kind = kind_from_str(&r.str()?)?;
        let severity = severity_from_str(&r.str()?)?;
        let pass = r.str()?;
        let witness = match r.u8()? {
            0 => None,
            1 => Some(NetId(r.u32()?)),
            _ => return None,
        };
        let span_len = r.u32()? as usize;
        if span_len > body.len() {
            return None;
        }
        let mut span = Vec::with_capacity(span_len.min(1024));
        for _ in 0..span_len {
            let net = NetId(r.u32()?);
            let name = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                _ => return None,
            };
            span.push(SpanNet { net, name });
        }
        let detail = r.str()?;
        let suppressed = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            _ => return None,
        };
        findings.push(Finding {
            kind,
            severity,
            pass,
            witness,
            span,
            detail,
            suppressed,
        });
    }
    if r.at != body.len() {
        return None; // trailing garbage
    }
    Some(findings)
}

fn read_entry(path: &Path) -> Option<Vec<Finding>> {
    decode(&std::fs::read(path).ok()?)
}

fn write_entry(path: &Path, findings: &[Finding]) -> std::io::Result<()> {
    // Every writer gets its own scratch file. A shared `.tmp` name
    // would let two concurrent writers of the same key interleave
    // truncate/write/rename on one path — the rename could publish a
    // torn half-write, or tear the scratch file out from under the
    // slower writer. With a unique name each rename atomically
    // publishes one complete, checksummed entry; last writer wins.
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{seq:x}", std::process::id()));
    std::fs::write(&tmp, encode(findings))?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::span_of;

    fn sample_findings() -> Vec<Finding> {
        let nl = slm_netlist::generators::c17();
        vec![
            Finding::new(
                CheckKind::ClockTaint,
                Severity::Reject,
                "clock-taint",
                "clock-rate taint on 9 outputs".into(),
            )
            .with_witness(NetId(3))
            .with_span(span_of(&nl, &[NetId(1), NetId(2)])),
            Finding::new(
                CheckKind::SensorLikeEndpoints,
                Severity::Info,
                "scoap-sensor",
                "sub-threshold".into(),
            ),
        ]
    }

    #[test]
    fn codec_round_trips() {
        let findings = sample_findings();
        let decoded = decode(&encode(&findings)).expect("round trip");
        assert_eq!(decoded, findings);
        assert_eq!(decode(&encode(&[])).expect("empty"), vec![]);
    }

    #[test]
    fn corrupt_entries_are_misses_not_errors() {
        let findings = sample_findings();
        let good = encode(&findings);
        // Any single-byte flip breaks the checksum (or the magic).
        for at in [0, MAGIC.len() + 1, good.len() / 2, good.len() - 1] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            assert!(decode(&bad).is_none(), "flip at {at} must not decode");
        }
        // Truncations at every boundary are rejected too.
        for len in [0, 3, MAGIC.len(), good.len() - 9, good.len() - 1] {
            assert!(decode(&good[..len]).is_none(), "truncation to {len}");
        }
    }

    #[test]
    fn disk_tier_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("slm-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let findings = sample_findings();
        {
            let cache = ScanCache::with_dir(&dir).unwrap();
            cache.put(42, "clock-taint", &findings);
        }
        // A fresh cache instance reads the entry back from disk.
        let cache = ScanCache::with_dir(&dir).unwrap();
        assert_eq!(cache.get(42, "clock-taint"), Some(findings.clone()));
        assert_eq!(cache.get(42, "other-pass"), None);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Corrupt the file on disk: a fresh instance treats it as a miss.
        let key = ScanCache::entry_key(42, "clock-taint");
        let path = entry_path(&dir, key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let cache = ScanCache::with_dir(&dir).unwrap();
        assert_eq!(cache.get(42, "clock-taint"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The service admission path hammers one cache directory from
    /// many threads at once — concurrent cold writes and warm reads of
    /// the *same* key. Every read must observe either a miss or one
    /// complete entry (never torn bytes decoding to garbage), and once
    /// all writers finish the entry must be present and intact. Each
    /// thread uses a private `ScanCache` instance over the shared
    /// directory so every operation exercises the disk tier, not the
    /// in-memory map.
    #[test]
    fn disk_tier_survives_concurrent_same_key_traffic() {
        let dir = std::env::temp_dir().join(format!("slm-cache-hammer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let findings = sample_findings();
        let scan_key = 7u64;
        std::thread::scope(|scope| {
            for t in 0..8 {
                let dir = &dir;
                let findings = &findings;
                scope.spawn(move || {
                    for i in 0..50 {
                        let cache = ScanCache::with_dir(dir).unwrap();
                        if (t + i) % 2 == 0 {
                            cache.put(scan_key, "clock-taint", findings);
                        }
                        match cache.get(scan_key, "clock-taint") {
                            None => {}
                            Some(got) => {
                                assert_eq!(&got, findings, "a concurrent reader saw a torn entry")
                            }
                        }
                    }
                });
            }
        });
        // After the storm: the entry is present, complete, and no
        // scratch files were left behind by the unique-tmp protocol's
        // winners (a losing rename cannot exist — names are unique).
        let cache = ScanCache::with_dir(&dir).unwrap();
        assert_eq!(cache.get(scan_key, "clock-taint"), Some(findings.clone()));
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray scratch files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_key_tracks_netlist_and_config() {
        let cache = ScanCache::in_memory();
        let a = slm_netlist::generators::c17();
        let b = slm_netlist::generators::ripple_carry_adder(4).unwrap();
        let config = CheckerConfig::default();
        assert_eq!(cache.scan_key(&a, &config), cache.scan_key(&a, &config));
        assert_ne!(cache.scan_key(&a, &config), cache.scan_key(&b, &config));
        let tightened = CheckerConfig {
            scoap: crate::ScoapConfig {
                min_depth: 4,
                ..crate::ScoapConfig::default()
            },
            ..CheckerConfig::default()
        };
        assert_ne!(cache.scan_key(&a, &config), cache.scan_key(&a, &tightened));
    }
}
