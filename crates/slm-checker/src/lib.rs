//! Structural netlist checking — the defensive screening that the
//! paper's stealthy sensor is designed to evade.
//!
//! Cloud FPGA operators have proposed scanning tenant bitstreams for the
//! circuit structures known to implement voltage sensors and power
//! viruses (Krautter et al., TRETS 2019; La et al., "FPGADefender",
//! TRETS 2020). This crate implements that style of checker over the
//! workspace netlist IR:
//!
//! * [`CheckKind::CombinationalLoop`] — ring oscillators and other
//!   self-oscillators,
//! * [`CheckKind::DelayLineSensor`] — long buffer/inverter chains with
//!   per-stage observation taps (TDC structure),
//! * [`CheckKind::ExcessiveFanoutArray`] — huge arrays of identical
//!   trivial cells (RO-grid power viruses),
//! * [`CheckKind::TimingOverclock`] — the *strict timing check* the
//!   paper's discussion concedes would catch logic misuse: verifying the
//!   requested clock against STA (Section VI notes why operators are
//!   unlikely to enforce it: false paths and vendor-IP constraints make
//!   strict enforcement impractical on real designs).
//!
//! The headline result of the reproduction's stealth experiment: the RO
//! array and the TDC netlists are flagged by the structural passes,
//! while the ALU and C6288 sensors pass every structural check and are
//! caught **only** by the timing pass — and only if the checker knows
//! the tenant's requested clock.
//!
//! # Example
//!
//! ```
//! use slm_checker::{check_structure, CheckKind};
//! use slm_netlist::generators::{ring_oscillator, alu};
//!
//! let ro = ring_oscillator(8).unwrap();
//! let report = check_structure(&ro);
//! assert!(report.flagged(CheckKind::CombinationalLoop));
//!
//! let benign = alu(32).unwrap();
//! assert!(check_structure(&benign).is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use slm_netlist::{GateKind, NetId, Netlist};
use slm_timing::AnnotatedDelays;

/// Categories of findings a checker can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CheckKind {
    /// A combinational feedback loop (self-oscillator).
    CombinationalLoop,
    /// A long buffer/inverter chain with dense observation taps.
    DelayLineSensor,
    /// A large array of near-identical trivial cells.
    ExcessiveFanoutArray,
    /// Requested clock exceeds the STA fmax (strict timing check).
    TimingOverclock,
    /// High observation density: an unusually large fraction of the
    /// logic is tapped to outputs (sensor-like). **Opt-in and
    /// deliberately over-aggressive** — it also flags ordinary adders,
    /// demonstrating the paper's point that tightening structural
    /// heuristics far enough to catch benign-logic sensors rejects
    /// legitimate designs.
    ObservationDensity,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Category.
    pub kind: CheckKind,
    /// A net involved in the finding (loop witness, chain head, …).
    pub witness: Option<NetId>,
    /// Human-readable explanation.
    pub detail: String,
}

/// The verdict over one tenant netlist.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CheckReport {
    /// All findings, in pass order.
    pub findings: Vec<Finding>,
}

impl CheckReport {
    /// Whether no pass raised a finding.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether a specific category was raised.
    pub fn flagged(&self, kind: CheckKind) -> bool {
        self.findings.iter().any(|f| f.kind == kind)
    }
}

/// Tunable thresholds for the structural passes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckerConfig {
    /// Minimum tapped buffer-chain length considered a delay-line sensor.
    pub delay_line_min_stages: usize,
    /// Minimum fraction of chain stages that must be observed (tapped)
    /// for the chain to look like a sensor rather than pipelining.
    pub delay_line_min_tap_fraction: f64,
    /// Minimum count of identical trivial cells considered a power-virus
    /// array.
    pub array_min_cells: usize,
    /// Enable the over-aggressive observation-density heuristic.
    pub enable_observation_heuristic: bool,
    /// Output-to-gate ratio above which the observation heuristic fires.
    pub observation_density_threshold: f64,
    /// Minimum gate count before the observation heuristic applies.
    pub observation_min_gates: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            delay_line_min_stages: 16,
            delay_line_min_tap_fraction: 0.5,
            array_min_cells: 1000,
            enable_observation_heuristic: false,
            observation_density_threshold: 0.12,
            observation_min_gates: 64,
        }
    }
}

/// Runs all structural passes with default thresholds.
pub fn check_structure(nl: &Netlist) -> CheckReport {
    check_structure_with(nl, &CheckerConfig::default())
}

/// Runs all structural passes.
pub fn check_structure_with(nl: &Netlist, config: &CheckerConfig) -> CheckReport {
    let mut report = CheckReport::default();
    pass_combinational_loop(nl, &mut report);
    pass_delay_line(nl, config, &mut report);
    pass_trivial_array(nl, config, &mut report);
    if config.enable_observation_heuristic {
        pass_observation_density(nl, config, &mut report);
    }
    report
}

fn pass_observation_density(nl: &Netlist, config: &CheckerConfig, report: &mut CheckReport) {
    let gates = nl
        .gates()
        .iter()
        .filter(|g| g.kind != GateKind::Input)
        .count();
    if gates < config.observation_min_gates {
        return;
    }
    let density = nl.outputs().len() as f64 / gates as f64;
    if density > config.observation_density_threshold {
        report.findings.push(Finding {
            kind: CheckKind::ObservationDensity,
            witness: None,
            detail: format!(
                "{} of {gates} logic cells observed at outputs (density {density:.2})",
                nl.outputs().len()
            ),
        });
    }
}

/// The strict timing pass: flags a design whose requested clock beats
/// its STA fmax. Needs the delay annotation and the tenant's clock
/// request — information a structural bitstream scan does not have,
/// which is exactly the gap the paper exploits.
pub fn check_timing(ann: &AnnotatedDelays, requested_mhz: f64) -> CheckReport {
    let mut report = CheckReport::default();
    match ann.sta() {
        Ok(sta) => {
            if !sta.meets_timing(requested_mhz) {
                report.findings.push(Finding {
                    kind: CheckKind::TimingOverclock,
                    witness: None,
                    detail: format!(
                        "requested {requested_mhz:.1} MHz exceeds fmax {:.1} MHz",
                        sta.fmax_mhz()
                    ),
                });
            }
        }
        Err(_) => report.findings.push(Finding {
            kind: CheckKind::CombinationalLoop,
            witness: None,
            detail: "cyclic netlist: timing undefined".into(),
        }),
    }
    report
}

fn pass_combinational_loop(nl: &Netlist, report: &mut CheckReport) {
    if let Err(slm_netlist::NetlistError::CombinationalCycle { witness }) =
        nl.topological_order().map(|_| ())
    {
        report.findings.push(Finding {
            kind: CheckKind::CombinationalLoop,
            witness: Some(witness),
            detail: format!("combinational feedback through {witness}"),
        });
    }
}

fn pass_delay_line(nl: &Netlist, config: &CheckerConfig, report: &mut CheckReport) {
    // Walk maximal chains of single-fanin BUF/NOT cells and count how
    // many chain nets are primary outputs (taps).
    let outputs: std::collections::HashSet<NetId> = nl.outputs().iter().map(|&(_, o)| o).collect();
    let mut fanout = vec![0usize; nl.len()];
    for g in nl.gates() {
        for &f in &g.fanin {
            fanout[f.index()] += 1;
        }
    }
    let is_chain_cell = |id: NetId| {
        matches!(nl.gate(id).kind, GateKind::Buf | GateKind::Not) && nl.gate(id).fanin.len() == 1
    };
    let mut visited = vec![false; nl.len()];
    for start in 0..nl.len() {
        let sid = NetId(start as u32);
        if visited[start] || !is_chain_cell(sid) {
            continue;
        }
        // Only start from chain heads (predecessor is not a chain cell).
        let pred = nl.gate(sid).fanin[0];
        if is_chain_cell(pred) {
            continue;
        }
        // Follow the chain forward.
        let mut chain = vec![sid];
        visited[start] = true;
        let mut cur = sid;
        loop {
            // successor: the unique chain cell fed by cur
            let mut next = None;
            for (gi, g) in nl.gates().iter().enumerate() {
                if g.fanin.first() == Some(&cur)
                    && g.fanin.len() == 1
                    && is_chain_cell(NetId(gi as u32))
                    && !visited[gi]
                {
                    next = Some(NetId(gi as u32));
                    break;
                }
            }
            match next {
                Some(n) => {
                    visited[n.index()] = true;
                    chain.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        if chain.len() >= config.delay_line_min_stages {
            let taps = chain.iter().filter(|id| outputs.contains(id)).count();
            let frac = taps as f64 / chain.len() as f64;
            if frac >= config.delay_line_min_tap_fraction {
                report.findings.push(Finding {
                    kind: CheckKind::DelayLineSensor,
                    witness: Some(chain[0]),
                    detail: format!(
                        "tapped delay line of {} stages ({} taps)",
                        chain.len(),
                        taps
                    ),
                });
            }
        }
    }
}

fn pass_trivial_array(nl: &Netlist, config: &CheckerConfig, report: &mut CheckReport) {
    // An RO-grid power virus replicates a tiny cell thousands of times;
    // count NAND/NOT cells whose fanin includes themselves-via-short-loop
    // is already caught by the loop pass, so here: sheer replication of
    // 1-2 input cells with no other logic.
    let trivial = nl
        .gates()
        .iter()
        .filter(|g| {
            matches!(g.kind, GateKind::Not | GateKind::Buf | GateKind::Nand) && g.fanin.len() <= 2
        })
        .count();
    let total_logic = nl
        .gates()
        .iter()
        .filter(|g| g.kind != GateKind::Input)
        .count();
    if trivial >= config.array_min_cells && trivial * 10 >= total_logic * 9 {
        report.findings.push(Finding {
            kind: CheckKind::ExcessiveFanoutArray,
            witness: None,
            detail: format!("{trivial} of {total_logic} cells are trivial replicated gates"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slm_netlist::generators::{alu, array_multiplier, c17, ring_oscillator, tdc_delay_line};
    use slm_netlist::{Gate, GateKind, NetId, Netlist};
    use slm_timing::DelayModel;

    #[test]
    fn ring_oscillator_flagged() {
        let ro = ring_oscillator(12).unwrap();
        let r = check_structure(&ro);
        assert!(r.flagged(CheckKind::CombinationalLoop));
    }

    #[test]
    fn tdc_delay_line_flagged() {
        let tdc = tdc_delay_line(64).unwrap();
        let r = check_structure(&tdc);
        assert!(r.flagged(CheckKind::DelayLineSensor), "{r:?}");
    }

    #[test]
    fn short_pipeline_buffers_not_flagged() {
        let tdc = tdc_delay_line(8).unwrap();
        assert!(check_structure(&tdc).is_clean());
    }

    #[test]
    fn untapped_long_chain_not_flagged() {
        // A long buffer chain with only the final output observed is
        // ordinary pipelining/fanout management, not a sensor.
        let mut b = slm_netlist::NetlistBuilder::new("pipe");
        let mut n = b.input("d");
        for _ in 0..64 {
            n = b.buf(n);
        }
        b.output("q", n);
        let nl = b.finish().unwrap();
        assert!(check_structure(&nl).is_clean());
    }

    #[test]
    fn ro_grid_power_virus_flagged() {
        // 1500 independent 2-NAND cells (the classic RO grid, modelled
        // acyclically so only the array pass fires).
        let mut gates = vec![Gate::new(GateKind::Input, vec![])];
        let mut names = vec![Some("en".to_string())];
        for i in 0..1500u32 {
            gates.push(Gate::new(GateKind::Nand, vec![NetId(0), NetId(0)]));
            names.push(Some(format!("cell{i}")));
        }
        let nl = Netlist::from_parts("grid", gates, vec![NetId(0)], vec![], names).unwrap();
        let r = check_structure(&nl);
        assert!(r.flagged(CheckKind::ExcessiveFanoutArray));
    }

    #[test]
    fn benign_circuits_pass_structural_checks() {
        for nl in [alu(192).unwrap(), array_multiplier(16).unwrap(), c17()] {
            let r = check_structure(&nl);
            assert!(r.is_clean(), "{} flagged: {:?}", nl.name(), r.findings);
        }
    }

    #[test]
    fn observation_heuristic_is_a_false_positive_trap() {
        // Opt-in heuristic: it catches a tapped carry chain (a TDC built
        // from an adder), but it also flags a perfectly ordinary
        // ripple-carry adder — the paper's argument for why structural
        // screening cannot be tightened into a defence.
        let config = CheckerConfig {
            enable_observation_heuristic: true,
            ..CheckerConfig::default()
        };
        let rca = slm_netlist::generators::ripple_carry_adder(64).unwrap();
        let r = check_structure_with(&rca, &config);
        assert!(
            r.flagged(CheckKind::ObservationDensity),
            "the heuristic must (wrongly) flag the plain adder: {r:?}"
        );
        // while the big ALU, whose outputs are a tiny fraction of its
        // logic, passes even the aggressive heuristic
        let alu = alu(192).unwrap();
        assert!(check_structure_with(&alu, &config).is_clean());
        // and it stays off by default
        assert!(check_structure(&rca).is_clean());
    }

    #[test]
    fn strict_timing_catches_the_overclock() {
        // The paper's discussion: only a strict timing check catches the
        // benign sensor — at 300 MHz, never at its synthesis clock.
        let nl = alu(192).unwrap();
        let ann = DelayModel::default()
            .annotate_for_period(&nl, 20.0, 0.9)
            .unwrap();
        assert!(check_timing(&ann, 50.0).is_clean());
        let r = check_timing(&ann, 300.0);
        assert!(r.flagged(CheckKind::TimingOverclock));
        assert!(r.findings[0].detail.contains("300.0 MHz"));
    }

    #[test]
    fn timing_check_on_cyclic_reports_loop() {
        let ro = ring_oscillator(4).unwrap();
        let ann = DelayModel::default().annotate(&ro);
        let r = check_timing(&ann, 100.0);
        assert!(r.flagged(CheckKind::CombinationalLoop));
    }
}
